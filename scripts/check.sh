#!/usr/bin/env bash
# One-command gate for the workspace: formatting, the static-analysis
# verify pass, an offline release build, and the test suite. CI and
# pre-push hooks should run exactly this.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo xtask verify"
cargo run -q -p xtask -- verify

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test --workspace"
cargo test -q --workspace

echo "check.sh: all gates passed"
