#!/usr/bin/env bash
# One-command gate for the workspace: formatting, the static-analysis
# verify pass, an offline release build, and the test suite. CI and
# pre-push hooks should run exactly this.
#
# `check.sh --thorough` additionally runs the crash-point sweeps at
# stride 1 (every single I/O index, including the points inside the
# scrubber and the repair pipeline) — the nightly lane.
set -euo pipefail
cd "$(dirname "$0")/.."

STRIDE=16
if [ "${1:-}" = "--thorough" ]; then
  STRIDE=1
fi

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo xtask verify --json (vs committed VERIFY_pr7.json)"
cargo run -q -p xtask -- verify --json > /tmp/verify_now.json
cargo run -q -p xtask -- verify   # human-readable pass/fail (exit code gates)

# Effect-waiver ratchet: the set of consumed waivers (DMXnnn Site ids)
# may only shrink relative to the committed snapshot. A new waiver id
# means a new write-ahead / latch exception was added without burning
# down the baseline — that is a review event, not a routine change.
if [ -f VERIFY_pr7.json ]; then
  new_waivers=$(comm -13 \
    <(grep -oE '"id": "DMX[0-9]+ [^"]+"' VERIFY_pr7.json | sort -u) \
    <(grep -oE '"id": "DMX[0-9]+ [^"]+"' /tmp/verify_now.json | sort -u))
  if [ -n "$new_waivers" ]; then
    echo "effect waivers not present in committed VERIFY_pr7.json:"
    echo "$new_waivers"
    exit 1
  fi
fi

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy -q --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test --workspace"
cargo test -q --workspace

# Bounded crash-point sweep: every 16th I/O index by default; stride 1
# (every index) under --thorough. The self-heal sweep re-runs the same
# crash grid with the crash points landing inside CHECK TABLE / REPAIR
# TABLE, asserting the repair pipeline converges from any interruption.
echo "==> fault sweep (FAULT_SWEEP_STRIDE=$STRIDE)"
FAULT_SWEEP_STRIDE=$STRIDE cargo test -q --test fault_sweep
echo "==> self-heal crash sweep (FAULT_SWEEP_STRIDE=$STRIDE)"
FAULT_SWEEP_STRIDE=$STRIDE cargo test -q --test self_heal crash_sweep

# Storage-method differential oracle: heap vs btree vs in-memory model
# over seeded statement streams.
echo "==> differential oracle"
cargo test -q --test differential

# Deterministic bench smoke: scaled-down seeded scenarios run twice;
# any metric-snapshot divergence between the runs fails the gate.
echo "==> bench smoke (determinism gate)"
cargo run -q --release -p dmx-bench --bin harness -- --smoke

# Metric-name compatibility: every metric exported by the pr3 baseline
# must still exist in each later baseline (renaming or dropping a
# published metric is a breaking observability change). pr5-only names
# such as planner.misestimate stay published through BENCH_pr5.json.
for later in BENCH_pr5.json BENCH_pr7.json BENCH_pr8.json BENCH_pr9.json BENCH_pr10.json; do
  if [ -f BENCH_pr3.json ] && [ -f "$later" ]; then
    echo "==> bench metric-name compatibility (pr3 -> ${later})"
    missing=$(comm -23 \
      <(grep -oE '"[a-z_]+(\.[a-z_]+)+"' BENCH_pr3.json | sort -u) \
      <(grep -oE '"[a-z_]+(\.[a-z_]+)+"' "$later" | sort -u))
    if [ -n "$missing" ]; then
      echo "previously-exported metrics missing from ${later}:"
      echo "$missing"
      exit 1
    fi
  fi
done

# Recovery-architecture perf ratchet (PR8): the steal/no-force commit
# path must keep the b-tree bulk load at >= 2x the PR3 force-at-commit
# baseline, and commit must have stopped flushing pages — pool.flushes
# in the PR8 bulk scenarios stays a small DDL-bootstrap constant
# instead of scaling with the row count. Both numbers come from the
# committed baselines, so the gate is hermetic.
if [ -f BENCH_pr3.json ] && [ -f BENCH_pr8.json ]; then
  echo "==> recovery perf ratchet (pr8 vs pr3)"
  ratchet() { # file scenario -> ops_per_sec (integer part)
    grep -o "\"name\": \"$2\"[^}]*" "$1" \
      | grep -oE '"ops_per_sec": [0-9]+' | grep -oE '[0-9]+' | head -1
  }
  pr3_btree=$(ratchet BENCH_pr3.json bulk_insert_btree)
  pr8_btree=$(ratchet BENCH_pr8.json bulk_insert_btree)
  if [ "$pr8_btree" -lt $((pr3_btree * 2)) ]; then
    echo "pr8 bulk_insert_btree ${pr8_btree} ops/s < 2x pr3 baseline ${pr3_btree} ops/s"
    exit 1
  fi
  echo "    bulk_insert_btree: pr8 ${pr8_btree} ops/s >= 2x pr3 ${pr3_btree} ops/s"
  for scenario in bulk_insert_heap bulk_insert_btree; do
    flushes=$(grep -o "\"name\": \"$scenario\".*" BENCH_pr8.json \
      | grep -oE '"pool\.flushes": ?[0-9]+' | grep -oE '[0-9]+' | head -1)
    if [ "${flushes:-999}" -gt 16 ]; then
      echo "pr8 $scenario flushed ${flushes} pages at commit (no-force regression)"
      exit 1
    fi
    echo "    $scenario: pool.flushes=${flushes} (no-force holds)"
  done
fi

# MVCC read-path ratchet (PR9): the snapshot scan path must collapse
# scan-phase lock traffic by >= 10x against the locking baseline (the
# shipped figure is ~40,000x: one Relation IS lock per scan instead of
# a record + gap lock per row), and the snapshot run must actually have
# routed its scans through the version store. Both scenarios run the
# identical seeded workload, so the ratio is hermetic.
if [ -f BENCH_pr9.json ]; then
  echo "==> MVCC read-path ratchet (pr9 snapshot vs locking)"
  scanlocks() { # scenario -> bench.scan_lock_acquires
    grep -o "\"name\": \"$1\".*" BENCH_pr9.json \
      | grep -oE '"bench\.scan_lock_acquires": ?[0-9]+' | grep -oE '[0-9]+' | head -1
  }
  locking=$(scanlocks read_mostly_locking)
  snapshot=$(scanlocks read_mostly_snapshot)
  if [ "${snapshot:-999999}" -gt $((${locking:-0} / 10)) ]; then
    echo "pr9 snapshot scan path took ${snapshot} locks vs locking ${locking} (< 10x collapse)"
    exit 1
  fi
  echo "    scan-path lock.acquires: locking ${locking} -> snapshot ${snapshot}"
  mvcc_scans=$(grep -o '"name": "read_mostly_snapshot".*' BENCH_pr9.json \
    | grep -oE '"mvcc\.snapshot_scans": ?[0-9]+' | grep -oE '[0-9]+' | head -1)
  if [ "${mvcc_scans:-0}" -lt 1 ]; then
    echo "pr9 read_mostly_snapshot never took a snapshot scan"
    exit 1
  fi
  echo "    read_mostly_snapshot: mvcc.snapshot_scans=${mvcc_scans}"
fi

# Statistics cost-feedback ratchet (PR10): maintained statistics must
# at least halve the planner's p90 row-estimate error on the skewed
# matrix relative to the guess-only lane (the shipped figure is ~66x),
# must flip at least one plan, and their per-modification maintenance
# must cost <= 10% wall clock on the identical DML-heavy stream. All
# figures come from the committed baseline, so the gate is hermetic.
if [ -f BENCH_pr10.json ]; then
  echo "==> statistics cost-feedback ratchet (pr10 stats vs guess)"
  misest() { # scenario -> bench.misest_p90
    grep -o "\"name\": \"$1\".*" BENCH_pr10.json \
      | grep -oE '"bench\.misest_p90": ?[0-9]+' | grep -oE '[0-9]+$' | head -1
  }
  guess=$(misest misestimate_guess)
  stats=$(misest misestimate_stats)
  if [ $((${stats:-999999} * 2)) -gt "${guess:-0}" ]; then
    echo "pr10 stats-lane p90 misestimate ${stats} rows vs guess ${guess} (< 2x shrink)"
    exit 1
  fi
  echo "    p90 misestimate: guess ${guess} -> stats ${stats} rows"
  flips=$(grep -o '"name": "misestimate_stats".*' BENCH_pr10.json \
    | grep -oE '"bench\.plan_flips": ?[0-9]+' | grep -oE '[0-9]+$' | head -1)
  if [ "${flips:-0}" -lt 1 ]; then
    echo "pr10 statistics flipped no plans"
    exit 1
  fi
  echo "    plan flips under statistics: ${flips}"
  lane_ms() { # scenario -> elapsed_ms (integer part)
    grep -o "\"name\": \"$1\"[^}]*" BENCH_pr10.json \
      | grep -oE '"elapsed_ms": [0-9]+' | grep -oE '[0-9]+$' | head -1
  }
  base_ms=$(lane_ms dml_overhead_base)
  stats_ms=$(lane_ms dml_overhead_stats)
  if [ $((${stats_ms:-999999} * 10)) -gt $((${base_ms:-0} * 11)) ]; then
    echo "pr10 statistics maintenance overhead: ${stats_ms}ms vs ${base_ms}ms base (> 10%)"
    exit 1
  fi
  echo "    dml lane: base ${base_ms}ms -> stats ${stats_ms}ms (<= 10% overhead)"
fi

echo "check.sh: all gates passed"
