#!/usr/bin/env bash
# One-command gate for the workspace: formatting, the static-analysis
# verify pass, an offline release build, and the test suite. CI and
# pre-push hooks should run exactly this.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo xtask verify"
cargo run -q -p xtask -- verify

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test --workspace"
cargo test -q --workspace

# Bounded crash-point sweep: every 16th I/O index instead of all of them
# (the full sweep runs in the nightly/thorough lane with stride 1).
echo "==> fault sweep smoke (FAULT_SWEEP_STRIDE=16)"
FAULT_SWEEP_STRIDE=16 cargo test -q --test fault_sweep

# Storage-method differential oracle: heap vs btree vs in-memory model
# over seeded statement streams.
echo "==> differential oracle"
cargo test -q --test differential

# Deterministic bench smoke: scaled-down seeded scenarios run twice;
# any metric-snapshot divergence between the runs fails the gate.
echo "==> bench smoke (determinism gate)"
cargo run -q --release -p dmx-bench --bin harness -- --smoke

echo "check.sh: all gates passed"
