#!/usr/bin/env bash
# One-command gate for the workspace: formatting, the static-analysis
# verify pass, an offline release build, and the test suite. CI and
# pre-push hooks should run exactly this.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo xtask verify --json (vs committed VERIFY_pr6.json)"
cargo run -q -p xtask -- verify --json > /tmp/verify_now.json
cargo run -q -p xtask -- verify   # human-readable pass/fail (exit code gates)

# Effect-waiver ratchet: the set of consumed waivers (DMXnnn Site ids)
# may only shrink relative to the committed snapshot. A new waiver id
# means a new write-ahead / latch exception was added without burning
# down the baseline — that is a review event, not a routine change.
if [ -f VERIFY_pr6.json ]; then
  new_waivers=$(comm -13 \
    <(grep -oE '"id": "DMX[0-9]+ [^"]+"' VERIFY_pr6.json | sort -u) \
    <(grep -oE '"id": "DMX[0-9]+ [^"]+"' /tmp/verify_now.json | sort -u))
  if [ -n "$new_waivers" ]; then
    echo "effect waivers not present in committed VERIFY_pr6.json:"
    echo "$new_waivers"
    exit 1
  fi
fi

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy -q --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test --workspace"
cargo test -q --workspace

# Bounded crash-point sweep: every 16th I/O index instead of all of them
# (the full sweep runs in the nightly/thorough lane with stride 1).
echo "==> fault sweep smoke (FAULT_SWEEP_STRIDE=16)"
FAULT_SWEEP_STRIDE=16 cargo test -q --test fault_sweep

# Storage-method differential oracle: heap vs btree vs in-memory model
# over seeded statement streams.
echo "==> differential oracle"
cargo test -q --test differential

# Deterministic bench smoke: scaled-down seeded scenarios run twice;
# any metric-snapshot divergence between the runs fails the gate.
echo "==> bench smoke (determinism gate)"
cargo run -q --release -p dmx-bench --bin harness -- --smoke

# Metric-name compatibility: every metric exported by the pr3 baseline
# must still exist somewhere in the pr5 baseline (renaming or dropping
# a published metric is a breaking observability change).
if [ -f BENCH_pr3.json ] && [ -f BENCH_pr5.json ]; then
  echo "==> bench metric-name compatibility (pr3 -> pr5)"
  missing=$(comm -23 \
    <(grep -oE '"[a-z_]+(\.[a-z_]+)+"' BENCH_pr3.json | sort -u) \
    <(grep -oE '"[a-z_]+(\.[a-z_]+)+"' BENCH_pr5.json | sort -u))
  if [ -n "$missing" ]; then
    echo "previously-exported metrics missing from BENCH_pr5.json:"
    echo "$missing"
    exit 1
  fi
fi

echo "check.sh: all gates passed"
