//! The maintained-statistics loop, end to end: `ANALYZE TABLE` registers
//! the stats attachment and rebuilds exactly; ordinary DML maintains the
//! published snapshot as a WAL-logged side effect; `sys.statistics`
//! renders it; the planner's estimates flip plans and shrink
//! `planner.misestimate`. A seeded property stream checks maintenance
//! against exact recomputation, a crash sweep checks that statistics
//! never report rows a reopen doesn't contain, and a same-seed double
//! run checks that `sys.statistics` is byte-identical (the snapshot is
//! part of the determinism contract).

// Examples and integration-test harnesses are exempt from the runtime
// panic discipline: failures here should abort loudly.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::collections::BTreeMap;
use std::sync::Arc;

use starburst_dmx::prelude::*;
use starburst_dmx::types::testrng::TestRng;

const SEED: u64 = 0x57A7_57A7_57A7_57A7;

/// One `sys.statistics` row, decoded.
#[derive(Debug, Clone, PartialEq)]
struct StatRow {
    field: String,
    rows: i64,
    nulls: Option<i64>,
    distinct: Option<i64>,
    min: Option<String>,
    max: Option<String>,
    histogram: Option<String>,
}

fn stat_rows(db: &Arc<Database>, relation: &str) -> Vec<StatRow> {
    let opt_int = |v: &Value| match v {
        Value::Int(i) => Some(*i),
        _ => None,
    };
    let opt_str = |v: &Value| match v {
        Value::Str(s) => Some(s.clone()),
        _ => None,
    };
    db.query_sql(&format!(
        "SELECT field, rows, nulls, distinct, min, max, histogram \
         FROM sys.statistics WHERE relation = '{relation}'"
    ))
    .unwrap()
    .into_iter()
    .map(|r| StatRow {
        field: r[0].as_str().unwrap().to_string(),
        rows: r[1].as_int().unwrap(),
        nulls: opt_int(&r[2]),
        distinct: opt_int(&r[3]),
        min: opt_str(&r[4]),
        max: opt_str(&r[5]),
        histogram: opt_str(&r[6]),
    })
    .collect()
}

fn field<'a>(rows: &'a [StatRow], name: &str) -> &'a StatRow {
    rows.iter()
        .find(|r| r.field == name)
        .unwrap_or_else(|| panic!("no sys.statistics row for field {name} in {rows:?}"))
}

#[test]
fn analyze_registers_the_attachment_and_publishes_exact_statistics() {
    let db = starburst_dmx::open_default().unwrap();
    db.execute_sql("CREATE TABLE emp (id INT NOT NULL, name STRING NOT NULL, bonus INT)")
        .unwrap();
    for id in 0..100 {
        let bonus = if id % 4 == 0 {
            "NULL".to_string()
        } else {
            (id * 10).to_string()
        };
        db.execute_sql(&format!("INSERT INTO emp VALUES ({id}, 'e{id}', {bonus})"))
            .unwrap();
    }
    // Nothing published before the first ANALYZE: no rows, guesses rule.
    assert!(stat_rows(&db, "emp").is_empty());

    let r = db.execute_sql("ANALYZE TABLE emp").unwrap();
    assert_eq!(r.columns, vec!["relation", "analyzed", "rows"]);
    assert_eq!(r.rows[0][0], Value::from("emp"));
    assert_eq!(r.rows[0][2], Value::Int(100));

    let rows = stat_rows(&db, "emp");
    let summary = field(&rows, "*");
    assert_eq!(summary.rows, 100);
    let id = field(&rows, "id");
    assert_eq!(id.nulls, Some(0));
    assert_eq!(id.min.as_deref(), Some("0"));
    assert_eq!(id.max.as_deref(), Some("99"));
    // approximate distinct: linear counting over 100 true distincts
    let d = id.distinct.unwrap();
    assert!((80..=120).contains(&d), "distinct estimate {d} off for id");
    let bonus = field(&rows, "bonus");
    assert_eq!(bonus.nulls, Some(25));
    assert!(
        bonus.histogram.as_deref().unwrap_or("").contains(".."),
        "ANALYZE must freeze a histogram: {bonus:?}"
    );
    // name is a string field: untracked, so no per-field row
    assert!(rows.iter().all(|r| r.field != "name"));

    // The second ANALYZE rebuilds in place (no second registration).
    let r = db.execute_sql("ANALYZE TABLE emp").unwrap();
    assert_eq!(r.rows[0][2], Value::Int(100));
    assert_eq!(stat_rows(&db, "emp"), rows);
}

/// Model of the table's `v` column for exact recomputation.
#[derive(Default)]
struct ColumnModel {
    live: BTreeMap<i64, Option<i64>>, // id -> v (None = NULL)
}

impl ColumnModel {
    fn rows(&self) -> i64 {
        self.live.len() as i64
    }
    fn nulls(&self) -> i64 {
        self.live.values().filter(|v| v.is_none()).count() as i64
    }
    fn min(&self) -> Option<i64> {
        self.live.values().flatten().min().copied()
    }
    fn max(&self) -> Option<i64> {
        self.live.values().flatten().max().copied()
    }
}

/// Applies a seeded DML stream; maintenance must track it statement by
/// statement.
fn run_stats_stream(db: &Arc<Database>, seed: u64, ops: usize) -> ColumnModel {
    let mut model = ColumnModel::default();
    let mut rng = TestRng::new(seed);
    let mut next_id = 0i64;
    for _ in 0..ops {
        let roll = rng.below(100);
        if roll < 50 || model.live.is_empty() {
            let id = next_id;
            next_id += 1;
            let v = if rng.below(5) == 0 {
                None
            } else {
                Some(rng.range_i64(-1000, 1000))
            };
            let lit = v.map_or("NULL".to_string(), |v| v.to_string());
            db.execute_sql(&format!("INSERT INTO ts VALUES ({id}, {lit})"))
                .unwrap();
            model.live.insert(id, v);
        } else if roll < 75 {
            let keys: Vec<i64> = model.live.keys().copied().collect();
            let id = keys[rng.index(keys.len())];
            let v = rng.range_i64(-1000, 1000);
            db.execute_sql(&format!("UPDATE ts SET v = {v} WHERE id = {id}"))
                .unwrap();
            model.live.insert(id, Some(v));
        } else {
            let keys: Vec<i64> = model.live.keys().copied().collect();
            let id = keys[rng.index(keys.len())];
            db.execute_sql(&format!("DELETE FROM ts WHERE id = {id}"))
                .unwrap();
            model.live.remove(&id);
        }
    }
    model
}

#[test]
fn maintained_statistics_agree_with_exact_recomputation() {
    let db = starburst_dmx::open_default().unwrap();
    db.execute_sql("CREATE TABLE ts (id INT NOT NULL, v INT)")
        .unwrap();
    db.execute_sql("ANALYZE TABLE ts").unwrap(); // registers the attachment
    let model = run_stats_stream(&db, SEED, 300);
    assert!(model.rows() > 0, "stream must leave live rows");

    // Maintained: counts exact, bounds widen-only (superset of truth).
    let rows = stat_rows(&db, "ts");
    assert_eq!(field(&rows, "*").rows, model.rows());
    let v = field(&rows, "v");
    assert_eq!(v.rows, model.rows());
    assert_eq!(v.nulls, Some(model.nulls()));
    let bound = |s: &Option<String>| s.as_ref().map(|s| s.parse::<i64>().unwrap());
    if let (Some(m), Some(b)) = (model.min(), bound(&v.min)) {
        assert!(b <= m, "maintained min {b} above exact {m}");
    }
    if let (Some(m), Some(b)) = (model.max(), bound(&v.max)) {
        assert!(b >= m, "maintained max {b} below exact {m}");
    }

    // ANALYZE recomputes exactly: bounds snap back to the truth.
    db.execute_sql("ANALYZE TABLE ts").unwrap();
    let rows = stat_rows(&db, "ts");
    let v = field(&rows, "v");
    assert_eq!(v.rows, model.rows());
    assert_eq!(v.nulls, Some(model.nulls()));
    assert_eq!(bound(&v.min), model.min(), "exact min after ANALYZE");
    assert_eq!(bound(&v.max), model.max(), "exact max after ANALYZE");
}

#[test]
fn same_seed_yields_byte_identical_sys_statistics() {
    let run = || {
        let db = starburst_dmx::open_default().unwrap();
        db.execute_sql("CREATE TABLE ts (id INT NOT NULL, v INT)")
            .unwrap();
        db.execute_sql("ANALYZE TABLE ts").unwrap();
        run_stats_stream(&db, SEED, 200);
        format!(
            "{:?}",
            db.query_sql("SELECT * FROM sys.statistics").unwrap()
        )
    };
    assert_eq!(
        run(),
        run(),
        "sys.statistics must be a pure function of the seed"
    );
}

#[test]
fn statistics_flip_the_plan_and_shrink_the_misestimate() {
    let db = starburst_dmx::open_default().unwrap();
    db.execute_sql("CREATE TABLE skew (id INT NOT NULL, dept INT NOT NULL, pay INT NOT NULL)")
        .unwrap();
    db.execute_sql("CREATE INDEX skew_dept ON skew (dept, pay)")
        .unwrap();
    // dept 0 holds 90% of rows; the textbook Eq guess (1% for a probe)
    // makes an index probe look great — statistics reveal the skew.
    let mut n0 = 0i64;
    for chunk in 0..40 {
        let mut tuples = Vec::new();
        for i in 0..100 {
            let id = chunk * 100 + i;
            let dept = if id % 10 == 0 { 1 + (id / 10) % 9 } else { 0 };
            if dept == 0 {
                n0 += 1;
            }
            tuples.push(format!("({id}, {dept}, {id})"));
        }
        db.execute_sql(&format!("INSERT INTO skew VALUES {}", tuples.join(", ")))
            .unwrap();
    }
    let q = "SELECT pay FROM skew WHERE dept = 0";

    let explain = |db: &Arc<Database>| -> String {
        db.query_sql(&format!("EXPLAIN {q}"))
            .unwrap()
            .into_iter()
            .map(|r| r[0].as_str().unwrap().to_string())
            .collect::<Vec<_>>()
            .join("\n")
    };
    let access_estimate = |db: &Arc<Database>| -> (f64, i64) {
        let rows = db
            .execute_sql(&format!("EXPLAIN ANALYZE {q}"))
            .unwrap()
            .rows;
        let access = rows
            .iter()
            .find(|r| r[0].as_str().unwrap().contains("Access"))
            .expect("access node");
        (
            access[1].as_int().unwrap() as f64,
            access[2].as_int().unwrap(),
        )
    };

    let before = explain(&db);
    assert!(
        before.contains("attachment"),
        "guess-based plan should probe the index:\n{before}"
    );
    let (est_before, actual) = access_estimate(&db);
    assert_eq!(actual, n0);

    db.execute_sql("ANALYZE TABLE skew").unwrap();
    let after = explain(&db);
    assert!(
        after.contains("storage-method"),
        "stats should flip the skewed probe to a scan:\n{after}"
    );
    let (est_after, actual2) = access_estimate(&db);
    assert_eq!(actual2, n0);
    let err_before = (est_before - actual as f64).abs();
    let err_after = (est_after - actual as f64).abs();
    assert!(
        err_after * 2.0 <= err_before,
        "misestimate must shrink at least 2x: before {err_before}, after {err_after}"
    );

    // A selective predicate still picks the index with stats live.
    let selective = db
        .query_sql("EXPLAIN SELECT pay FROM skew WHERE dept = 7")
        .unwrap()
        .into_iter()
        .map(|r| r[0].as_str().unwrap().to_string())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(
        selective.contains("attachment"),
        "selective probe should stay on the index:\n{selective}"
    );
}

#[test]
fn dropping_the_attachment_retracts_the_snapshot() {
    let db = starburst_dmx::open_default().unwrap();
    db.execute_sql("CREATE TABLE td (id INT NOT NULL, v INT)")
        .unwrap();
    db.execute_sql("INSERT INTO td VALUES (1, 10), (2, 20)")
        .unwrap();
    db.execute_sql("ANALYZE TABLE td").unwrap();
    assert!(!stat_rows(&db, "td").is_empty());
    db.execute_sql("DROP ATTACHMENT stats ON td").unwrap();
    assert!(
        stat_rows(&db, "td").is_empty(),
        "dropping the stats attachment must retract sys.statistics rows"
    );
}

#[test]
fn statistics_survive_reopen() {
    let (env, injector) = DatabaseEnv::fresh_with_plan(FaultPlan::new(SEED));
    let db = starburst_dmx::open_env(env.clone(), DatabaseConfig::default()).unwrap();
    db.execute_sql("CREATE TABLE ts (id INT NOT NULL, v INT)")
        .unwrap();
    db.execute_sql("ANALYZE TABLE ts").unwrap();
    run_stats_stream(&db, SEED, 120);
    let before = format!("{:?}", stat_rows(&db, "ts"));
    drop(db);
    injector.clear();
    let db = starburst_dmx::open_env(env, DatabaseConfig::default()).unwrap();
    assert_eq!(
        format!("{:?}", stat_rows(&db, "ts")),
        before,
        "reopen must rehydrate the identical statistics snapshot"
    );
}

// ---------------------------------------------------------------------
// Crash sweep: the maintained row count is WAL-coupled to the data it
// describes, so after recovery at *any* crash point the published
// statistics must agree exactly with what the reopened database
// actually contains.
// ---------------------------------------------------------------------

const CRASH_SEED: u64 = 0x5CA7_7E2E;
const CRASH_OPS: usize = 14;

fn sweep_stride() -> u64 {
    std::env::var("FAULT_SWEEP_STRIDE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&s| s > 0)
        .unwrap_or(1)
}

/// The swept workload: registration via ANALYZE, then autocommitted
/// inserts and deletes. Stops at the first error (the injected crash).
fn crash_workload(db: &Arc<Database>) {
    if db
        .execute_sql("CREATE TABLE ts (id INT NOT NULL, v INT)")
        .is_err()
    {
        return;
    }
    if db.execute_sql("ANALYZE TABLE ts").is_err() {
        return;
    }
    let mut rng = TestRng::new(CRASH_SEED);
    let mut live: Vec<i64> = Vec::new();
    for i in 0..CRASH_OPS {
        if rng.below(100) < 70 || live.is_empty() {
            let v = rng.range_i64(-50, 50);
            if db
                .execute_sql(&format!("INSERT INTO ts VALUES ({i}, {v})"))
                .is_err()
            {
                return;
            }
            live.push(i as i64);
        } else {
            let id = live.remove(rng.index(live.len()));
            if db
                .execute_sql(&format!("DELETE FROM ts WHERE id = {id}"))
                .is_err()
            {
                return;
            }
        }
    }
}

/// After recovery, the published statistics must describe exactly the
/// rows the reopened database contains — never rows that vanished, never
/// bounds that exclude survivors.
fn check_stats_match_contents(db: &Arc<Database>, at: &str) {
    let contents = match db.query_sql("SELECT id, v FROM ts") {
        Ok(rows) => rows,
        // CREATE never committed: nothing to describe.
        Err(DmxError::NotFound(_)) => return,
        // A crash mid-registration can leave the stats tree torn and
        // the relation fenced; REPAIR rebuilds the attachment-backed
        // state like any other, after which stats must agree again.
        Err(DmxError::RelationQuarantined { .. }) => {
            let r = db
                .execute_sql("REPAIR TABLE ts")
                .unwrap_or_else(|e| panic!("{at}: repair failed: {e}"));
            assert_eq!(r.rows[0][2], Value::from("healthy"), "{at}");
            db.query_sql("SELECT id, v FROM ts")
                .unwrap_or_else(|e| panic!("{at}: post-repair scan: {e}"))
        }
        Err(e) => panic!("{at}: scanning ts: {e}"),
    };
    let stats = stat_rows(db, "ts");
    if stats.is_empty() {
        // The ANALYZE DDL never committed; guesses rule, nothing stale.
        return;
    }
    let actual = contents.len() as i64;
    assert_eq!(
        field(&stats, "*").rows,
        actual,
        "{at}: statistics report a row count the reopened table contradicts"
    );
    let v = field(&stats, "v");
    assert_eq!(v.rows, actual, "{at}: per-field row count diverged");
    let nulls = contents.iter().filter(|r| r[1] == Value::Null).count() as i64;
    assert_eq!(v.nulls, Some(nulls), "{at}: null count diverged");
    let bound = |s: &Option<String>| s.as_ref().map(|s| s.parse::<i64>().unwrap());
    for r in &contents {
        if let Value::Int(x) = r[1] {
            assert!(
                bound(&v.min).unwrap() <= x && x <= bound(&v.max).unwrap(),
                "{at}: live value {x} outside maintained bounds {v:?}"
            );
        }
    }
}

#[test]
fn crash_sweep_statistics_never_contradict_the_reopened_table() {
    // Pass 1: healthy run to count the workload's I/O operations.
    let (env, injector) = DatabaseEnv::fresh_with_plan(FaultPlan::new(CRASH_SEED));
    let db = starburst_dmx::open_env(env.clone(), DatabaseConfig::default()).unwrap();
    crash_workload(&db);
    drop(db);
    let total = injector.ops();
    assert!(total > 40, "workload too small to sweep ({total} I/Os)");

    let stride = sweep_stride();
    let mut k = 0;
    while k < total {
        let at = format!("crash point {k}/{total}");
        let (env, injector) = DatabaseEnv::fresh_with_plan(FaultPlan::new(CRASH_SEED).crash_at(k));
        // Err means the crash fired during the initial open.
        if let Ok(db) = starburst_dmx::open_env(env.clone(), DatabaseConfig::default()) {
            crash_workload(&db);
            drop(db);
        }
        assert!(
            injector.is_crashed() || injector.injected() > 0,
            "{at}: the scheduled crash never fired"
        );
        injector.clear();
        let db = starburst_dmx::open_env(env, DatabaseConfig::default())
            .unwrap_or_else(|e| panic!("{at}: recovery failed: {e}"));
        check_stats_match_contents(&db, &at);
        k += stride;
    }
}
