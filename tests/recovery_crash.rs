//! Crash-restart matrix: the log-driven recovery driver across storage
//! methods, attachments, DDL and deferred physical actions.
//!
//! A "crash" drops every volatile structure (database object, buffer
//! pool, transaction tables) while the simulated disk and the durable log
//! survive; reopening runs restart recovery: committed deferred intents
//! are completed, loser transactions are undone through the same
//! extension-supplied undo operations that serve aborts and savepoints.

// Examples and integration-test harnesses are exempt from the runtime
// panic discipline: failures here should abort loudly.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::Arc;

use starburst_dmx::prelude::*;
use starburst_dmx::query::SqlExt;

fn reopen(env: &DatabaseEnv) -> Arc<Database> {
    starburst_dmx::open_env(env.clone(), DatabaseConfig::default()).unwrap()
}

fn fresh() -> (DatabaseEnv, Arc<Database>) {
    let env = DatabaseEnv::fresh();
    let db = reopen(&env);
    (env, db)
}

#[test]
fn committed_ddl_and_data_survive_repeated_crashes() {
    let (env, db) = fresh();
    db.execute_sql("CREATE TABLE t (id INT NOT NULL, v STRING)")
        .unwrap();
    db.execute_sql("CREATE UNIQUE INDEX t_pk ON t (id)")
        .unwrap();
    for i in 0..500 {
        db.execute_sql(&format!("INSERT INTO t VALUES ({i}, 'v{i}')"))
            .unwrap();
    }
    drop(db);
    // crash and reopen three times; state must be identical every time
    for round in 0..3 {
        let db = reopen(&env);
        let n = db.query_sql("SELECT COUNT(*) FROM t").unwrap()[0][0]
            .as_int()
            .unwrap();
        assert_eq!(n, 500, "round {round}");
        // keyed access through the recovered index
        let rows = db.query_sql("SELECT v FROM t WHERE id = 321").unwrap();
        assert_eq!(rows, vec![vec![Value::from("v321")]]);
        drop(db);
    }
}

#[test]
fn losers_across_every_storage_method_are_undone() {
    let (env, db) = fresh();
    db.execute_sql("CREATE TABLE h (id INT NOT NULL)").unwrap();
    db.execute_sql("CREATE TABLE b (id INT NOT NULL) USING btree WITH (key=id)")
        .unwrap();
    db.execute_sql("CREATE TABLE w (id INT NOT NULL) USING readonly")
        .unwrap();
    for i in 0..10 {
        db.execute_sql(&format!("INSERT INTO h VALUES ({i})"))
            .unwrap();
        db.execute_sql(&format!("INSERT INTO b VALUES ({i})"))
            .unwrap();
        db.execute_sql(&format!("INSERT INTO w VALUES ({i})"))
            .unwrap();
    }
    // in-flight work on all three relations, never committed
    let txn = db.begin();
    for rel in ["h", "b"] {
        let rd = db.catalog().get_by_name(rel).unwrap();
        for i in 100..110 {
            db.insert(&txn, rd.id, Record::new(vec![Value::Int(i)]))
                .unwrap();
        }
    }
    let wrd = db.catalog().get_by_name("w").unwrap();
    db.insert(&txn, wrd.id, Record::new(vec![Value::Int(777)]))
        .unwrap();
    // force the log so the loser's records are durable (makes restart
    // actually exercise idempotent undo rather than just dropping a tail)
    db.services().log.force_all().unwrap();
    drop(txn);
    drop(db); // crash

    let db = reopen(&env);
    for rel in ["h", "b", "w"] {
        let n = db
            .query_sql(&format!("SELECT COUNT(*) FROM {rel}"))
            .unwrap()[0][0]
            .as_int()
            .unwrap();
        assert_eq!(n, 10, "{rel}: loser insertions undone at restart");
    }
}

#[test]
fn deferred_drop_completes_after_crash_at_commit_point() {
    // Drop a relation, commit, then crash BEFORE the deferred physical
    // release would normally be marked done: restart must re-drive the
    // intent (idempotently) and the relation must stay gone.
    let (env, db) = fresh();
    db.execute_sql("CREATE TABLE doomed (id INT NOT NULL)")
        .unwrap();
    db.execute_sql("CREATE INDEX di ON doomed (id)").unwrap();
    db.execute_sql("INSERT INTO doomed VALUES (1)").unwrap();
    db.execute_sql("DROP TABLE doomed").unwrap();
    drop(db);
    let db = reopen(&env);
    assert!(db.catalog().get_by_name("doomed").is_err());
    // and again: restart is idempotent
    drop(db);
    let db = reopen(&env);
    assert!(db.catalog().get_by_name("doomed").is_err());
    // the dropped name can be reused
    db.execute_sql("CREATE TABLE doomed (x INT)").unwrap();
    db.execute_sql("INSERT INTO doomed VALUES (9)").unwrap();
}

#[test]
fn uncommitted_ddl_vanishes_at_restart() {
    let (env, db) = fresh();
    db.execute_sql("CREATE TABLE keep (id INT NOT NULL)")
        .unwrap();
    // uncommitted CREATE + uncommitted DROP of another table
    let txn = db.begin();
    db.create_relation(
        &txn,
        "phantom",
        Schema::new(vec![ColumnDef::not_null("x", DataType::Int)]).unwrap(),
        "heap",
        &AttrList::new(),
    )
    .unwrap();
    db.drop_relation(&txn, "keep").unwrap();
    drop(txn);
    drop(db); // crash with the DDL transaction in flight

    let db = reopen(&env);
    assert!(
        db.catalog().get_by_name("phantom").is_err(),
        "uncommitted CREATE gone"
    );
    assert!(
        db.catalog().get_by_name("keep").is_ok(),
        "uncommitted DROP rolled back"
    );
}

#[test]
fn attachments_and_aggregates_recover_consistently() {
    let (env, db) = fresh();
    db.execute_sql("CREATE TABLE t (id INT NOT NULL, grp INT NOT NULL, amt FLOAT)")
        .unwrap();
    db.execute_sql("CREATE INDEX t_grp ON t (grp)").unwrap();
    db.execute_sql("CREATE ATTACHMENT sums ON t USING aggregate WITH (sum = amt, group_by = grp)")
        .unwrap();
    for i in 0..60 {
        db.execute_sql(&format!(
            "INSERT INTO t VALUES ({i}, {}, {:.1})",
            i % 3,
            i as f64
        ))
        .unwrap();
    }
    // loser transaction touching both index and aggregate
    let txn = db.begin();
    let rd = db.catalog().get_by_name("t").unwrap();
    for i in 100..120 {
        db.insert(
            &txn,
            rd.id,
            Record::new(vec![Value::Int(i), Value::Int(0), Value::Float(1000.0)]),
        )
        .unwrap();
    }
    db.services().log.force_all().unwrap();
    drop(txn);
    drop(db); // crash

    let db = reopen(&env);
    // index agrees with the relation
    let via_index = db
        .query_sql("SELECT COUNT(*) FROM t WHERE grp = 0")
        .unwrap()[0][0]
        .as_int()
        .unwrap();
    assert_eq!(via_index, 20);
    // maintained aggregates agree with recomputation
    let rd = db.catalog().get_by_name("t").unwrap();
    let (at, inst) = rd.find_attachment("sums").unwrap();
    let txn = db.begin();
    let scan = db
        .open_scan(
            &txn,
            rd.id,
            AccessPath::Attachment(at, inst.instance),
            AccessQuery::All,
            None,
            None,
        )
        .unwrap();
    let mut total_count = 0i64;
    while let Some(item) = db.scan_next(&txn, scan).unwrap() {
        let v = item.values.unwrap();
        total_count += v[1].as_int().unwrap();
        assert!(
            v[2].as_float().unwrap() < 2000.0,
            "rolled-back 1000.0 deltas absent"
        );
    }
    db.commit(&txn).unwrap();
    assert_eq!(total_count, 60);
}

#[test]
fn transaction_ids_never_repeat_across_restarts() {
    // The id allocator resumes past the highest txn id recorded in the
    // durable log. Read-only transactions append nothing (DESIGN.md §6:
    // lazy Begin means they leave no trace, keeping reopen a pure read),
    // so the never-repeat guarantee is scoped to transactions that
    // logged — the only ones recovery can ever encounter. The probe
    // transaction therefore writes a row before committing.
    let (env, db) = fresh();
    db.execute_sql("CREATE TABLE t (x INT)").unwrap();
    let rd = db.catalog().get_by_name("t").unwrap();
    let last_before = {
        let t = db.begin();
        let id = t.id();
        db.insert(&t, rd.id, Record::new(vec![Value::Int(1)]))
            .unwrap();
        db.commit(&t).unwrap();
        id
    };
    drop(db);
    let db = reopen(&env);
    let t = db.begin();
    assert!(t.id() > last_before, "restart continues the id sequence");
    db.commit(&t).unwrap();
}
