//! E12: the common lock-based concurrency controller coordinating
//! extensions across threads — serializable money transfers, deadlock
//! detection with victim abort, and concurrent readers/writers through
//! different access paths.

// Examples and integration-test harnesses are exempt from the runtime
// panic discipline: failures here should abort loudly.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use starburst_dmx::prelude::*;

fn open_db() -> Arc<Database> {
    starburst_dmx::open_default().unwrap()
}

/// Concurrent transfers between accounts preserve the total (atomicity +
/// isolation across threads, with deadlock victims retried).
#[test]
fn concurrent_transfers_preserve_invariant() {
    let db = open_db();
    db.execute_sql("CREATE TABLE acct (id INT NOT NULL, bal INT NOT NULL)")
        .unwrap();
    db.execute_sql("CREATE UNIQUE INDEX acct_pk ON acct (id)")
        .unwrap();
    const ACCOUNTS: i64 = 8;
    const START: i64 = 1000;
    for i in 0..ACCOUNTS {
        db.execute_sql(&format!("INSERT INTO acct VALUES ({i}, {START})"))
            .unwrap();
    }
    let deadlocks = Arc::new(AtomicU32::new(0));
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let db = db.clone();
            let deadlocks = deadlocks.clone();
            s.spawn(move || {
                let sess = Session::new(db);
                let mut seed = 0x9E3779B97F4A7C15u64.wrapping_mul(t + 1);
                let mut rng = move || {
                    seed ^= seed << 13;
                    seed ^= seed >> 7;
                    seed ^= seed << 17;
                    seed
                };
                let mut done = 0;
                while done < 30 {
                    let from = (rng() % ACCOUNTS as u64) as i64;
                    let to = (rng() % ACCOUNTS as u64) as i64;
                    if from == to {
                        continue;
                    }
                    let amount = (rng() % 50) as i64;
                    sess.execute("BEGIN").unwrap();
                    let r = sess
                        .execute(&format!(
                            "UPDATE acct SET bal = bal - {amount} WHERE id = {from}"
                        ))
                        .and_then(|_| {
                            sess.execute(&format!(
                                "UPDATE acct SET bal = bal + {amount} WHERE id = {to}"
                            ))
                        })
                        .and_then(|_| sess.execute("COMMIT"));
                    match r {
                        Ok(_) => done += 1,
                        Err(DmxError::Deadlock { .. }) | Err(DmxError::LockTimeout) => {
                            // victim: the session already rolled back
                            deadlocks.fetch_add(1, Ordering::Relaxed);
                            if sess.in_transaction() {
                                let _ = sess.execute("ROLLBACK");
                            }
                        }
                        Err(e) => panic!("unexpected error: {e}"),
                    }
                }
            });
        }
    });
    let total = db.query_sql("SELECT SUM(bal) FROM acct").unwrap()[0][0]
        .as_int()
        .unwrap();
    assert_eq!(
        total,
        ACCOUNTS * START,
        "money conserved across {} deadlocks",
        deadlocks.load(Ordering::Relaxed)
    );
    assert_eq!(db.active_txns(), 0, "no leaked transactions");
}

/// A forced deadlock: two transactions locking two records in opposite
/// orders. The system-wide detector aborts the younger; the survivor
/// commits.
#[test]
fn deadlock_detected_and_resolved() {
    let db = open_db();
    db.execute_sql("CREATE TABLE t (id INT NOT NULL, v INT)")
        .unwrap();
    db.execute_sql("INSERT INTO t VALUES (1, 0), (2, 0)")
        .unwrap();

    let barrier = Arc::new(std::sync::Barrier::new(2));
    let outcomes = Arc::new(dmx_types::sync::Mutex::new(Vec::new()));
    std::thread::scope(|s| {
        for (first, second) in [(1, 2), (2, 1)] {
            let db = db.clone();
            let barrier = barrier.clone();
            let outcomes = outcomes.clone();
            s.spawn(move || {
                let sess = Session::new(db);
                sess.execute("BEGIN").unwrap();
                sess.execute(&format!("UPDATE t SET v = v + 1 WHERE id = {first}"))
                    .unwrap();
                barrier.wait();
                let r = sess
                    .execute(&format!("UPDATE t SET v = v + 1 WHERE id = {second}"))
                    .and_then(|_| sess.execute("COMMIT"));
                outcomes.lock().push(r.is_ok());
                if sess.in_transaction() {
                    let _ = sess.execute("ROLLBACK");
                }
            });
        }
    });
    let outcomes = outcomes.lock().clone();
    assert_eq!(outcomes.len(), 2);
    assert!(
        outcomes.iter().filter(|ok| **ok).count() >= 1,
        "at least one transaction commits: {outcomes:?}"
    );
    // whatever happened, the database is consistent and unlocked
    let rows = db.query_sql("SELECT SUM(v) FROM t").unwrap();
    let committed = outcomes.iter().filter(|ok| **ok).count() as i64;
    assert_eq!(rows[0][0].as_int().unwrap(), committed * 2);
}

/// Group commit (DESIGN.md §6): commit forces only the log, and the
/// force batches across concurrent committers — whoever wins the flush
/// lock carries every record appended so far, and the others take the
/// free ride (no force of their own). With real overlap the number of
/// physical forces must therefore come out strictly below the number of
/// committed transactions.
#[test]
fn group_commit_batches_forces_across_committers() {
    const COMMITTERS: u64 = 8;
    const TXNS_PER: u64 = 25;
    const ROWS_PER_TXN: u64 = 4;
    let db = open_db();
    db.execute_sql("CREATE TABLE t (id INT NOT NULL, v INT NOT NULL)")
        .unwrap();
    let rd = db.catalog().get_by_name("t").unwrap();
    let forces_before = db.metrics_snapshot().counter("wal.forces");
    std::thread::scope(|s| {
        for w in 0..COMMITTERS {
            let db = db.clone();
            let rd = rd.clone();
            s.spawn(move || {
                for i in 0..TXNS_PER {
                    db.with_txn(|txn| {
                        for r in 0..ROWS_PER_TXN {
                            let id = ((w * TXNS_PER + i) * ROWS_PER_TXN + r) as i64;
                            db.insert(
                                txn,
                                rd.id,
                                Record::new(vec![Value::Int(id), Value::Int(w as i64)]),
                            )?;
                        }
                        Ok(())
                    })
                    .unwrap();
                }
            });
        }
    });
    let metrics = db.metrics_snapshot();
    let commits = COMMITTERS * TXNS_PER;
    let forces = metrics.counter("wal.forces") - forces_before;
    let n = db.query_sql("SELECT COUNT(*) FROM t").unwrap()[0][0]
        .as_int()
        .unwrap();
    assert_eq!(n as u64, commits * ROWS_PER_TXN, "every commit visible");
    assert!(
        forces < commits,
        "{forces} log forces for {commits} commits — group commit never batched"
    );
}

/// The group-commit durability contract under crashes: a commit is
/// acknowledged (returns `Ok`) only after the batch force that covered
/// its commit record succeeded, so a crash at *any* I/O index — in
/// particular between a batch force and the acknowledgment of the
/// committers riding it — never loses an acknowledged commit.
#[test]
fn crash_between_batch_force_and_ack_keeps_acknowledged_commits() {
    const COMMITTERS: u64 = 4;
    const TXNS_PER: u64 = 20;

    // One committer run against `db`; records each acknowledged row id.
    // Threads stop at the first error (the injected crash).
    fn drive(db: &Arc<Database>, acked: &dmx_types::sync::Mutex<Vec<i64>>) {
        let rd = match db.catalog().get_by_name("t") {
            Ok(rd) => rd,
            Err(_) => return,
        };
        std::thread::scope(|s| {
            for w in 0..COMMITTERS {
                let db = db.clone();
                let rd = rd.clone();
                s.spawn(move || {
                    for i in 0..TXNS_PER {
                        let id = (w * TXNS_PER + i) as i64;
                        let r = db.with_txn(|txn| {
                            db.insert(txn, rd.id, Record::new(vec![Value::Int(id)]))
                        });
                        match r {
                            Ok(_) => acked.lock().push(id),
                            Err(_) => return, // crashed: all later I/O fails too
                        }
                    }
                });
            }
        });
    }

    // Pass 1: healthy run to size the crash window.
    let (env, injector) = DatabaseEnv::fresh_with_plan(FaultPlan::new(0x6C0C));
    let db = starburst_dmx::open_env(env.clone(), DatabaseConfig::default()).unwrap();
    db.execute_sql("CREATE TABLE t (id INT NOT NULL)").unwrap();
    let acked = dmx_types::sync::Mutex::new(Vec::new());
    drive(&db, &acked);
    drop(db);
    let total = injector.ops();
    assert_eq!(
        acked.lock().len() as u64,
        COMMITTERS * TXNS_PER,
        "healthy pass must acknowledge everything"
    );

    // Crash at several points inside the concurrent commit window. The
    // interleaving is not deterministic — which ids get acknowledged
    // varies — but the contract must hold for whatever set was acked.
    for k in [total / 4, total / 2, (3 * total) / 4] {
        let (env, injector) = DatabaseEnv::fresh_with_plan(FaultPlan::new(0x6C0C).crash_at(k));
        let acked = dmx_types::sync::Mutex::new(Vec::new());
        if let Ok(db) = starburst_dmx::open_env(env.clone(), DatabaseConfig::default()) {
            if db.execute_sql("CREATE TABLE t (id INT NOT NULL)").is_ok() {
                drive(&db, &acked);
            }
            drop(db);
        }
        let acked = acked.lock().clone();
        injector.clear();
        let db = starburst_dmx::open_env(env, DatabaseConfig::default())
            .unwrap_or_else(|e| panic!("crash at {k}/{total}: recovery failed: {e}"));
        let survivors: std::collections::BTreeSet<i64> = match db.query_sql("SELECT id FROM t") {
            Ok(rows) => rows.iter().map(|r| r[0].as_int().unwrap()).collect(),
            Err(DmxError::NotFound(_)) => {
                assert!(
                    acked.is_empty(),
                    "crash at {k}: table lost with {} acked commits",
                    acked.len()
                );
                continue;
            }
            Err(e) => panic!("crash at {k}: {e}"),
        };
        for id in &acked {
            assert!(
                survivors.contains(id),
                "crash at {k}/{total}: acknowledged commit {id} lost \
                 ({} acked, {} survived)",
                acked.len(),
                survivors.len()
            );
        }
    }
}

/// Readers traverse indexes while writers mutate — scans stay consistent
/// (record-level S locks block in-flight writers' records).
#[test]
fn readers_and_writers_through_indexes() {
    let db = open_db();
    db.execute_sql("CREATE TABLE t (id INT NOT NULL, grp INT NOT NULL)")
        .unwrap();
    db.execute_sql("CREATE INDEX t_grp ON t USING btree (grp)")
        .unwrap();
    for i in 0..200 {
        db.execute_sql(&format!("INSERT INTO t VALUES ({i}, {})", i % 4))
            .unwrap();
    }
    std::thread::scope(|s| {
        // writers: move records between groups, always in pairs
        for w in 0..2u64 {
            let db = db.clone();
            s.spawn(move || {
                let sess = Session::new(db);
                for i in 0..25 {
                    let id = (w * 100 + i) % 200;
                    sess.execute(&format!("UPDATE t SET grp = (grp + 1) % 4 WHERE id = {id}"))
                        .unwrap();
                }
            });
        }
        // readers: group counts must always total 200
        for _ in 0..2 {
            let db = db.clone();
            s.spawn(move || {
                let sess = Session::new(db);
                for _ in 0..20 {
                    let rows = sess.execute("SELECT COUNT(*) FROM t").unwrap();
                    assert_eq!(rows.rows[0][0], Value::Int(200));
                }
            });
        }
    });
    // final index consistency: counting through the index = through the heap
    let via_index = db
        .query_sql("SELECT COUNT(*) FROM t WHERE grp = 0")
        .unwrap()[0][0]
        .as_int()
        .unwrap();
    let rows = db.query_sql("SELECT grp FROM t").unwrap();
    let brute = rows.iter().filter(|r| r[0] == Value::Int(0)).count() as i64;
    assert_eq!(via_index, brute);
}
