//! Snapshot-scan visibility and key-range locking.
//!
//! The covered-scan staleness window (EXPERIMENTS.md, formerly a
//! "residual known gap"): a covered index scan racing a concurrently
//! *aborting* updater could report the rolled-back entry's key values.
//! Read-only scans now run against the transaction's snapshot — zero
//! record locks, visibility through the version store — and writers
//! carry next-key gap locks so locking scans are phantom-fenced.

// Examples and integration-test harnesses are exempt from the runtime
// panic discipline: failures here should abort loudly.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use starburst_dmx::prelude::*;

fn open_db() -> Arc<Database> {
    starburst_dmx::open_default().unwrap()
}

/// The documented race, forced: a covered index scan runs while an
/// updater holds uncommitted index entries, and again after the updater
/// rolls back. Both reads must report committed-only data — and the
/// reader never blocks on the writer's X locks.
#[test]
fn covered_scan_ignores_in_flight_and_aborted_update() {
    let db = open_db();
    db.execute_sql("CREATE TABLE t (id INT NOT NULL, grp INT NOT NULL)")
        .unwrap();
    db.execute_sql("CREATE INDEX t_grp ON t USING btree (grp)")
        .unwrap();
    for i in 0..20 {
        db.execute_sql(&format!("INSERT INTO t VALUES ({i}, 1)"))
            .unwrap();
    }

    // The updater moves half the records to grp 2 and stays open: the
    // index now holds its uncommitted grp=2 entries, and the grp=1
    // entries for those records are gone.
    let writer = Session::new(db.clone());
    writer.execute("BEGIN").unwrap();
    writer
        .execute("UPDATE t SET grp = 2 WHERE id < 10")
        .unwrap();

    let reader = Session::new(db.clone());
    let committed = reader.execute("SELECT grp FROM t WHERE grp = 1").unwrap();
    assert_eq!(
        committed.rows.len(),
        20,
        "snapshot scan must re-derive the updater's records from their \
         committed images"
    );
    assert!(committed.rows.iter().all(|r| r[0] == Value::Int(1)));
    let dirty = reader.execute("SELECT grp FROM t WHERE grp = 2").unwrap();
    assert!(
        dirty.rows.is_empty(),
        "uncommitted index entries leaked into a covered scan: {:?}",
        dirty.rows
    );

    // The race the gap documented: the updater aborts.
    writer.execute("ROLLBACK").unwrap();

    let after = reader.execute("SELECT grp FROM t WHERE grp = 1").unwrap();
    assert_eq!(after.rows.len(), 20);
    let ghosts = reader.execute("SELECT grp FROM t WHERE grp = 2").unwrap();
    assert!(
        ghosts.rows.is_empty(),
        "rolled-back entries visible after abort: {:?}",
        ghosts.rows
    );
}

/// Snapshot scans acquire no record locks: a full storage-method scan
/// costs exactly one lock acquisition (the relation IS).
#[test]
fn snapshot_scan_takes_zero_record_locks() {
    let db = open_db();
    db.execute_sql("CREATE TABLE t (id INT NOT NULL, v INT NOT NULL)")
        .unwrap();
    for i in 0..100 {
        db.execute_sql(&format!("INSERT INTO t VALUES ({i}, {i})"))
            .unwrap();
    }
    let rd = db.catalog().get_by_name("t").unwrap();

    let txn = db.begin();
    assert!(!txn.set_snapshot_reads(true));
    let before = db.metrics_snapshot().counter("lock.acquires");
    let scan = db
        .open_scan(
            &txn,
            rd.id,
            AccessPath::StorageMethod,
            AccessQuery::All,
            None,
            None,
        )
        .unwrap();
    let mut n = 0;
    while db.scan_next(&txn, scan).unwrap().is_some() {
        n += 1;
    }
    let after = db.metrics_snapshot().counter("lock.acquires");
    db.commit(&txn).unwrap();
    assert_eq!(n, 100);
    assert_eq!(
        after - before,
        1,
        "a snapshot scan must cost exactly the relation IS lock"
    );

    // The same scan under 2PL pays per-record S locks plus gap locks.
    let txn = db.begin();
    let before = db.metrics_snapshot().counter("lock.acquires");
    let scan = db
        .open_scan(
            &txn,
            rd.id,
            AccessPath::StorageMethod,
            AccessQuery::All,
            None,
            None,
        )
        .unwrap();
    while db.scan_next(&txn, scan).unwrap().is_some() {}
    let after = db.metrics_snapshot().counter("lock.acquires");
    db.commit(&txn).unwrap();
    assert!(
        after - before > 100,
        "locking scan acquired only {} locks",
        after - before
    );
}

/// Reads inside one transaction are repeatable: a concurrent committed
/// update is invisible to a snapshot captured before it.
#[test]
fn snapshot_reads_are_repeatable_within_a_transaction() {
    let db = open_db();
    db.execute_sql("CREATE TABLE t (id INT NOT NULL, v INT NOT NULL)")
        .unwrap();
    for i in 0..10 {
        db.execute_sql(&format!("INSERT INTO t VALUES ({i}, 0)"))
            .unwrap();
    }

    let reader = Session::new(db.clone());
    reader.execute("BEGIN").unwrap();
    let sum = reader.execute("SELECT SUM(v) FROM t").unwrap();
    assert_eq!(sum.rows[0][0], Value::Int(0));

    // A concurrent writer commits — without blocking on the reader,
    // which holds no record locks.
    db.execute_sql("UPDATE t SET v = 5").unwrap();

    let again = reader.execute("SELECT SUM(v) FROM t").unwrap();
    assert_eq!(
        again.rows[0][0],
        Value::Int(0),
        "committed update leaked into an older snapshot"
    );
    reader.execute("COMMIT").unwrap();

    // A fresh transaction's snapshot includes the update.
    let fresh = reader.execute("SELECT SUM(v) FROM t").unwrap();
    assert_eq!(fresh.rows[0][0], Value::Int(50));
}

/// An uncommitted CREATE TABLE is invisible to other transactions
/// (DESIGN.md §6.1): reads and writes against it fail with NotFound
/// until the creator commits.
#[test]
fn uncommitted_create_table_is_invisible_to_others() {
    let db = open_db();
    let creator = Session::new(db.clone());
    creator.execute("BEGIN").unwrap();
    creator
        .execute("CREATE TABLE secret (id INT NOT NULL)")
        .unwrap();
    creator.execute("INSERT INTO secret VALUES (1)").unwrap();

    let other = Session::new(db.clone());
    for sql in ["SELECT * FROM secret", "INSERT INTO secret VALUES (2)"] {
        match other.execute(sql) {
            Err(DmxError::NotFound(_)) => {}
            other => panic!("{sql}: expected NotFound for uncommitted DDL, got {other:?}"),
        }
    }
    // The creator reads its own uncommitted table.
    let own = creator.execute("SELECT COUNT(*) FROM secret").unwrap();
    assert_eq!(own.rows[0][0], Value::Int(1));

    creator.execute("COMMIT").unwrap();
    let visible = other.execute("SELECT COUNT(*) FROM secret").unwrap();
    assert_eq!(visible.rows[0][0], Value::Int(1));
}

/// The fence lifts on abort too — and the name becomes reusable.
#[test]
fn aborted_create_table_lifts_the_ddl_fence() {
    let db = open_db();
    let creator = Session::new(db.clone());
    creator.execute("BEGIN").unwrap();
    creator
        .execute("CREATE TABLE ghost (id INT NOT NULL)")
        .unwrap();
    creator.execute("ROLLBACK").unwrap();

    let other = Session::new(db.clone());
    assert!(matches!(
        other.execute("SELECT * FROM ghost"),
        Err(DmxError::NotFound(_))
    ));
    // The rolled-back name is free for a new (committed) incarnation.
    db.execute_sql("CREATE TABLE ghost (id INT NOT NULL)")
        .unwrap();
    assert!(other.execute("SELECT * FROM ghost").is_ok());
}

/// Threaded DDL visibility: concurrent readers either get NotFound or
/// the fully-committed table — never a half-created one.
#[test]
fn concurrent_readers_never_see_half_created_table() {
    let db = open_db();
    let done = AtomicBool::new(false);
    std::thread::scope(|s| {
        for _ in 0..2 {
            let db = db.clone();
            let done = &done;
            s.spawn(move || {
                let sess = Session::new(db);
                while !done.load(Ordering::Acquire) {
                    match sess.execute("SELECT COUNT(*) FROM staged") {
                        // Visible ⇒ committed ⇒ the backfilled rows are
                        // all there.
                        Ok(r) => assert_eq!(r.rows[0][0], Value::Int(8)),
                        Err(DmxError::NotFound(_)) => {}
                        Err(e) => panic!("reader: {e}"),
                    }
                }
            });
        }
        let sess = Session::new(db.clone());
        sess.execute("BEGIN").unwrap();
        sess.execute("CREATE TABLE staged (id INT NOT NULL)")
            .unwrap();
        for i in 0..8 {
            sess.execute(&format!("INSERT INTO staged VALUES ({i})"))
                .unwrap();
        }
        sess.execute("COMMIT").unwrap();
        done.store(true, Ordering::Release);
    });
}

/// Next-key gap locks fence phantoms: an insert into a range a locking
/// scan traversed blocks until the scanner commits.
#[test]
fn gap_locks_block_phantom_insert_until_scanner_commits() {
    let db = open_db();
    db.execute_sql("CREATE TABLE t (id INT NOT NULL, v INT NOT NULL) USING btree WITH (key=id)")
        .unwrap();
    for i in 0..10 {
        db.execute_sql(&format!("INSERT INTO t VALUES ({i}, 0)"))
            .unwrap();
    }

    // The scanner's UPDATE runs a locking storage-method scan: S gap
    // locks across every interval it traverses, held to commit.
    let scanner = Session::new(db.clone());
    scanner.execute("BEGIN").unwrap();
    scanner.execute("UPDATE t SET v = 1").unwrap();

    let scanner_committed = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        let db2 = db.clone();
        let flag = scanner_committed.clone();
        let inserter = s.spawn(move || {
            let sess = Session::new(db2);
            // Blocks on the EOF gap's X lock until the scanner's 2PL
            // release.
            sess.execute("INSERT INTO t VALUES (100, 9)").unwrap();
            assert!(
                flag.load(Ordering::Acquire),
                "phantom insert completed while the range scan's locks were held"
            );
        });
        std::thread::sleep(std::time::Duration::from_millis(100));
        scanner_committed.store(true, Ordering::Release);
        scanner.execute("COMMIT").unwrap();
        inserter.join().unwrap();
    });
    let n = db.query_sql("SELECT COUNT(*) FROM t").unwrap()[0][0]
        .as_int()
        .unwrap();
    assert_eq!(n, 11);
}

/// Snapshot readers ignore gap locks entirely: a read-only scan of a
/// range a writer is inserting into neither blocks nor sees the
/// uncommitted insert.
#[test]
fn snapshot_scan_neither_blocks_on_nor_sees_uncommitted_insert() {
    let db = open_db();
    db.execute_sql("CREATE TABLE t (id INT NOT NULL, v INT NOT NULL) USING btree WITH (key=id)")
        .unwrap();
    for i in 0..5 {
        db.execute_sql(&format!("INSERT INTO t VALUES ({i}, 0)"))
            .unwrap();
    }
    let writer = Session::new(db.clone());
    writer.execute("BEGIN").unwrap();
    writer.execute("INSERT INTO t VALUES (2500, 1)").unwrap();
    writer.execute("DELETE FROM t WHERE id = 0").unwrap();

    // No blocking, no dirty read, no vanished record. (Snapshot scans
    // emit version-store-recovered rows after the page-ordered stream,
    // so sort before comparing — DESIGN.md §6.2.)
    let rows = db.query_sql("SELECT id FROM t").unwrap();
    let mut ids: Vec<i64> = rows.iter().map(|r| r[0].as_int().unwrap()).collect();
    ids.sort_unstable();
    assert_eq!(ids, vec![0, 1, 2, 3, 4]);

    writer.execute("COMMIT").unwrap();
    let rows = db.query_sql("SELECT id FROM t").unwrap();
    let ids: Vec<i64> = rows.iter().map(|r| r[0].as_int().unwrap()).collect();
    assert_eq!(ids, vec![1, 2, 3, 4, 2500]);
}

/// A committed update that relocates an index entry *forward*, past the
/// scan position, re-exposes the same record key to the inner scan (old
/// entry surfaced before the move, new entry after). The snapshot scan
/// must emit each record once — both probes re-derive the identical
/// snapshot image, so without key dedupe the row would come back twice.
#[test]
fn snapshot_scan_never_duplicates_a_relocated_record() {
    let db = open_db();
    db.execute_sql("CREATE TABLE t (id INT NOT NULL, grp INT NOT NULL)")
        .unwrap();
    db.execute_sql("CREATE INDEX t_grp ON t USING btree (grp)")
        .unwrap();
    for i in 0..10 {
        db.execute_sql(&format!("INSERT INTO t VALUES ({i}, {i})"))
            .unwrap();
    }
    let rd = db.catalog().get_by_name("t").unwrap();
    let (att, inst) = rd.find_attachment("t_grp").unwrap();

    let txn = db.begin();
    assert!(!txn.set_snapshot_reads(true));
    let scan = db
        .open_scan(
            &txn,
            rd.id,
            AccessPath::Attachment(att, inst.instance),
            AccessQuery::All,
            None,
            None,
        )
        .unwrap();
    // Surface the first two entries (grp 0 and 1) ...
    let mut keys = Vec::new();
    for _ in 0..2 {
        let item = db.scan_next(&txn, scan).unwrap().unwrap();
        keys.push(item.key.as_bytes().to_vec());
    }
    // ... then a concurrent committed update moves the already-surfaced
    // record's entry to the far end of the index, ahead of the scan.
    db.execute_sql("UPDATE t SET grp = 100 WHERE id = 0")
        .unwrap();
    while let Some(item) = db.scan_next(&txn, scan).unwrap() {
        keys.push(item.key.as_bytes().to_vec());
    }
    db.commit(&txn).unwrap();

    let mut uniq = std::collections::HashSet::new();
    for k in &keys {
        assert!(
            uniq.insert(k.clone()),
            "snapshot scan surfaced record {k:?} twice after its index \
             entry relocated past the scan position"
        );
    }
    assert_eq!(keys.len(), 10, "every committed record exactly once");
}
