//! Figure 2 / F2: the generic data management interfaces are complete
//! enough that a **new extension written entirely outside the library**
//! plugs in through the public API alone — the architecture's headline
//! claim ("the key to supporting data management extensions is to define
//! generic abstractions for relation storage and access, and to view
//! extensions as alternative implementations of the generic
//! abstractions").
//!
//! We implement, from scratch in this test file:
//!  * `vecstore` — a storage method keeping records in an in-memory Vec
//!    (with logical undo, scans, cost estimation, DDL attribute
//!    validation), and
//!  * `audit_count` — an attachment counting modifications per relation,
//!    vetoing when a quota is exceeded,
//!
//! then drive them through DDL, DML, SQL, veto rollback and abort — all
//! coordinated by the common services, none of which know these types.

// Examples and integration-test harnesses are exempt from the runtime
// panic discipline: failures here should abort loudly.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use std::sync::RwLock;

use starburst_dmx::core::{
    AccessPath, Attachment, AttachmentInstance, CommonServices, Database, ExecCtx, KeyRange,
    PathChoice, RelationDescriptor, ScanItem, ScanOps, StorageMethod,
};
use starburst_dmx::expr::Expr;
use starburst_dmx::prelude::*;
use starburst_dmx::wal::ExtKind;

// ----------------------------------------------------------------------
// the storage method
// ----------------------------------------------------------------------

type VecTable = Arc<RwLock<Vec<Option<Record>>>>;

#[derive(Default)]
struct VecStore {
    tables: RwLock<HashMap<u64, VecTable>>,
    next: AtomicU64,
}

fn token(desc: &[u8]) -> u64 {
    u64::from_le_bytes(desc[..8].try_into().unwrap())
}

fn key_of(idx: usize) -> RecordKey {
    RecordKey::new((idx as u64).to_be_bytes().to_vec())
}

fn idx_of(key: &RecordKey) -> usize {
    u64::from_be_bytes(key.as_bytes().try_into().unwrap()) as usize
}

const OP_INS: u8 = 1;
const OP_DEL: u8 = 2;
const OP_UPD: u8 = 3;

impl VecStore {
    fn table(&self, rd: &RelationDescriptor) -> Arc<RwLock<Vec<Option<Record>>>> {
        self.tables.read().unwrap()[&token(&rd.sm_desc)].clone()
    }
}

impl StorageMethod for VecStore {
    fn name(&self) -> &str {
        "vecstore"
    }
    fn is_recoverable(&self) -> bool {
        false
    }
    fn validate_params(&self, params: &AttrList, _schema: &Schema) -> Result<()> {
        params.check_allowed(&["capacity"], "vecstore")
    }
    fn create_instance(
        &self,
        _ctx: &ExecCtx<'_>,
        _rel: RelationId,
        _schema: &Schema,
        params: &AttrList,
    ) -> Result<Vec<u8>> {
        let cap = params.get_u64("capacity", 16)? as usize;
        let t = self.next.fetch_add(1, Ordering::Relaxed) + 1;
        self.tables
            .write()
            .unwrap()
            .insert(t, Arc::new(RwLock::new(Vec::with_capacity(cap))));
        Ok(t.to_le_bytes().to_vec())
    }
    fn destroy_instance(&self, _s: &Arc<CommonServices>, desc: &[u8]) -> Result<()> {
        self.tables.write().unwrap().remove(&token(desc));
        Ok(())
    }
    fn insert(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        record: &Record,
    ) -> Result<RecordKey> {
        let t = self.table(rd);
        let mut rows = t.write().unwrap();
        rows.push(Some(record.clone()));
        let key = key_of(rows.len() - 1);
        ctx.log_ext_op(
            ExtKind::Storage(rd.sm),
            rd.id,
            OP_INS,
            key.as_bytes().to_vec(),
        );
        Ok(key)
    }
    fn update(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        key: &RecordKey,
        new: &Record,
    ) -> Result<(Record, RecordKey)> {
        let t = self.table(rd);
        let mut rows = t.write().unwrap();
        let slot = rows
            .get_mut(idx_of(key))
            .and_then(|o| o.as_mut())
            .ok_or_else(|| DmxError::NotFound("vecstore record".into()))?;
        let old = slot.clone();
        *slot = new.clone();
        let mut payload = key.as_bytes().to_vec();
        payload.extend_from_slice(&old.encode());
        ctx.log_ext_op(ExtKind::Storage(rd.sm), rd.id, OP_UPD, payload);
        Ok((old, key.clone()))
    }
    fn delete(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        key: &RecordKey,
    ) -> Result<Record> {
        let t = self.table(rd);
        let mut rows = t.write().unwrap();
        let slot = rows
            .get_mut(idx_of(key))
            .ok_or_else(|| DmxError::NotFound("vecstore record".into()))?;
        let old = slot
            .take()
            .ok_or_else(|| DmxError::NotFound("vecstore record".into()))?;
        let mut payload = key.as_bytes().to_vec();
        payload.extend_from_slice(&old.encode());
        ctx.log_ext_op(ExtKind::Storage(rd.sm), rd.id, OP_DEL, payload);
        Ok(old)
    }
    fn fetch(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        key: &RecordKey,
        fields: Option<&[dmx_types::FieldId]>,
        pred: Option<&Expr>,
    ) -> Result<Option<Vec<Value>>> {
        let t = self.table(rd);
        let rows = t.read().unwrap();
        let Some(Some(rec)) = rows.get(idx_of(key)) else {
            return Ok(None);
        };
        if let Some(p) = pred {
            if !ctx.eval_predicate(p, &rec.values)? {
                return Ok(None);
            }
        }
        Ok(Some(match fields {
            None => rec.values.clone(),
            Some(ids) => ids
                .iter()
                .map(|&i| rec.values[i as usize].clone())
                .collect(),
        }))
    }
    fn open_scan(
        &self,
        _ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        _range: KeyRange,
        pred: Option<Expr>,
        fields: Option<Vec<dmx_types::FieldId>>,
    ) -> Result<Box<dyn ScanOps>> {
        Ok(Box::new(VecScan {
            table: self.table(rd),
            pred,
            fields,
            next: 0,
        }))
    }
    fn estimate(&self, rd: &RelationDescriptor, preds: &[Expr]) -> PathChoice {
        let mut c = PathChoice::full_scan(AccessPath::StorageMethod, 0, rd.stats.records());
        c.applied = preds.to_vec();
        c
    }
    fn undo(
        &self,
        _s: &Arc<CommonServices>,
        rd: &RelationDescriptor,
        _lsn: dmx_types::Lsn,
        op: u8,
        payload: &[u8],
    ) -> Result<()> {
        let Some(t) = self
            .tables
            .read()
            .unwrap()
            .get(&token(&rd.sm_desc))
            .cloned()
        else {
            return Ok(());
        };
        let mut rows = t.write().unwrap();
        let idx = idx_of(&RecordKey::new(payload[..8].to_vec()));
        match op {
            OP_INS => {
                if let Some(slot) = rows.get_mut(idx) {
                    *slot = None;
                }
            }
            OP_DEL | OP_UPD => {
                let old = Record::decode(&payload[8..])?;
                while rows.len() <= idx {
                    rows.push(None);
                }
                rows[idx] = Some(old);
            }
            _ => return Err(DmxError::Corrupt("bad vecstore op".into())),
        }
        Ok(())
    }
}

struct VecScan {
    table: Arc<RwLock<Vec<Option<Record>>>>,
    pred: Option<Expr>,
    fields: Option<Vec<dmx_types::FieldId>>,
    next: usize,
}

impl ScanOps for VecScan {
    fn next(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<ScanItem>> {
        loop {
            let rec = {
                let rows = self.table.read().unwrap();
                if self.next >= rows.len() {
                    return Ok(None);
                }
                rows[self.next].clone()
            };
            let idx = self.next;
            self.next += 1;
            let Some(rec) = rec else { continue };
            if let Some(p) = &self.pred {
                if !ctx.eval_predicate(p, &rec.values)? {
                    continue;
                }
            }
            let values = match &self.fields {
                None => rec.values.clone(),
                Some(ids) => ids
                    .iter()
                    .map(|&i| rec.values[i as usize].clone())
                    .collect(),
            };
            return Ok(Some(ScanItem {
                key: key_of(idx),
                values: Some(values),
            }));
        }
    }
    fn save_position(&self) -> Vec<u8> {
        (self.next as u64).to_le_bytes().to_vec()
    }
    fn restore_position(&mut self, pos: &[u8]) -> Result<()> {
        self.next = u64::from_le_bytes(pos.try_into().unwrap()) as usize;
        Ok(())
    }
}

// ----------------------------------------------------------------------
// the attachment: per-relation modification quota
// ----------------------------------------------------------------------

#[derive(Default)]
struct QuotaGuard {
    counts: RwLock<HashMap<RelationId, u64>>,
    invocations: AtomicU64,
}

impl QuotaGuard {
    fn bump(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        insts: &[AttachmentInstance],
    ) -> Result<()> {
        self.invocations.fetch_add(1, Ordering::SeqCst);
        let quota = insts
            .iter()
            .map(|i| u64::from_le_bytes(i.desc[..8].try_into().unwrap()))
            .min()
            .unwrap_or(u64::MAX);
        let mut counts = self.counts.write().unwrap();
        let n = counts.entry(rd.id).or_insert(0);
        if *n >= quota {
            return Err(DmxError::veto("audit_count", "modification quota exceeded"));
        }
        *n += 1;
        // log so rollback restores the count
        ctx.log_ext_op(ExtKind::Attachment(find_self(rd)), rd.id, 1, Vec::new());
        Ok(())
    }
}

fn find_self(rd: &RelationDescriptor) -> dmx_types::AttTypeId {
    rd.attached_types()
        .find(|(_, insts)| !insts.is_empty())
        .map(|(t, _)| t)
        .unwrap_or_default()
}

impl Attachment for QuotaGuard {
    fn name(&self) -> &str {
        "audit_count"
    }
    fn validate_params(&self, params: &AttrList, _schema: &Schema) -> Result<()> {
        params.check_allowed(&["quota"], "audit_count")?;
        params.get_u64("quota", 0)?;
        Ok(())
    }
    fn create_instance(
        &self,
        _ctx: &ExecCtx<'_>,
        _rd: &RelationDescriptor,
        _name: &str,
        params: &AttrList,
    ) -> Result<Vec<u8>> {
        Ok(params.get_u64("quota", u64::MAX)?.to_le_bytes().to_vec())
    }
    fn destroy_instance(&self, _s: &Arc<CommonServices>, _d: &[u8]) -> Result<()> {
        Ok(())
    }
    fn on_insert(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        insts: &[AttachmentInstance],
        _key: &RecordKey,
        _new: &Record,
    ) -> Result<()> {
        self.bump(ctx, rd, insts)
    }
    fn on_update(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        insts: &[AttachmentInstance],
        _ok: &RecordKey,
        _nk: &RecordKey,
        _old: &Record,
        _new: &Record,
    ) -> Result<()> {
        self.bump(ctx, rd, insts)
    }
    fn on_delete(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        insts: &[AttachmentInstance],
        _key: &RecordKey,
        _old: &Record,
    ) -> Result<()> {
        self.bump(ctx, rd, insts)
    }
    fn undo(
        &self,
        _s: &Arc<CommonServices>,
        rd: &RelationDescriptor,
        _lsn: dmx_types::Lsn,
        _op: u8,
        _payload: &[u8],
    ) -> Result<()> {
        let mut counts = self.counts.write().unwrap();
        if let Some(n) = counts.get_mut(&rd.id) {
            *n = n.saturating_sub(1);
        }
        Ok(())
    }
}

// ----------------------------------------------------------------------

fn open_with_externals() -> (Arc<Database>, Arc<QuotaGuard>) {
    let reg = starburst_dmx::core::ExtensionRegistry::new();
    starburst_dmx::storage::register_builtin_storage(&reg).unwrap();
    starburst_dmx::attach::register_builtin_attachments(&reg).unwrap();
    // the externally-defined extensions register like any factory ones
    reg.register_storage_method(Arc::new(VecStore::default()))
        .unwrap();
    let guard = Arc::new(QuotaGuard::default());
    reg.register_attachment(guard.clone()).unwrap();
    (Database::open_fresh(reg).unwrap(), guard)
}

#[test]
fn user_defined_storage_method_speaks_full_sql() {
    let (db, _) = open_with_externals();
    db.execute_sql(
        "CREATE TABLE v (id INT NOT NULL, name STRING) USING vecstore WITH (capacity = 8)",
    )
    .unwrap();
    for i in 0..20 {
        db.execute_sql(&format!("INSERT INTO v VALUES ({i}, 'n{i}')"))
            .unwrap();
    }
    // predicates are pushed into the user-defined storage method's scan
    let rows = db
        .query_sql("SELECT name FROM v WHERE id % 2 = 0 AND id < 10 ORDER BY name")
        .unwrap();
    assert_eq!(rows.len(), 5);
    db.execute_sql("UPDATE v SET name = 'even' WHERE id % 2 = 0")
        .unwrap();
    db.execute_sql("DELETE FROM v WHERE id >= 10").unwrap();
    assert_eq!(
        db.query_sql("SELECT COUNT(*) FROM v WHERE name = 'even'")
            .unwrap()[0][0],
        Value::Int(5)
    );
    // bad DDL attribute rejected by the extension's validate_params
    assert!(db
        .execute_sql("CREATE TABLE w (x INT) USING vecstore WITH (color = red)")
        .is_err());
}

#[test]
fn user_defined_storage_method_honors_rollback() {
    let (db, _) = open_with_externals();
    db.execute_sql("CREATE TABLE v (id INT NOT NULL) USING vecstore")
        .unwrap();
    db.execute_sql("INSERT INTO v VALUES (1)").unwrap();
    let sess = Session::new(db.clone());
    sess.execute("BEGIN").unwrap();
    sess.execute("INSERT INTO v VALUES (2)").unwrap();
    sess.execute("UPDATE v SET id = 99 WHERE id = 1").unwrap();
    sess.execute("SAVEPOINT sp").unwrap();
    sess.execute("DELETE FROM v").unwrap();
    sess.execute("ROLLBACK TO SAVEPOINT sp").unwrap();
    assert_eq!(
        sess.execute("SELECT COUNT(*) FROM v").unwrap().rows[0][0],
        Value::Int(2),
        "partial rollback drove the external extension's undo"
    );
    sess.execute("ROLLBACK").unwrap();
    let rows = db.query_sql("SELECT id FROM v").unwrap();
    assert_eq!(rows, vec![vec![Value::Int(1)]], "full rollback too");
}

#[test]
fn user_defined_attachment_vetoes_and_counts_once_per_modification() {
    let (db, guard) = open_with_externals();
    db.execute_sql("CREATE TABLE t (x INT NOT NULL)").unwrap();
    // two instances of the type; quota = min(3, 100) = 3
    db.execute_sql("CREATE ATTACHMENT g1 ON t USING audit_count WITH (quota = 3)")
        .unwrap();
    db.execute_sql("CREATE ATTACHMENT g2 ON t USING audit_count WITH (quota = 100)")
        .unwrap();
    for i in 0..3 {
        db.execute_sql(&format!("INSERT INTO t VALUES ({i})"))
            .unwrap();
    }
    assert_eq!(
        guard.invocations.load(Ordering::SeqCst),
        3,
        "invoked once per modification, servicing both instances"
    );
    let err = db.execute_sql("INSERT INTO t VALUES (99)").unwrap_err();
    assert!(matches!(err, DmxError::Veto { .. }));
    // the vetoed insert was rolled back out of the heap
    assert_eq!(
        db.query_sql("SELECT COUNT(*) FROM t").unwrap()[0][0],
        Value::Int(3)
    );
}

#[test]
fn user_extensions_compose_with_builtins() {
    // external storage + built-in check constraint + built-in trigger
    let (db, _) = open_with_externals();
    db.execute_sql(
        "CREATE TABLE audit (event STRING NOT NULL, relation STRING NOT NULL, info STRING)",
    )
    .unwrap();
    db.execute_sql("CREATE TABLE v (id INT NOT NULL) USING vecstore")
        .unwrap();
    db.execute_sql("CREATE CONSTRAINT pos ON v CHECK (id >= 0)")
        .unwrap();
    db.execute_sql(
        "CREATE ATTACHMENT aud ON v USING trigger WITH (on = insert, action = 'audit:audit')",
    )
    .unwrap();
    db.execute_sql("INSERT INTO v VALUES (5)").unwrap();
    assert!(db.execute_sql("INSERT INTO v VALUES (-5)").is_err());
    assert_eq!(
        db.query_sql("SELECT COUNT(*) FROM audit").unwrap()[0][0],
        Value::Int(1),
        "trigger fired for the accepted insert only (vetoed one rolled back)"
    );
}
