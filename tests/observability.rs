//! Observability as an extension: the `sys.*` system relations answer
//! ordinary SQL, EXPLAIN ANALYZE reports estimated-vs-actual rows that
//! agree with a model oracle, and the flight recorder captures a
//! deterministic incident report when a relation is quarantined. All of
//! it must be a pure function of the seed: two same-seed runs render
//! byte-identical `sys.metrics` output and identical EXPLAIN ANALYZE
//! actuals.

// Examples and integration-test harnesses are exempt from the runtime
// panic discipline: failures here should abort loudly.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::collections::BTreeMap;
use std::sync::Arc;

use starburst_dmx::prelude::*;
use starburst_dmx::types::testrng::TestRng;

const SEED: u64 = 0x0B5E_7AB1_E0B5_E55E;
const ROWS: usize = 80;

/// Builds a database with a seeded `emp` table (unique btree index on
/// `id`) and returns the model of its rows.
fn seeded_db(seed: u64) -> (Arc<Database>, BTreeMap<i64, i64>) {
    let db = starburst_dmx::open_default().unwrap();
    db.execute_sql("CREATE TABLE emp (id INT NOT NULL, name STRING NOT NULL, dept INT NOT NULL)")
        .unwrap();
    db.execute_sql("CREATE UNIQUE INDEX emp_pk ON emp (id)")
        .unwrap();
    let mut rng = TestRng::new(seed);
    let mut model = BTreeMap::new();
    for id in 0..ROWS as i64 {
        let dept = rng.range_i64(0, 8);
        db.execute_sql(&format!("INSERT INTO emp VALUES ({id}, 'e{id}', {dept})"))
            .unwrap();
        model.insert(id, dept);
    }
    (db, model)
}

/// Renders a query result to one canonical string (stable row/value
/// formatting, one row per line).
fn render(rows: &[Vec<Value>]) -> String {
    let mut out = String::new();
    for row in rows {
        for (i, v) in row.iter().enumerate() {
            if i > 0 {
                out.push('|');
            }
            out.push_str(&format!("{v:?}"));
        }
        out.push('\n');
    }
    out
}

#[test]
fn sys_relations_answer_ordinary_sql() {
    let (db, _model) = seeded_db(SEED);

    // sys.metrics: live counters through the ordinary SQL path,
    // including WHERE pushdown.
    let metrics = db.execute_sql("SELECT * FROM sys.metrics").unwrap();
    assert_eq!(metrics.columns, vec!["name", "kind", "value"]);
    let inserted = db
        .query_sql("SELECT value FROM sys.metrics WHERE name = 'dml.inserts'")
        .unwrap();
    assert_eq!(inserted.len(), 1);
    assert!(inserted[0][0].as_int().unwrap() >= ROWS as i64);

    // sys.relations: catalog + stats + quarantine flag; emp is healthy.
    let emp = db
        .query_sql(
            "SELECT storage_method, records, quarantined FROM sys.relations WHERE name = 'emp'",
        )
        .unwrap();
    assert_eq!(emp.len(), 1);
    assert_eq!(emp[0][0], Value::Str("heap".into()));
    assert_eq!(emp[0][1], Value::Int(ROWS as i64));
    assert_eq!(emp[0][2], Value::Null);
    // the sys relations themselves appear, stored by the system method
    let sys_rows = db
        .query_sql("SELECT name FROM sys.relations WHERE storage_method = 'system'")
        .unwrap();
    assert!(sys_rows.len() >= 8, "all sys.* relations are published");

    // sys.attachments: the unique index instance shows up.
    let atts = db
        .query_sql("SELECT type, name FROM sys.attachments WHERE relation = 'emp'")
        .unwrap();
    assert!(atts
        .iter()
        .any(|r| r[1] == Value::Str("emp_pk".into()) && r[0] == Value::Str("btree".into())));

    // sys.locks: the scanning transaction's own locks are visible.
    let locks = db.execute_sql("SELECT * FROM sys.locks").unwrap();
    assert_eq!(locks.columns, vec!["name", "txn", "mode", "state"]);
    assert!(
        !locks.rows.is_empty(),
        "the sys.locks scan itself holds locks"
    );
    assert!(locks
        .rows
        .iter()
        .all(|r| r[3] == Value::Str("held".into()) || r[3] == Value::Str("waiting".into())));

    // sys.plan_cache: a compiled query is listed as valid.
    db.query_sql("SELECT dept FROM emp WHERE id = 3").unwrap();
    let cache = db
        .query_sql(
            "SELECT valid FROM sys.plan_cache WHERE sql = 'SELECT dept FROM emp WHERE id = 3'",
        )
        .unwrap();
    assert_eq!(cache, vec![vec![Value::Bool(true)]]);

    // sys.histograms: bucket rows are well-formed where present.
    let hist = db.execute_sql("SELECT * FROM sys.histograms").unwrap();
    assert_eq!(hist.columns, vec!["name", "bucket", "upper_bound", "count"]);

    // sys.incidents: empty while healthy.
    assert!(db
        .query_sql("SELECT * FROM sys.incidents")
        .unwrap()
        .is_empty());

    // sys.* relations are read-only: DML is rejected.
    let err = db
        .execute_sql("INSERT INTO sys.metrics VALUES ('x', 'counter', 1)")
        .expect_err("system relations reject writes");
    assert!(matches!(err, DmxError::Unsupported(_)), "got {err}");
}

#[test]
fn sys_trace_drains_events_and_reports_eviction() {
    let (db, _model) = seeded_db(SEED);
    // Under steal/no-force (DESIGN.md §6) a commit emits a single log
    // `force` event instead of the old per-page flush cascade, so the
    // seeding workload alone no longer overflows the ring. Drive enough
    // additional commits to push the event count past the ring capacity
    // so the first drain starts past zero and the eviction counter is
    // visible.
    for i in 0..300i64 {
        db.execute_sql(&format!(
            "UPDATE emp SET dept = {} WHERE id = {}",
            i % 8,
            i % 80
        ))
        .unwrap();
    }
    let trace = db.execute_sql("SELECT * FROM sys.trace").unwrap();
    assert_eq!(
        trace.columns,
        vec!["seq", "layer", "op", "target", "detail"]
    );
    assert!(!trace.rows.is_empty(), "layers emit trace events");
    let first_seq = trace.rows[0][0].as_int().unwrap();
    assert!(
        first_seq > 0,
        "truncation is visible as a nonzero first seq"
    );
    let evicted = db
        .query_sql("SELECT value FROM sys.metrics WHERE name = 'trace.evicted'")
        .unwrap();
    assert!(evicted[0][0].as_int().unwrap() > 0);
    // Index accesses leave "att probe" events in the trace. `emp` is
    // small enough that the optimizer prefers the full scan, so probe a
    // table large enough for the unique index to win the cost race.
    db.execute_sql("CREATE TABLE big (id INT NOT NULL, name STRING NOT NULL)")
        .unwrap();
    db.execute_sql("CREATE UNIQUE INDEX big_pk ON big (id)")
        .unwrap();
    let rd = db.catalog().get_by_name("big").unwrap();
    db.with_txn(|txn| {
        for i in 0..2000i64 {
            db.insert(
                txn,
                rd.id,
                Record::new(vec![Value::Int(i), Value::Str(format!("e{i}"))]),
            )?;
        }
        Ok(())
    })
    .unwrap();
    let plan = db
        .execute_sql("EXPLAIN SELECT name FROM big WHERE id = 7")
        .unwrap();
    assert!(
        render(&plan.rows).contains("attachment"),
        "index path chosen: {}",
        render(&plan.rows)
    );
    db.query_sql("SELECT name FROM big WHERE id = 7").unwrap();
    let att_events = db
        .query_sql("SELECT op FROM sys.trace WHERE layer = 'att'")
        .unwrap();
    assert!(att_events
        .iter()
        .any(|r| r[0] == Value::Str("probe".into())));
}

#[test]
fn sys_metrics_output_is_byte_identical_across_same_seed_runs() {
    let render_run = || {
        let (db, _) = seeded_db(SEED);
        // mixed workload: probes, full scans, a cache hit, DML
        db.query_sql("SELECT name FROM emp WHERE id = 11").unwrap();
        db.query_sql("SELECT name FROM emp WHERE id = 11").unwrap();
        db.query_sql("SELECT COUNT(*) FROM emp WHERE dept = 3")
            .unwrap();
        db.execute_sql("UPDATE emp SET dept = 9 WHERE id = 5")
            .unwrap();
        render(&db.query_sql("SELECT * FROM sys.metrics").unwrap())
    };
    let a = render_run();
    let b = render_run();
    assert!(!a.is_empty());
    assert_eq!(a, b, "sys.metrics must be a pure function of the seed");
}

#[test]
fn explain_analyze_actuals_match_the_model_oracle() {
    let (db, model) = seeded_db(SEED);
    let expected = model.values().filter(|&&d| d == 3).count() as i64;

    let run = |db: &Arc<Database>| {
        db.execute_sql("EXPLAIN ANALYZE SELECT name FROM emp WHERE dept = 3")
            .unwrap()
    };
    let r = run(&db);
    assert_eq!(r.columns, vec!["plan", "estimated", "actual"]);
    // The access node reports estimated and actual rows; the actual
    // count agrees with the model oracle.
    let access = r
        .rows
        .iter()
        .find(|row| matches!(&row[0], Value::Str(s) if s.contains("Access emp")))
        .expect("access node present");
    assert!(matches!(access[1], Value::Int(_)), "estimate rendered");
    assert_eq!(access[2], Value::Int(expected), "actual matches oracle");
    // The root (Project) row count equals the query's own result size.
    let project = r
        .rows
        .iter()
        .find(|row| matches!(&row[0], Value::Str(s) if s.starts_with("Project")))
        .expect("project node present");
    assert_eq!(project[2], Value::Int(expected));
    // Oracle cross-check through the ordinary execution path.
    let direct = db.query_sql("SELECT name FROM emp WHERE dept = 3").unwrap();
    assert_eq!(direct.len() as i64, expected);

    // Estimation error was recorded.
    let mis = db
        .query_sql("SELECT value FROM sys.metrics WHERE name = 'planner.misestimate' AND kind = 'histogram_count'")
        .unwrap();
    assert!(mis[0][0].as_int().unwrap() >= 1);

    // Same seed, fresh database: identical actuals, byte for byte.
    let (db2, _) = seeded_db(SEED);
    assert_eq!(render(&r.rows), render(&run(&db2).rows));
}

#[test]
fn explain_describes_dml_pipelines_without_executing() {
    let (db, _model) = seeded_db(SEED);
    db.execute_sql("CREATE CONSTRAINT dept_pos ON emp CHECK (dept >= 0)")
        .unwrap();
    let before = db.query_sql("SELECT COUNT(*) FROM emp").unwrap();

    let ins = db
        .execute_sql("EXPLAIN INSERT INTO emp VALUES (999, 'x', 1)")
        .unwrap();
    let text = render(&ins.rows);
    assert!(text.contains("Insert into emp via heap"), "{text}");
    assert!(text.contains("attachment btree 'emp_pk'"), "{text}");
    assert!(text.contains("attachment check 'dept_pos'"), "{text}");

    let upd = db
        .execute_sql("EXPLAIN UPDATE emp SET dept = 2 WHERE id = 1")
        .unwrap();
    let text = render(&upd.rows);
    assert!(text.contains("Update emp via heap"), "{text}");
    assert!(
        text.contains("collect targets via storage-method scan"),
        "{text}"
    );

    let del = db
        .execute_sql("EXPLAIN DELETE FROM emp WHERE id = 1")
        .unwrap();
    assert!(render(&del.rows).contains("Delete from emp via heap"));

    // Nothing executed: row count unchanged.
    let after = db.query_sql("SELECT COUNT(*) FROM emp").unwrap();
    assert_eq!(before, after);
}

#[test]
fn flight_recorder_captures_quarantine_incident() {
    let capture = |seed: u64| {
        let (env, injector) = DatabaseEnv::fresh_with_plan(FaultPlan::new(seed));
        let db = starburst_dmx::open_env(env.clone(), DatabaseConfig::default()).unwrap();
        db.execute_sql("CREATE TABLE victim (id INT NOT NULL)")
            .unwrap();
        for i in 0..5 {
            db.execute_sql(&format!("INSERT INTO victim VALUES ({i})"))
                .unwrap();
        }
        assert!(db.last_incident().is_none());
        drop(db);
        // Flip one byte under the checksum layer (file 1 = catalog,
        // file 2 = victim, in creation order).
        let pid = starburst_dmx::types::PageId::new(starburst_dmx::types::FileId(2), 0);
        let mut page = starburst_dmx::page::Page::new();
        env.disk.read_page(pid, &mut page).unwrap();
        page.raw_mut()[100] ^= 0x40;
        env.disk.write_page(pid, &page).unwrap();
        injector.clear();

        let db = starburst_dmx::open_env(env, DatabaseConfig::default()).unwrap();
        let err = db.query_sql("SELECT id FROM victim").expect_err("corrupt");
        assert!(matches!(err, DmxError::RelationQuarantined { .. }));

        // The flight recorder snapshotted the incident…
        let report = db.last_incident().expect("incident recorded");
        let victim_rel = db.catalog().get_by_name("victim").unwrap().id;
        assert_eq!(report.relation, victim_rel);
        assert!(!report.reason.is_empty());

        // …and it is queryable as a relation (numbered ring rows).
        let rows = db.execute_sql("SELECT * FROM sys.incidents").unwrap();
        assert_eq!(rows.columns, vec!["incident", "item", "value"]);
        let text = render(&rows.rows);
        assert!(text.contains("relation"), "{text}");
        assert!(text.contains("reason"), "{text}");
        (format!("{report:?}"), text)
    };
    let (report_a, rows_a) = capture(SEED);
    let (report_b, rows_b) = capture(SEED);
    assert_eq!(report_a, report_b, "incident reports are deterministic");
    assert_eq!(rows_a, rows_b);
}
