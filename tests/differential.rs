//! Differential oracle: one seeded DML stream applied to a heap-organized
//! relation, a B-tree-organized relation, and a plain in-memory
//! `BTreeMap` model. After every batch all three must agree exactly —
//! any divergence pins the bug to the storage method (or the dispatcher)
//! that drifted. Running the whole stream twice from the same seed must
//! also reproduce byte-identical oracle state *and* identical metric
//! counters: the observability layer is part of the determinism contract.

// Examples and integration-test harnesses are exempt from the runtime
// panic discipline: failures here should abort loudly.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::collections::BTreeMap;
use std::sync::Arc;

use starburst_dmx::prelude::*;
use starburst_dmx::types::testrng::TestRng;
use starburst_dmx::types::MetricsSnapshot;

const SEED: u64 = 0x0DDC_0FFE_E0DD_F00D;
const BATCHES: usize = 10;
const OPS_PER_BATCH: usize = 60;

/// The model row: everything the tables store besides the key.
type Model = BTreeMap<i64, (String, i64)>;

fn open() -> Arc<Database> {
    let db = starburst_dmx::open_default().unwrap();
    db.execute_sql("CREATE TABLE th (id INT NOT NULL, name STRING NOT NULL, dept INT NOT NULL)")
        .unwrap();
    db.execute_sql("CREATE UNIQUE INDEX th_pk ON th (id)")
        .unwrap();
    db.execute_sql(
        "CREATE TABLE tb (id INT NOT NULL, name STRING NOT NULL, dept INT NOT NULL) \
         USING btree WITH (key=id)",
    )
    .unwrap();
    db
}

/// Reads a table back in model order (sorted by id).
fn read_sorted(db: &Arc<Database>, table: &str) -> Vec<(i64, String, i64)> {
    let mut rows: Vec<(i64, String, i64)> = db
        .query_sql(&format!("SELECT id, name, dept FROM {table}"))
        .unwrap()
        .into_iter()
        .map(|r| {
            (
                r[0].as_int().unwrap(),
                match &r[1] {
                    Value::Str(s) => s.clone(),
                    other => panic!("name column came back as {other:?}"),
                },
                r[2].as_int().unwrap(),
            )
        })
        .collect();
    rows.sort();
    rows
}

fn model_rows(model: &Model) -> Vec<(i64, String, i64)> {
    model
        .iter()
        .map(|(&id, (name, dept))| (id, name.clone(), *dept))
        .collect()
}

/// Applies one seeded batch to both tables and the model.
fn apply_batch(db: &Arc<Database>, model: &mut Model, rng: &mut TestRng, next_id: &mut i64) {
    for _ in 0..OPS_PER_BATCH {
        let roll = rng.below(100);
        if roll < 50 || model.is_empty() {
            let id = *next_id;
            *next_id += 1;
            let dept = rng.range_i64(0, 10);
            for t in ["th", "tb"] {
                db.execute_sql(&format!("INSERT INTO {t} VALUES ({id}, 'r{id}', {dept})"))
                    .unwrap();
            }
            model.insert(id, (format!("r{id}"), dept));
        } else if roll < 80 {
            let keys: Vec<i64> = model.keys().copied().collect();
            let id = keys[rng.index(keys.len())];
            let dept = rng.range_i64(0, 10);
            for t in ["th", "tb"] {
                db.execute_sql(&format!("UPDATE {t} SET dept = {dept} WHERE id = {id}"))
                    .unwrap();
            }
            model.get_mut(&id).unwrap().1 = dept;
        } else {
            let keys: Vec<i64> = model.keys().copied().collect();
            let id = keys[rng.index(keys.len())];
            for t in ["th", "tb"] {
                db.execute_sql(&format!("DELETE FROM {t} WHERE id = {id}"))
                    .unwrap();
            }
            model.remove(&id);
        }
    }
}

/// Runs the full stream; returns the final oracle state and the metrics.
fn run_stream(seed: u64) -> (Vec<(i64, String, i64)>, MetricsSnapshot) {
    let db = open();
    let mut model = Model::new();
    let mut rng = TestRng::new(seed);
    let mut next_id = 0i64;
    for batch in 0..BATCHES {
        apply_batch(&db, &mut model, &mut rng, &mut next_id);
        let expected = model_rows(&model);
        let heap = read_sorted(&db, "th");
        let btree = read_sorted(&db, "tb");
        assert_eq!(
            heap, expected,
            "heap diverged from model after batch {batch}"
        );
        assert_eq!(
            btree, expected,
            "btree diverged from model after batch {batch}"
        );
    }
    (model_rows(&model), db.metrics_snapshot())
}

#[test]
fn heap_btree_and_model_agree_after_every_batch() {
    let (final_rows, metrics) = run_stream(SEED);
    assert!(!final_rows.is_empty(), "the stream must leave live rows");
    // The stream must actually have exercised all three op kinds.
    assert!(metrics.counter("dml.inserts") > 0);
    assert!(metrics.counter("dml.updates") > 0);
    assert!(metrics.counter("dml.deletes") > 0);
}

#[test]
fn same_seed_reproduces_oracle_state_and_counters() {
    let (rows_a, metrics_a) = run_stream(SEED);
    let (rows_b, metrics_b) = run_stream(SEED);
    assert_eq!(
        rows_a, rows_b,
        "oracle state must be a pure function of the seed"
    );
    assert_eq!(
        metrics_a, metrics_b,
        "metric snapshots must be a pure function of the seed"
    );
}

#[test]
fn explain_analyze_actuals_agree_with_the_oracle() {
    // EXPLAIN ANALYZE is wired through the same executor the oracle
    // exercises: for every dept the root node's actual row count must
    // equal the model's count, on both storage organizations.
    let db = open();
    let mut model = Model::new();
    let mut rng = TestRng::new(SEED);
    let mut next_id = 0i64;
    for _ in 0..3 {
        apply_batch(&db, &mut model, &mut rng, &mut next_id);
    }
    for dept in 0..10 {
        let expected = model.values().filter(|(_, d)| *d == dept).count() as i64;
        for t in ["th", "tb"] {
            let r = db
                .execute_sql(&format!(
                    "EXPLAIN ANALYZE SELECT name FROM {t} WHERE dept = {dept}"
                ))
                .unwrap();
            assert_eq!(r.columns, vec!["plan", "estimated", "actual"]);
            let project = r
                .rows
                .iter()
                .find(|row| matches!(&row[0], Value::Str(s) if s.starts_with("Project")))
                .expect("project node present");
            assert_eq!(
                project[2],
                Value::Int(expected),
                "{t} dept={dept}: EXPLAIN ANALYZE actual disagrees with the model"
            );
        }
    }
}

/// Damages the heap table's index, drives the repair pipeline, and
/// returns the post-repair contents plus the rendered `sys.repairs`
/// rows. Everything downstream of the seed must be reproducible.
fn run_repair_stream(seed: u64) -> (Vec<(i64, String, i64)>, String) {
    let (env, injector) = DatabaseEnv::fresh_with_plan(FaultPlan::new(seed));
    let db = starburst_dmx::open_env(env.clone(), DatabaseConfig::default()).unwrap();
    db.execute_sql("CREATE TABLE th (id INT NOT NULL, name STRING NOT NULL, dept INT NOT NULL)")
        .unwrap();
    db.execute_sql("CREATE UNIQUE INDEX th_pk ON th (id)")
        .unwrap();
    let mut model = Model::new();
    let mut rng = TestRng::new(seed);
    let mut next_id = 0i64;
    for _ in 0..2 {
        for _ in 0..OPS_PER_BATCH {
            let roll = rng.below(100);
            if roll < 60 || model.is_empty() {
                let id = next_id;
                next_id += 1;
                let dept = rng.range_i64(0, 10);
                db.execute_sql(&format!("INSERT INTO th VALUES ({id}, 'r{id}', {dept})"))
                    .unwrap();
                model.insert(id, (format!("r{id}"), dept));
            } else {
                let keys: Vec<i64> = model.keys().copied().collect();
                let id = keys[rng.index(keys.len())];
                db.execute_sql(&format!("DELETE FROM th WHERE id = {id}"))
                    .unwrap();
                model.remove(&id);
            }
        }
    }
    drop(db);

    // Silent rot in the index file (1 catalog, 2 heap, 3 index).
    let pid = starburst_dmx::types::PageId::new(starburst_dmx::types::FileId(3), 0);
    let mut page = starburst_dmx::page::Page::new();
    env.disk.read_page(pid, &mut page).unwrap();
    page.raw_mut()[100] ^= 0x40;
    env.disk.write_page(pid, &page).unwrap();
    injector.clear();

    let db = starburst_dmx::open_env(env, DatabaseConfig::default()).unwrap();
    let check = db.execute_sql("CHECK TABLE th").unwrap();
    assert_eq!(check.rows[0][2], Value::from("quarantined"));
    let repair = db.execute_sql("REPAIR TABLE th").unwrap();
    assert_eq!(repair.rows[0][2], Value::from("healthy"));
    let repairs = format!("{:?}", db.query_sql("SELECT * FROM sys.repairs").unwrap());
    (read_sorted(&db, "th"), repairs)
}

#[test]
fn same_seed_reproduces_repair_outcome_and_contents() {
    let (rows_a, repairs_a) = run_repair_stream(SEED);
    let (rows_b, repairs_b) = run_repair_stream(SEED);
    assert!(!rows_a.is_empty(), "the stream must leave live rows");
    assert_eq!(
        rows_a, rows_b,
        "post-repair contents must be a pure function of the seed"
    );
    assert_eq!(
        repairs_a, repairs_b,
        "sys.repairs rows must be byte-identical run to run"
    );
}

#[test]
fn repaired_table_agrees_with_the_model() {
    // Rebuild the model alongside a third run: repair must restore
    // exactly the committed state, record for record.
    let (rows, _) = run_repair_stream(SEED);
    let mut model = Model::new();
    let mut rng = TestRng::new(SEED);
    let mut next_id = 0i64;
    for _ in 0..2 {
        for _ in 0..OPS_PER_BATCH {
            let roll = rng.below(100);
            if roll < 60 || model.is_empty() {
                let id = next_id;
                next_id += 1;
                let dept = rng.range_i64(0, 10);
                model.insert(id, (format!("r{id}"), dept));
            } else {
                let keys: Vec<i64> = model.keys().copied().collect();
                model.remove(&keys[rng.index(keys.len())]);
            }
        }
    }
    assert_eq!(rows, model_rows(&model), "repair drifted from the model");
}

#[test]
fn different_seeds_diverge() {
    // A sanity check that the stream actually depends on the seed (i.e.
    // the determinism test above is not vacuous).
    let (rows_a, _) = run_stream(SEED);
    let (rows_b, _) = run_stream(SEED ^ 1);
    assert_ne!(
        rows_a, rows_b,
        "distinct seeds should produce distinct streams"
    );
}
