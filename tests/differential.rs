//! Differential oracle: one seeded DML stream applied to a heap-organized
//! relation, a B-tree-organized relation, and a plain in-memory
//! `BTreeMap` model. After every batch all three must agree exactly —
//! any divergence pins the bug to the storage method (or the dispatcher)
//! that drifted. Running the whole stream twice from the same seed must
//! also reproduce byte-identical oracle state *and* identical metric
//! counters: the observability layer is part of the determinism contract.

// Examples and integration-test harnesses are exempt from the runtime
// panic discipline: failures here should abort loudly.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::collections::BTreeMap;
use std::sync::Arc;

use starburst_dmx::prelude::*;
use starburst_dmx::types::testrng::TestRng;
use starburst_dmx::types::MetricsSnapshot;

const SEED: u64 = 0x0DDC_0FFE_E0DD_F00D;
const BATCHES: usize = 10;
const OPS_PER_BATCH: usize = 60;

/// The model row: everything the tables store besides the key.
type Model = BTreeMap<i64, (String, i64)>;

fn open() -> Arc<Database> {
    let db = starburst_dmx::open_default().unwrap();
    db.execute_sql("CREATE TABLE th (id INT NOT NULL, name STRING NOT NULL, dept INT NOT NULL)")
        .unwrap();
    db.execute_sql("CREATE UNIQUE INDEX th_pk ON th (id)")
        .unwrap();
    db.execute_sql(
        "CREATE TABLE tb (id INT NOT NULL, name STRING NOT NULL, dept INT NOT NULL) \
         USING btree WITH (key=id)",
    )
    .unwrap();
    db
}

/// Reads a table back in model order (sorted by id).
fn read_sorted(db: &Arc<Database>, table: &str) -> Vec<(i64, String, i64)> {
    let mut rows: Vec<(i64, String, i64)> = db
        .query_sql(&format!("SELECT id, name, dept FROM {table}"))
        .unwrap()
        .into_iter()
        .map(|r| {
            (
                r[0].as_int().unwrap(),
                match &r[1] {
                    Value::Str(s) => s.clone(),
                    other => panic!("name column came back as {other:?}"),
                },
                r[2].as_int().unwrap(),
            )
        })
        .collect();
    rows.sort();
    rows
}

fn model_rows(model: &Model) -> Vec<(i64, String, i64)> {
    model
        .iter()
        .map(|(&id, (name, dept))| (id, name.clone(), *dept))
        .collect()
}

/// Applies one seeded batch to both tables and the model.
fn apply_batch(db: &Arc<Database>, model: &mut Model, rng: &mut TestRng, next_id: &mut i64) {
    for _ in 0..OPS_PER_BATCH {
        let roll = rng.below(100);
        if roll < 50 || model.is_empty() {
            let id = *next_id;
            *next_id += 1;
            let dept = rng.range_i64(0, 10);
            for t in ["th", "tb"] {
                db.execute_sql(&format!("INSERT INTO {t} VALUES ({id}, 'r{id}', {dept})"))
                    .unwrap();
            }
            model.insert(id, (format!("r{id}"), dept));
        } else if roll < 80 {
            let keys: Vec<i64> = model.keys().copied().collect();
            let id = keys[rng.index(keys.len())];
            let dept = rng.range_i64(0, 10);
            for t in ["th", "tb"] {
                db.execute_sql(&format!("UPDATE {t} SET dept = {dept} WHERE id = {id}"))
                    .unwrap();
            }
            model.get_mut(&id).unwrap().1 = dept;
        } else {
            let keys: Vec<i64> = model.keys().copied().collect();
            let id = keys[rng.index(keys.len())];
            for t in ["th", "tb"] {
                db.execute_sql(&format!("DELETE FROM {t} WHERE id = {id}"))
                    .unwrap();
            }
            model.remove(&id);
        }
    }
}

/// Runs the full stream; returns the final oracle state and the metrics.
fn run_stream(seed: u64) -> (Vec<(i64, String, i64)>, MetricsSnapshot) {
    let db = open();
    let mut model = Model::new();
    let mut rng = TestRng::new(seed);
    let mut next_id = 0i64;
    for batch in 0..BATCHES {
        apply_batch(&db, &mut model, &mut rng, &mut next_id);
        let expected = model_rows(&model);
        let heap = read_sorted(&db, "th");
        let btree = read_sorted(&db, "tb");
        assert_eq!(
            heap, expected,
            "heap diverged from model after batch {batch}"
        );
        assert_eq!(
            btree, expected,
            "btree diverged from model after batch {batch}"
        );
    }
    (model_rows(&model), db.metrics_snapshot())
}

#[test]
fn heap_btree_and_model_agree_after_every_batch() {
    let (final_rows, metrics) = run_stream(SEED);
    assert!(!final_rows.is_empty(), "the stream must leave live rows");
    // The stream must actually have exercised all three op kinds.
    assert!(metrics.counter("dml.inserts") > 0);
    assert!(metrics.counter("dml.updates") > 0);
    assert!(metrics.counter("dml.deletes") > 0);
}

#[test]
fn same_seed_reproduces_oracle_state_and_counters() {
    let (rows_a, metrics_a) = run_stream(SEED);
    let (rows_b, metrics_b) = run_stream(SEED);
    assert_eq!(
        rows_a, rows_b,
        "oracle state must be a pure function of the seed"
    );
    assert_eq!(
        metrics_a, metrics_b,
        "metric snapshots must be a pure function of the seed"
    );
}

#[test]
fn explain_analyze_actuals_agree_with_the_oracle() {
    // EXPLAIN ANALYZE is wired through the same executor the oracle
    // exercises: for every dept the root node's actual row count must
    // equal the model's count, on both storage organizations.
    let db = open();
    let mut model = Model::new();
    let mut rng = TestRng::new(SEED);
    let mut next_id = 0i64;
    for _ in 0..3 {
        apply_batch(&db, &mut model, &mut rng, &mut next_id);
    }
    for dept in 0..10 {
        let expected = model.values().filter(|(_, d)| *d == dept).count() as i64;
        for t in ["th", "tb"] {
            let r = db
                .execute_sql(&format!(
                    "EXPLAIN ANALYZE SELECT name FROM {t} WHERE dept = {dept}"
                ))
                .unwrap();
            assert_eq!(r.columns, vec!["plan", "estimated", "actual"]);
            let project = r
                .rows
                .iter()
                .find(|row| matches!(&row[0], Value::Str(s) if s.starts_with("Project")))
                .expect("project node present");
            assert_eq!(
                project[2],
                Value::Int(expected),
                "{t} dept={dept}: EXPLAIN ANALYZE actual disagrees with the model"
            );
        }
    }
}

/// Damages the heap table's index, drives the repair pipeline, and
/// returns the post-repair contents plus the rendered `sys.repairs`
/// rows. Everything downstream of the seed must be reproducible.
fn run_repair_stream(seed: u64) -> (Vec<(i64, String, i64)>, String) {
    let (env, injector) = DatabaseEnv::fresh_with_plan(FaultPlan::new(seed));
    let db = starburst_dmx::open_env(env.clone(), DatabaseConfig::default()).unwrap();
    db.execute_sql("CREATE TABLE th (id INT NOT NULL, name STRING NOT NULL, dept INT NOT NULL)")
        .unwrap();
    db.execute_sql("CREATE UNIQUE INDEX th_pk ON th (id)")
        .unwrap();
    let mut model = Model::new();
    let mut rng = TestRng::new(seed);
    let mut next_id = 0i64;
    for _ in 0..2 {
        for _ in 0..OPS_PER_BATCH {
            let roll = rng.below(100);
            if roll < 60 || model.is_empty() {
                let id = next_id;
                next_id += 1;
                let dept = rng.range_i64(0, 10);
                db.execute_sql(&format!("INSERT INTO th VALUES ({id}, 'r{id}', {dept})"))
                    .unwrap();
                model.insert(id, (format!("r{id}"), dept));
            } else {
                let keys: Vec<i64> = model.keys().copied().collect();
                let id = keys[rng.index(keys.len())];
                db.execute_sql(&format!("DELETE FROM th WHERE id = {id}"))
                    .unwrap();
                model.remove(&id);
            }
        }
    }
    drop(db);

    // Silent rot in the index file (1 catalog, 2 heap, 3 index).
    let pid = starburst_dmx::types::PageId::new(starburst_dmx::types::FileId(3), 0);
    let mut page = starburst_dmx::page::Page::new();
    env.disk.read_page(pid, &mut page).unwrap();
    page.raw_mut()[100] ^= 0x40;
    env.disk.write_page(pid, &page).unwrap();
    injector.clear();

    let db = starburst_dmx::open_env(env, DatabaseConfig::default()).unwrap();
    let check = db.execute_sql("CHECK TABLE th").unwrap();
    assert_eq!(check.rows[0][2], Value::from("quarantined"));
    let repair = db.execute_sql("REPAIR TABLE th").unwrap();
    assert_eq!(repair.rows[0][2], Value::from("healthy"));
    let repairs = format!("{:?}", db.query_sql("SELECT * FROM sys.repairs").unwrap());
    (read_sorted(&db, "th"), repairs)
}

#[test]
fn same_seed_reproduces_repair_outcome_and_contents() {
    let (rows_a, repairs_a) = run_repair_stream(SEED);
    let (rows_b, repairs_b) = run_repair_stream(SEED);
    assert!(!rows_a.is_empty(), "the stream must leave live rows");
    assert_eq!(
        rows_a, rows_b,
        "post-repair contents must be a pure function of the seed"
    );
    assert_eq!(
        repairs_a, repairs_b,
        "sys.repairs rows must be byte-identical run to run"
    );
}

#[test]
fn repaired_table_agrees_with_the_model() {
    // Rebuild the model alongside a third run: repair must restore
    // exactly the committed state, record for record.
    let (rows, _) = run_repair_stream(SEED);
    let mut model = Model::new();
    let mut rng = TestRng::new(SEED);
    let mut next_id = 0i64;
    for _ in 0..2 {
        for _ in 0..OPS_PER_BATCH {
            let roll = rng.below(100);
            if roll < 60 || model.is_empty() {
                let id = next_id;
                next_id += 1;
                let dept = rng.range_i64(0, 10);
                model.insert(id, (format!("r{id}"), dept));
            } else {
                let keys: Vec<i64> = model.keys().copied().collect();
                model.remove(&keys[rng.index(keys.len())]);
            }
        }
    }
    assert_eq!(rows, model_rows(&model), "repair drifted from the model");
}

// ---------------------------------------------------------------------
// Crash-point sweep: the differential oracle under torn execution.
//
// Every committed statement must survive a crash at *any* I/O index and
// every uncommitted one must vanish, on both storage organizations —
// and recovery itself must be a fixed point: reopening a second time
// appends no log frames and changes no page on disk (DESIGN.md §6, the
// restart state machine). The second property is what makes the
// redo/undo pass trustworthy: if restart "recovered" by rewriting
// state every time, a crash *during* recovery would compound.
// ---------------------------------------------------------------------

const CRASH_SEED: u64 = 0xD1FF_C4A5;
const SWEEP_OPS: usize = 16;
/// Ids at or above this base belong to the deliberately-abandoned
/// transaction: they must never be visible after any reopen.
const POISON_BASE: i64 = 1_000_000;

#[derive(Clone, Copy)]
enum Op {
    Insert(i64, i64),
    Update(i64, i64),
    Delete(i64),
}

fn apply_op(model: &mut Model, op: Op) {
    match op {
        Op::Insert(id, dept) => {
            model.insert(id, (format!("r{id}"), dept));
        }
        Op::Update(id, dept) => {
            if let Some(e) = model.get_mut(&id) {
                e.1 = dept;
            }
        }
        Op::Delete(id) => {
            model.remove(&id);
        }
    }
}

/// Per-table committed state plus the one statement whose commit was in
/// flight when the crash hit (its effect may or may not be durable).
#[derive(Default)]
struct CrashOutcome {
    committed: [Model; 2], // th, tb
    pending: [Option<Op>; 2],
}

/// The swept workload: the differential DML stream applied to both
/// tables as autocommitted statements, interleaved with inserts from a
/// transaction that is deliberately never committed. Stops at the first
/// error (the injected crash). A statement that returned `Ok` reached
/// its commit point and forced the log, so it is recorded as committed;
/// the erroring statement is recorded as pending (ambiguous).
fn crash_workload(db: &Arc<Database>) -> CrashOutcome {
    let mut out = CrashOutcome::default();
    if db
        .execute_sql("CREATE TABLE th (id INT NOT NULL, name STRING NOT NULL, dept INT NOT NULL)")
        .is_err()
    {
        return out;
    }
    if db
        .execute_sql("CREATE UNIQUE INDEX th_pk ON th (id)")
        .is_err()
    {
        return out;
    }
    if db
        .execute_sql(
            "CREATE TABLE tb (id INT NOT NULL, name STRING NOT NULL, dept INT NOT NULL) \
             USING btree WITH (key=id)",
        )
        .is_err()
    {
        return out;
    }
    let rd_th = db.catalog().get_by_name("th").unwrap();
    let poison = db.begin(); // abandoned below: a loser at every crash point
    let mut rng = TestRng::new(CRASH_SEED);
    let mut next_id = 0i64;
    for i in 0..SWEEP_OPS {
        // Key selection reads only committed state, so the sequence of
        // attempted statements is identical at every crash point.
        let model = &out.committed[0];
        let roll = rng.below(100);
        let op = if roll < 50 || model.is_empty() {
            let id = next_id;
            next_id += 1;
            Op::Insert(id, rng.range_i64(0, 10))
        } else if roll < 80 {
            let keys: Vec<i64> = model.keys().copied().collect();
            Op::Update(keys[rng.index(keys.len())], rng.range_i64(0, 10))
        } else {
            let keys: Vec<i64> = model.keys().copied().collect();
            Op::Delete(keys[rng.index(keys.len())])
        };
        for (t_idx, t) in ["th", "tb"].iter().enumerate() {
            let sql = match op {
                Op::Insert(id, dept) => format!("INSERT INTO {t} VALUES ({id}, 'r{id}', {dept})"),
                Op::Update(id, dept) => format!("UPDATE {t} SET dept = {dept} WHERE id = {id}"),
                Op::Delete(id) => format!("DELETE FROM {t} WHERE id = {id}"),
            };
            if db.execute_sql(&sql).is_ok() {
                apply_op(&mut out.committed[t_idx], op);
            } else {
                out.pending[t_idx] = Some(op);
                return out;
            }
        }
        if i % 5 == 0 {
            // An uncommitted write that may be steal-evicted to disk
            // before the crash: recovery must undo it either way.
            let id = POISON_BASE + i as i64;
            if db
                .insert(
                    &poison,
                    rd_th.id,
                    starburst_dmx::types::Record::new(vec![
                        Value::Int(id),
                        Value::Str(format!("poison{i}")),
                        Value::Int(0),
                    ]),
                )
                .is_err()
            {
                return out;
            }
        }
    }
    out
}

/// Post-recovery check of one table against its committed model, with
/// the single pending statement accepted either way. Returns the rows
/// as the table's state fingerprint.
fn check_crash_table(
    db: &Arc<Database>,
    table: &str,
    committed: &Model,
    pending: Option<Op>,
    at: &str,
) -> Vec<(i64, String, i64)> {
    let rows = match db.query_sql(&format!("SELECT id, name, dept FROM {table}")) {
        Ok(rows) => {
            let mut rows: Vec<(i64, String, i64)> = rows
                .into_iter()
                .map(|r| {
                    (
                        r[0].as_int().unwrap(),
                        r[1].as_str().unwrap().to_string(),
                        r[2].as_int().unwrap(),
                    )
                })
                .collect();
            rows.sort();
            rows
        }
        // The table's CREATE never committed — legal only if nothing
        // was ever committed into it.
        Err(DmxError::NotFound(_)) => {
            assert!(
                committed.is_empty(),
                "{at}: {table} lost with {} committed rows",
                committed.len()
            );
            return Vec::new();
        }
        Err(e) => panic!("{at}: scanning {table}: {e}"),
    };
    for (id, _, _) in &rows {
        assert!(
            *id < POISON_BASE,
            "{at}: {table} exposes uncommitted row {id} after recovery"
        );
    }
    let base = model_rows(committed);
    let with_pending = pending.map(|op| {
        let mut m = committed.clone();
        apply_op(&mut m, op);
        model_rows(&m)
    });
    assert!(
        rows == base || Some(&rows) == with_pending.as_ref(),
        "{at}: {table} is neither the committed state nor committed+pending\n\
         got:       {rows:?}\n\
         committed: {base:?}\n\
         pending:   {with_pending:?}"
    );
    rows
}

/// A content hash of every allocated page on the simulated disk.
fn disk_fingerprint(disk: &Arc<dyn starburst_dmx::page::DiskManager>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |b: u64| {
        h ^= b;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for f in 1..=64u32 {
        let fid = starburst_dmx::types::FileId(f);
        if !disk.file_exists(fid) {
            continue;
        }
        mix(u64::from(f));
        for p in 0..disk.page_count(fid).unwrap() {
            let pid = starburst_dmx::types::PageId::new(fid, p);
            let mut page = starburst_dmx::page::Page::new();
            disk.read_page(pid, &mut page).unwrap();
            for &b in page.raw().iter() {
                mix(u64::from(b));
            }
        }
    }
    h
}

fn sweep_stride() -> u64 {
    std::env::var("FAULT_SWEEP_STRIDE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&s| s > 0)
        .unwrap_or(1)
}

/// Crash at every Nth I/O index; after recovery the tables must match
/// the committed model (pending statement accepted either way, poison
/// rows gone), and a second reopen must be a pure read: zero new log
/// frames, byte-identical disk.
#[test]
fn crash_sweep_double_reopen_appends_nothing_and_matches_model() {
    // Pass 1: healthy run to count the workload's I/O operations.
    let (env, injector) = DatabaseEnv::fresh_with_plan(FaultPlan::new(CRASH_SEED));
    let db = starburst_dmx::open_env(env.clone(), DatabaseConfig::default()).unwrap();
    let healthy = crash_workload(&db);
    assert!(
        healthy.pending.iter().all(Option::is_none),
        "healthy pass must not error"
    );
    assert!(!healthy.committed[0].is_empty());
    drop(db);
    let total = injector.ops();
    assert!(total > 50, "workload too small to sweep ({total} I/Os)");

    let stride = sweep_stride();
    let mut k = 0;
    while k < total {
        let at = format!("crash point {k}/{total}");
        let (env, injector) = DatabaseEnv::fresh_with_plan(FaultPlan::new(CRASH_SEED).crash_at(k));
        let outcome = match starburst_dmx::open_env(env.clone(), DatabaseConfig::default()) {
            Ok(db) => {
                let o = crash_workload(&db);
                drop(db);
                o
            }
            // Crash during the initial open (catalog bootstrap).
            Err(_) => CrashOutcome::default(),
        };
        assert!(
            injector.is_crashed() || injector.injected() > 0,
            "{at}: the scheduled crash never fired"
        );
        injector.clear();

        // Reopen 1: restart recovery runs against the torn state.
        let db = starburst_dmx::open_env(env.clone(), DatabaseConfig::default())
            .unwrap_or_else(|e| panic!("{at}: recovery failed: {e}"));
        let th1 = check_crash_table(&db, "th", &outcome.committed[0], outcome.pending[0], &at);
        let tb1 = check_crash_table(&db, "tb", &outcome.committed[1], outcome.pending[1], &at);
        drop(db);

        // Reopen 2 must be a pure read of the recovered state.
        let log_len = env.stable_log.len();
        let disk_before = disk_fingerprint(&env.disk);
        let at2 = format!("{at}, second reopen");
        let db = starburst_dmx::open_env(env.clone(), DatabaseConfig::default())
            .unwrap_or_else(|e| panic!("{at2}: {e}"));
        assert_eq!(env.stable_log.len(), log_len, "{at2}: appended log frames");
        let th2 = check_crash_table(&db, "th", &outcome.committed[0], outcome.pending[0], &at2);
        let tb2 = check_crash_table(&db, "tb", &outcome.committed[1], outcome.pending[1], &at2);
        assert_eq!(th1, th2, "{at2}: th changed across reopens");
        assert_eq!(tb1, tb2, "{at2}: tb changed across reopens");
        drop(db);
        assert_eq!(
            env.stable_log.len(),
            log_len,
            "{at2}: close appended log frames"
        );
        assert_eq!(
            disk_fingerprint(&env.disk),
            disk_before,
            "{at2}: changed pages on disk"
        );
        k += stride;
    }
}

// ---------------------------------------------------------------------
// Concurrent differential: seeded writer schedules under 2PL + key-range
// locks, racing snapshot readers. Writers own disjoint key stripes, so
// the final committed state is a pure function of the seed even though
// the thread interleaving is not; readers must observe only
// transaction-consistent states (the writers deliberately pass through
// an invariant-violating intermediate inside every update transaction).
// ---------------------------------------------------------------------

const CONC_SEED: u64 = 0xC0C0_CAFE_D00D_FEED;
const WRITERS: u64 = 3;
const TXNS_PER_WRITER: usize = 30;
const STRIPE: i64 = 1_000;

/// One writer's seeded transaction stream over its own id stripe.
/// Every committed row satisfies `b == -a`; inside an update
/// transaction the invariant is deliberately broken between two
/// statements. Deadlock/timeout victims (gap-lock collisions at stripe
/// boundaries) retry the same logical op, keeping the stream a pure
/// function of the seed.
fn run_writer(db: &Arc<Database>, w: u64) -> BTreeMap<i64, i64> {
    /// A committed transaction's effect on the writer's model.
    type ModelApply = Box<dyn Fn(&mut BTreeMap<i64, i64>)>;
    let sess = Session::new(db.clone());
    let mut rng = TestRng::new(CONC_SEED ^ (w + 1));
    let mut model: BTreeMap<i64, i64> = BTreeMap::new(); // id -> a
    let mut next = w as i64 * STRIPE;
    for _ in 0..TXNS_PER_WRITER {
        let roll = rng.below(100);
        let (stmts, apply): (Vec<String>, ModelApply) = if roll < 45 || model.is_empty() {
            let id = next;
            next += 1;
            let a = rng.range_i64(1, 100);
            (
                vec![format!("INSERT INTO tc VALUES ({id}, {a}, {})", -a)],
                Box::new(move |m| {
                    m.insert(id, a);
                }),
            )
        } else if roll < 80 {
            let keys: Vec<i64> = model.keys().copied().collect();
            let id = keys[rng.index(keys.len())];
            let a = rng.range_i64(1, 100);
            (
                // Two statements: between them the row violates
                // b == -a, which no reader may ever observe.
                vec![
                    format!("UPDATE tc SET a = {a} WHERE id = {id}"),
                    format!("UPDATE tc SET b = {} WHERE id = {id}", -a),
                ],
                Box::new(move |m| {
                    m.insert(id, a);
                }),
            )
        } else {
            let keys: Vec<i64> = model.keys().copied().collect();
            let id = keys[rng.index(keys.len())];
            (
                vec![format!("DELETE FROM tc WHERE id = {id}")],
                Box::new(move |m| {
                    m.remove(&id);
                }),
            )
        };
        // Retry the whole transaction until it commits.
        'retry: loop {
            sess.execute("BEGIN").unwrap();
            for s in &stmts {
                match sess.execute(s) {
                    Ok(_) => {}
                    Err(DmxError::Deadlock { .. }) | Err(DmxError::LockTimeout) => {
                        if sess.in_transaction() {
                            let _ = sess.execute("ROLLBACK");
                        }
                        continue 'retry;
                    }
                    Err(e) => panic!("writer {w}: {s}: {e}"),
                }
            }
            match sess.execute("COMMIT") {
                Ok(_) => break,
                Err(DmxError::Deadlock { .. }) | Err(DmxError::LockTimeout) => {
                    if sess.in_transaction() {
                        let _ = sess.execute("ROLLBACK");
                    }
                }
                Err(e) => panic!("writer {w}: COMMIT: {e}"),
            }
        }
        apply(&mut model);
    }
    model
}

/// The concurrent schedule; returns the final sorted table state.
fn run_concurrent(check_repeatable: bool) -> Vec<(i64, i64, i64)> {
    let db = starburst_dmx::open_default().unwrap();
    db.execute_sql(
        "CREATE TABLE tc (id INT NOT NULL, a INT NOT NULL, b INT NOT NULL) \
         USING btree WITH (key=id)",
    )
    .unwrap();
    let done = std::sync::atomic::AtomicBool::new(false);
    let models = dmx_types::sync::Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for w in 0..WRITERS {
            let db = db.clone();
            let models = &models;
            s.spawn(move || {
                let m = run_writer(&db, w);
                models.lock().push(m);
            });
        }
        // Invariant readers: every observed state is transaction-
        // consistent (b == -a on every row), reads never block.
        for _ in 0..2 {
            let db = db.clone();
            let done = &done;
            s.spawn(move || {
                let sess = Session::new(db);
                while !done.load(std::sync::atomic::Ordering::Acquire) {
                    let rows = sess.execute("SELECT id, a, b FROM tc").unwrap().rows;
                    for r in &rows {
                        assert_eq!(
                            r[1].as_int().unwrap(),
                            -r[2].as_int().unwrap(),
                            "reader saw a transaction-inconsistent row: {r:?}"
                        );
                    }
                }
            });
        }
        // Repeatability reader: within one transaction, re-reads are
        // byte-identical regardless of concurrent commits.
        if check_repeatable {
            let db = db.clone();
            let done = &done;
            s.spawn(move || {
                let sess = Session::new(db);
                while !done.load(std::sync::atomic::Ordering::Acquire) {
                    sess.execute("BEGIN").unwrap();
                    let mut first = sess.execute("SELECT id, a FROM tc").unwrap().rows;
                    first.sort_by_key(|r| r[0].as_int().unwrap());
                    for _ in 0..3 {
                        let mut again = sess.execute("SELECT id, a FROM tc").unwrap().rows;
                        again.sort_by_key(|r| r[0].as_int().unwrap());
                        assert_eq!(first, again, "snapshot read not repeatable");
                    }
                    sess.execute("COMMIT").unwrap();
                }
            });
        }
        // Writers finish first; then release the readers.
        while models.lock().len() < WRITERS as usize {
            std::thread::yield_now();
        }
        done.store(true, std::sync::atomic::Ordering::Release);
    });

    // Differential check: the table equals the union of the writers'
    // models (stripes are disjoint).
    let mut expected: Vec<(i64, i64, i64)> = models
        .lock()
        .iter()
        .flat_map(|m| m.iter().map(|(&id, &a)| (id, a, -a)))
        .collect();
    expected.sort();
    let mut rows: Vec<(i64, i64, i64)> = db
        .query_sql("SELECT id, a, b FROM tc")
        .unwrap()
        .into_iter()
        .map(|r| {
            (
                r[0].as_int().unwrap(),
                r[1].as_int().unwrap(),
                r[2].as_int().unwrap(),
            )
        })
        .collect();
    rows.sort();
    assert_eq!(rows, expected, "table diverged from the writers' models");
    assert_eq!(db.active_txns(), 0, "no leaked transactions");
    rows
}

#[test]
fn concurrent_writers_and_snapshot_readers_agree_with_models() {
    let rows = run_concurrent(true);
    assert!(!rows.is_empty(), "the schedule must leave live rows");
}

#[test]
fn concurrent_schedule_same_seed_same_final_state() {
    // The committed end state is a pure function of the seed even
    // though the interleaving is not (disjoint writer stripes).
    let a = run_concurrent(false);
    let b = run_concurrent(false);
    assert_eq!(a, b, "same seed must reproduce the final state");
}

#[test]
fn different_seeds_diverge() {
    // A sanity check that the stream actually depends on the seed (i.e.
    // the determinism test above is not vacuous).
    let (rows_a, _) = run_stream(SEED);
    let (rows_b, _) = run_stream(SEED ^ 1);
    assert_ne!(
        rows_a, rows_b,
        "distinct seeds should produce distinct streams"
    );
}
