//! Seeded property test: attachment consistency across crash/reopen.
//!
//! Each iteration derives a DML stream *and* a crash point from the
//! master seed, runs the stream against a relation carrying a unique
//! index, a secondary index and referential-integrity attachments, lets
//! the scheduled crash fire mid-stream (reusing the PR2 [`FaultPlan`]
//! machinery), reopens on healthy I/O, and asserts that every attachment
//! agrees with its base relation — then keeps going and checks again, so
//! recovery output is also a valid starting state. Finally, the whole
//! experiment must be a pure function of its seed: replaying one
//! iteration yields the identical metrics snapshot, counter for counter.

// Examples and integration-test harnesses are exempt from the runtime
// panic discipline: failures here should abort loudly.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use starburst_dmx::prelude::*;
use starburst_dmx::types::testrng::TestRng;
use starburst_dmx::types::MetricsSnapshot;

const SEED: u64 = 0x00A7_7AC1_1ED0_u64;
const DEPTS: i64 = 6;
const STREAM_OPS: usize = 120;
const ITERATIONS: u64 = 5;

fn reopen(env: &DatabaseEnv) -> Arc<Database> {
    starburst_dmx::open_env(env.clone(), DatabaseConfig::default()).expect("reopen")
}

/// DDL: a parent relation, a child relation with unique + secondary
/// index attachments, and a refint pair between them.
fn setup(db: &Arc<Database>) -> Result<()> {
    db.execute_sql("CREATE TABLE dept (id INT NOT NULL, name STRING NOT NULL)")?;
    db.execute_sql("CREATE UNIQUE INDEX dept_pk ON dept (id)")?;
    db.execute_sql("CREATE TABLE emp (id INT NOT NULL, name STRING NOT NULL, dept INT NOT NULL)")?;
    db.execute_sql("CREATE UNIQUE INDEX emp_pk ON emp (id)")?;
    db.execute_sql("CREATE INDEX emp_dept ON emp (dept)")?;
    db.execute_sql(
        "CREATE ATTACHMENT fk_c ON emp USING refint \
         WITH (role=child, fields=dept, other=dept, other_fields=id)",
    )?;
    db.execute_sql(
        "CREATE ATTACHMENT fk_p ON dept USING refint \
         WITH (role=parent, fields=id, other=emp, other_fields=dept)",
    )?;
    for d in 0..DEPTS {
        db.execute_sql(&format!("INSERT INTO dept VALUES ({d}, 'd{d}')"))?;
    }
    Ok(())
}

/// Every (id -> set of depts ever written for it). A surviving row is
/// legitimate iff its dept is in that set: with autocommit statements a
/// crash keeps or drops whole statements, never blends them.
type Written = BTreeMap<i64, BTreeSet<i64>>;

/// One seeded DML segment. Statements that fail (constraint veto before
/// the crash, any I/O after it) leave the model untouched; the stream
/// stops at the first I/O error since the device is dead until reopen.
fn stream(db: &Arc<Database>, rng: &mut TestRng, written: &mut Written, next_id: &mut i64) {
    for _ in 0..STREAM_OPS {
        let roll = rng.below(100);
        let invalid = rng.below(8) == 0;
        let dept = if invalid {
            DEPTS + rng.range_i64(1, 50)
        } else {
            rng.range_i64(0, DEPTS)
        };
        let live: Vec<i64> = written.keys().copied().collect();
        let (sql, r) = if roll < 55 || live.is_empty() {
            let id = *next_id;
            let sql = format!("INSERT INTO emp VALUES ({id}, 'e{id}', {dept})");
            let r = db.execute_sql(&sql);
            if r.is_ok() {
                *next_id += 1;
                written.entry(id).or_default().insert(dept);
            }
            (sql, r)
        } else if roll < 80 {
            let id = live[rng.index(live.len())];
            let sql = format!("UPDATE emp SET dept = {dept} WHERE id = {id}");
            let r = db.execute_sql(&sql);
            if r.is_ok() {
                written.entry(id).or_default().insert(dept);
            }
            (sql, r)
        } else {
            let id = live[rng.index(live.len())];
            let sql = format!("DELETE FROM emp WHERE id = {id}");
            let r = db.execute_sql(&sql);
            if r.is_ok() {
                // deletion does not invalidate older row images elsewhere:
                // a crash may resurrect nothing, so just forget the key
                written.remove(&id);
            }
            (sql, r)
        };
        match r {
            Ok(_) => {}
            Err(e @ DmxError::Veto { .. }) | Err(e @ DmxError::ConstraintViolation(_)) => {
                assert!(invalid, "veto of a valid statement `{sql}`: {e}")
            }
            // the injected crash (or its aftermath): device dead, stop
            Err(_) => return,
        }
    }
}

/// Attachment/base agreement after recovery. `written` is advisory
/// post-crash (a statement reported as failed may still have committed),
/// so only *structural* invariants are hard-asserted.
fn check_attachments(db: &Arc<Database>, at: &str) -> Vec<(i64, i64)> {
    let rows = db
        .query_sql("SELECT id, name, dept FROM emp")
        .expect("scan emp");
    let mut seen = BTreeSet::new();
    let mut pairs = Vec::new();
    for row in &rows {
        let id = row[0].as_int().expect("id");
        let name = match &row[1] {
            Value::Str(s) => s.clone(),
            other => panic!("{at}: bad name {other:?}"),
        };
        let dept = row[2].as_int().expect("dept");
        // rows are whole statement images
        assert_eq!(name, format!("e{id}"), "{at}: torn row image");
        // unique attachment: no duplicate keys survive recovery
        assert!(seen.insert(id), "{at}: duplicate id {id}");
        // refint attachment: no orphan children survive recovery
        assert!(
            (0..DEPTS).contains(&dept),
            "{at}: orphan child ({id}) -> dept {dept}"
        );
        pairs.push((id, dept));
    }
    // unique index agrees with the base relation, key by key
    for &(id, dept) in &pairs {
        let keyed = db
            .query_sql(&format!("SELECT dept FROM emp WHERE id = {id}"))
            .expect("keyed lookup");
        assert_eq!(
            keyed,
            vec![vec![Value::Int(dept)]],
            "{at}: unique index disagrees with base on id {id}"
        );
    }
    // secondary index agrees with a predicate scan, dept by dept
    for d in 0..DEPTS {
        let mut via_index: Vec<i64> = db
            .query_sql(&format!("SELECT id FROM emp WHERE dept = {d}"))
            .expect("dept lookup")
            .iter()
            .map(|r| r[0].as_int().expect("id"))
            .collect();
        via_index.sort_unstable();
        let expect: Vec<i64> = pairs
            .iter()
            .filter(|&&(_, dept)| dept == d)
            .map(|&(id, _)| id)
            .collect();
        assert_eq!(
            via_index, expect,
            "{at}: secondary index disagrees on dept {d}"
        );
    }
    pairs.sort_unstable();
    pairs
}

/// One full iteration: setup, stream, seeded crash, reopen, check,
/// stream again on healthy I/O, check again. Returns the surviving rows
/// and the recovered database's metrics snapshot.
fn run_iteration(seed: u64) -> (Vec<(i64, i64)>, MetricsSnapshot) {
    // Pass 1 on healthy I/O: learn the I/O budget so the crash point can
    // be placed after setup but inside the stream, deterministically.
    let (env, injector) = DatabaseEnv::fresh_with_plan(FaultPlan::new(seed));
    let db = reopen(&env);
    setup(&db).expect("setup on healthy I/O");
    let setup_ops = injector.ops();
    let mut rng = TestRng::new(seed);
    let mut written = Written::new();
    let mut next_id = 0i64;
    stream(&db, &mut rng, &mut written, &mut next_id);
    drop(db);
    let total_ops = injector.ops();
    assert!(total_ops > setup_ops, "stream performed no I/O");

    // Pass 2: same seed, crash somewhere inside the stream.
    let mut point_rng = TestRng::new(seed ^ 0xC4A5_4BAD);
    let crash_at = setup_ops + point_rng.below(total_ops - setup_ops);
    let (env, injector) = DatabaseEnv::fresh_with_plan(FaultPlan::new(seed).crash_at(crash_at));
    let db = reopen(&env);
    setup(&db).expect("setup happens before the crash point");
    let mut rng = TestRng::new(seed);
    let mut written = Written::new();
    let mut next_id = 0i64;
    stream(&db, &mut rng, &mut written, &mut next_id);
    drop(db);
    assert!(
        injector.is_crashed(),
        "scheduled crash at {crash_at} never fired"
    );

    // Crash: reopen on healthy I/O, attachments must agree with base.
    injector.clear();
    let db = reopen(&env);
    let recovered = check_attachments(&db, &format!("seed {seed:#x} post-crash"));

    // Rebuild the model from the recovered state: the statement in
    // flight at the crash may have committed even though it reported an
    // error, so the pre-crash model is only advisory.
    let mut written = Written::new();
    let mut next_id = 0i64;
    for &(id, dept) in &recovered {
        written.entry(id).or_default().insert(dept);
        next_id = next_id.max(id + 1);
    }

    // Recovery output must be a usable starting state: keep streaming.
    let mut rng2 = TestRng::new(seed.rotate_left(17));
    stream(&db, &mut rng2, &mut written, &mut next_id);
    let pairs = check_attachments(&db, &format!("seed {seed:#x} post-resume"));
    let metrics = db.metrics_snapshot();
    (pairs, metrics)
}

#[test]
fn attachments_agree_across_seeded_crash_points() {
    for i in 0..ITERATIONS {
        let seed = SEED.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let (pairs, metrics) = run_iteration(seed);
        // the property is vacuous if nothing survives or nothing happened
        assert!(
            metrics.counter("dml.inserts") > 0,
            "iteration {i}: stream never inserted"
        );
        let _ = pairs;
    }
}

#[test]
fn same_seed_reproduces_rows_and_metrics() {
    let (rows_a, metrics_a) = run_iteration(SEED);
    let (rows_b, metrics_b) = run_iteration(SEED);
    assert_eq!(
        rows_a, rows_b,
        "surviving rows must be a pure function of the seed"
    );
    assert_eq!(
        metrics_a, metrics_b,
        "metrics snapshot must be a pure function of the seed"
    );
    // and the crash actually exercised the attachment paths
    assert!(metrics_a.counter("att.invocations") > 0);
    assert!(metrics_a.counter("wal.appends") > 0);
}
