//! Randomized stress: a long mixed workload (inserts, updates, deletes,
//! savepoints, partial rollbacks, aborts, commits, vetoes, crashes) run
//! against the full stack — heap storage method + unique B-tree index +
//! check constraint — and checked after every transaction boundary
//! against a shadow model. This is the dispatcher/recovery equivalent of
//! the per-structure property tests.

// Examples and integration-test harnesses are exempt from the runtime
// panic discipline: failures here should abort loudly.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::collections::BTreeMap;
use std::sync::Arc;

use starburst_dmx::prelude::*;
use starburst_dmx::query::SqlExt;

struct Shadow {
    committed: BTreeMap<i64, i64>,
    /// overlay for the open transaction
    working: BTreeMap<i64, i64>,
    /// savepoint stack of overlays
    saves: Vec<BTreeMap<i64, i64>>,
}

impl Shadow {
    fn new() -> Shadow {
        Shadow {
            committed: BTreeMap::new(),
            working: BTreeMap::new(),
            saves: Vec::new(),
        }
    }
    fn begin(&mut self) {
        self.working = self.committed.clone();
        self.saves.clear();
    }
    fn commit(&mut self) {
        self.committed = self.working.clone();
        self.saves.clear();
    }
    fn abort(&mut self) {
        self.working = self.committed.clone();
        self.saves.clear();
    }
    fn savepoint(&mut self) {
        self.saves.push(self.working.clone());
    }
    fn rollback_to_savepoint(&mut self) {
        if let Some(s) = self.saves.pop() {
            self.working = s;
        }
    }
}

struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn open_env_db(env: &DatabaseEnv) -> Arc<Database> {
    starburst_dmx::open_env(env.clone(), DatabaseConfig::default()).unwrap()
}

/// Reads the full visible state through BOTH access paths and checks they
/// agree with each other and the expectation.
fn verify(db: &Arc<Database>, sess: &starburst_dmx::prelude::Session, expect: &BTreeMap<i64, i64>) {
    let via_scan: BTreeMap<i64, i64> = sess
        .execute("SELECT id, v FROM t")
        .unwrap()
        .rows
        .into_iter()
        .map(|r| (r[0].as_int().unwrap(), r[1].as_int().unwrap()))
        .collect();
    assert_eq!(&via_scan, expect, "storage-method scan state diverged");
    // through the index path (ordered by id)
    let rd = db.catalog().get_by_name("t").unwrap();
    let (t, inst) = rd.find_attachment("t_pk").unwrap();
    let txn = db.begin();
    let scan = db
        .open_scan(
            &txn,
            rd.id,
            AccessPath::Attachment(t, inst.instance),
            AccessQuery::All,
            None,
            None,
        )
        .unwrap();
    let mut via_index = BTreeMap::new();
    while let Some(item) = db.scan_next(&txn, scan).unwrap() {
        let row = db
            .fetch(&txn, rd.id, &item.key, None, None)
            .unwrap()
            .unwrap();
        via_index.insert(row[0].as_int().unwrap(), row[1].as_int().unwrap());
    }
    db.commit(&txn).unwrap();
    assert_eq!(&via_index, expect, "index state diverged");
}

#[test]
fn randomized_workload_matches_shadow_model() {
    for seed in [7u64, 99, 20260706] {
        let env = DatabaseEnv::fresh();
        let mut db = open_env_db(&env);
        db.execute_sql("CREATE TABLE t (id INT NOT NULL, v INT NOT NULL)")
            .unwrap();
        db.execute_sql("CREATE UNIQUE INDEX t_pk ON t (id)")
            .unwrap();
        // ids must stay below 1000 — inserting above is a veto
        db.execute_sql("CREATE CONSTRAINT cap ON t CHECK (id < 1000)")
            .unwrap();

        let mut sess = Session::new(db.clone());
        let mut shadow = Shadow::new();
        let mut rng = Rng(seed | 1);
        let mut in_txn = false;

        for step in 0..400 {
            if !in_txn {
                sess.execute("BEGIN").unwrap();
                shadow.begin();
                in_txn = true;
            }
            match rng.below(100) {
                // insert (maybe duplicate → unique veto; maybe ≥1000 → check veto)
                0..=39 => {
                    let id = rng.below(60) as i64 + if rng.below(20) == 0 { 1000 } else { 0 };
                    let v = rng.below(1_000_000) as i64;
                    let r = sess.execute(&format!("INSERT INTO t VALUES ({id}, {v})"));
                    let dup = shadow.working.contains_key(&id);
                    if id >= 1000 || dup {
                        assert!(
                            matches!(r, Err(DmxError::Veto { .. })),
                            "step {step}: expected veto for id={id} dup={dup}, got {r:?}"
                        );
                    } else {
                        r.unwrap();
                        shadow.working.insert(id, v);
                    }
                }
                // update
                40..=59 => {
                    let id = rng.below(60) as i64;
                    let v = rng.below(1_000_000) as i64;
                    let res = sess
                        .execute(&format!("UPDATE t SET v = {v} WHERE id = {id}"))
                        .unwrap();
                    let n = res.rows[0][0].as_int().unwrap();
                    if let std::collections::btree_map::Entry::Occupied(mut e) =
                        shadow.working.entry(id)
                    {
                        assert_eq!(n, 1, "step {step}");
                        e.insert(v);
                    } else {
                        assert_eq!(n, 0, "step {step}");
                    }
                }
                // delete
                60..=74 => {
                    let id = rng.below(60) as i64;
                    let res = sess
                        .execute(&format!("DELETE FROM t WHERE id = {id}"))
                        .unwrap();
                    let n = res.rows[0][0].as_int().unwrap();
                    assert_eq!(
                        n,
                        shadow.working.remove(&id).map(|_| 1).unwrap_or(0),
                        "step {step}"
                    );
                }
                // savepoint / partial rollback
                75..=79 => {
                    sess.execute("SAVEPOINT sp").unwrap();
                    shadow.savepoint();
                }
                80..=84 => {
                    if shadow.saves.is_empty() {
                        continue;
                    }
                    sess.execute("ROLLBACK TO SAVEPOINT sp").unwrap();
                    shadow.rollback_to_savepoint();
                }
                // abort
                85..=89 => {
                    sess.execute("ROLLBACK").unwrap();
                    shadow.abort();
                    in_txn = false;
                    verify(&db, &sess, &shadow.committed);
                }
                // commit
                90..=96 => {
                    sess.execute("COMMIT").unwrap();
                    shadow.commit();
                    in_txn = false;
                    verify(&db, &sess, &shadow.committed);
                }
                // crash + restart (uncommitted work is lost)
                _ => {
                    drop(sess);
                    shadow.abort();
                    in_txn = false;
                    drop(db);
                    db = open_env_db(&env);
                    sess = Session::new(db.clone());
                    verify(&db, &sess, &shadow.committed);
                }
            }
        }
        if in_txn {
            sess.execute("COMMIT").unwrap();
            shadow.commit();
        }
        verify(&db, &sess, &shadow.committed);
        assert_eq!(db.active_txns(), 0, "seed {seed}: no leaked transactions");
    }
}
