//! Self-healing storage, end to end: online scrub, automatic quarantine
//! repair (attachment rebuild and base salvage), the incident ring, and
//! out-of-space graceful degradation.
//!
//! The repair crash sweeps replay a deterministic damage + repair
//! scenario with a crash injected at every Nth I/O *inside* the scrub
//! and repair paths, then reopen on healthy devices and drive the
//! pipeline to convergence: repair is just another WAL-logged workload,
//! so a crash mid-repair must leave a state from which repair still
//! succeeds.

// Examples and integration-test harnesses are exempt from the runtime
// panic discipline: failures here should abort loudly.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::Arc;

use starburst_dmx::prelude::*;
use starburst_dmx::query::SqlExt;

const SEED: u64 = 0x5E1F_4EA1;

fn reopen(env: &DatabaseEnv) -> Arc<Database> {
    starburst_dmx::open_env(env.clone(), DatabaseConfig::default()).expect("reopen")
}

/// Flips one byte of `(file, page)` under the checksum layer, as silent
/// media rot would.
fn flip_byte(env: &DatabaseEnv, file: u32, page: u32) {
    let pid = starburst_dmx::types::PageId::new(starburst_dmx::types::FileId(file), page);
    let mut p = starburst_dmx::page::Page::new();
    env.disk.read_page(pid, &mut p).expect("read page");
    p.raw_mut()[100] ^= 0x40;
    env.disk.write_page(pid, &p).expect("write page");
}

/// Creates `t` (heap, file 2) with a unique b-tree index (file 3) and
/// `rows` wide records (several pages of heap data).
fn build_indexed_table(db: &Arc<Database>, rows: i64) {
    db.execute_sql("CREATE TABLE t (id INT NOT NULL, v STRING NOT NULL)")
        .expect("ddl");
    db.execute_sql("CREATE INDEX t_id ON t USING btree (id) WITH (unique=true)")
        .expect("index ddl");
    let pad = "x".repeat(200);
    for i in 0..rows {
        db.execute_sql(&format!("INSERT INTO t VALUES ({i}, 'v{i}_{pad}')"))
            .expect("dml");
    }
}

/// Acceptance: a byte flip in the index file quarantines the relation;
/// `REPAIR TABLE` rebuilds the index from the intact base **without a
/// reopen**, lifts the quarantine itself, and records the outcome in
/// `sys.repairs`.
#[test]
fn index_corruption_self_heals_without_reopen() {
    let (env, injector) = DatabaseEnv::fresh_with_plan(FaultPlan::new(SEED));
    let db = reopen(&env);
    build_indexed_table(&db, 20);
    drop(db);
    flip_byte(&env, 3, 0); // file 3 = the index (1 catalog, 2 heap)
    injector.clear();

    let db = reopen(&env);
    // The scrubber finds the damaged index page and fences the relation
    // proactively; every access now fails with the typed fence error.
    let r = db.execute_sql("CHECK TABLE t").expect("scrub runs");
    assert_eq!(r.rows[0][2], Value::from("quarantined"));
    let rel = db.catalog().get_by_name("t").unwrap().id;
    assert_eq!(db.quarantined().len(), 1);
    let err = db
        .query_sql("SELECT v FROM t WHERE id = 7")
        .expect_err("fenced");
    assert!(matches!(err, DmxError::RelationQuarantined { .. }));

    // The automatic pipeline: classify (base intact, index damaged),
    // rebuild through ordinary drop/create DDL, verify, lift the fence.
    let r = db.execute_sql("REPAIR TABLE t").expect("repair succeeds");
    assert_eq!(
        r.columns,
        vec![
            "relation",
            "action",
            "outcome",
            "attempts",
            "recovered",
            "lost"
        ]
    );
    assert_eq!(r.rows[0][1], Value::from("rebuild"));
    assert_eq!(r.rows[0][2], Value::from("healthy"));
    assert_eq!(r.rows[0][5], Value::Int(0), "rebuild loses nothing");

    // No reopen: the same handle serves reads again, through the index.
    assert!(db.quarantined().is_empty(), "quarantine lifted");
    assert!(db.terminal_damage(rel).is_none());
    let rows = db
        .query_sql("SELECT v FROM t WHERE id = 7")
        .expect("healed");
    assert_eq!(rows.len(), 1);
    assert_eq!(
        db.query_sql("SELECT COUNT(*) FROM t").unwrap()[0][0],
        Value::Int(20)
    );

    // The outcome is queryable.
    let repairs = db.query_sql("SELECT * FROM sys.repairs").expect("sysrel");
    assert_eq!(repairs.len(), 1);
    assert_eq!(repairs[0][1], Value::from("t"));
    assert_eq!(repairs[0][2], Value::from("rebuild"));
    assert_eq!(repairs[0][3], Value::from("healthy"));
    let snap = db.metrics_snapshot();
    assert_eq!(snap.counter("repair.rebuilds"), 1);
    assert_eq!(snap.counter("quarantine.cleared"), 1);
}

/// `CHECK TABLE` finds silent damage *proactively* — before any query
/// trips over it — and quarantines.
#[test]
fn check_table_quarantines_proactively() {
    let (env, injector) = DatabaseEnv::fresh_with_plan(FaultPlan::new(SEED));
    let db = reopen(&env);
    build_indexed_table(&db, 8);
    drop(db);
    flip_byte(&env, 3, 0);
    injector.clear();

    let db = reopen(&env);
    // No query has touched the damage yet.
    assert!(db.quarantined().is_empty());
    let r = db.execute_sql("CHECK TABLE t").expect("check runs");
    assert_eq!(r.rows[0][2], Value::from("quarantined"));
    assert_eq!(db.quarantined().len(), 1, "scrub fenced the relation");
    assert!(db.metrics_snapshot().counter("scrub.corrupt") >= 1);

    // A healthy table reports healthy and stays unfenced.
    db.execute_sql("CREATE TABLE ok (id INT NOT NULL)").unwrap();
    db.execute_sql("INSERT INTO ok VALUES (1)").unwrap();
    let r = db.execute_sql("CHECK TABLE ok").expect("check ok");
    assert_eq!(r.rows[0][2], Value::from("healthy"));
    assert_eq!(db.quarantined().len(), 1);
}

/// A damaged *base* is salvaged: every record on readable pages is
/// recovered into a fresh instance, the unreadable ones are reported as
/// lost, and the index is rebuilt on top of the salvaged base.
#[test]
fn base_corruption_salvages_readable_records() {
    let (env, injector) = DatabaseEnv::fresh_with_plan(FaultPlan::new(SEED));
    let db = reopen(&env);
    build_indexed_table(&db, 120); // wide rows: several heap pages
    drop(db);
    flip_byte(&env, 2, 1); // file 2 = the heap base, page 1
    injector.clear();

    let db = reopen(&env);
    let err = db.query_sql("SELECT id FROM t").expect_err("corrupt base");
    assert!(matches!(err, DmxError::RelationQuarantined { .. }));

    let r = db.execute_sql("REPAIR TABLE t").expect("salvage succeeds");
    assert_eq!(r.rows[0][1], Value::from("salvage"));
    assert_eq!(r.rows[0][2], Value::from("healthy"));
    let recovered = match r.rows[0][4] {
        Value::Int(n) => n,
        ref other => panic!("recovered column: {other:?}"),
    };
    let lost = match r.rows[0][5] {
        Value::Int(n) => n,
        ref other => panic!("lost column: {other:?}"),
    };
    assert!(lost > 0, "the torn page's records are lost");
    assert!(recovered > 0, "other pages' records survive");
    assert_eq!(recovered + lost, 120, "every record accounted for");

    // The relation serves again, base and index agreeing.
    assert!(db.quarantined().is_empty());
    let rows = db.query_sql("SELECT id FROM t").expect("healed");
    assert_eq!(rows.len() as i64, recovered);
    for row in &rows {
        let id = row[0].as_int().unwrap();
        let keyed = db
            .query_sql(&format!("SELECT v FROM t WHERE id = {id}"))
            .expect("keyed lookup through rebuilt index");
        assert_eq!(keyed.len(), 1);
    }
    // Survivors keep writing.
    db.execute_sql("INSERT INTO t VALUES (777, 'new')")
        .expect("post-repair write");
    assert!(db.metrics_snapshot().counter("repair.records_lost") >= 1);
}

/// Manual `clear_quarantine` is observable (trace event + counter), and
/// persistent damage re-fences on the next access — the regression the
/// automatic pipeline must never reintroduce.
#[test]
fn manual_clear_is_observable_and_persistent_damage_refences() {
    let (env, injector) = DatabaseEnv::fresh_with_plan(FaultPlan::new(SEED));
    let db = reopen(&env);
    build_indexed_table(&db, 8);
    drop(db);
    flip_byte(&env, 2, 0);
    injector.clear();

    let db = reopen(&env);
    let rel = db.catalog().get_by_name("t").unwrap().id;
    let _ = db.query_sql("SELECT id FROM t").expect_err("fenced");
    assert!(db.clear_quarantine(rel));
    assert_eq!(db.metrics_snapshot().counter("quarantine.cleared"), 1);
    let trace = db.query_sql("SELECT op FROM sys.trace").expect("trace");
    assert!(
        trace
            .iter()
            .any(|r| r[0] == Value::from("quarantine_clear")),
        "clear_quarantine emits a trace event"
    );
    // The damage is still on disk: the next access re-fences.
    let err = db.query_sql("SELECT id FROM t").expect_err("re-fenced");
    assert!(matches!(err, DmxError::RelationQuarantined { .. }));
    assert_eq!(db.quarantined().len(), 1);
}

/// The incident store is a bounded ring: repeated incidents keep the
/// most recent N with monotone numbering, and evictions are counted.
#[test]
fn incident_ring_is_bounded_numbered_and_counts_evictions() {
    let (env, injector) = DatabaseEnv::fresh_with_plan(FaultPlan::new(SEED));
    let db = reopen(&env);
    build_indexed_table(&db, 8);
    drop(db);
    flip_byte(&env, 2, 0);
    injector.clear();

    let db = reopen(&env);
    let rel = db.catalog().get_by_name("t").unwrap().id;
    // Each clear + access produces a fresh fence and a fresh incident.
    const ROUNDS: u64 = 20;
    for _ in 0..ROUNDS {
        let _ = db.query_sql("SELECT id FROM t").expect_err("fenced");
        assert!(db.clear_quarantine(rel));
    }
    let _ = db.query_sql("SELECT id FROM t").expect_err("fenced");
    let total = ROUNDS + 1;

    let ring = db.incidents();
    assert!(ring.len() as u64 <= total);
    assert!(!ring.is_empty());
    let evicted = db.incidents_evicted();
    assert_eq!(evicted, total - ring.len() as u64, "ring + evicted = total");
    assert!(evicted > 0, "enough incidents to overflow the ring");
    // Numbering is monotone and ends at the newest incident.
    let numbers: Vec<u64> = ring.iter().map(|(n, _)| *n).collect();
    for w in numbers.windows(2) {
        assert_eq!(w[1], w[0] + 1, "incident numbers are consecutive");
    }
    assert_eq!(*numbers.last().unwrap(), total - 1);
    // The eviction counter is published as a metric, mirroring the
    // trace ring's truncation contract.
    assert_eq!(db.metrics_snapshot().counter("incidents.evicted"), evicted);
    // And the ring renders as numbered rows.
    let rows = db.query_sql("SELECT incident FROM sys.incidents").unwrap();
    let mut seen: Vec<i64> = rows.iter().map(|r| r[0].as_int().unwrap()).collect();
    seen.dedup();
    assert_eq!(seen.len(), ring.len(), "one row group per ring entry");
}

/// Out of space mid-statement: the statement aborts cleanly (no torn
/// state), the engine degrades to sticky read-only, reads keep working,
/// and clearing the mode after "freeing space" restores writes.
#[test]
fn out_of_space_aborts_cleanly_and_degrades_to_read_only() {
    let (env, injector) = DatabaseEnv::fresh_with_plan(FaultPlan::new(SEED));
    let db = reopen(&env);
    build_indexed_table(&db, 10);
    let before = db.query_sql("SELECT COUNT(*) FROM t").unwrap();
    drop(db);

    // Re-run the same setup with ENOSPC injected somewhere inside the
    // write path, sweeping a band of injection points.
    let mut hit = 0u64;
    for k in (20..200).step_by(13) {
        let (env, injector) = DatabaseEnv::fresh_with_plan(FaultPlan::new(SEED).enospc_at(k));
        let db = match starburst_dmx::open_env(env.clone(), DatabaseConfig::default()) {
            Ok(db) => db,
            Err(DmxError::OutOfSpace(_)) => continue, // fired during bootstrap
            Err(e) => panic!("open failed unexpectedly: {e}"),
        };
        db.execute_sql("CREATE TABLE t (id INT NOT NULL, v STRING NOT NULL)")
            .and_then(|_| {
                db.execute_sql("CREATE INDEX t_id ON t USING btree (id) WITH (unique=true)")
            })
            .map(|_| ())
            .or_else(|e| match e {
                DmxError::OutOfSpace(_) | DmxError::ReadOnly(_) => Ok(()),
                other => Err(other),
            })
            .expect("ddl fails only with the space errors");
        let mut failed: Option<i64> = None;
        for i in 0..10i64 {
            match db.execute_sql(&format!("INSERT INTO t VALUES ({i}, 'v{i}')")) {
                Ok(_) => {}
                Err(DmxError::OutOfSpace(_)) => {
                    failed = Some(i);
                    break;
                }
                Err(DmxError::ReadOnly(_)) => {
                    failed = Some(i);
                    break;
                }
                Err(DmxError::NotFound(_)) => break, // DDL never completed
                Err(e) => panic!("insert {i}: unexpected error {e}"),
            }
        }
        let Some(first_failed) = failed else {
            continue; // the injection point landed outside this run
        };
        hit += 1;
        assert!(injector.injected() > 0, "ENOSPC fired");
        assert!(!injector.is_crashed(), "ENOSPC is an error, not a crash");

        // Sticky degraded mode: writes refused, reads served.
        assert!(db.read_only_reason().is_some(), "engine went read-only");
        let err = db
            .execute_sql("INSERT INTO t VALUES (999, 'x')")
            .expect_err("read-only");
        assert!(matches!(err, DmxError::ReadOnly(_)));
        let rows = db.query_sql("SELECT id FROM t").expect("reads still work");
        // No torn state: exactly the statements before the failure.
        assert_eq!(rows.len() as i64, first_failed);

        // "Free space", clear the mode: writes resume.
        assert!(db.clear_read_only());
        db.execute_sql("INSERT INTO t VALUES (500, 'resumed')")
            .expect("writes resume after clearing degraded mode");
    }
    assert!(hit > 0, "no sweep point landed inside the write path");
    drop(injector);
    drop(env);
    drop(before);
}

/// Crash-at-every-Nth-I/O sweep through the *scrub and repair* paths:
/// damage the index, then crash inside CHECK/REPAIR. After reopening on
/// healthy devices the pipeline must still converge to a healthy,
/// fully-served relation.
#[test]
fn crash_sweep_inside_scrub_and_repair_converges() {
    let stride: u64 = std::env::var("FAULT_SWEEP_STRIDE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&s| s > 0)
        .unwrap_or(16);
    const ROWS: i64 = 12;

    // Pass 1 on healthy devices: measure the I/O window of the repair
    // scenario (everything after the byte flip).
    let (env, injector) = DatabaseEnv::fresh_with_plan(FaultPlan::new(SEED));
    let db = reopen(&env);
    build_indexed_table(&db, ROWS);
    drop(db);
    // The flip itself flows through the fault layer (env.disk is the
    // injected disk), so the sweep window starts after it.
    flip_byte(&env, 3, 0);
    let start = injector.ops();
    injector.clear();
    let db = reopen(&env);
    db.execute_sql("CHECK TABLE t").expect("scrub");
    db.execute_sql("REPAIR TABLE t").expect("repair");
    // The window ends at the last repair I/O: the verification below and
    // the close do a few more ops that pass 2's crashed phase never
    // replays, so a crash scheduled there would never fire.
    let total = injector.ops();
    assert_eq!(
        db.query_sql("SELECT COUNT(*) FROM t").unwrap()[0][0],
        Value::Int(ROWS)
    );
    drop(db);
    assert!(
        total > start + 30,
        "scrub+repair window too small to sweep ({start}..{total})"
    );

    // Pass 2: crash at every swept point inside that window. The setup
    // phase is identical (same seed, same statements), so absolute I/O
    // indices line up run to run.
    let mut k = start;
    let mut swept = 0u64;
    while k < total {
        let at = format!("repair crash point {k}/{total}");
        let (env, injector) = DatabaseEnv::fresh_with_plan(FaultPlan::new(SEED).crash_at(k));
        let db = reopen(&env);
        build_indexed_table(&db, ROWS);
        drop(db);
        flip_byte(&env, 3, 0);
        let crashed = starburst_dmx::open_env(env.clone(), DatabaseConfig::default())
            .map(|db| {
                let _ = db
                    .execute_sql("CHECK TABLE t")
                    .and_then(|_| db.execute_sql("REPAIR TABLE t"));
            })
            .is_err();
        assert!(
            crashed || injector.is_crashed() || injector.injected() > 0,
            "{at}: the scheduled crash never fired"
        );

        // Reopen healthy; drive the pipeline to convergence.
        injector.clear();
        let db = reopen(&env);
        if !db.quarantined().is_empty() || db.execute_sql("CHECK TABLE t").map(|_| ()).is_ok() {
            // The index may still be damaged (crash before the rebuild
            // committed) or already healed; REPAIR is idempotent either
            // way — run it whenever the scrub left a fence.
            if !db.quarantined().is_empty() {
                db.execute_sql("REPAIR TABLE t")
                    .unwrap_or_else(|e| panic!("{at}: repair after crash failed: {e}"));
            }
        }
        assert!(db.quarantined().is_empty(), "{at}: fence not lifted");
        let n = db.query_sql("SELECT COUNT(*) FROM t").expect("count")[0][0]
            .as_int()
            .unwrap();
        assert_eq!(n, ROWS, "{at}: repair lost committed base records");
        for id in 0..ROWS {
            let keyed = db
                .query_sql(&format!("SELECT v FROM t WHERE id = {id}"))
                .unwrap_or_else(|e| panic!("{at}: keyed lookup failed: {e}"));
            assert_eq!(keyed.len(), 1, "{at}: index disagrees on id {id}");
        }
        swept += 1;
        k += stride;
    }
    assert!(swept > 0, "sweep covered no crash point");
}

/// Unrepairable damage reaches the typed terminal state: repair fails
/// with `RepairImpossible`, the relation stays fenced, and `sys.repairs`
/// records the terminal outcome.
#[test]
fn unrepairable_damage_is_a_typed_terminal_state() {
    let (env, injector) = DatabaseEnv::fresh_with_plan(FaultPlan::new(SEED));
    let db = reopen(&env);
    // A btree-*organized* table (no separate base): salvage needs the
    // storage method to support it; damage plus an unsupported salvage
    // is permanent.
    db.execute_sql("CREATE TABLE b (id INT NOT NULL) USING btree WITH (key=id)")
        .expect("ddl");
    for i in 0..6 {
        db.execute_sql(&format!("INSERT INTO b VALUES ({i})"))
            .expect("dml");
    }
    drop(db);
    flip_byte(&env, 2, 0); // file 2 = the btree-organized table
    injector.clear();

    let db = reopen(&env);
    let rel = db.catalog().get_by_name("b").unwrap().id;
    let _ = db.query_sql("SELECT id FROM b").expect_err("fenced");

    match db.execute_sql("REPAIR TABLE b") {
        Err(DmxError::RepairImpossible { relation, .. }) => assert_eq!(relation, rel),
        other => panic!("expected RepairImpossible, got {other:?}"),
    }
    assert!(db.terminal_damage(rel).is_some(), "terminal state recorded");
    assert_eq!(db.quarantined().len(), 1, "still fenced");
    // Repeat attempts short-circuit on the terminal state.
    assert!(matches!(
        db.execute_sql("REPAIR TABLE b"),
        Err(DmxError::RepairImpossible { .. })
    ));
    let repairs = db.query_sql("SELECT outcome FROM sys.repairs").unwrap();
    assert!(repairs.iter().any(|r| r[0] == Value::from("terminal")));
    assert!(db.metrics_snapshot().counter("repair.failures") >= 1);
}
