//! Deterministic crash-point sweep and end-to-end corruption handling.
//!
//! The sweep first runs a mixed DDL/DML workload against a pass-through
//! fault plan to count its I/O operations (one shared index spans disk
//! *and* log), then replays the same workload once per crash point k:
//! I/O index k (0-based) fails as a simulated crash, every volatile structure is
//! dropped, the injector is cleared (healthy I/O again) and the database
//! is reopened so restart recovery runs. After every crash point the
//! recovered state must be *some* transaction-consistent prefix of the
//! workload: each autocommitted statement either happened entirely or
//! not at all, reopening is idempotent, and secondary structures agree
//! with base relations.
//!
//! `FAULT_SWEEP_STRIDE` (default 1 = every point) bounds the sweep for
//! smoke runs, e.g. `FAULT_SWEEP_STRIDE=16 cargo test --test fault_sweep`.

// Examples and integration-test harnesses are exempt from the runtime
// panic discipline: failures here should abort loudly.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::Arc;

use starburst_dmx::prelude::*;
use starburst_dmx::query::SqlExt;

const SEED: u64 = 0xDEC0_DE05;
const ROWS: i64 = 12;

fn reopen(env: &DatabaseEnv) -> Arc<Database> {
    starburst_dmx::open_env(env.clone(), DatabaseConfig::default()).expect("reopen after crash")
}

/// The swept workload: DDL (heap + btree-organized tables, a unique
/// index), inserts, updates, deletes and a drop — each statement its own
/// transaction. Stops at the first error (the injected crash).
fn workload(db: &Arc<Database>) -> Result<()> {
    db.execute_sql("CREATE TABLE t (id INT NOT NULL, v STRING)")?;
    db.execute_sql("CREATE INDEX t_id ON t USING btree (id) WITH (unique=true)")?;
    for i in 0..ROWS {
        db.execute_sql(&format!("INSERT INTO t VALUES ({i}, 'v{i}')"))?;
    }
    db.execute_sql("CREATE TABLE u (id INT NOT NULL) USING btree WITH (key=id)")?;
    for i in 0..4 {
        db.execute_sql(&format!("INSERT INTO u VALUES ({i})"))?;
    }
    db.execute_sql("UPDATE t SET v = 'updated' WHERE id = 3")?;
    db.execute_sql(&format!("DELETE FROM t WHERE id = {}", ROWS - 1))?;
    db.execute_sql("DROP TABLE u")?;
    Ok(())
}

/// Transaction-consistency invariants that must hold after recovery at
/// *any* crash point. Returns a state fingerprint for idempotence checks.
fn check_invariants(db: &Arc<Database>, at: &str) -> Vec<String> {
    let mut fingerprint = Vec::new();
    // Table t may not exist yet (crash before its CREATE committed).
    let rows = match db.query_sql("SELECT id, v FROM t") {
        Ok(rows) => rows,
        Err(DmxError::NotFound(_)) => {
            fingerprint.push("t: absent".to_string());
            return fingerprint;
        }
        Err(e) => panic!("{at}: unexpected error scanning t: {e}"),
    };
    // Statement atomicity: every surviving row is exactly what one
    // committed statement wrote.
    for row in &rows {
        let id = row[0].as_int().expect("id is INT");
        let v = row[1].as_str().expect("v is STRING");
        assert!(
            (0..ROWS).contains(&id),
            "{at}: row id {id} out of workload range"
        );
        assert!(
            v == format!("v{id}") || (id == 3 && v == "updated"),
            "{at}: row ({id}, {v:?}) is not a committed statement's image"
        );
    }
    let mut ids: Vec<i64> = rows.iter().map(|r| r[0].as_int().expect("int")).collect();
    ids.sort_unstable();
    let mut deduped = ids.clone();
    deduped.dedup();
    assert_eq!(ids, deduped, "{at}: duplicate ids after recovery");
    // The unique index (if it committed) must agree with the base table
    // for every surviving id.
    for &id in &ids {
        let via_index = db
            .query_sql(&format!("SELECT v FROM t WHERE id = {id}"))
            .unwrap_or_else(|e| panic!("{at}: keyed lookup of id {id} failed: {e}"));
        assert_eq!(via_index.len(), 1, "{at}: index disagrees on id {id}");
    }
    for row in &rows {
        fingerprint.push(format!(
            "t: {} {}",
            row[0].as_int().expect("int"),
            row[1].as_str().expect("str")
        ));
    }
    fingerprint.sort();
    // Table u: present (with consistent content) or fully absent.
    match db.query_sql("SELECT id FROM u") {
        Ok(urows) => {
            assert!(urows.len() <= 4, "{at}: u has more rows than inserted");
            fingerprint.push(format!("u: {} rows", urows.len()));
        }
        Err(DmxError::NotFound(_)) => fingerprint.push("u: absent".to_string()),
        Err(e) => panic!("{at}: unexpected error scanning u: {e}"),
    }
    fingerprint
}

fn sweep_stride() -> u64 {
    std::env::var("FAULT_SWEEP_STRIDE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&s| s > 0)
        .unwrap_or(1)
}

/// The tentpole: crash at every Nth I/O of the workload, reopen, verify.
#[test]
fn crash_point_sweep_recovers_consistently() {
    // Pass 1: count the workload's I/O operations on healthy devices.
    let (env, injector) = DatabaseEnv::fresh_with_plan(FaultPlan::new(SEED));
    let db = reopen(&env);
    workload(&db).expect("workload must succeed without faults");
    drop(db);
    let total = injector.ops();
    assert!(total > 50, "workload too small to sweep ({total} I/Os)");

    let stride = sweep_stride();
    let mut swept = 0u64;
    let mut k = 0;
    while k < total {
        let at = format!("crash point {k}/{total}");
        let (env, injector) = DatabaseEnv::fresh_with_plan(FaultPlan::new(SEED).crash_at(k));
        // The crash can fire during initial open (catalog bootstrap) —
        // that is a legitimate crash point too.
        let crashed_db = starburst_dmx::open_env(env.clone(), DatabaseConfig::default())
            .inspect(|db| {
                let _ = workload(db);
            })
            .ok();
        drop(crashed_db);
        assert!(
            injector.is_crashed() || injector.injected() > 0,
            "{at}: the scheduled crash never fired"
        );
        // Reopen on healthy I/O; restart recovery must succeed.
        injector.clear();
        let db = reopen(&env);
        let fp1 = check_invariants(&db, &at);
        drop(db);
        // Crashing again immediately after recovery (before any new work)
        // must be harmless: restart is idempotent.
        let db = reopen(&env);
        let fp2 = check_invariants(&db, &format!("{at}, second reopen"));
        assert_eq!(fp1, fp2, "{at}: restart is not idempotent");
        swept += 1;
        k += stride;
    }
    assert!(swept > 0, "sweep did not cover any crash point");
}

/// Steal/no-force under memory pressure (DESIGN.md §6): a pool small
/// enough that dirty pages belonging to in-flight transactions are
/// stolen — written back before their owner commits — swept with a crash
/// at every Nth I/O index. The WAL-before-evict rule makes every stolen
/// page reconcilable at restart: undo removes stolen-but-uncommitted
/// work, redo reinstates committed-but-unflushed work (commit forces
/// only the log), and the abandoned loser transaction never surfaces.
#[test]
fn steal_eviction_sweep_reconciles_stolen_pages() {
    const POOL_FRAMES: usize = 4;
    const BASE: i64 = 8;
    const BIG_LO: i64 = 100;
    const BIG_HI: i64 = 140;
    const LOSER_LO: i64 = 200;
    const LOSER_HI: i64 = 240;

    fn tiny() -> DatabaseConfig {
        DatabaseConfig {
            pool_frames: POOL_FRAMES,
            ..DatabaseConfig::default()
        }
    }

    // Wide rows so forty of them span several pages: with four frames the
    // pool cannot hold the working set and must steal dirty frames.
    fn wide(i: i64) -> Record {
        Record::new(vec![Value::Int(i), Value::from("p".repeat(400))])
    }

    /// Base rows autocommitted one by one, then one large multi-statement
    /// winner transaction, then an abandoned loser — both big enough that
    /// their dirty pages are evicted mid-transaction.
    fn steal_workload(db: &Arc<Database>) -> Result<()> {
        db.execute_sql("CREATE TABLE s (id INT NOT NULL, v STRING)")?;
        for i in 0..BASE {
            db.execute_sql(&format!("INSERT INTO s VALUES ({i}, 'v{i}')"))?;
        }
        let rd = db.catalog().get_by_name("s")?;
        let txn = db.begin();
        for i in BIG_LO..BIG_HI {
            db.insert(&txn, rd.id, wide(i))?;
        }
        db.commit(&txn)?;
        let loser = db.begin();
        for i in LOSER_LO..LOSER_HI {
            db.insert(&loser, rd.id, wide(i))?;
        }
        // Make the loser's log records durable so restart exercises real
        // undo of its stolen pages, not just a dropped volatile tail.
        db.services().log.force_all()?;
        drop(loser); // abandoned in flight
        Ok(())
    }

    /// After recovery at any crash point: base ids form a statement
    /// prefix, the winner transaction is all-or-nothing (its commit record
    /// either reached the durable log or did not), and the loser never
    /// surfaces even though its pages may have been stolen to disk.
    fn check_steal_invariants(db: &Arc<Database>, at: &str) {
        let rows = match db.query_sql("SELECT id FROM s") {
            Ok(rows) => rows,
            Err(DmxError::NotFound(_)) => return, // crashed before CREATE committed
            Err(e) => panic!("{at}: unexpected error scanning s: {e}"),
        };
        let mut base = Vec::new();
        let mut big = Vec::new();
        for row in &rows {
            let id = row[0].as_int().expect("id is INT");
            match id {
                0..BASE => base.push(id),
                BIG_LO..BIG_HI => big.push(id),
                _ => panic!("{at}: id {id} is stolen loser or phantom data"),
            }
        }
        base.sort_unstable();
        let expect_prefix: Vec<i64> = (0..base.len() as i64).collect();
        assert_eq!(
            base, expect_prefix,
            "{at}: base rows are not a statement prefix"
        );
        big.sort_unstable();
        assert!(
            big.is_empty() || big == (BIG_LO..BIG_HI).collect::<Vec<i64>>(),
            "{at}: winner transaction torn: {} of {} rows survived",
            big.len(),
            BIG_HI - BIG_LO,
        );
    }

    // Pass 1 on healthy devices: prove the pool actually steals (the
    // sweep below would be vacuous otherwise) and size the I/O stream.
    let (env, injector) = DatabaseEnv::fresh_with_plan(FaultPlan::new(SEED ^ 0x57EA));
    let db = starburst_dmx::open_env(env.clone(), tiny()).expect("open");
    steal_workload(&db).expect("workload must succeed without faults");
    let steals = db.metrics_snapshot().counter("pool.steals");
    assert!(
        steals > 0,
        "pool never stole a dirty frame — grow the workload"
    );
    drop(db);
    let total = injector.ops();
    assert!(total > 50, "workload too small to sweep ({total} I/Os)");

    let stride = sweep_stride();
    let mut k = 0;
    while k < total {
        let at = format!("steal crash point {k}/{total}");
        let (env, injector) =
            DatabaseEnv::fresh_with_plan(FaultPlan::new(SEED ^ 0x57EA).crash_at(k));
        let crashed_db = starburst_dmx::open_env(env.clone(), tiny())
            .inspect(|db| {
                let _ = steal_workload(db);
            })
            .ok();
        drop(crashed_db);
        assert!(
            injector.is_crashed() || injector.injected() > 0,
            "{at}: the scheduled crash never fired"
        );
        injector.clear();
        let db = starburst_dmx::open_env(env.clone(), tiny()).expect("reopen after crash");
        check_steal_invariants(&db, &at);
        drop(db);
        // Restart is idempotent under steal too.
        let db = starburst_dmx::open_env(env.clone(), tiny()).expect("second reopen");
        check_steal_invariants(&db, &format!("{at}, second reopen"));
        k += stride;
    }
}

/// A corrupted relation is quarantined with a typed error while every
/// other relation keeps serving queries.
#[test]
fn corrupt_page_quarantines_one_relation_others_stay_usable() {
    let (env, injector) = DatabaseEnv::fresh_with_plan(FaultPlan::new(SEED));
    let db = reopen(&env);
    db.execute_sql("CREATE TABLE healthy (id INT NOT NULL)")
        .expect("ddl");
    db.execute_sql("CREATE TABLE victim (id INT NOT NULL)")
        .expect("ddl");
    for i in 0..5 {
        db.execute_sql(&format!("INSERT INTO healthy VALUES ({i})"))
            .expect("dml");
        db.execute_sql(&format!("INSERT INTO victim VALUES ({i})"))
            .expect("dml");
    }
    let victim_rel = db.catalog().get_by_name("victim").expect("victim").id;
    drop(db);

    // Flip one byte in the victim's data file, below the checksum layer.
    // Files: 1 = catalog, 2 = healthy, 3 = victim (creation order).
    let victim_file = starburst_dmx::types::FileId(3);
    let pid = starburst_dmx::types::PageId::new(victim_file, 0);
    let mut page = starburst_dmx::page::Page::new();
    env.disk
        .read_page(pid, &mut page)
        .expect("read victim page");
    page.raw_mut()[100] ^= 0x40;
    env.disk.write_page(pid, &page).expect("write corrupt page");
    injector.clear();

    let db = reopen(&env);
    // The corrupt relation fails with the typed quarantine error…
    let err = db
        .query_sql("SELECT id FROM victim")
        .expect_err("must fail");
    match err {
        DmxError::RelationQuarantined { relation, .. } => assert_eq!(relation, victim_rel),
        other => panic!("expected RelationQuarantined, got {other}"),
    }
    assert_eq!(db.quarantined().len(), 1, "exactly one relation fenced");
    // …and stays fenced on repeat access without re-reading the disk.
    let again = db.query_sql("SELECT id FROM victim").expect_err("fenced");
    assert!(matches!(again, DmxError::RelationQuarantined { .. }));
    // Writes are fenced too.
    let w = db
        .execute_sql("INSERT INTO victim VALUES (99)")
        .expect_err("fenced write");
    assert!(matches!(w, DmxError::RelationQuarantined { .. }));
    // Every other relation keeps serving reads and writes.
    let rows = db
        .query_sql("SELECT id FROM healthy")
        .expect("healthy read");
    assert_eq!(rows.len(), 5);
    db.execute_sql("INSERT INTO healthy VALUES (5)")
        .expect("healthy write");
    // clear_quarantine gives one more chance; persistent damage re-fences.
    assert!(db.clear_quarantine(victim_rel));
    let refenced = db
        .query_sql("SELECT id FROM victim")
        .expect_err("still corrupt");
    assert!(matches!(refenced, DmxError::RelationQuarantined { .. }));
}

fn corrupt_catalog_image(env: &DatabaseEnv) {
    // Flip one byte of the catalog image (file 1, page 0) under the
    // checksum layer, as silent media rot would.
    let pid = starburst_dmx::types::PageId::new(starburst_dmx::types::FileId(1), 0);
    let mut page = starburst_dmx::page::Page::new();
    env.disk
        .read_page(pid, &mut page)
        .expect("read catalog page");
    page.raw_mut()[100] ^= 0x04;
    env.disk
        .write_page(pid, &page)
        .expect("write corrupt catalog page");
}

/// A catalog image corrupted after its deferred intent completed (media
/// rot on a cleanly shut-down database) cannot be reconstructed from the
/// log: reopen must surface the corruption instead of silently resetting
/// the catalog, and must leave the damaged image in place.
#[test]
fn catalog_rot_after_clean_shutdown_fails_reopen_loudly() {
    let env = DatabaseEnv::fresh();
    let db = starburst_dmx::open_env(env.clone(), DatabaseConfig::default()).expect("open");
    db.execute_sql("CREATE TABLE t (id INT NOT NULL)")
        .expect("ddl");
    db.execute_sql("INSERT INTO t VALUES (1)").expect("dml");
    drop(db); // clean shutdown: every catalog intent has a durable done
    corrupt_catalog_image(&env);

    // The reopen — and a second attempt — must fail with the typed
    // corruption error. The second attempt proves the failed open did not
    // persist over the damaged image (evidence preserved for out-of-band
    // repair).
    for attempt in ["reopen over a rotted catalog", "second attempt"] {
        match starburst_dmx::open_env(env.clone(), DatabaseConfig::default()) {
            Err(DmxError::Corrupt(_)) => {}
            Err(e) => panic!("{attempt}: expected Corrupt, got {e}"),
            Ok(_) => panic!("{attempt}: must fail instead of resetting the catalog"),
        }
    }
}

/// A corrupt catalog image *with* a pending (committed, un-done) catalog
/// intent in the durable log is exactly the crash-mid-DDL-commit window:
/// reopen tolerates the damage and restart rebuilds the image from the
/// intent.
#[test]
fn corrupt_catalog_with_pending_intent_is_rebuilt_at_restart() {
    use starburst_dmx::types::{Lsn, TxnId};
    use starburst_dmx::wal::{LogBody, LogManager};

    let env = DatabaseEnv::fresh();
    let db = starburst_dmx::open_env(env.clone(), DatabaseConfig::default()).expect("open");
    db.execute_sql("CREATE TABLE t (id INT NOT NULL)")
        .expect("ddl");
    db.execute_sql("INSERT INTO t VALUES (7)").expect("dml");
    let image = db.catalog().serialize();
    drop(db);

    // Simulate a crash after a DDL commit point but before the catalog
    // image write completed: a committed catalog intent with no
    // DeferredDone sits in the durable log while the on-disk image is
    // torn.
    let log = LogManager::open(env.stable_log.clone());
    let t = TxnId(1000);
    let b = log.append(t, Lsn::NULL, LogBody::Begin);
    let i = log.append(
        t,
        b,
        LogBody::DeferredIntent {
            payload: starburst_dmx::core::undo::encode_catalog_intent(&image),
        },
    );
    log.append(t, i, LogBody::Commit);
    log.force_all().expect("force intent");
    drop(log);
    corrupt_catalog_image(&env);

    let db = starburst_dmx::open_env(env.clone(), DatabaseConfig::default())
        .expect("restart rebuilds the catalog from the pending intent");
    let rows = db.query_sql("SELECT id FROM t").expect("t readable");
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0][0].as_int().expect("int"), 7);
}

/// Transient faults never reach the caller: the buffer manager and log
/// force retry them away, so a workload peppered with transient errors
/// completes exactly like a clean run.
#[test]
fn transient_faults_are_absorbed_by_retries() {
    let mut plan = FaultPlan::new(SEED);
    for k in (5..400).step_by(23) {
        plan = plan.transient_at(k);
    }
    let (env, injector) = DatabaseEnv::fresh_with_plan(plan);
    let db = reopen(&env);
    workload(&db).expect("transient faults must be invisible to the workload");
    assert!(
        injector.injected() > 0,
        "plan never fired — workload shrank below the fault window"
    );
    let n = db.query_sql("SELECT COUNT(*) FROM t").expect("count")[0][0]
        .as_int()
        .expect("int");
    assert_eq!(n, ROWS - 1, "one row was deleted by the workload");
}

/// A permanent I/O failure surfaces as a hard error (no silent data
/// loss), and the database remains reopenable afterwards.
#[test]
fn permanent_fault_fails_statement_but_database_recovers() {
    let (env, injector) = DatabaseEnv::fresh_with_plan(FaultPlan::new(SEED).permanent_at(40));
    let db = reopen(&env);
    let err = workload(&db).expect_err("permanent fault must surface");
    assert!(
        matches!(err, DmxError::Io(_)),
        "expected a hard I/O error, got {err}"
    );
    drop(db);
    injector.clear();
    let db = reopen(&env);
    check_invariants(&db, "after permanent fault");
}
