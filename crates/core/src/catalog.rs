//! The catalog: descriptor management.
//!
//! "Instead of requiring each relation storage or access path to store
//! and access its own descriptor data, the common system will maintain
//! and manage relation descriptors. … This strategy allows the common
//! system to fetch the relation descriptors from the system catalogs at
//! query compilation time and store them in the query access plan."
//!
//! The in-memory catalog hands out `Arc<RelationDescriptor>` snapshots
//! (what plans embed). Persistence: the whole catalog serializes into a
//! dedicated disk file ([`CATALOG_FILE`]); durability across crashes is
//! guaranteed by logging the serialized image as a deferred intent at
//! commit of DDL transactions (see `database.rs`), which restart re-drives
//! idempotently.

use std::collections::HashMap;
use std::sync::Arc;

use dmx_types::sync::RwLock;

use dmx_page::{DiskManager, Page, PAGE_SIZE};
use dmx_types::fault::{with_io_retries, MAX_IO_RETRIES};
use dmx_types::{DmxError, FileId, PageId, RelationId, Result};

use crate::descriptor::RelationDescriptor;

/// The fixed file holding the persisted catalog (first file ever created
/// on a fresh disk).
pub const CATALOG_FILE: FileId = FileId(1);

/// Usable bytes per catalog page (after the generic page header).
const PAGE_BODY: usize = PAGE_SIZE - 16;

#[derive(Default)]
struct CatState {
    relations: HashMap<RelationId, Arc<RelationDescriptor>>,
    by_name: HashMap<String, RelationId>,
    next_rel: u32,
}

/// The relation catalog.
#[derive(Default)]
pub struct Catalog {
    state: RwLock<CatState>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Arc<Self> {
        Arc::new(Catalog::default())
    }

    /// Allocates the next relation id.
    pub fn next_relation_id(&self) -> RelationId {
        let mut st = self.state.write();
        st.next_rel += 1;
        RelationId(st.next_rel)
    }

    /// Installs a new relation descriptor (fails on duplicate name).
    pub fn insert(&self, rd: RelationDescriptor) -> Result<Arc<RelationDescriptor>> {
        let mut st = self.state.write();
        let key = rd.name.to_ascii_lowercase();
        if st.by_name.contains_key(&key) {
            return Err(DmxError::Duplicate(format!("relation {}", rd.name)));
        }
        let arc = Arc::new(rd);
        st.by_name.insert(key, arc.id);
        st.relations.insert(arc.id, arc.clone());
        Ok(arc)
    }

    /// Replaces a relation's descriptor with a new version (DDL on
    /// attachments). The name must be unchanged.
    pub fn replace(&self, rd: RelationDescriptor) -> Result<Arc<RelationDescriptor>> {
        let mut st = self.state.write();
        if !st.relations.contains_key(&rd.id) {
            return Err(DmxError::NotFound(format!("relation {}", rd.id)));
        }
        let arc = Arc::new(rd);
        st.relations.insert(arc.id, arc.clone());
        Ok(arc)
    }

    /// Removes a relation, returning its descriptor.
    pub fn remove(&self, id: RelationId) -> Result<Arc<RelationDescriptor>> {
        let mut st = self.state.write();
        let rd = st
            .relations
            .remove(&id)
            .ok_or_else(|| DmxError::NotFound(format!("relation {id}")))?;
        st.by_name.remove(&rd.name.to_ascii_lowercase());
        Ok(rd)
    }

    /// Descriptor by id.
    pub fn get(&self, id: RelationId) -> Result<Arc<RelationDescriptor>> {
        self.state
            .read()
            .relations
            .get(&id)
            .cloned()
            .ok_or_else(|| DmxError::NotFound(format!("relation {id}")))
    }

    /// Descriptor by name (case-insensitive).
    pub fn get_by_name(&self, name: &str) -> Result<Arc<RelationDescriptor>> {
        let st = self.state.read();
        let id = st
            .by_name
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| DmxError::NotFound(format!("relation {name}")))?;
        Ok(st.relations[id].clone())
    }

    /// All descriptors, by id order.
    pub fn list(&self) -> Vec<Arc<RelationDescriptor>> {
        let st = self.state.read();
        let mut v: Vec<_> = st.relations.values().cloned().collect();
        v.sort_by_key(|rd| rd.id);
        v
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.state.read().relations.len()
    }

    /// True when no relations exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serializes the whole catalog.
    pub fn serialize(&self) -> Vec<u8> {
        let st = self.state.read();
        let mut out = Vec::new();
        out.extend_from_slice(&st.next_rel.to_le_bytes());
        let mut rels: Vec<_> = st.relations.values().collect();
        rels.sort_by_key(|rd| rd.id);
        out.extend_from_slice(&(rels.len() as u32).to_le_bytes());
        for rd in rels {
            let bytes = rd.encode();
            out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            out.extend_from_slice(&bytes);
        }
        out
    }

    /// Restores the catalog from serialized bytes (replacing current
    /// contents).
    pub fn restore(&self, bytes: &[u8]) -> Result<()> {
        let corrupt = || DmxError::Corrupt("truncated catalog".into());
        let mut pos = 0usize;
        let u32at = |pos: &mut usize| -> Result<u32> {
            let v = dmx_types::bytes::le_u32(bytes, *pos).ok_or_else(corrupt)?;
            *pos += 4;
            Ok(v)
        };
        let next_rel = u32at(&mut pos)?;
        let count = u32at(&mut pos)? as usize;
        let mut st = CatState {
            next_rel,
            ..Default::default()
        };
        for _ in 0..count {
            let len = u32at(&mut pos)? as usize;
            let desc = bytes.get(pos..pos + len).ok_or_else(corrupt)?;
            pos += len;
            let rd = Arc::new(RelationDescriptor::decode(desc)?);
            st.by_name.insert(rd.name.to_ascii_lowercase(), rd.id);
            st.relations.insert(rd.id, rd);
        }
        *self.state.write() = st;
        Ok(())
    }

    /// Writes serialized catalog bytes to the catalog file, growing it as
    /// needed. Layout: page 0 starts with a u64 total length, then raw
    /// bytes continue across page bodies.
    pub fn write_image(disk: &Arc<dyn DiskManager>, image: &[u8]) -> Result<()> {
        if !disk.file_exists(CATALOG_FILE) {
            let f = disk.create_file()?;
            if f != CATALOG_FILE {
                return Err(DmxError::Internal(format!(
                    "catalog file allocated as {f}, expected {CATALOG_FILE}"
                )));
            }
        }
        let mut framed = Vec::with_capacity(8 + image.len());
        framed.extend_from_slice(&(image.len() as u64).to_le_bytes());
        framed.extend_from_slice(image);
        let pages_needed = framed.len().div_ceil(PAGE_BODY).max(1);
        while (disk.page_count(CATALOG_FILE)? as usize) < pages_needed {
            disk.allocate_page(CATALOG_FILE)?;
        }
        let mut page = Page::new();
        for (i, chunk) in framed.chunks(PAGE_BODY).enumerate() {
            // bounds: chunks(PAGE_BODY) yields at most PAGE_BODY bytes.
            page.body_mut()[..chunk.len()].copy_from_slice(chunk);
            page.stamp_crc();
            let pid = PageId::new(CATALOG_FILE, i as u32);
            with_io_retries(MAX_IO_RETRIES, || disk.write_page(pid, &page))?;
        }
        Ok(())
    }

    /// Reads the persisted catalog image, or `None` when the disk has no
    /// catalog yet.
    pub fn read_image(disk: &Arc<dyn DiskManager>) -> Result<Option<Vec<u8>>> {
        if !disk.file_exists(CATALOG_FILE) || disk.page_count(CATALOG_FILE)? == 0 {
            return Ok(None);
        }
        let mut page = Page::new();
        Self::read_catalog_page(disk, 0, &mut page)?;
        let len = dmx_types::bytes::le_u64(page.body(), 0)
            .ok_or_else(|| DmxError::Corrupt("catalog header short".into()))?
            as usize;
        let mut framed = Vec::with_capacity(8 + len);
        // bounds: the copy lengths are clamped to PAGE_BODY.
        framed.extend_from_slice(&page.body()[..PAGE_BODY.min(8 + len)]);
        let mut page_no = 1u32;
        while framed.len() < 8 + len {
            Self::read_catalog_page(disk, page_no, &mut page)?;
            let take = (8 + len - framed.len()).min(PAGE_BODY);
            // bounds: `take` is clamped to PAGE_BODY.
            framed.extend_from_slice(&page.body()[..take]);
            page_no += 1;
        }
        framed
            .get(8..8 + len)
            .map(|b| Some(b.to_vec()))
            .ok_or_else(|| DmxError::Corrupt("catalog image short".into()))
    }

    /// Reads one catalog page with transient-fault retries and checksum
    /// verification; a corrupt catalog is unrecoverable at this layer and
    /// surfaces as [`DmxError::Corrupt`].
    fn read_catalog_page(disk: &Arc<dyn DiskManager>, page_no: u32, page: &mut Page) -> Result<()> {
        let pid = PageId::new(CATALOG_FILE, page_no);
        with_io_retries(MAX_IO_RETRIES, || disk.read_page(pid, page))?;
        if page.verify_crc() {
            Ok(())
        } else {
            Err(DmxError::Corrupt(format!(
                "catalog page {page_no} failed checksum"
            )))
        }
    }

    /// Persists the current catalog to disk.
    pub fn persist(&self, disk: &Arc<dyn DiskManager>) -> Result<()> {
        Self::write_image(disk, &self.serialize())
    }

    /// Loads the catalog from disk (no-op on a fresh disk).
    pub fn load(&self, disk: &Arc<dyn DiskManager>) -> Result<()> {
        if let Some(image) = Self::read_image(disk)? {
            self.restore(&image)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmx_page::MemDisk;
    use dmx_types::{ColumnDef, DataType, Schema, SmTypeId};

    fn rd(id: u32, name: &str) -> RelationDescriptor {
        let schema = Schema::new(vec![ColumnDef::not_null("id", DataType::Int)]).unwrap();
        RelationDescriptor::new(RelationId(id), name, schema, SmTypeId(1), vec![])
    }

    #[test]
    fn insert_get_remove() {
        let c = Catalog::new();
        let id = c.next_relation_id();
        c.insert(rd(id.0, "emp")).unwrap();
        assert_eq!(c.get(id).unwrap().name, "emp");
        assert_eq!(c.get_by_name("EMP").unwrap().id, id);
        assert!(c.insert(rd(99, "Emp")).is_err(), "names case-insensitive");
        let removed = c.remove(id).unwrap();
        assert_eq!(removed.name, "emp");
        assert!(c.get(id).is_err());
        assert!(c.remove(id).is_err());
    }

    #[test]
    fn replace_updates_version_holders() {
        let c = Catalog::new();
        let id = c.next_relation_id();
        let old = c.insert(rd(id.0, "emp")).unwrap();
        let mut newer = (*old).clone();
        newer.version += 1;
        c.replace(newer).unwrap();
        assert_eq!(c.get(id).unwrap().version, old.version + 1);
        // old snapshot still usable by plans that embedded it
        assert_eq!(old.name, "emp");
        assert!(c.replace(rd(42, "ghost")).is_err());
    }

    #[test]
    fn ids_monotonic_across_restore() {
        let c = Catalog::new();
        let a = c.next_relation_id();
        c.insert(rd(a.0, "a")).unwrap();
        let image = c.serialize();
        let c2 = Catalog::new();
        c2.restore(&image).unwrap();
        let b = c2.next_relation_id();
        assert!(b > a, "restored next_rel continues the sequence");
        assert_eq!(c2.len(), 1);
    }

    #[test]
    fn persist_and_load_roundtrip_via_disk() {
        let disk: Arc<dyn DiskManager> = Arc::new(MemDisk::new());
        let c = Catalog::new();
        for name in ["emp", "dept", "proj"] {
            let id = c.next_relation_id();
            c.insert(rd(id.0, name)).unwrap();
        }
        c.persist(&disk).unwrap();
        let c2 = Catalog::new();
        c2.load(&disk).unwrap();
        assert_eq!(c2.len(), 3);
        assert_eq!(c2.get_by_name("dept").unwrap().name, "dept");
        // re-persist after growth (forces multi-write path)
        for i in 0..50 {
            let id = c2.next_relation_id();
            c2.insert(rd(id.0, &format!("t{i}"))).unwrap();
        }
        c2.persist(&disk).unwrap();
        let c3 = Catalog::new();
        c3.load(&disk).unwrap();
        assert_eq!(c3.len(), 53);
    }

    #[test]
    fn load_on_fresh_disk_is_noop() {
        let disk: Arc<dyn DiskManager> = Arc::new(MemDisk::new());
        let c = Catalog::new();
        c.load(&disk).unwrap();
        assert!(c.is_empty());
    }
}
