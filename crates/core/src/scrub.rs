//! Online integrity scrubbing and the automatic repair pipeline.
//!
//! The extension architecture makes self-healing storage almost free:
//! every access path is *derived* state, rebuildable from its base
//! relation through the same generic registration interfaces that
//! created it, and every storage structure announces its page files
//! through [`StorageMethod::storage_files`] / `Attachment::storage_files`.
//! The scrubber walks those pages through the buffer manager (verifying
//! checksums exactly as a normal read would), cross-checks base and
//! attachment agreement through the generic scan interfaces, and fences
//! damaged relations *proactively* — before a query trips over them.
//!
//! The repair pipeline then classifies the damage:
//!
//! * **attachment damage** — the instance is dropped and re-created
//!   through the ordinary attachment registration path (parameters
//!   recovered via `Attachment::reconstruct_params`), so the rebuild is
//!   WAL-logged like any DDL and a crash mid-repair is just another
//!   fault-sweep point;
//! * **base damage** — the storage method salvages every readable record
//!   ([`StorageMethod::salvage`]), the records are reloaded into a fresh
//!   instance (built inside a temporary relation so the loader's WAL
//!   records never resolve against the damaged file at restart), the
//!   descriptor is swapped, and the page-backed attachments are rebuilt
//!   on top; unreadable records are counted as lost.
//!
//! A successful repair verifies itself with another scrub pass and lifts
//! the quarantine. Retries use the deterministic yield-based backoff of
//! the fault layer; exhausted retries (or an unsalvageable storage
//! method) produce the typed terminal state
//! [`DmxError::RepairImpossible`] and the relation stays fenced.

use std::collections::BTreeSet;
use std::sync::Arc;

use dmx_lock::{LockMode, LockName};
use dmx_txn::{Transaction, TxnEvent};
use dmx_types::obs::ObsEvent;
use dmx_types::{fault, AttrList, DmxError, Lsn, PageId, Record, RelationId, Result};
use dmx_wal::LogBody;

use crate::access::AccessQuery;
use crate::attachment::Attachment;
use crate::context::ExecCtx;
use crate::database::Database;
use crate::deps::DepKey;
use crate::descriptor::AttachmentInstance;
use crate::descriptor::RelationDescriptor;
use crate::undo::{encode_drop_att_intent, encode_drop_sm_intent};

/// How many times the repair pipeline re-drives itself before declaring
/// the damage permanent.
pub const MAX_REPAIR_ATTEMPTS: u32 = 3;

/// What the repair pipeline did to heal a relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairAction {
    /// No structural repair was needed (verification alone settled it).
    None,
    /// Damaged attachment instances were dropped and re-created from the
    /// intact base through the ordinary registration path.
    Rebuild,
    /// The base storage was salvaged record-by-record into a fresh
    /// instance and every page-backed attachment rebuilt on top.
    Salvage,
}

impl RepairAction {
    /// Stable lowercase label (the `sys.repairs` `action` column).
    pub fn as_str(&self) -> &'static str {
        match self {
            RepairAction::None => "none",
            RepairAction::Rebuild => "rebuild",
            RepairAction::Salvage => "salvage",
        }
    }
}

/// One completed repair attempt series, recorded in `sys.repairs`.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairOutcome {
    pub relation: RelationId,
    pub name: String,
    pub action: RepairAction,
    /// True when the relation left repair healthy (quarantine lifted);
    /// false is the terminal state — permanently damaged, still fenced.
    pub healthy: bool,
    /// Repair attempts consumed (1-based).
    pub attempts: u32,
    /// Records present after the repair (salvage: records recovered).
    pub records_recovered: u64,
    /// Records the salvage scan could not read back.
    pub records_lost: u64,
    /// The damage that triggered the repair, or the terminal reason.
    pub detail: String,
}

/// The result of scrubbing one relation.
#[derive(Debug, Clone, PartialEq)]
pub struct ScrubReport {
    pub relation: RelationId,
    pub name: String,
    /// Pages that verified clean across base and attachment files.
    pub pages_checked: u64,
    /// Human-readable damage findings, deterministic order (base files
    /// first, then attachments in type-id order).
    pub damage: Vec<String>,
    /// True when this scrub pass fenced the relation off.
    pub quarantined: bool,
}

impl ScrubReport {
    /// True when the scrub found nothing wrong.
    pub fn healthy(&self) -> bool {
        self.damage.is_empty()
    }
}

/// Walks every page of `files` through the buffer manager, recording a
/// damage finding for each page whose read fails checksum verification
/// even after the buffer manager's retries.
fn walk_files(
    db: &Arc<Database>,
    files: &[dmx_types::FileId],
    what: &str,
    report: &mut ScrubReport,
) -> Result<()> {
    let pool = &db.services().pool;
    for &file in files {
        let page_count = match pool.disk().page_count(file) {
            Ok(n) => n,
            Err(DmxError::NotFound(_)) => continue,
            Err(e) => return Err(e),
        };
        for page_no in 0..page_count {
            db.counters().scrub_pages.incr();
            match pool.fetch(PageId::new(file, page_no)) {
                Ok(_pin) => report.pages_checked += 1,
                Err(DmxError::Corrupt(reason)) => report
                    .damage
                    .push(format!("{what}: page {page_no} of {file:?}: {reason}")),
                Err(e) => return Err(e),
            }
        }
    }
    Ok(())
}

/// True when any page of `files` fails checksum verification (the repair
/// classifier's question; needs no transaction).
fn files_damaged(db: &Arc<Database>, files: &[dmx_types::FileId]) -> Result<bool> {
    let mut probe = ScrubReport {
        relation: RelationId(0),
        name: String::new(),
        pages_checked: 0,
        damage: Vec::new(),
        quarantined: false,
    };
    walk_files(db, files, "probe", &mut probe)?;
    Ok(!probe.damage.is_empty())
}

/// The base relation's record-key set via the storage method's generic
/// scan (empty projection: keys are all the cross-check needs).
fn base_key_set(ctx: &ExecCtx<'_>, rd: &RelationDescriptor) -> Result<BTreeSet<Vec<u8>>> {
    let sm = ctx.db.registry().storage(rd.sm)?;
    let mut scan = sm.open_scan(ctx, rd, crate::access::KeyRange::all(), None, Some(vec![]))?;
    let mut keys = BTreeSet::new();
    while let Some(item) = scan.next(ctx)? {
        keys.insert(item.key.as_bytes().to_vec());
    }
    Ok(keys)
}

/// The record-key set served by one attachment instance, via its generic
/// scan. `None` when the instance does not expose record-keyed full
/// scans (derived items, key-equals-only paths) — those are skipped.
fn attachment_key_set(
    ctx: &ExecCtx<'_>,
    rd: &RelationDescriptor,
    att: &dyn Attachment,
    inst: &AttachmentInstance,
) -> Result<Option<BTreeSet<Vec<u8>>>> {
    let mut scan = match att.open_scan(ctx, rd, inst, &AccessQuery::All) {
        Ok(s) => s,
        Err(DmxError::Unsupported(_)) => return Ok(None),
        Err(e) => return Err(e),
    };
    if !scan.items_are_record_keys() {
        return Ok(None);
    }
    let mut keys = BTreeSet::new();
    while let Some(item) = scan.next(ctx)? {
        keys.insert(item.key.as_bytes().to_vec());
    }
    Ok(Some(keys))
}

/// Scrubs one relation: verifies every base and attachment page's
/// checksum through the buffer manager, then (when all pages are clean)
/// cross-checks that every record-keyed attachment agrees with the base
/// about exactly which records exist. Damage quarantines the relation
/// proactively, exactly as a failed production read would.
///
/// Online: runs inside the caller's transaction under a relation S lock,
/// so concurrent readers proceed and writers wait out the pass.
pub fn scrub_relation(
    db: &Arc<Database>,
    txn: &Arc<Transaction>,
    name: &str,
) -> Result<ScrubReport> {
    txn.check_active()?;
    let rd = db.catalog().get_by_name(name)?;
    let ctx = ExecCtx { db, txn };
    ctx.lock(LockName::Relation(rd.id), LockMode::S)?;
    db.counters().scrub_runs.incr();
    let mut report = ScrubReport {
        relation: rd.id,
        name: rd.name.clone(),
        pages_checked: 0,
        damage: Vec::new(),
        quarantined: false,
    };
    let sm = db.registry().storage(rd.sm)?;
    walk_files(db, &sm.storage_files(&rd.sm_desc), "base", &mut report)?;
    for (att_id, insts) in rd.attached_types() {
        let att = db.registry().attachment(att_id)?;
        for inst in insts {
            walk_files(
                db,
                &att.storage_files(&inst.desc),
                &format!("attachment {}", inst.name),
                &mut report,
            )?;
        }
    }
    // Cross-check only when every page verified: a torn page already
    // condemns the relation, and scanning through it would fail with a
    // less precise finding.
    if report.damage.is_empty() {
        let base_keys = base_key_set(&ctx, &rd)?;
        for (att_id, insts) in rd.attached_types() {
            let att = db.registry().attachment(att_id)?;
            if !att.supports_access() {
                continue;
            }
            for inst in insts {
                if let Some(keys) = attachment_key_set(&ctx, &rd, &*att, inst)? {
                    if keys != base_keys {
                        report.damage.push(format!(
                            "attachment {} disagrees with base ({} vs {} records)",
                            inst.name,
                            keys.len(),
                            base_keys.len()
                        ));
                    }
                }
            }
        }
    }
    if let Some(first) = report.damage.first() {
        db.counters().scrub_corrupt.incr();
        let _ = db.quarantine(rd.id, format!("scrub: {first}"));
        report.quarantined = true;
    }
    db.metrics().emit(ObsEvent {
        layer: "core",
        op: "scrub",
        target: rd.id.0 as u64,
        detail: report.damage.len() as u64,
    });
    Ok(report)
}

/// Scrubs every page-backed user relation (deterministic catalog order),
/// skipping relations already fenced off.
pub fn scrub_all(db: &Arc<Database>, txn: &Arc<Transaction>) -> Result<Vec<ScrubReport>> {
    let mut out = Vec::new();
    for rd in db.catalog().list() {
        if db.check_not_quarantined(rd.id).is_err() {
            continue;
        }
        let sm = db.registry().storage(rd.sm)?;
        let page_backed = !sm.storage_files(&rd.sm_desc).is_empty()
            || rd.attached_types().any(|(att_id, insts)| {
                db.registry().attachment(att_id).is_ok_and(|att| {
                    insts
                        .iter()
                        .any(|inst| !att.storage_files(&inst.desc).is_empty())
                })
            });
        if !page_backed {
            continue;
        }
        out.push(scrub_relation(db, txn, &rd.name)?);
    }
    Ok(out)
}

/// One damaged-attachment rebuild target: (attachment type name,
/// instance name, re-derived creation parameters).
type RebuildTarget = (String, String, AttrList);

/// Collects the rebuild targets among `rd`'s page-backed attachment
/// instances. With `only_damaged`, instances whose pages all verify are
/// skipped; otherwise every reconstructible page-backed instance is a
/// target (the logical-mismatch case, where checksums are clean but an
/// attachment disagrees with the base). An instance that *is* damaged
/// but cannot state its creation parameters makes the relation
/// unrepairable — the error propagates as the terminal verdict.
fn rebuild_targets(
    db: &Arc<Database>,
    rd: &RelationDescriptor,
    only_damaged: bool,
) -> Result<Vec<RebuildTarget>> {
    let mut targets = Vec::new();
    for (att_id, insts) in rd.attached_types() {
        let att = db.registry().attachment(att_id)?;
        for inst in insts {
            let files = att.storage_files(&inst.desc);
            if files.is_empty() {
                continue; // stateless instances cannot suffer media rot
            }
            if only_damaged {
                if !files_damaged(db, &files)? {
                    continue;
                }
                targets.push((
                    att.name().to_string(),
                    inst.name.clone(),
                    att.reconstruct_params(rd, &inst.desc)?,
                ));
            } else if let Ok(params) = att.reconstruct_params(rd, &inst.desc) {
                targets.push((att.name().to_string(), inst.name.clone(), params));
            }
        }
    }
    Ok(targets)
}

/// The number of records the relation *logically* holds, as witnessed by
/// an intact, record-keyed attachment instance — the attachment thesis
/// in reverse: derived state that survived the damage testifies to what
/// the base contained. `None` when no undamaged witness exists.
fn witness_record_count(
    db: &Arc<Database>,
    txn: &Arc<Transaction>,
    rd: &RelationDescriptor,
) -> Result<Option<u64>> {
    let ctx = ExecCtx { db, txn };
    for (att_id, insts) in rd.attached_types() {
        let att = db.registry().attachment(att_id)?;
        if !att.supports_access() {
            continue;
        }
        for inst in insts {
            let files = att.storage_files(&inst.desc);
            if files.is_empty() || files_damaged(db, &files)? {
                continue;
            }
            if let Some(keys) = attachment_key_set(&ctx, rd, &*att, inst)? {
                return Ok(Some(keys.len() as u64));
            }
        }
    }
    Ok(None)
}

/// Rebuilds attachment instances through the ordinary drop + register
/// path in one transaction, returning the base record count the rebuild
/// covered. Every step is WAL-logged; the final abort action (deferred
/// actions run in registration order) restores the original descriptor
/// whatever the intermediate drop/create snapshots put back first.
fn rebuild_attachments(
    db: &Arc<Database>,
    name: &str,
    rd: &Arc<RelationDescriptor>,
    targets: &[RebuildTarget],
) -> Result<u64> {
    db.with_txn(|txn| {
        let ctx = ExecCtx { db, txn };
        let covered = base_key_set(&ctx, rd)?.len() as u64;
        for (type_name, att_name, params) in targets {
            db.drop_attachment(txn, name, att_name)?;
            db.create_attachment(txn, name, type_name, att_name, params)?;
        }
        let catalog = db.catalog().clone();
        let original = (**rd).clone();
        txn.defer(
            TxnEvent::AtAbort,
            Box::new(move || catalog.replace(original).map(|_| ())),
        );
        Ok(covered)
    })
}

/// Salvages a damaged base: recovers every readable record, reloads them
/// into a fresh storage instance, swaps it into the descriptor and
/// rebuilds the page-backed attachments — all in one WAL-logged
/// transaction. The fresh instance is built inside a *temporary
/// relation* so the loader's log records reference a relation id that
/// never reaches a committed catalog image: restart after a mid-salvage
/// crash skips them instead of undoing against the wrong (damaged) file.
fn salvage_base(db: &Arc<Database>, name: &str, recovered: &mut u64, lost: &mut u64) -> Result<()> {
    db.with_txn(|txn| {
        let ctx = ExecCtx { db, txn };
        let rd = db.catalog().get_by_name(name)?;
        let rel = rd.id;
        let sm = db.registry().storage(rd.sm)?;
        // Loss accounting: an intact record-keyed attachment knows
        // exactly how many records the base held (catalog stats are only
        // as fresh as the last DDL commit, so they are the fallback).
        let expected = witness_record_count(db, txn, &rd)?.unwrap_or_else(|| rd.stats.records());

        // Capture rebuild parameters and drop targets before anything
        // changes. A page-backed attachment that cannot restate its
        // creation parameters makes the salvage impossible (terminal).
        let rebuild = rebuild_targets(db, &rd, false)?;
        let mut dropped = Vec::new();
        for (att_id, insts) in rd.attached_types() {
            let att = db.registry().attachment(att_id)?;
            for inst in insts {
                if att.storage_files(&inst.desc).is_empty() {
                    continue;
                }
                if !rebuild.iter().any(|(_, n, _)| n == &inst.name) {
                    return Err(DmxError::Unsupported(format!(
                        "attachment {} cannot be rebuilt after salvage",
                        inst.name
                    )));
                }
                dropped.push((att_id, inst.name.clone(), inst.desc.clone()));
            }
        }

        // Recover what the media still serves.
        let salvaged = sm.salvage(&ctx, &rd)?;
        *recovered = salvaged.records.len() as u64;
        *lost = expected.saturating_sub(*recovered);
        db.counters().repair_records_lost.add(*lost);

        // Reload through ordinary, fully logged DDL + DML.
        let temp_name = format!("{name}__salvage");
        let temp_id = db.create_relation(
            txn,
            &temp_name,
            rd.schema.clone(),
            sm.name(),
            &AttrList::default(),
        )?;
        for (_key, values) in &salvaged.records {
            db.insert(txn, temp_id, Record::new(values.clone()))?;
        }
        let temp_rd = db.catalog().get(temp_id)?;

        // Swap the rebuilt storage into the damaged relation's
        // descriptor; stateless attachment instances carry over intact.
        let mut merged = (*rd).clone();
        merged.sm_desc = temp_rd.sm_desc.clone();
        merged.stats = temp_rd.stats.clone();
        merged.version += 1;
        for (_, att_name, _) in &dropped {
            let (next, _, _) = merged.without_attachment(att_name)?;
            merged = next;
        }
        db.catalog().remove(temp_id)?;
        db.catalog().replace(merged)?;
        db.mark_ddl(txn);
        db.deps().invalidate(DepKey::Relation(rel));

        // The damaged base and the stale attachment structures are
        // released at commit; logged intents let restart complete the
        // release after a post-commit crash.
        let sm_intent = txn.log(LogBody::DeferredIntent {
            payload: encode_drop_sm_intent(rd.sm, &rd.sm_desc),
        });
        let mut att_intents = Vec::new();
        for (att_id, _, desc) in &dropped {
            let lsn = txn.log(LogBody::DeferredIntent {
                payload: encode_drop_att_intent(*att_id, desc),
            });
            att_intents.push((*att_id, desc.clone(), lsn));
        }
        let (registry, services, log) = (
            db.registry().clone(),
            db.services().clone(),
            db.services().log.clone(),
        );
        let (old_sm, old_sm_desc, txn_id) = (rd.sm, rd.sm_desc.clone(), txn.id());
        txn.defer(
            TxnEvent::AtCommit,
            Box::new(move || {
                let sm = registry.storage(old_sm)?;
                match sm.destroy_instance(&services, &old_sm_desc) {
                    Err(DmxError::NotFound(_)) | Ok(()) => {}
                    Err(e) => return Err(e),
                }
                log.append(
                    txn_id,
                    Lsn::NULL,
                    LogBody::DeferredDone {
                        intent_lsn: sm_intent,
                    },
                );
                for (att_id, desc, lsn) in &att_intents {
                    let att = registry.attachment(*att_id)?;
                    match att.destroy_instance(&services, desc) {
                        Err(DmxError::NotFound(_)) | Ok(()) => {}
                        Err(e) => return Err(e),
                    }
                    log.append(
                        txn_id,
                        Lsn::NULL,
                        LogBody::DeferredDone { intent_lsn: *lsn },
                    );
                }
                Ok(())
            }),
        );

        // Rebuild the page-backed access paths from the salvaged base.
        for (type_name, att_name, params) in &rebuild {
            db.create_attachment(txn, name, type_name, att_name, params)?;
        }

        // Abort actions run in registration order: this final restore
        // leaves the original (still damaged, still fenced) descriptor
        // in place after the intermediate snapshots.
        let catalog = db.catalog().clone();
        let original = (*rd).clone();
        txn.defer(
            TxnEvent::AtAbort,
            Box::new(move || catalog.replace(original).map(|_| ())),
        );
        Ok(())
    })
}

/// One repair attempt: classify the damage, then rebuild or salvage.
fn repair_once(
    db: &Arc<Database>,
    name: &str,
    action: &mut RepairAction,
    recovered: &mut u64,
    lost: &mut u64,
) -> Result<()> {
    let rd = db.catalog().get_by_name(name)?;
    let sm = db.registry().storage(rd.sm)?;
    if files_damaged(db, &sm.storage_files(&rd.sm_desc))? {
        *action = RepairAction::Salvage;
        db.counters().repair_salvages.incr();
        return salvage_base(db, name, recovered, lost);
    }
    // Base intact: rebuild the damaged attachment instances; when none
    // shows page damage the quarantine came from a logical mismatch, so
    // rebuild every reconstructible page-backed instance.
    let mut targets = rebuild_targets(db, &rd, true)?;
    if targets.is_empty() {
        targets = rebuild_targets(db, &rd, false)?;
    }
    if targets.is_empty() {
        return Ok(()); // nothing structural; verification decides
    }
    *action = RepairAction::Rebuild;
    db.counters().repair_rebuilds.incr();
    *recovered = rebuild_attachments(db, name, &rd, &targets)?;
    Ok(())
}

/// Repairs a quarantined relation and lifts its quarantine.
///
/// The pipeline classifies the damage, rebuilds or salvages through the
/// ordinary WAL-logged DDL/DML paths, verifies itself with a fresh scrub
/// pass, and retries with deterministic backoff. Success lifts the
/// quarantine and returns the healthy [`RepairOutcome`]; exhausted
/// retries (or structurally unrepairable damage) record the terminal
/// outcome, leave the relation fenced, and fail with
/// [`DmxError::RepairImpossible`]. Every outcome lands in `sys.repairs`.
pub fn repair_relation(db: &Arc<Database>, name: &str) -> Result<RepairOutcome> {
    let rd = db.catalog().get_by_name(name)?;
    let rel = rd.id;
    if let Some(reason) = db.terminal_damage(rel) {
        return Err(DmxError::RepairImpossible {
            relation: rel,
            reason,
        });
    }
    let detail = db
        .quarantined()
        .into_iter()
        .find(|(r, _)| *r == rel)
        .map(|(_, reason)| reason)
        .unwrap_or_else(|| "not quarantined (preventive repair)".to_string());

    let mut action = RepairAction::None;
    let mut recovered = 0u64;
    let mut lost = 0u64;
    let mut last_err = detail.clone();
    let mut terminal = false;
    let mut attempts = 0u32;
    while attempts < MAX_REPAIR_ATTEMPTS && !terminal {
        attempts += 1;
        db.counters().repair_attempts.incr();
        let step = repair_once(db, name, &mut action, &mut recovered, &mut lost)
            .and_then(|()| db.with_txn(|txn| scrub_relation(db, txn, name)));
        match step {
            Ok(verify) if verify.healthy() => {
                db.clear_quarantine(rel);
                let outcome = RepairOutcome {
                    relation: rel,
                    name: rd.name.clone(),
                    action,
                    healthy: true,
                    attempts,
                    records_recovered: recovered,
                    records_lost: lost,
                    detail,
                };
                db.record_repair(outcome.clone());
                db.metrics().emit(ObsEvent {
                    layer: "core",
                    op: "repair",
                    target: rel.0 as u64,
                    detail: 1,
                });
                return Ok(outcome);
            }
            Ok(verify) => {
                last_err = verify
                    .damage
                    .first()
                    .cloned()
                    .unwrap_or_else(|| "verification failed".to_string());
            }
            // Structural impossibility: more retries cannot help.
            Err(e @ (DmxError::Unsupported(_) | DmxError::RepairImpossible { .. })) => {
                last_err = e.to_string();
                terminal = true;
            }
            Err(e) => last_err = e.to_string(),
        }
        fault::backoff(attempts)?;
    }

    db.counters().repair_failures.incr();
    db.mark_terminal(rel, last_err.clone());
    db.record_repair(RepairOutcome {
        relation: rel,
        name: rd.name.clone(),
        action,
        healthy: false,
        attempts,
        records_recovered: recovered,
        records_lost: lost,
        detail: last_err.clone(),
    });
    db.metrics().emit(ObsEvent {
        layer: "core",
        op: "repair",
        target: rel.0 as u64,
        detail: 0,
    });
    Err(DmxError::RepairImpossible {
        relation: rel,
        reason: last_err,
    })
}
