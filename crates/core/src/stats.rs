//! Per-relation statistics for the cost-estimation interface.
//!
//! The paper allows attachments "to maintain statistics about relations";
//! the core also keeps a baseline record/page count per relation, shared
//! (by `Arc`) between the catalog and every bound plan so cached plans see
//! fresh statistics without re-reading the catalog.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use dmx_expr::stats::TableStats;
use dmx_types::sync::RwLock;

/// Mutable relation statistics with atomic counters.
#[derive(Default)]
pub struct RelationStats {
    records: AtomicI64,
    pages: AtomicI64,
    /// Sum of encoded record bytes ever inserted minus deleted (record
    /// width estimate = bytes / records).
    bytes: AtomicI64,
    /// Modification counter (diagnostics / staleness heuristics).
    modifications: AtomicU64,
    /// Field-level statistics published by the statistics attachment
    /// (`None` until an instance exists and has observed the relation).
    /// Immutable snapshots behind an `Arc`: the estimator clones the
    /// handle and computes without holding the lock.
    field_stats: RwLock<Option<Arc<TableStats>>>,
}

impl std::fmt::Debug for RelationStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RelationStats")
            .field("records", &self.records())
            .field("pages", &self.pages())
            .field("modifications", &self.modifications())
            .field("field_stats", &self.table_stats().is_some())
            .finish()
    }
}

impl RelationStats {
    /// Current record count (never negative).
    pub fn records(&self) -> u64 {
        self.records.load(Ordering::Relaxed).max(0) as u64
    }

    /// Current page estimate (never below 1, so cost math stays sane).
    pub fn pages(&self) -> u64 {
        self.pages.load(Ordering::Relaxed).max(1) as u64
    }

    /// Average encoded record width in bytes (defaults to 64 when empty).
    pub fn avg_record_bytes(&self) -> u64 {
        let n = self.records();
        if n == 0 {
            return 64;
        }
        (self.bytes.load(Ordering::Relaxed).max(0) as u64 / n).max(1)
    }

    /// Total modifications observed.
    pub fn modifications(&self) -> u64 {
        self.modifications.load(Ordering::Relaxed)
    }

    /// Records an insert of `bytes` encoded bytes.
    pub fn on_insert(&self, bytes: usize) {
        self.records.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes as i64, Ordering::Relaxed);
        self.modifications.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a delete.
    pub fn on_delete(&self, bytes: usize) {
        self.records.fetch_sub(1, Ordering::Relaxed);
        self.bytes.fetch_sub(bytes as i64, Ordering::Relaxed);
        self.modifications.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an update (size change only).
    pub fn on_update(&self, old_bytes: usize, new_bytes: usize) {
        self.bytes
            .fetch_add(new_bytes as i64 - old_bytes as i64, Ordering::Relaxed);
        self.modifications.fetch_add(1, Ordering::Relaxed);
    }

    /// Page-count maintenance (called by storage methods on allocation).
    pub fn on_page_allocated(&self) {
        self.pages.fetch_add(1, Ordering::Relaxed);
    }

    /// Overwrites the counters (catalog load / recomputation).
    pub fn reset(&self, records: u64, pages: u64, bytes: u64) {
        self.records.store(records as i64, Ordering::Relaxed);
        self.pages.store(pages as i64, Ordering::Relaxed);
        self.bytes.store(bytes as i64, Ordering::Relaxed);
    }

    /// The current field-level statistics snapshot, if one is published.
    pub fn table_stats(&self) -> Option<Arc<TableStats>> {
        self.field_stats.read().clone()
    }

    /// Publishes (or clears, with `None`) the field-level statistics
    /// snapshot. Called by the statistics attachment after every
    /// maintained change so cached plans estimate against fresh numbers.
    pub fn publish_table_stats(&self, stats: Option<Arc<TableStats>>) {
        *self.field_stats.write() = stats;
    }

    /// Snapshot for catalog persistence.
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.records(),
            self.pages(),
            self.bytes.load(Ordering::Relaxed).max(0) as u64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_track_modifications() {
        let s = RelationStats::default();
        assert_eq!(s.records(), 0);
        assert_eq!(s.avg_record_bytes(), 64, "default width when empty");
        s.on_insert(100);
        s.on_insert(200);
        assert_eq!(s.records(), 2);
        assert_eq!(s.avg_record_bytes(), 150);
        s.on_update(200, 100);
        assert_eq!(s.avg_record_bytes(), 100);
        s.on_delete(100);
        assert_eq!(s.records(), 1);
        assert_eq!(s.modifications(), 4);
    }

    #[test]
    fn never_negative_and_pages_floor() {
        let s = RelationStats::default();
        s.on_delete(50); // spurious delete must not underflow the API
        assert_eq!(s.records(), 0);
        assert_eq!(s.pages(), 1);
        s.on_page_allocated();
        s.on_page_allocated();
        assert_eq!(s.pages(), 2);
    }

    #[test]
    fn table_stats_publication_roundtrip() {
        let s = RelationStats::default();
        assert!(s.table_stats().is_none());
        let ts = Arc::new(TableStats {
            rows: 42,
            columns: vec![None],
        });
        s.publish_table_stats(Some(ts.clone()));
        assert_eq!(s.table_stats().unwrap().rows, 42);
        s.publish_table_stats(None);
        assert!(s.table_stats().is_none());
    }

    #[test]
    fn reset_and_snapshot_roundtrip() {
        let s = RelationStats::default();
        s.reset(10, 3, 640);
        assert_eq!(s.snapshot(), (10, 3, 640));
        assert_eq!(s.avg_record_bytes(), 64);
    }
}
