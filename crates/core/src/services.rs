//! The common services environment.
//!
//! "Storage method and attachment extensions, while isolated from each
//! other by the extension architecture, are embedded in the database
//! management system execution environment and must therefore obey
//! certain conventions and make use of certain common services."
//! [`CommonServices`] bundles those services: the simulated disk and
//! buffer pool, the write-ahead log, the system lock manager, B-tree
//! latches and the predicate-evaluator function registry.

use std::sync::Arc;

use dmx_types::sync::RwLock;

use dmx_btree::LatchTable;
use dmx_expr::FunctionRegistry;
use dmx_lock::LockManager;
use dmx_page::{BufferPool, DiskManager, WalHook};
use dmx_types::obs::MetricsRegistry;
use dmx_types::{Lsn, Result};
use dmx_wal::LogManager;

/// Shared execution environment handed (via [`crate::ExecCtx`]) to every
/// generic operation.
pub struct CommonServices {
    pub disk: Arc<dyn DiskManager>,
    pub pool: Arc<BufferPool>,
    pub log: Arc<LogManager>,
    pub locks: Arc<LockManager>,
    pub latches: Arc<LatchTable>,
    /// User functions callable from filter predicates.
    pub funcs: RwLock<FunctionRegistry>,
    /// The database-wide metrics registry; extensions may register their
    /// own named counters here alongside the kernel's.
    pub metrics: Arc<MetricsRegistry>,
}

impl CommonServices {
    /// Wires the services together with a private metrics registry (used
    /// by component-level tests; the database passes a shared registry
    /// via [`CommonServices::with_metrics`]).
    pub fn new(
        disk: Arc<dyn DiskManager>,
        pool: Arc<BufferPool>,
        log: Arc<LogManager>,
        locks: Arc<LockManager>,
    ) -> Arc<Self> {
        Self::with_metrics(disk, pool, log, locks, MetricsRegistry::new())
    }

    /// Wires the services together, installing the WAL hook on the buffer
    /// pool so the write-ahead rule holds.
    pub fn with_metrics(
        disk: Arc<dyn DiskManager>,
        pool: Arc<BufferPool>,
        log: Arc<LogManager>,
        locks: Arc<LockManager>,
        metrics: Arc<MetricsRegistry>,
    ) -> Arc<Self> {
        struct Hook(Arc<LogManager>);
        impl WalHook for Hook {
            fn force(&self, lsn: Lsn) -> Result<()> {
                self.0.force(lsn)
            }
        }
        pool.set_wal_hook(Arc::new(Hook(log.clone())));
        Arc::new(CommonServices {
            disk,
            pool,
            log,
            locks,
            latches: LatchTable::new(),
            funcs: RwLock::new(FunctionRegistry::with_builtins()),
            metrics,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmx_page::MemDisk;
    use dmx_wal::StableLog;
    use std::time::Duration;

    #[test]
    fn wiring_installs_wal_hook() {
        let disk = Arc::new(MemDisk::new());
        let pool = BufferPool::new(disk.clone(), 8);
        let log = Arc::new(LogManager::open(StableLog::new()));
        let locks = Arc::new(LockManager::new(Duration::from_secs(1)));
        let svc = CommonServices::new(disk.clone(), pool.clone(), log.clone(), locks);

        // Dirty a page carrying an unforced LSN; flushing must force it.
        let f = disk.create_file().unwrap();
        let lsn = log.append(dmx_types::TxnId(1), Lsn::NULL, dmx_wal::LogBody::Begin);
        let p = pool.new_page(f).unwrap();
        p.write().set_lsn(lsn);
        drop(p);
        assert!(log.durable_lsn().is_null());
        svc.pool.flush_all().unwrap();
        assert_eq!(log.durable_lsn(), lsn);
        assert!(svc.funcs.read().contains("abs"), "builtins registered");
    }
}
