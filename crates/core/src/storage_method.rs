//! The generic storage-method interface.
//!
//! "A storage method implementation must support a well-defined set of
//! relation operations such as delete, insert, destroy relation, and
//! estimate access costs (for query planning). Additionally, storage
//! method implementations must define the notion of a record key and
//! support direct-by-key and key-sequential record accesses to selected
//! fields of the records. The definition and interpretation of record
//! keys is controlled by the storage method implementation."

use std::sync::Arc;

use dmx_expr::Expr;
use dmx_types::{
    AttrList, DmxError, FieldId, FileId, Record, RecordKey, RelationId, Result, Schema, Value,
};

use crate::access::{KeyRange, ScanOps};
use crate::context::ExecCtx;
use crate::cost::PathChoice;
use crate::descriptor::RelationDescriptor;
use crate::services::CommonServices;

/// What a storage method's salvage scan recovered from a damaged
/// instance: every readable record plus an accounting of the pages it
/// could not read (the "lost" report the repair pipeline surfaces).
#[derive(Debug, Clone, PartialEq)]
pub struct SalvagedRecords {
    /// Readable records in record-key order.
    pub records: Vec<(RecordKey, Vec<Value>)>,
    /// Pages skipped because they failed checksum verification even
    /// after the buffer manager's retries.
    pub pages_lost: u64,
    /// Pages read and decoded successfully.
    pub pages_read: u64,
}

/// A relation storage method: one implementation per *type*, registered
/// in the storage-method procedure vector; per-instance state lives in
/// the extension-interpreted `sm_desc` bytes of the relation descriptor
/// and in storage files.
pub trait StorageMethod: Send + Sync {
    /// The type's registered name (used in DDL: `… USING <name>`).
    fn name(&self) -> &str;

    /// Validates an extension attribute/value list during DDL parsing,
    /// before execution ("storage method … implementations supply generic
    /// operations to validate and process the attribute lists").
    fn validate_params(&self, params: &AttrList, schema: &Schema) -> Result<()>;

    /// Creates a relation instance (allocating files etc.), returning the
    /// storage-method descriptor bytes to embed in the relation
    /// descriptor.
    fn create_instance(
        &self,
        ctx: &ExecCtx<'_>,
        rel: RelationId,
        schema: &Schema,
        params: &AttrList,
    ) -> Result<Vec<u8>>;

    /// Physically releases an instance's storage. Called *deferred* (at
    /// commit of the dropping transaction, or re-driven at restart), so it
    /// must be idempotent.
    fn destroy_instance(&self, services: &Arc<CommonServices>, sm_desc: &[u8]) -> Result<()>;

    /// Inserts a record, returning the record key the storage method
    /// assigned. Must log undo information first (unless
    /// [`StorageMethod::is_recoverable`] is false).
    fn insert(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        record: &Record,
    ) -> Result<RecordKey>;

    /// Updates the record at `key`, returning the old record and the
    /// (possibly new) record key — key-forming storage methods relocate
    /// records whose key fields changed.
    fn update(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        key: &RecordKey,
        new: &Record,
    ) -> Result<(Record, RecordKey)>;

    /// Deletes the record at `key`, returning it.
    fn delete(&self, ctx: &ExecCtx<'_>, rd: &RelationDescriptor, key: &RecordKey)
        -> Result<Record>;

    /// Direct-by-key access: returns selected fields of the record at
    /// `key` (all fields when `fields` is `None`), after applying the
    /// filter predicate against the buffer-resident record. `Ok(None)`
    /// when the record does not exist or fails the filter.
    fn fetch(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        key: &RecordKey,
        fields: Option<&[FieldId]>,
        pred: Option<&Expr>,
    ) -> Result<Option<Vec<Value>>>;

    /// Opens a key-sequential access over a record-key range with early
    /// filtering and projection.
    fn open_scan(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        range: KeyRange,
        pred: Option<Expr>,
        fields: Option<Vec<FieldId>>,
    ) -> Result<Box<dyn ScanOps>>;

    /// Cost estimation: how this storage method would satisfy an access
    /// constrained by `preds` ("access path zero").
    fn estimate(&self, rd: &RelationDescriptor, preds: &[Expr]) -> PathChoice;

    /// Undoes a logged operation during rollback/abort/restart. `lsn` is
    /// the undone record's LSN, for page-LSN idempotency checks: under
    /// the no-steal/force policy a loser's changes may never have reached
    /// disk, so undo must verify the operation actually applied.
    fn undo(
        &self,
        services: &Arc<CommonServices>,
        rd: &RelationDescriptor,
        lsn: dmx_types::Lsn,
        op: u8,
        payload: &[u8],
    ) -> Result<()>;

    /// Re-applies a logged operation during restart's redo pass. Under
    /// steal/no-force a committed operation's pages may have missed disk
    /// entirely (no-force) while other pages of the same operation were
    /// stolen — redo must be idempotent, typically via a page-LSN check
    /// (skip pages whose LSN is already ≥ `lsn`). Default no-op: correct
    /// for non-recoverable storage and for methods whose durable state is
    /// maintained outside the buffer pool (foreign).
    fn redo(
        &self,
        services: &Arc<CommonServices>,
        rd: &RelationDescriptor,
        lsn: dmx_types::Lsn,
        op: u8,
        payload: &[u8],
    ) -> Result<()> {
        let _ = (services, rd, lsn, op, payload);
        Ok(())
    }

    /// False for non-recoverable storage (the temporary storage method):
    /// operations are not logged and instances vanish at restart.
    fn is_recoverable(&self) -> bool {
        true
    }

    /// Page types this storage method allows the buffer pool to evict
    /// dirty (steal), because its redo/undo fully reconciles them at
    /// restart. Default empty: the method's pages stay no-steal and a
    /// pool full of its dirty pages reports `BufferFull`.
    fn stealable_page_types(&self) -> &[u8] {
        &[]
    }

    /// The record-field ordering of key-sequential scans, if the storage
    /// method stores records in key order (lets the planner skip sorts).
    fn scan_ordering(&self, rd: &RelationDescriptor) -> Option<Vec<FieldId>> {
        let _ = rd;
        None
    }

    /// The disk files backing an instance, for the integrity scrubber's
    /// checksum page walk. Default empty: the instance is not page-backed
    /// (memory, foreign, system relations) and scrub has nothing to
    /// verify below the scan interface.
    fn storage_files(&self, sm_desc: &[u8]) -> Vec<FileId> {
        let _ = sm_desc;
        Vec::new()
    }

    /// Best-effort recovery scan over a damaged instance: reads every
    /// page, skips the ones that fail verification, and returns whatever
    /// records are still decodable. Unlike [`StorageMethod::open_scan`]
    /// this must tolerate [`DmxError::Corrupt`] per page instead of
    /// failing the whole scan. Default: unsupported — the repair pipeline
    /// reports such relations as terminally damaged.
    fn salvage(&self, ctx: &ExecCtx<'_>, rd: &RelationDescriptor) -> Result<SalvagedRecords> {
        let _ = (ctx, rd);
        Err(DmxError::Unsupported(format!(
            "storage method {} does not support salvage",
            self.name()
        )))
    }
}
