//! The generic attachment interface.
//!
//! "Attachments, like storage methods, must support a well-defined set of
//! operations. Unlike storage methods, however, attachment modification
//! operations are not directly invoked by the data management facility
//! user. Instead, attachment modification interfaces are invoked only as
//! side effects of modification operations on relations. … Any attachment
//! can abort the relation operation if the operation violates any
//! restrictions of the attachment." Access-path attachments additionally
//! "supply a mapping from an input key to a record key" and support
//! direct-by-key and key-sequential accesses plus cost estimation.
//!
//! One implementation per attachment *type*; the dispatcher invokes each
//! type **once** per relation modification, passing every instance of the
//! type defined on the relation.

use std::sync::Arc;

use dmx_expr::Expr;
use dmx_types::{AttrList, DmxError, FileId, Record, RecordKey, Result, Schema};

use crate::access::{AccessQuery, ScanOps};
use crate::context::ExecCtx;
use crate::cost::PathChoice;
use crate::descriptor::{AttachmentInstance, RelationDescriptor};
use crate::services::CommonServices;

/// An attachment type: access path, integrity constraint or trigger.
pub trait Attachment: Send + Sync {
    /// The type's registered name (used in DDL: `CREATE ATTACHMENT …
    /// USING <name>` / `CREATE INDEX … USING <name>`).
    fn name(&self) -> &str;

    /// Validates an extension attribute/value list at DDL parse time.
    fn validate_params(&self, params: &AttrList, schema: &Schema) -> Result<()>;

    /// Creates an instance on `rd` (allocating any associated storage —
    /// attachments "may have associated storage", unlike mere triggers),
    /// returning the instance descriptor bytes. The common system
    /// backfills existing records by driving [`Attachment::on_insert`]
    /// afterwards.
    fn create_instance(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        name: &str,
        params: &AttrList,
    ) -> Result<Vec<u8>>;

    /// Physically releases an instance's storage; deferred to commit, so
    /// it must be idempotent.
    fn destroy_instance(&self, services: &Arc<CommonServices>, inst_desc: &[u8]) -> Result<()>;

    /// Side effect of a record insert. `Err` (typically
    /// [`DmxError::Veto`]) aborts the relation operation, which the
    /// common recovery facility then partially rolls back.
    fn on_insert(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        instances: &[AttachmentInstance],
        key: &RecordKey,
        new: &Record,
    ) -> Result<()>;

    /// Side effect of a record update. `old_key`/`new_key` differ when
    /// the storage method relocated the record.
    #[allow(clippy::too_many_arguments)]
    fn on_update(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        instances: &[AttachmentInstance],
        old_key: &RecordKey,
        new_key: &RecordKey,
        old: &Record,
        new: &Record,
    ) -> Result<()>;

    /// Side effect of a record delete.
    fn on_delete(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        instances: &[AttachmentInstance],
        key: &RecordKey,
        old: &Record,
    ) -> Result<()>;

    /// Undoes a logged operation (idempotent; `lsn` is the undone
    /// record's LSN for page-LSN checks where applicable).
    fn undo(
        &self,
        services: &Arc<CommonServices>,
        rd: &RelationDescriptor,
        lsn: dmx_types::Lsn,
        op: u8,
        payload: &[u8],
    ) -> Result<()>;

    /// Re-applies a logged operation during restart's redo pass (the
    /// forward mirror of [`Attachment::undo`]). Under no-force a
    /// committed side effect may never have reached disk, so attachments
    /// with associated storage must replay it idempotently —
    /// presence-checked or page-LSN-guarded. Default no-op: correct for
    /// attachments without storage (checks, triggers, referential
    /// constraints), whose effects are vetoes, not state.
    fn redo(
        &self,
        services: &Arc<CommonServices>,
        rd: &RelationDescriptor,
        lsn: dmx_types::Lsn,
        op: u8,
        payload: &[u8],
    ) -> Result<()> {
        let _ = (services, rd, lsn, op, payload);
        Ok(())
    }

    /// Called once per instance when a database (re)opens, after restart
    /// recovery, so attachments that publish derived *in-memory* state
    /// (e.g. the statistics attachment's planner snapshot) can hydrate it
    /// from their durable storage before the first query plans. Default
    /// no-op. Failures are non-fatal to the open — the instance simply
    /// stays un-hydrated and the scrub/repair pipeline deals with any
    /// real corruption.
    fn activate(
        &self,
        services: &Arc<CommonServices>,
        rd: &RelationDescriptor,
        instance: &AttachmentInstance,
    ) -> Result<()> {
        let _ = (services, rd, instance);
        Ok(())
    }

    /// The inverse of [`Attachment::activate`]: called when an instance
    /// is dropped, so attachment-published in-memory state is retracted
    /// immediately (the physical storage release stays deferred to
    /// commit). Default no-op.
    fn deactivate(&self, rd: &RelationDescriptor, instance: &AttachmentInstance) {
        let _ = (rd, instance);
    }

    /// Offers a freshly scanned full image of the base relation so the
    /// attachment can rebuild derived state *exactly* (`ANALYZE TABLE`
    /// drives this for every attachment type on the relation). Returns
    /// `true` when the attachment rebuilt something, `false` when the
    /// offer is irrelevant to it (the default — indexes are already
    /// exact by construction).
    fn analyze(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        instances: &[AttachmentInstance],
        records: &[Record],
    ) -> Result<bool> {
        let _ = (ctx, rd, instances, records);
        Ok(false)
    }

    // ------------------------------------------------------------------
    // Access-path side (optional). Integrity constraints and triggers
    // keep the defaults.
    // ------------------------------------------------------------------

    /// True when instances of this type can serve data accesses.
    fn supports_access(&self) -> bool {
        false
    }

    /// Opens a key-sequential access over the path. Items carry the
    /// mapped storage-method record keys and, for covering paths, field
    /// values decoded from the access-path key.
    fn open_scan(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        instance: &AttachmentInstance,
        query: &AccessQuery,
    ) -> Result<Box<dyn ScanOps>> {
        let _ = (ctx, rd, instance, query);
        Err(DmxError::Unsupported(format!(
            "attachment {} is not an access path",
            self.name()
        )))
    }

    /// Cost estimation: `None` when no eligible predicate is relevant to
    /// this instance ("the B-tree access path will return a low cost if
    /// there is a predicate on the key of the B-tree, and the R-tree …
    /// will recognize the ENCLOSES predicate").
    fn estimate(
        &self,
        rd: &RelationDescriptor,
        instance: &AttachmentInstance,
        preds: &[Expr],
    ) -> Option<PathChoice> {
        let _ = (rd, instance, preds);
        None
    }

    /// The disk files backing an instance ("attachments may have
    /// associated storage"), for the integrity scrubber's checksum page
    /// walk. Default empty: no associated storage (checks, triggers).
    fn storage_files(&self, inst_desc: &[u8]) -> Vec<FileId> {
        let _ = inst_desc;
        Vec::new()
    }

    /// Reconstructs the DDL attribute list that would re-create this
    /// instance, so the repair pipeline can rebuild a damaged attachment
    /// from its base relation through the *ordinary* registration path
    /// (create instance + backfill). Default: unsupported — the instance
    /// cannot be rebuilt automatically.
    fn reconstruct_params(&self, rd: &RelationDescriptor, inst_desc: &[u8]) -> Result<AttrList> {
        let _ = (rd, inst_desc);
        Err(DmxError::Unsupported(format!(
            "attachment {} cannot reconstruct its creation parameters",
            self.name()
        )))
    }
}
