//! The data management extension architecture (the paper's contribution).
//!
//! This crate defines the two generic abstractions and everything that
//! coordinates them:
//!
//! * [`StorageMethod`] — the generic operation set an alternative relation
//!   storage implementation must supply (insert/update/delete, direct-
//!   by-key and key-sequential access with early filtering, DDL parameter
//!   validation, cost estimation, logical undo);
//! * [`Attachment`] — the generic operation set for access paths,
//!   integrity constraints and triggers, invoked *procedurally* as side
//!   effects of relation modifications, with the right to **veto**;
//! * [`registry::ExtensionRegistry`] — the procedure vectors: extensions
//!   are installed "at the factory" and activated by indexing a vector
//!   with their small-integer type id;
//! * [`descriptor::RelationDescriptor`] — the extensible relation
//!   descriptor: a record whose header names the storage method, whose
//!   field 0 is the storage-method descriptor, and whose field *N* holds
//!   the instances of attachment type *N* (absent = no instances);
//! * [`dml`] — the two-step modification dispatcher: storage method first,
//!   then each attachment type with instances; any veto triggers a
//!   log-driven partial rollback of the half-done modification;
//! * [`access`] — the unified access interface ("access path zero is the
//!   storage method"), scan-position rules and the per-transaction scan
//!   registry driving end-of-transaction cleanup and savepoint
//!   save/restore of positions;
//! * [`services::CommonServices`] — the shared execution environment
//!   (buffer pool, log, lock manager, predicate evaluator, latches);
//! * [`catalog`], [`deps`], [`auth`] — descriptor management, bound-plan
//!   dependency tracking/invalidation and the uniform authorization
//!   facility;
//! * [`database::Database`] — the facade wiring it all together, including
//!   DDL with extension attribute/value lists, transaction control with
//!   savepoints, deferred drops and crash restart.

pub mod access;
pub mod attachment;
pub mod auth;
pub mod catalog;
pub mod context;
pub mod cost;
pub mod database;
pub mod deps;
pub mod descriptor;
pub mod dml;
pub mod registry;
pub mod scrub;
pub mod services;
pub mod stats;
pub mod storage_method;
pub mod sysrel;
pub mod undo;

pub use access::{AccessPath, AccessQuery, KeyRange, ScanItem, ScanManager, ScanOps, SpatialOp};
pub use attachment::Attachment;
pub use auth::{AuthManager, Privilege};
pub use catalog::Catalog;
pub use context::ExecCtx;
pub use cost::{Cost, PathChoice};
pub use database::{
    Database, DatabaseConfig, DatabaseEnv, HookArgs, HookFn, IncidentReport, SysProviderFn,
};
pub use deps::{DepKey, DependencyRegistry, PlanId};
pub use descriptor::{AttachmentInstance, RelationDescriptor};
pub use dml::project_values;
pub use registry::ExtensionRegistry;
pub use scrub::{
    repair_relation, scrub_all, scrub_relation, RepairAction, RepairOutcome, ScrubReport,
};
pub use services::CommonServices;
pub use stats::RelationStats;
pub use storage_method::{SalvagedRecords, StorageMethod};
