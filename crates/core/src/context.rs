//! The execution context handed to every generic operation.

use std::sync::Arc;

use dmx_expr::{eval_predicate, EvalContext, Expr, FieldSource};
use dmx_lock::{LockMode, LockName};
use dmx_txn::Transaction;
use dmx_types::{Lsn, RecordKey, RelationId, Result};
use dmx_wal::{ExtKind, LogBody};

use crate::database::Database;
use crate::services::CommonServices;

/// Everything an extension needs while executing a generic operation: the
/// transaction, the common services, and the database itself (so
/// attachments can "access or modify other data in the database by
/// calling the appropriate storage method or attachment routines" —
/// cascading modifications). The database reference is an `&Arc` so
/// extensions can clone owning handles into deferred-action closures.
#[derive(Clone, Copy)]
pub struct ExecCtx<'a> {
    pub db: &'a Arc<Database>,
    pub txn: &'a Arc<Transaction>,
}

impl<'a> ExecCtx<'a> {
    /// The common services environment.
    pub fn services(&self) -> &Arc<CommonServices> {
        self.db.services()
    }

    /// Logs an extension operation on this transaction's undo chain,
    /// returning its LSN. Extensions call this *before* applying the
    /// change (write-ahead).
    pub fn log_ext_op(&self, ext: ExtKind, relation: RelationId, op: u8, payload: Vec<u8>) -> Lsn {
        self.txn.log(LogBody::ExtOp {
            ext,
            relation,
            op,
            payload,
        })
    }

    /// Acquires a lock through the system lock manager.
    pub fn lock(&self, name: LockName, mode: LockMode) -> Result<()> {
        self.services().locks.lock(self.txn.id(), name, mode)
    }

    /// Record-granularity lock helper.
    pub fn lock_record(&self, rel: RelationId, key: &RecordKey, mode: LockMode) -> Result<()> {
        self.lock(LockName::record(rel, key), mode)
    }

    /// Evaluates a filter predicate against a (possibly buffer-resident)
    /// record through the common-services evaluator.
    pub fn eval_predicate(&self, expr: &Expr, src: &dyn FieldSource) -> Result<bool> {
        let funcs = self.services().funcs.read();
        eval_predicate(expr, src, EvalContext::new(&funcs))
    }
}
