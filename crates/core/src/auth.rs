//! The uniform authorization facility.
//!
//! "Because extensions are alternative implementations of a common
//! relation abstraction, a uniform authorization facility can be used to
//! control user access to relations of all storage methods." One grants
//! table serves every storage method — extensions never see
//! authorization.

use std::collections::{HashMap, HashSet};

use dmx_types::sync::RwLock;

use dmx_types::{DmxError, RelationId, Result};

/// Privileges on a relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Privilege {
    Select,
    Insert,
    Update,
    Delete,
    /// DDL on the relation (attachments, drop).
    Control,
}

impl Privilege {
    fn bit(self) -> u8 {
        match self {
            Privilege::Select => 1,
            Privilege::Insert => 2,
            Privilege::Update => 4,
            Privilege::Delete => 8,
            Privilege::Control => 16,
        }
    }

    /// Parses a privilege keyword.
    pub fn parse(s: &str) -> Result<Privilege> {
        match s.to_ascii_uppercase().as_str() {
            "SELECT" => Ok(Privilege::Select),
            "INSERT" => Ok(Privilege::Insert),
            "UPDATE" => Ok(Privilege::Update),
            "DELETE" => Ok(Privilege::Delete),
            "CONTROL" | "ALL" => Ok(Privilege::Control),
            other => Err(DmxError::InvalidArg(format!("unknown privilege {other}"))),
        }
    }
}

#[derive(Default)]
struct AuthState {
    grants: HashMap<(String, RelationId), u8>,
    superusers: HashSet<String>,
}

/// The grants table. The bootstrap superuser is `admin`; superusers pass
/// every check and may grant.
pub struct AuthManager {
    state: RwLock<AuthState>,
}

impl Default for AuthManager {
    fn default() -> Self {
        let mut st = AuthState::default();
        st.superusers.insert("admin".to_string());
        AuthManager {
            state: RwLock::new(st),
        }
    }
}

impl AuthManager {
    /// A fresh manager with only the `admin` superuser.
    pub fn new() -> Self {
        AuthManager::default()
    }

    fn norm(user: &str) -> String {
        user.to_ascii_lowercase()
    }

    /// Checks that `user` holds `priv_` on `rel`. `Control` implies every
    /// other privilege.
    pub fn check(&self, user: &str, rel: RelationId, priv_: Privilege) -> Result<()> {
        let st = self.state.read();
        let user = Self::norm(user);
        if st.superusers.contains(&user) {
            return Ok(());
        }
        let mask = st.grants.get(&(user.clone(), rel)).copied().unwrap_or(0);
        if mask & priv_.bit() != 0 || mask & Privilege::Control.bit() != 0 {
            return Ok(());
        }
        Err(DmxError::Unauthorized(format!(
            "user {user} lacks {priv_:?} on relation {rel}"
        )))
    }

    /// Grants a privilege. Only a user passing the `Control` check (or a
    /// superuser) may grant.
    pub fn grant(
        &self,
        granter: &str,
        user: &str,
        rel: RelationId,
        priv_: Privilege,
    ) -> Result<()> {
        self.check(granter, rel, Privilege::Control)?;
        let mut st = self.state.write();
        *st.grants.entry((Self::norm(user), rel)).or_insert(0) |= priv_.bit();
        Ok(())
    }

    /// Revokes a privilege.
    pub fn revoke(
        &self,
        granter: &str,
        user: &str,
        rel: RelationId,
        priv_: Privilege,
    ) -> Result<()> {
        self.check(granter, rel, Privilege::Control)?;
        let mut st = self.state.write();
        if let Some(mask) = st.grants.get_mut(&(Self::norm(user), rel)) {
            *mask &= !priv_.bit();
        }
        Ok(())
    }

    /// Drops every grant on a relation (called when it is dropped).
    pub fn purge_relation(&self, rel: RelationId) {
        self.state.write().grants.retain(|(_, r), _| *r != rel);
    }

    /// Adds a superuser.
    pub fn add_superuser(&self, user: &str) {
        self.state.write().superusers.insert(Self::norm(user));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const REL: RelationId = RelationId(7);

    #[test]
    fn admin_is_superuser_and_grants_work() {
        let auth = AuthManager::new();
        assert!(auth.check("admin", REL, Privilege::Control).is_ok());
        assert!(auth.check("bob", REL, Privilege::Select).is_err());
        auth.grant("admin", "bob", REL, Privilege::Select).unwrap();
        assert!(
            auth.check("BOB", REL, Privilege::Select).is_ok(),
            "case-insensitive"
        );
        assert!(auth.check("bob", REL, Privilege::Insert).is_err());
    }

    #[test]
    fn control_implies_all_and_gates_granting() {
        let auth = AuthManager::new();
        // bob cannot grant
        assert!(auth.grant("bob", "eve", REL, Privilege::Select).is_err());
        auth.grant("admin", "bob", REL, Privilege::Control).unwrap();
        assert!(auth.check("bob", REL, Privilege::Delete).is_ok());
        // now bob can grant
        auth.grant("bob", "eve", REL, Privilege::Insert).unwrap();
        assert!(auth.check("eve", REL, Privilege::Insert).is_ok());
    }

    #[test]
    fn revoke_and_purge() {
        let auth = AuthManager::new();
        auth.grant("admin", "bob", REL, Privilege::Select).unwrap();
        auth.revoke("admin", "bob", REL, Privilege::Select).unwrap();
        assert!(auth.check("bob", REL, Privilege::Select).is_err());
        auth.grant("admin", "bob", REL, Privilege::Select).unwrap();
        auth.purge_relation(REL);
        assert!(auth.check("bob", REL, Privilege::Select).is_err());
    }

    #[test]
    fn privilege_parsing() {
        assert_eq!(Privilege::parse("select").unwrap(), Privilege::Select);
        assert_eq!(Privilege::parse("ALL").unwrap(), Privilege::Control);
        assert!(Privilege::parse("fly").is_err());
    }
}
