//! Names and schemas of the `sys.*` system relations.
//!
//! The system relations publish live engine state (metrics, catalog,
//! locks, traces, incidents) as ordinary read-only relations, following
//! the paper's "database publishing" storage-method pattern: the data is
//! externally managed (it lives in the engine's own runtime structures),
//! and a storage method merely presents it through the generic operation
//! interfaces. This module owns the *shape* — table names, one-byte
//! storage-method descriptors, and column schemas — so that `core` can
//! publish the descriptors at open and the system storage method (in the
//! storage crate) can materialize matching rows without the two drifting
//! apart.

use dmx_types::{ColumnDef, DataType, Result, Schema};

/// Registered name of the system-relation storage method.
pub const SM_NAME: &str = "system";

/// `sm_desc` tag selecting the `sys.metrics` relation.
pub const TAG_METRICS: u8 = 1;
/// `sm_desc` tag selecting the `sys.histograms` relation.
pub const TAG_HISTOGRAMS: u8 = 2;
/// `sm_desc` tag selecting the `sys.relations` relation.
pub const TAG_RELATIONS: u8 = 3;
/// `sm_desc` tag selecting the `sys.attachments` relation.
pub const TAG_ATTACHMENTS: u8 = 4;
/// `sm_desc` tag selecting the `sys.locks` relation.
pub const TAG_LOCKS: u8 = 5;
/// `sm_desc` tag selecting the `sys.plan_cache` relation.
pub const TAG_PLAN_CACHE: u8 = 6;
/// `sm_desc` tag selecting the `sys.trace` relation.
pub const TAG_TRACE: u8 = 7;
/// `sm_desc` tag selecting the `sys.incidents` relation.
pub const TAG_INCIDENTS: u8 = 8;
/// `sm_desc` tag selecting the `sys.repairs` relation.
pub const TAG_REPAIRS: u8 = 9;
/// `sm_desc` tag selecting the `sys.statistics` relation.
pub const TAG_STATISTICS: u8 = 10;

/// The full system-relation catalog: `(name, sm_desc tag, schema)` for
/// every published `sys.*` relation, in publication order.
pub fn tables() -> Result<Vec<(&'static str, u8, Schema)>> {
    use DataType::*;
    Ok(vec![
        (
            "sys.metrics",
            TAG_METRICS,
            Schema::new(vec![
                ColumnDef::not_null("name", Str),
                ColumnDef::not_null("kind", Str),
                ColumnDef::not_null("value", Int),
            ])?,
        ),
        (
            "sys.histograms",
            TAG_HISTOGRAMS,
            Schema::new(vec![
                ColumnDef::not_null("name", Str),
                ColumnDef::not_null("bucket", Int),
                // NULL upper bound marks the overflow bucket.
                ColumnDef::new("upper_bound", Int),
                ColumnDef::not_null("count", Int),
            ])?,
        ),
        (
            "sys.relations",
            TAG_RELATIONS,
            Schema::new(vec![
                ColumnDef::not_null("id", Int),
                ColumnDef::not_null("name", Str),
                ColumnDef::not_null("storage_method", Str),
                ColumnDef::not_null("records", Int),
                ColumnDef::not_null("pages", Int),
                ColumnDef::not_null("bytes", Int),
                ColumnDef::not_null("attachments", Int),
                // NULL when healthy; the quarantine reason otherwise.
                ColumnDef::new("quarantined", Str),
            ])?,
        ),
        (
            "sys.attachments",
            TAG_ATTACHMENTS,
            Schema::new(vec![
                ColumnDef::not_null("relation", Str),
                ColumnDef::not_null("type", Str),
                ColumnDef::not_null("instance", Int),
                ColumnDef::not_null("name", Str),
            ])?,
        ),
        (
            "sys.locks",
            TAG_LOCKS,
            Schema::new(vec![
                ColumnDef::not_null("name", Str),
                ColumnDef::not_null("txn", Int),
                ColumnDef::not_null("mode", Str),
                ColumnDef::not_null("state", Str),
            ])?,
        ),
        (
            "sys.plan_cache",
            TAG_PLAN_CACHE,
            Schema::new(vec![
                ColumnDef::not_null("sql", Str),
                ColumnDef::not_null("valid", Bool),
            ])?,
        ),
        (
            "sys.trace",
            TAG_TRACE,
            Schema::new(vec![
                ColumnDef::not_null("seq", Int),
                ColumnDef::not_null("layer", Str),
                ColumnDef::not_null("op", Str),
                ColumnDef::not_null("target", Int),
                ColumnDef::not_null("detail", Int),
            ])?,
        ),
        (
            "sys.incidents",
            TAG_INCIDENTS,
            Schema::new(vec![
                // Monotone incident number; survives ring eviction so
                // consumers can detect gaps.
                ColumnDef::not_null("incident", Int),
                ColumnDef::not_null("item", Str),
                ColumnDef::not_null("value", Str),
            ])?,
        ),
        (
            "sys.repairs",
            TAG_REPAIRS,
            Schema::new(vec![
                ColumnDef::not_null("repair", Int),
                ColumnDef::not_null("relation", Str),
                ColumnDef::not_null("action", Str),
                ColumnDef::not_null("outcome", Str),
                ColumnDef::not_null("attempts", Int),
                ColumnDef::not_null("recovered", Int),
                ColumnDef::not_null("lost", Int),
                ColumnDef::not_null("detail", Str),
            ])?,
        ),
        (
            "sys.statistics",
            TAG_STATISTICS,
            Schema::new(vec![
                ColumnDef::not_null("relation", Str),
                ColumnDef::not_null("field", Str),
                ColumnDef::not_null("rows", Int),
                // Per-field columns are NULL for untracked (non-numeric)
                // fields and for the per-relation summary row.
                ColumnDef::new("nulls", Int),
                ColumnDef::new("distinct", Int),
                ColumnDef::new("min", Str),
                ColumnDef::new("max", Str),
                // Rendered histogram (`lo..hi: c0,c1,…`), NULL until
                // ANALYZE froze bucket bounds.
                ColumnDef::new("histogram", Str),
            ])?,
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn tables_are_well_formed_and_distinct() {
        let tables = tables().unwrap();
        assert_eq!(tables.len(), 10);
        let names: HashSet<&str> = tables.iter().map(|(n, _, _)| *n).collect();
        assert_eq!(names.len(), tables.len(), "names unique");
        let tags: HashSet<u8> = tables.iter().map(|(_, t, _)| *t).collect();
        assert_eq!(tags.len(), tables.len(), "tags unique");
        for (name, _, _) in &tables {
            assert!(name.starts_with("sys."), "{name} in the sys namespace");
        }
    }
}
