//! The database facade: wiring the extension architecture together.
//!
//! [`Database`] owns the common services, the procedure-vector registry,
//! the catalog, transaction control (begin / commit / abort / savepoints)
//! and the extended data definition operations (`CREATE … USING <ext>
//! WITH (attr = value, …)`), including the deferred physical release of
//! dropped objects and crash restart.

use std::any::Any;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use dmx_types::sync::{Mutex, RwLock};

use dmx_lock::{LockManager, LockMode, LockName};
use dmx_page::{BufferPool, DiskManager, FaultDisk};
use dmx_txn::{Transaction, TxnEvent, TxnManager, TxnState};
use dmx_types::obs::{
    name as metric, Counter, Histogram, MetricsRegistry, MetricsSnapshot, ObsEvent, RingSink,
    SIZE_BUCKETS,
};
use dmx_types::{
    AttrList, DmxError, FaultInjector, FaultPlan, FileId, Lsn, Record, RecordKey, RelationId,
    Result, Schema, TxnId, Value,
};
use dmx_wal::{LogBody, LogManager, StableLog};

use crate::access::{KeyRange, ScanManager};
use crate::auth::AuthManager;
use crate::catalog::{Catalog, CATALOG_FILE};
use crate::context::ExecCtx;
use crate::deps::{DepKey, DependencyRegistry};
use crate::descriptor::AttachmentInstance;
use crate::registry::ExtensionRegistry;
use crate::scrub::RepairOutcome;
use crate::services::CommonServices;
use crate::undo::{
    encode_catalog_intent, encode_drop_att_intent, encode_drop_sm_intent, UndoDispatch,
};

/// Tuning knobs.
#[derive(Debug, Clone)]
pub struct DatabaseConfig {
    /// Buffer pool capacity in frames.
    pub pool_frames: usize,
    /// Lock-wait timeout (deadlocks are detected much sooner).
    pub lock_timeout: Duration,
}

impl Default for DatabaseConfig {
    fn default() -> Self {
        DatabaseConfig {
            pool_frames: 2048,
            lock_timeout: Duration::from_secs(5),
        }
    }
}

/// The crash-surviving environment: the simulated disk and the durable
/// log. Keep clones of these, drop the [`Database`], and re-open to
/// simulate a crash.
#[derive(Clone)]
pub struct DatabaseEnv {
    pub disk: Arc<dyn DiskManager>,
    pub stable_log: Arc<StableLog>,
}

impl DatabaseEnv {
    /// A fresh in-memory environment. All I/O flows through the fault
    /// layer with an empty (pass-through) plan, so production and
    /// fault-sweep runs exercise the identical code path.
    pub fn fresh() -> Self {
        DatabaseEnv::fresh_with_plan(FaultPlan::default()).0
    }

    /// A fresh environment whose every disk *and* log operation is gated
    /// by one injector executing `plan` — a single global I/O index spans
    /// both devices. The injector is returned for counting, clearing at
    /// simulated reopen, and crash detection.
    pub fn fresh_with_plan(plan: FaultPlan) -> (Self, Arc<FaultInjector>) {
        let injector = FaultInjector::new(plan);
        let env = DatabaseEnv {
            disk: FaultDisk::fresh(injector.clone()),
            stable_log: StableLog::with_injector(injector.clone()),
        };
        (env, injector)
    }
}

/// A user hook callable by trigger-style attachments
/// (registered "at the factory", like all extension code).
pub type HookFn = Arc<dyn Fn(&ExecCtx<'_>, &HookArgs<'_>) -> Result<()> + Send + Sync>;

/// Arguments handed to a user hook.
pub struct HookArgs<'a> {
    pub event: &'a str,
    pub relation: RelationId,
    pub key: &'a RecordKey,
    pub old: Option<&'a Record>,
    pub new: Option<&'a Record>,
}

/// Capacity of the per-database flight-recorder event ring.
const TRACE_RING_CAP: usize = 256;

/// Capacity of the bounded incident-report ring.
const INCIDENT_RING_CAP: usize = 16;

/// The flight recorder's crash-time dump: captured when a relation is
/// quarantined after unrecoverable corruption. Deterministic — it holds
/// event counts and the metric snapshot, never wall-clock times — so two
/// same-seed runs that corrupt the same page produce identical reports.
#[derive(Clone, Debug, PartialEq)]
pub struct IncidentReport {
    /// The relation that was fenced off.
    pub relation: RelationId,
    /// The quarantine reason (checksum mismatch detail, …).
    pub reason: String,
    /// The last events recorded before the incident, oldest first
    /// (bounded by the trace ring capacity).
    pub events: Vec<ObsEvent>,
    /// Every metric at the moment of the incident.
    pub metrics: MetricsSnapshot,
}

/// A row producer for a `sys.*` relation whose contents live outside
/// `core` (e.g. the query layer's plan cache). Providers must not start
/// transactions or take database locks — they read their own state only.
pub type SysProviderFn = Arc<dyn Fn(&Database) -> Vec<Vec<Value>> + Send + Sync>;

/// Pre-resolved handles for the kernel's own metrics, so the DML and
/// scan hot paths never touch the registry maps.
pub(crate) struct CoreCounters {
    pub(crate) inserts: Arc<Counter>,
    pub(crate) updates: Arc<Counter>,
    pub(crate) deletes: Arc<Counter>,
    pub(crate) fetches: Arc<Counter>,
    pub(crate) scan_opens: Arc<Counter>,
    pub(crate) scan_rows: Arc<Counter>,
    pub(crate) scan_delta_sweeps: Arc<Counter>,
    pub(crate) rows_per_scan: Arc<Histogram>,
    pub(crate) att_invocations: Arc<Counter>,
    pub(crate) att_vetoes: Arc<Counter>,
    pub(crate) att_probes: Arc<Counter>,
    pub(crate) quarantines: Arc<Counter>,
    pub(crate) quarantine_cleared: Arc<Counter>,
    pub(crate) incidents_evicted: Arc<Counter>,
    pub(crate) scrub_runs: Arc<Counter>,
    pub(crate) scrub_pages: Arc<Counter>,
    pub(crate) scrub_corrupt: Arc<Counter>,
    pub(crate) repair_attempts: Arc<Counter>,
    pub(crate) repair_rebuilds: Arc<Counter>,
    pub(crate) repair_salvages: Arc<Counter>,
    pub(crate) repair_records_lost: Arc<Counter>,
    pub(crate) repair_failures: Arc<Counter>,
    pub(crate) commits: Arc<Counter>,
    pub(crate) aborts: Arc<Counter>,
    pub(crate) mvcc_snapshot_scans: Arc<Counter>,
    pub(crate) mvcc_version_reads: Arc<Counter>,
    pub(crate) mvcc_versions_recorded: Arc<Counter>,
    pub(crate) mvcc_gc_reclaimed: Arc<Counter>,
}

impl CoreCounters {
    fn new(obs: &MetricsRegistry) -> Self {
        CoreCounters {
            inserts: obs.counter(metric::DML_INSERTS),
            updates: obs.counter(metric::DML_UPDATES),
            deletes: obs.counter(metric::DML_DELETES),
            fetches: obs.counter(metric::DML_FETCHES),
            scan_opens: obs.counter(metric::SCAN_OPENS),
            scan_rows: obs.counter(metric::SCAN_ROWS),
            scan_delta_sweeps: obs.counter(metric::SCAN_DELTA_SWEEPS),
            rows_per_scan: obs.histogram(metric::SCAN_ROWS_PER_SCAN, SIZE_BUCKETS),
            att_invocations: obs.counter(metric::ATT_INVOCATIONS),
            att_vetoes: obs.counter(metric::ATT_VETOES),
            att_probes: obs.counter(metric::ATT_PROBES),
            quarantines: obs.counter(metric::QUARANTINE_EVENTS),
            quarantine_cleared: obs.counter(metric::QUARANTINE_CLEARED),
            incidents_evicted: obs.counter(metric::INCIDENTS_EVICTED),
            scrub_runs: obs.counter(metric::SCRUB_RUNS),
            scrub_pages: obs.counter(metric::SCRUB_PAGES),
            scrub_corrupt: obs.counter(metric::SCRUB_CORRUPT),
            repair_attempts: obs.counter(metric::REPAIR_ATTEMPTS),
            repair_rebuilds: obs.counter(metric::REPAIR_REBUILDS),
            repair_salvages: obs.counter(metric::REPAIR_SALVAGES),
            repair_records_lost: obs.counter(metric::REPAIR_RECORDS_LOST),
            repair_failures: obs.counter(metric::REPAIR_FAILURES),
            commits: obs.counter(metric::TXN_COMMITS),
            aborts: obs.counter(metric::TXN_ABORTS),
            mvcc_snapshot_scans: obs.counter(metric::MVCC_SNAPSHOT_SCANS),
            mvcc_version_reads: obs.counter(metric::MVCC_VERSION_READS),
            mvcc_versions_recorded: obs.counter(metric::MVCC_VERSIONS_RECORDED),
            mvcc_gc_reclaimed: obs.counter(metric::MVCC_GC_RECLAIMED),
        }
    }
}

/// The bounded ring of retained incident reports. Mirrors the
/// [`RingSink`] truncation contract: fixed capacity, a monotone total,
/// and eviction oldest-first — the number of a retained entry is
/// `total - len + index`, so numbering survives truncation.
#[derive(Default)]
struct IncidentRing {
    reports: VecDeque<Arc<IncidentReport>>,
    total: u64,
}

/// Savepoint payload: open-scan positions plus the transaction's
/// version-store write-log mark, so partial rollback retracts the chain
/// stamps of the writes it undoes.
struct SavepointState {
    positions: Vec<(dmx_types::ScanId, Vec<u8>)>,
    vmark: usize,
}

/// One entry of the DDL visibility fence (see [`Database::ddl_fence`]).
enum DdlFence {
    /// Created by this still-active transaction: invisible to everyone
    /// else.
    Uncommitted(TxnId),
    /// Creation committed at this csn: invisible to snapshot readers
    /// whose snapshot is older (the relation does not exist as of their
    /// read position).
    Committed(u64),
}

/// The data manager.
pub struct Database {
    config: DatabaseConfig,
    env: DatabaseEnv,
    services: Arc<CommonServices>,
    obs: Arc<MetricsRegistry>,
    counters: CoreCounters,
    registry: Arc<ExtensionRegistry>,
    catalog: Arc<Catalog>,
    txns: TxnManager,
    scans: Arc<ScanManager>,
    deps: Arc<DependencyRegistry>,
    auth: AuthManager,
    hooks: RwLock<HashMap<String, HookFn>>,
    ddl_txns: Mutex<HashSet<TxnId>>,
    /// Storage files created by in-flight DDL transactions. Their
    /// structure bootstrap (fresh tree root, first heap page) is
    /// physical and unlogged, so the commit path force-writes exactly
    /// these files — no pool-wide flush, no tree latches: the creating
    /// transaction owns them exclusively until commit.
    ddl_files: Mutex<HashMap<TxnId, Vec<FileId>>>,
    /// Relations created by transactions that have not committed yet —
    /// or committed after a still-active snapshot — the DDL visibility
    /// fence. Catalog-by-name/by-id resolution at the DML and scan
    /// entry points refuses [`DdlFence::Uncommitted`] entries for every
    /// *other* transaction, so an uncommitted `CREATE` is invisible
    /// outside its creator (DESIGN.md §6.1's visibility leak, closed);
    /// after commit the entry becomes [`DdlFence::Committed`] at the
    /// creator's commit csn so a snapshot reader whose snapshot predates
    /// the CREATE still gets not-found instead of an empty (to its
    /// snapshot) relation. Committed entries fold away once every
    /// active snapshot postdates them.
    ddl_fence: Mutex<HashMap<RelationId, DdlFence>>,
    query_slot: OnceLock<Arc<dyn Any + Send + Sync>>,
    /// Relations whose pages failed checksum verification after retries,
    /// keyed to the reason. DML/scan entry points refuse these with
    /// [`DmxError::RelationQuarantined`]; everything else stays usable.
    quarantined: Mutex<HashMap<RelationId, String>>,
    /// The flight-recorder ring: installed as the default metrics sink so
    /// the last [`TRACE_RING_CAP`] events are always on hand for incident
    /// reports and the `sys.trace` relation.
    trace: Arc<RingSink>,
    /// The last [`INCIDENT_RING_CAP`] incident reports, oldest first.
    incidents: Mutex<IncidentRing>,
    /// Sticky read-only degraded mode: set on out-of-space, first reason
    /// wins, cleared only by operator action or reopen.
    read_only: Mutex<Option<String>>,
    /// Every repair outcome since open (served by `sys.repairs`).
    repairs: Mutex<Vec<RepairOutcome>>,
    /// Relations repair declared permanently damaged. In-memory only:
    /// a reopen resets it and repair may be retried against the
    /// (possibly replaced) media.
    terminal_damage: Mutex<HashMap<RelationId, String>>,
    /// Row producers for `sys.*` relations owned by higher layers.
    sys_providers: Mutex<HashMap<String, SysProviderFn>>,
    /// LSN of the most recent quiescent checkpoint record (written at
    /// open, and at clean close by [`Drop`]). Used to skip the shutdown
    /// checkpoint when the log has not grown since — an untouched
    /// open/close cycle must leave the stable log byte-identical.
    ckpt_lsn: AtomicU64,
}

impl Database {
    /// Opens (or re-opens after a crash) a database over `env` with the
    /// given extension registry. Runs restart recovery: completes
    /// committed deferred intents and undoes loser transactions.
    pub fn open(
        env: DatabaseEnv,
        config: DatabaseConfig,
        registry: Arc<ExtensionRegistry>,
    ) -> Result<Arc<Database>> {
        // One registry per database instance: every component registers
        // its metrics here, so `metrics_snapshot()` sees the whole stack
        // and seeded single-database tests stay deterministic even when
        // the test harness runs other databases in parallel threads.
        let obs = MetricsRegistry::new();
        let pool = BufferPool::with_metrics(env.disk.clone(), config.pool_frames, obs.clone());
        let log = Arc::new(LogManager::open_with_metrics(
            env.stable_log.clone(),
            obs.clone(),
        ));
        let locks = Arc::new(LockManager::with_metrics(config.lock_timeout, obs.clone()));
        let services =
            CommonServices::with_metrics(env.disk.clone(), pool, log.clone(), locks, obs.clone());

        // Steal policy: the pool may write back and evict dirty pages of
        // any page type whose storage method opted in. Everything else
        // (trees, WORM segments, untyped pages) stays no-steal.
        let stealable: Vec<u8> = registry
            .storage_methods()
            .into_iter()
            .filter_map(|(id, _)| registry.storage(id).ok())
            .flat_map(|sm| sm.stealable_page_types().to_vec())
            .collect();
        services.pool.set_stealable_types(&stealable);

        // The catalog file must be the first file on a fresh disk.
        if !env.disk.file_exists(CATALOG_FILE) {
            let f = env.disk.create_file()?;
            if f != CATALOG_FILE {
                return Err(DmxError::Internal(format!(
                    "catalog file allocated as {f}; disk not fresh?"
                )));
            }
        }
        let catalog = Catalog::new();
        let catalog_corrupt = match catalog.load(&env.disk) {
            Err(e @ DmxError::Corrupt(_)) => Some(e),
            other => {
                other?;
                None
            }
        };
        // A corrupt on-disk catalog image is tolerable only when restart
        // can reconstruct it. The committed image is logged as a deferred
        // intent at every DDL commit, so a crash that tore the image
        // mid-write left that intent pending (no durable DeferredDone)
        // and recovery re-drives it, disk *and* memory. Likewise a torn
        // bootstrap write on a database that never committed DDL loses
        // nothing. But when every committed catalog intent has completed,
        // the damage is silent media rot of durable metadata: starting
        // from an empty catalog would irrecoverably discard every
        // relation descriptor and then persist over the evidence. Fail
        // the reopen instead — checked *before* recovery appends anything
        // to the log, leaving the damaged image in place for out-of-band
        // repair.
        if let Some(err) = catalog_corrupt {
            let catalog_intents: Vec<bool> = dmx_wal::committed_intents(&log)?
                .into_iter()
                .filter(|(rec, _)| crate::undo::is_catalog_intent(rec))
                .map(|(_, done)| done)
                .collect();
            let rebuildable =
                catalog_intents.is_empty() || catalog_intents.iter().any(|done| !done);
            if !rebuildable {
                return Err(err);
            }
        }

        // Restart recovery (idempotent; trivial on a fresh environment).
        let handler = UndoDispatch::new(registry.clone(), catalog.clone(), services.clone());
        let report = dmx_wal::restart(&log, &handler)?;

        // Non-recoverable (temporary) relations do not survive restart;
        // this runs after recovery so a redone catalog image cannot
        // resurrect them.
        for rd in catalog.list() {
            if let Ok(sm) = registry.storage(rd.sm) {
                if !sm.is_recoverable() {
                    let _ = catalog.remove(rd.id);
                }
            }
        }
        services.pool.flush_all()?;
        catalog.persist(&env.disk)?;
        // Quiescent checkpoint: the flush above put every described page
        // state on disk, so a future restart's redo scan may begin here
        // instead of at the log's origin. Appended only when the log has
        // grown past the previous checkpoint — a reopen of an unchanged
        // database must add nothing (recovery's double-reopen idempotency
        // oracle depends on that).
        if log.last_lsn() > report.last_checkpoint {
            log.append(TxnId(0), Lsn::NULL, LogBody::Checkpoint);
        }
        log.force_all()?;
        // After the conditional append the log's last record *is* the
        // current checkpoint (appended just now or inherited unchanged).
        let ckpt_lsn = log.last_lsn();

        // Flight recorder: a bounded ring of the most recent events,
        // installed as the default sink so `sys.trace` and incident
        // reports always have data. Event-count-based and bounded, so
        // the determinism gates are unaffected.
        let trace = RingSink::new(TRACE_RING_CAP);
        obs.set_sink(trace.clone());

        // Publish the `sys.*` system relations (when the registry carries
        // the system storage method). They are non-recoverable, so the
        // sweep above already removed any stale persisted copies and this
        // re-publication is what keeps them fresh across reopens.
        if let Ok(sm_id) = registry.storage_id_by_name(crate::sysrel::SM_NAME) {
            for (name, tag, schema) in crate::sysrel::tables()? {
                if catalog.get_by_name(name).is_err() {
                    let rd = crate::descriptor::RelationDescriptor::new(
                        catalog.next_relation_id(),
                        name,
                        schema,
                        sm_id,
                        vec![tag],
                    );
                    catalog.insert(rd)?;
                }
            }
        }

        let db = Arc::new(Database {
            txns: TxnManager::new_with_metrics(log, report.max_txn + 1, obs.clone()),
            counters: CoreCounters::new(&obs),
            obs,
            config,
            env,
            services,
            registry,
            catalog,
            scans: ScanManager::new(),
            deps: Arc::new(DependencyRegistry::default()),
            auth: AuthManager::new(),
            hooks: RwLock::new(HashMap::new()),
            ddl_txns: Mutex::new(HashSet::new()),
            ddl_files: Mutex::new(HashMap::new()),
            ddl_fence: Mutex::new(HashMap::new()),
            query_slot: OnceLock::new(),
            quarantined: Mutex::new(HashMap::new()),
            trace,
            incidents: Mutex::new(IncidentRing::default()),
            read_only: Mutex::new(None),
            repairs: Mutex::new(Vec::new()),
            terminal_damage: Mutex::new(HashMap::new()),
            sys_providers: Mutex::new(HashMap::new()),
            ckpt_lsn: AtomicU64::new(ckpt_lsn.0),
        });
        // Attachments whose state restart's undo found corrupt are fenced
        // now that the quarantine machinery exists; the repair pipeline
        // rebuilds them from the base on the next CHECK/REPAIR sweep.
        db.fence_undo_damage(&handler);
        // Hydrate attachment-published in-memory state (e.g. the
        // statistics attachment's planner snapshot) from durable storage.
        // Failures are non-fatal: the instance stays un-hydrated and the
        // scrub/repair pipeline handles real corruption.
        for rd in db.catalog.list() {
            for (att_id, insts) in rd.attached_types() {
                let Ok(att) = db.registry.attachment(att_id) else {
                    continue;
                };
                for inst in insts {
                    let _ = att.activate(&db.services, &rd, inst);
                }
            }
        }
        Ok(db)
    }

    /// Opens a fresh in-memory database with the given registry.
    pub fn open_fresh(registry: Arc<ExtensionRegistry>) -> Result<Arc<Database>> {
        Database::open(DatabaseEnv::fresh(), DatabaseConfig::default(), registry)
    }

    // -- accessors ------------------------------------------------------

    /// The common services environment.
    pub fn services(&self) -> &Arc<CommonServices> {
        &self.services
    }

    /// The metrics registry shared by every component of this database.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.obs
    }

    /// A point-in-time snapshot of every metric across pagestore, wal,
    /// lock, txn, core and query layers, sorted by name.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.obs.snapshot()
    }

    /// The flight-recorder event ring (the default metrics sink).
    pub fn trace(&self) -> &Arc<RingSink> {
        &self.trace
    }

    /// The most recent incident report, when a relation has been
    /// quarantined since open.
    pub fn last_incident(&self) -> Option<Arc<IncidentReport>> {
        self.incidents.lock().reports.back().cloned()
    }

    /// The retained incident reports, oldest first, each paired with its
    /// monotone incident number (0-based since open). The ring is
    /// bounded: older reports are evicted oldest-first and counted by
    /// [`Database::incidents_evicted`], so numbering survives
    /// truncation (the first retained number is `total - len`).
    pub fn incidents(&self) -> Vec<(u64, Arc<IncidentReport>)> {
        let ring = self.incidents.lock();
        let first = ring.total - ring.reports.len() as u64;
        ring.reports
            .iter()
            .enumerate()
            .map(|(i, r)| (first + i as u64, r.clone()))
            .collect()
    }

    /// How many incident reports have been evicted from the bounded ring.
    pub fn incidents_evicted(&self) -> u64 {
        let ring = self.incidents.lock();
        ring.total - ring.reports.len() as u64
    }

    /// Registers a row producer for a `sys.*` relation whose state lives
    /// in a higher layer (e.g. the plan cache). Last registration wins.
    pub fn set_sys_provider(&self, relation: &str, f: SysProviderFn) {
        self.sys_providers
            .lock()
            .insert(relation.to_ascii_lowercase(), f);
    }

    /// The registered row producer for `relation`, if any.
    pub fn sys_provider(&self, relation: &str) -> Option<SysProviderFn> {
        self.sys_providers
            .lock()
            .get(&relation.to_ascii_lowercase())
            .cloned()
    }

    pub(crate) fn counters(&self) -> &CoreCounters {
        &self.counters
    }

    /// The procedure-vector registry.
    pub fn registry(&self) -> &Arc<ExtensionRegistry> {
        &self.registry
    }

    /// The catalog.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// Scan bookkeeping.
    pub fn scans(&self) -> &Arc<ScanManager> {
        &self.scans
    }

    /// Bound-plan dependency tracking.
    pub fn deps(&self) -> &Arc<DependencyRegistry> {
        &self.deps
    }

    /// The uniform authorization facility.
    pub fn auth(&self) -> &AuthManager {
        &self.auth
    }

    /// The crash-surviving environment (keep clones to simulate crashes).
    pub fn env(&self) -> &DatabaseEnv {
        &self.env
    }

    /// Current configuration.
    pub fn config(&self) -> &DatabaseConfig {
        &self.config
    }

    /// Lazily-initialized slot for the query layer's plan cache.
    pub fn query_state<T, F>(&self, init: F) -> Arc<T>
    where
        T: Send + Sync + 'static,
        F: FnOnce() -> T,
    {
        if let Some(any) = self.query_slot.get() {
            return match any.clone().downcast::<T>() {
                Ok(t) => t,
                Err(_) => {
                    // A second query layer asked with a different type; the
                    // first registration wins the shared slot and this
                    // caller gets a fresh, unshared instance, not a panic.
                    debug_assert!(false, "query slot initialized with a different type");
                    Arc::new(init())
                }
            };
        }
        let fresh = Arc::new(init());
        let any = self
            .query_slot
            .get_or_init(|| fresh.clone() as Arc<dyn Any + Send + Sync>);
        match any.clone().downcast::<T>() {
            Ok(t) => t,
            Err(_) => {
                debug_assert!(false, "query slot initialized with a different type");
                fresh
            }
        }
    }

    /// Registers a user function for the predicate evaluator.
    pub fn register_function(
        &self,
        name: &str,
        f: impl Fn(&[Value]) -> Result<Value> + Send + Sync + 'static,
    ) {
        self.services.funcs.write().register(name, f);
    }

    /// Registers a named user hook for trigger attachments.
    pub fn register_hook(&self, name: &str, f: HookFn) {
        self.hooks.write().insert(name.to_ascii_lowercase(), f);
    }

    /// Resolves a user hook by name.
    pub fn hook(&self, name: &str) -> Result<HookFn> {
        self.hooks
            .read()
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| DmxError::NotFound(format!("hook {name}")))
    }

    fn undo_dispatch(&self) -> UndoDispatch {
        UndoDispatch::new(
            self.registry.clone(),
            self.catalog.clone(),
            self.services.clone(),
        )
    }

    /// Quarantines every relation whose attachment undo found corrupt
    /// state during a rollback, so the repair pipeline rebuilds it.
    pub(crate) fn fence_undo_damage(&self, handler: &UndoDispatch) {
        for (rel, reason) in handler.take_damaged() {
            let _ = self.quarantine(rel, format!("undo: {reason}"));
        }
    }

    // -- transaction control --------------------------------------------

    /// Begins a transaction.
    pub fn begin(&self) -> Arc<Transaction> {
        self.txns.begin()
    }

    /// The record version store (the snapshot-visibility side car shared
    /// with the transaction manager).
    pub fn versions(&self) -> &Arc<dmx_txn::VersionStore> {
        self.txns.versions()
    }

    /// Number of active transactions.
    pub fn active_txns(&self) -> usize {
        self.txns.active_count()
    }

    /// Commits: runs deferred (before-prepare) constraint checks, writes
    /// and forces the commit record (no-force: data pages stay in the
    /// pool and restart redo covers anything not yet on disk), performs
    /// deferred physical actions, persists the catalog after DDL, and
    /// releases locks and scans.
    pub fn commit(&self, txn: &Arc<Transaction>) -> Result<()> {
        let res = self.commit_inner(txn);
        if let Err(e) = &res {
            // Out-of-space at the commit point (data flush or log force)
            // flips the sticky degraded switch.
            self.note_enospc(e);
            match txn.state() {
                // Failed before the commit point: the transaction did not
                // happen — roll it back so its locks release and no torn
                // state survives.
                TxnState::Active => {
                    if self.abort(txn).is_err() {
                        self.end_txn(txn);
                    }
                }
                // Failed after the commit point (deferred actions, catalog
                // image, log force): the effects stand; restart completes
                // the rest from logged intents. Release resources here.
                _ => self.end_txn(txn),
            }
        }
        res
    }

    fn commit_inner(&self, txn: &Arc<Transaction>) -> Result<()> {
        txn.check_active()?;
        // 1. Deferred integrity constraints may still veto the whole
        //    transaction.
        if let Err(e) = txn.run_deferred(TxnEvent::BeforePrepare) {
            self.abort(txn)?;
            return Err(e);
        }
        // 2. No-force policy (DESIGN.md §6): data pages are *not* flushed
        //    at commit. The commit point below forces only the log; redo
        //    at restart reconstructs any committed page image that never
        //    made it to disk. (The former flush-everything sweep — and
        //    the every-tree-latch pass it needed to avoid capturing torn
        //    multi-page changes — is gone; checkpoints at open and steal
        //    eviction under memory pressure now do the page writing.)
        //    The one exception is DDL: structure bootstrap (a fresh tree
        //    root, a heap's first page) is physical and unlogged, so redo
        //    cannot reconstruct it — a DDL commit force-writes exactly the
        //    files this transaction created. No tree latches are needed:
        //    the creator owns those files exclusively (Catalog X plus the
        //    DDL visibility fence) so no concurrent writer can be mid-way
        //    through a multi-page change in them, and per-file flushing
        //    leaves every other relation's latches untouched.
        let did_ddl = self.ddl_txns.lock().remove(&txn.id());
        if did_ddl {
            let created = self.ddl_files.lock().remove(&txn.id()).unwrap_or_default();
            for file in created {
                self.services.pool.flush_file(file)?;
            }
        }
        // 3. DDL durability: log the catalog image as a deferred intent
        //    so restart can redo it if we crash after the commit point.
        let catalog_intent = if did_ddl {
            let image = self.catalog.serialize();
            let lsn = txn.log(LogBody::DeferredIntent {
                payload: encode_catalog_intent(&image),
            });
            Some((lsn, image))
        } else {
            None
        };
        // 4. The commit point.
        txn.commit_point()?;
        txn.finish(TxnState::Committed);
        self.counters.commits.incr();
        // Publish this transaction's record versions: the effects are
        // durable, and the stamps must become committed versions before
        // the record X locks release in step 7 (a snapshot captured
        // after those locks drop must already see the new images). The
        // DDL fence promotion rides inside the same publication step
        // (under the commit mutex, before the csn store): the relations
        // are real now, but only as of the commit csn — an older
        // snapshot must keep seeing not-found rather than the relation
        // with all of its initial rows invisible, while a snapshot that
        // includes the csn must never catch the fence still Uncommitted
        // and report a committed relation as not-found.
        let commit_csn = self.txns.versions().commit_with(txn.id(), |csn| {
            if did_ddl {
                self.promote_ddl_fences(txn.id(), csn);
            }
        });
        if did_ddl && commit_csn.is_none() {
            // Row-less DDL publishes no csn, so there is no
            // capture-ordering window to close; the currently-published
            // sequence is a safe (conservative) stand-in.
            self.promote_ddl_fences(txn.id(), self.txns.versions().commit_seq());
        }
        // 5. Deferred physical actions (dropped storage release, …).
        let deferred_result = txn.run_deferred(TxnEvent::AtCommit);
        // 6. Catalog persistence + completion record. Only DDL needs a
        //    second force (for the DeferredDone): plain DML commits are
        //    fully durable after the commit point, and any unforced
        //    deferred-action records are redone from their intents.
        if let Some((lsn, image)) = catalog_intent {
            Catalog::write_image(&self.env.disk, &image)?;
            self.services.log.append(
                txn.id(),
                Lsn::NULL,
                LogBody::DeferredDone { intent_lsn: lsn },
            );
            self.services.log.force_all()?;
        }
        // 7. End-of-transaction: scans closed, locks released.
        self.end_txn(txn);
        deferred_result
    }

    /// Aborts: log-driven full rollback, then cleanup. Idempotent for
    /// already-aborted transactions.
    pub fn abort(&self, txn: &Arc<Transaction>) -> Result<()> {
        match txn.state() {
            TxnState::Aborted => return Ok(()),
            TxnState::Committed => {
                return Err(DmxError::TxnState(
                    "cannot abort a committed transaction".into(),
                ))
            }
            TxnState::Active => {}
        }
        let handler = self.undo_dispatch();
        let new_last = dmx_wal::rollback_to(
            &self.services.log,
            &handler,
            txn.id(),
            txn.last_lsn(),
            Lsn::NULL,
        )?;
        self.fence_undo_damage(&handler);
        txn.set_last_lsn(new_last);
        txn.abort_point();
        txn.finish(TxnState::Aborted);
        self.counters.aborts.incr();
        // Undo DDL bookkeeping (restore dropped descriptors, remove
        // created ones, release created storage).
        let _ = txn.run_deferred(TxnEvent::AtAbort);
        self.ddl_txns.lock().remove(&txn.id());
        self.end_txn(txn);
        Ok(())
    }

    fn end_txn(&self, txn: &Arc<Transaction>) {
        // "All key-sequential accesses must be terminated at transaction
        // termination."
        self.scans.close_all(txn.id());
        let _ = txn.run_deferred(TxnEvent::AtEnd);
        // A transaction that did not commit unwinds its chain stamps now
        // — after the WAL undo restored the pages, so a reader that
        // raced the rollback kept resolving through the chains the whole
        // time. No-op when the transaction never wrote (or committed).
        if txn.state() != TxnState::Committed {
            self.txns.versions().abort(txn.id());
        }
        self.services.locks.unlock_all(txn.id());
        self.txns.deregister(txn.id());
        // The DDL visibility fence: an aborting creator's entries vanish
        // (the relation never existed); commit already promoted its
        // entries to `Committed(csn)` in `commit_inner`. Committed
        // entries fold away once every active snapshot postdates them —
        // from then on no possible reader is old enough to refuse. Both
        // this prune and the version GC below are reclamation decisions
        // and so run under the active-set lock (see
        // `TxnManager::with_active_snapshots`): an unlocked copy of the
        // snapshot set can miss a transaction that is mid-`begin` with
        // an already-captured (older) snapshot.
        self.ddl_files.lock().remove(&txn.id());
        let gc = self.txns.with_active_snapshots(|snaps| {
            let low_water = snaps.iter().map(|s| s.csn).min().unwrap_or(u64::MAX);
            self.ddl_fence.lock().retain(|_, f| match f {
                DdlFence::Uncommitted(owner) => *owner != txn.id(),
                DdlFence::Committed(csn) => *csn > low_water,
            });
            // Low-water version GC: with this transaction gone, chains
            // whose newest committed version predates every remaining
            // snapshot (and that no snapshot captured mid-write) fold
            // away.
            self.txns.versions().gc(snaps)
        });
        if gc.reclaimed > 0 {
            self.counters.mvcc_gc_reclaimed.add(gc.reclaimed as u64);
        }
    }

    /// Promotes `txn`'s [`DdlFence::Uncommitted`] entries to
    /// `Committed(csn)`. Runs inside the version store's commit
    /// publication (so no snapshot can include the csn while a fence
    /// still reads `Uncommitted`), or directly for row-less DDL.
    fn promote_ddl_fences(&self, txn: TxnId, csn: u64) {
        for fence in self.ddl_fence.lock().values_mut() {
            if matches!(fence, DdlFence::Uncommitted(owner) if *owner == txn) {
                *fence = DdlFence::Committed(csn);
            }
        }
    }

    /// Runs `f` in a fresh transaction, committing on success and
    /// aborting on error.
    pub fn with_txn<T>(
        self: &Arc<Self>,
        f: impl FnOnce(&Arc<Transaction>) -> Result<T>,
    ) -> Result<T> {
        let txn = self.begin();
        match f(&txn) {
            Ok(v) => {
                self.commit(&txn)?;
                Ok(v)
            }
            Err(e) => {
                let _ = self.abort(&txn);
                Err(e)
            }
        }
    }

    /// Runs `f` in a fresh transaction, committing on success and
    /// aborting on error, re-running the whole closure (in a new
    /// transaction) up to `retries` times when this transaction is the
    /// chosen deadlock victim. The closure must be safe to re-run: the
    /// victim's effects are fully rolled back before the retry.
    pub fn with_txn_retries<T>(
        self: &Arc<Self>,
        retries: u32,
        mut f: impl FnMut(&Arc<Transaction>) -> Result<T>,
    ) -> Result<T> {
        dmx_txn::run_with_retries(retries, |_attempt| self.with_txn(|txn| f(txn)))
    }

    /// DDL visibility fence (DESIGN.md §6.1/§6.2): a relation created by
    /// an uncommitted transaction does not exist for any *other*
    /// transaction — their lookups report not-found exactly as if the
    /// CREATE had never run, because until commit it may not have. A
    /// snapshot reader additionally refuses a relation whose creation
    /// committed *after* its snapshot: to that read position the CREATE
    /// has not happened yet, and admitting it would show an impossible
    /// state (the relation present but all of its initial rows still
    /// invisible). Called at every DML/scan entry point after catalog
    /// resolution.
    pub(crate) fn check_ddl_visible(
        &self,
        rd: &crate::descriptor::RelationDescriptor,
        txn: &Arc<Transaction>,
    ) -> Result<()> {
        match self.ddl_fence.lock().get(&rd.id) {
            Some(DdlFence::Uncommitted(owner)) if *owner != txn.id() => {
                Err(DmxError::NotFound(format!("relation {}", rd.name)))
            }
            Some(DdlFence::Committed(csn)) if txn.snapshot_reads() && txn.snapshot().csn < *csn => {
                Err(DmxError::NotFound(format!("relation {}", rd.name)))
            }
            _ => Ok(()),
        }
    }

    // -- quarantine -------------------------------------------------------

    /// Fails with [`DmxError::RelationQuarantined`] when `rel` is
    /// quarantined. Called at every DML/scan entry point.
    pub(crate) fn check_not_quarantined(&self, rel: RelationId) -> Result<()> {
        match self.quarantined.lock().get(&rel) {
            Some(reason) => Err(DmxError::RelationQuarantined {
                relation: rel,
                reason: reason.clone(),
            }),
            None => Ok(()),
        }
    }

    /// Quarantines `rel` (idempotent; the first reason wins) and returns
    /// the typed error to surface. Invoked when a page read comes back
    /// [`DmxError::Corrupt`] even after the buffer manager's retries:
    /// the damage is in the media, so instead of poisoning the process or
    /// erroring every future statement with an untyped failure, the one
    /// bad relation is fenced off while the rest of the database keeps
    /// serving.
    pub(crate) fn quarantine(&self, rel: RelationId, reason: String) -> DmxError {
        let mut q = self.quarantined.lock();
        if !q.contains_key(&rel) {
            self.counters.quarantines.incr();
            self.obs.emit(ObsEvent {
                layer: "core",
                op: "quarantine",
                target: rel.0 as u64,
                detail: 0,
            });
            // Flight recorder: freeze the last events and every metric
            // at the moment of the first quarantine of this relation.
            // The snapshot is taken here (not in the sink) because sinks
            // must not call back into the database.
            let report = IncidentReport {
                relation: rel,
                reason: reason.clone(),
                events: self.trace.snapshot(),
                metrics: self.obs.snapshot(),
            };
            let mut ring = self.incidents.lock();
            ring.reports.push_back(Arc::new(report));
            ring.total += 1;
            while ring.reports.len() > INCIDENT_RING_CAP {
                ring.reports.pop_front();
                self.counters.incidents_evicted.incr();
            }
        }
        let stored = q.entry(rel).or_insert(reason);
        DmxError::RelationQuarantined {
            relation: rel,
            reason: stored.clone(),
        }
    }

    /// Currently quarantined relations with their reasons.
    pub fn quarantined(&self) -> Vec<(RelationId, String)> {
        let mut out: Vec<(RelationId, String)> = self
            .quarantined
            .lock()
            .iter()
            .map(|(r, s)| (*r, s.clone()))
            .collect();
        out.sort_by_key(|(r, _)| *r);
        out
    }

    /// Lifts a quarantine (after repair / operator override). Returns
    /// true when the relation was quarantined. Clearing also forgets any
    /// permanent-damage verdict: the operator may have replaced the
    /// media, so repair deserves a fresh set of attempts. Persistent
    /// damage simply re-fences on the next read.
    pub fn clear_quarantine(&self, rel: RelationId) -> bool {
        let cleared = self.quarantined.lock().remove(&rel).is_some();
        if cleared {
            self.terminal_damage.lock().remove(&rel);
            self.counters.quarantine_cleared.incr();
            self.obs.emit(ObsEvent {
                layer: "core",
                op: "quarantine_clear",
                target: rel.0 as u64,
                detail: 0,
            });
        }
        cleared
    }

    /// Marks `rel` permanently damaged: repair exhausted its retries (or
    /// the storage method cannot salvage). The quarantine stays and the
    /// verdict is reported through [`DmxError::RepairImpossible`].
    pub(crate) fn mark_terminal(&self, rel: RelationId, reason: String) {
        self.terminal_damage.lock().entry(rel).or_insert(reason);
    }

    /// The permanent-damage verdict for `rel`, if any.
    pub fn terminal_damage(&self, rel: RelationId) -> Option<String> {
        self.terminal_damage.lock().get(&rel).cloned()
    }

    // -- degraded mode ----------------------------------------------------

    /// Enters sticky read-only degraded mode (the first reason wins).
    /// Used when a write path reports out-of-space: the failing statement
    /// aborts cleanly, but further writes would hit the same wall at a
    /// worse moment (mid-commit), so the engine fences all writes until
    /// the operator frees space and calls [`Database::clear_read_only`].
    pub fn enter_read_only(&self, reason: &str) {
        let mut ro = self.read_only.lock();
        if ro.is_none() {
            *ro = Some(reason.to_string());
            self.obs.emit(ObsEvent {
                layer: "core",
                op: "read_only",
                target: 0,
                detail: 0,
            });
        }
    }

    /// The degraded-mode reason, when the engine is read-only.
    pub fn read_only_reason(&self) -> Option<String> {
        self.read_only.lock().clone()
    }

    /// Fails with [`DmxError::ReadOnly`] in degraded mode. Called at
    /// every modification entry point (reads keep working).
    pub(crate) fn check_writable(&self) -> Result<()> {
        match &*self.read_only.lock() {
            Some(reason) => Err(DmxError::ReadOnly(reason.clone())),
            None => Ok(()),
        }
    }

    /// Leaves degraded mode (operator has freed space). Returns true
    /// when the engine was read-only.
    pub fn clear_read_only(&self) -> bool {
        self.read_only.lock().take().is_some()
    }

    /// Inspects a statement error on a write path: out-of-space flips
    /// the sticky degraded switch (the statement itself has already been
    /// aborted cleanly by the caller).
    pub(crate) fn note_enospc(&self, e: &DmxError) {
        if let DmxError::OutOfSpace(m) = e {
            self.enter_read_only(m);
        }
    }

    // -- repair log -------------------------------------------------------

    /// Appends a repair outcome row (served by `sys.repairs`).
    pub(crate) fn record_repair(&self, outcome: RepairOutcome) {
        self.repairs.lock().push(outcome);
    }

    /// Every repair outcome since open, in order.
    pub fn repairs(&self) -> Vec<RepairOutcome> {
        self.repairs.lock().clone()
    }

    // -- savepoints -------------------------------------------------------

    /// Establishes a named rollback point, saving open scan positions
    /// ("the storage methods and attachments are driven by the system to
    /// obtain their key-sequential access positions").
    pub fn savepoint(&self, txn: &Arc<Transaction>, name: &str) -> Result<()> {
        txn.check_active()?;
        let state = SavepointState {
            positions: self.scans.save_positions(txn.id()),
            vmark: self.txns.versions().mark(txn.id()),
        };
        txn.savepoint(name, Some(Box::new(state)));
        Ok(())
    }

    /// Partial rollback to a named savepoint: log-driven undo back to the
    /// rollback point, then version-stamp unwind and scan-position restore.
    pub fn rollback_to_savepoint(&self, txn: &Arc<Transaction>, name: &str) -> Result<()> {
        txn.check_active()?;
        let sp = txn.pop_savepoint(name)?;
        let handler = self.undo_dispatch();
        let new_last = dmx_wal::rollback_to(
            &self.services.log,
            &handler,
            txn.id(),
            txn.last_lsn(),
            sp.lsn,
        )?;
        self.fence_undo_damage(&handler);
        txn.set_last_lsn(new_last);
        if let Some(payload) = sp.payload {
            let state = payload
                .downcast::<SavepointState>()
                .map_err(|_| DmxError::Internal("savepoint payload type".into()))?;
            // The pages are restored; retract the chain stamps of the
            // undone writes so snapshot readers don't keep serving them.
            self.txns.versions().rollback_to_mark(txn.id(), state.vmark);
            self.scans.restore_positions(txn.id(), &state.positions)?;
        }
        Ok(())
    }

    /// Cancels a rollback point without rolling back (the retained scan
    /// positions are discarded).
    pub fn release_savepoint(&self, txn: &Arc<Transaction>, name: &str) -> Result<()> {
        txn.pop_savepoint(name).map(|_| ())
    }

    // -- data definition ---------------------------------------------------

    pub(crate) fn mark_ddl(&self, txn: &Arc<Transaction>) {
        self.ddl_txns.lock().insert(txn.id());
    }

    /// Creates a relation using the named storage method with an
    /// extension-specific attribute/value list.
    pub fn create_relation(
        self: &Arc<Self>,
        txn: &Arc<Transaction>,
        name: &str,
        schema: Schema,
        sm_name: &str,
        params: &AttrList,
    ) -> Result<RelationId> {
        txn.check_active()?;
        self.check_writable()?;
        let ctx = ExecCtx { db: self, txn };
        ctx.lock(LockName::Catalog, LockMode::X)?;
        if self.catalog.get_by_name(name).is_ok() {
            return Err(DmxError::Duplicate(format!("relation {name}")));
        }
        let sm_id = self.registry.storage_id_by_name(sm_name)?;
        let sm = self.registry.storage(sm_id)?;
        sm.validate_params(params, &schema)?;
        let rel = self.catalog.next_relation_id();
        let sm_desc = sm.create_instance(&ctx, rel, &schema, params)?;
        let rd =
            crate::descriptor::RelationDescriptor::new(rel, name, schema, sm_id, sm_desc.clone());
        // Until commit, the new relation is visible only to its creator.
        // The fence goes up *before* the name becomes resolvable: a
        // reader that wins the race to the catalog must already find the
        // fence, or it would scan the half-created relation.
        self.ddl_fence
            .lock()
            .insert(rel, DdlFence::Uncommitted(txn.id()));
        if let Err(e) = self.catalog.insert(rd) {
            self.ddl_fence.lock().remove(&rel);
            return Err(e);
        }
        self.mark_ddl(txn);
        // Commit will force-write exactly the files this CREATE made
        // (their structure bootstrap is physical and unlogged).
        self.ddl_files
            .lock()
            .entry(txn.id())
            .or_default()
            .extend(sm.storage_files(&sm_desc));
        // On abort: un-create (the relation never becomes durable).
        let (catalog, services) = (self.catalog.clone(), self.services.clone());
        txn.defer(
            TxnEvent::AtAbort,
            Box::new(move || {
                let _ = catalog.remove(rel);
                match sm.destroy_instance(&services, &sm_desc) {
                    Err(DmxError::NotFound(_)) | Ok(()) => Ok(()),
                    Err(e) => Err(e),
                }
            }),
        );
        Ok(rel)
    }

    /// Creates an attachment instance on a relation, backfilling it from
    /// the relation's existing records.
    pub fn create_attachment(
        self: &Arc<Self>,
        txn: &Arc<Transaction>,
        rel_name: &str,
        type_name: &str,
        att_name: &str,
        params: &AttrList,
    ) -> Result<()> {
        txn.check_active()?;
        self.check_writable()?;
        let ctx = ExecCtx { db: self, txn };
        ctx.lock(LockName::Catalog, LockMode::X)?;
        let old_rd = self.catalog.get_by_name(rel_name)?;
        ctx.lock(LockName::Relation(old_rd.id), LockMode::X)?;
        let att_id = self.registry.attachment_id_by_name(type_name)?;
        let att = self.registry.attachment(att_id)?;
        att.validate_params(params, &old_rd.schema)?;

        let start_lsn = txn.last_lsn();
        let inst_desc = att.create_instance(&ctx, &old_rd, att_name, params)?;
        let (new_rd, inst) = old_rd.with_attachment(att_id, att_name, inst_desc.clone())?;
        let new_rd = self.catalog.replace(new_rd)?;

        // Backfill: drive the new instance's on_insert for every existing
        // record; any veto (e.g. a unique violation, a failed constraint)
        // aborts the DDL statement with a partial rollback.
        let backfill = (|| -> Result<()> {
            let sm = self.registry.storage(new_rd.sm)?;
            let slice = [AttachmentInstance {
                instance: inst,
                name: att_name.to_string(),
                desc: inst_desc.clone(),
            }];
            let mut scan = sm.open_scan(&ctx, &new_rd, KeyRange::all(), None, None)?;
            while let Some(item) = scan.next(&ctx)? {
                let values = item
                    .values
                    .ok_or_else(|| DmxError::Internal("storage scan returned no fields".into()))?;
                att.on_insert(&ctx, &new_rd, &slice, &item.key, &Record::new(values))?;
            }
            Ok(())
        })();
        if let Err(e) = backfill {
            // Undo logged backfill work, restore the descriptor, release
            // the instance's storage.
            let handler = self.undo_dispatch();
            let new_last = dmx_wal::rollback_to(
                &self.services.log,
                &handler,
                txn.id(),
                txn.last_lsn(),
                start_lsn,
            )?;
            self.fence_undo_damage(&handler);
            txn.set_last_lsn(new_last);
            self.catalog.replace((*old_rd).clone())?;
            let _ = att.destroy_instance(&self.services, &inst_desc);
            return Err(e);
        }

        self.deps.invalidate(DepKey::Relation(old_rd.id));
        self.mark_ddl(txn);
        self.ddl_files
            .lock()
            .entry(txn.id())
            .or_default()
            .extend(att.storage_files(&inst_desc));
        let (catalog, services, rel) = (self.catalog.clone(), self.services.clone(), old_rd.id);
        let old_snapshot = (*old_rd).clone();
        txn.defer(
            TxnEvent::AtAbort,
            Box::new(move || {
                let _ = catalog.replace(old_snapshot);
                let _ = rel;
                match att.destroy_instance(&services, &inst_desc) {
                    Err(DmxError::NotFound(_)) | Ok(()) => Ok(()),
                    Err(e) => Err(e),
                }
            }),
        );
        Ok(())
    }

    /// `ANALYZE TABLE`: scans the relation once and offers the full
    /// record image to every attachment type on it via
    /// [`Attachment::analyze`], so maintained derived state (the
    /// statistics attachment's distinct sketches and histogram bounds)
    /// can be rebuilt *exactly*. Returns the number of attachment
    /// instances that rebuilt state. Runs under a relation X lock so the
    /// rebuild observes a stable image.
    pub fn analyze_relation(
        self: &Arc<Self>,
        txn: &Arc<Transaction>,
        rel_name: &str,
    ) -> Result<usize> {
        txn.check_active()?;
        self.check_writable()?;
        let ctx = ExecCtx { db: self, txn };
        let rd = self.catalog.get_by_name(rel_name)?;
        self.check_not_quarantined(rd.id)?;
        ctx.lock(LockName::Relation(rd.id), LockMode::X)?;
        let sm = self.registry.storage(rd.sm)?;
        let mut records = Vec::new();
        let mut scan = sm.open_scan(&ctx, &rd, KeyRange::all(), None, None)?;
        while let Some(item) = scan.next(&ctx)? {
            let values = item
                .values
                .ok_or_else(|| DmxError::Internal("storage scan returned no fields".into()))?;
            records.push(Record::new(values));
        }
        let mut analyzed = 0;
        for (att_id, insts) in rd.attached_types() {
            let att = self.registry.attachment(att_id)?;
            if att.analyze(&ctx, &rd, insts, &records)? {
                analyzed += insts.len();
            }
        }
        Ok(analyzed)
    }

    /// Drops a relation: removed from the catalog immediately, physical
    /// storage released *deferred* at commit ("the actual release of the
    /// relation or access path state is deferred until the transaction
    /// commits" so the drop stays undoable without logging the whole
    /// relation).
    pub fn drop_relation(self: &Arc<Self>, txn: &Arc<Transaction>, name: &str) -> Result<()> {
        txn.check_active()?;
        let ctx = ExecCtx { db: self, txn };
        ctx.lock(LockName::Catalog, LockMode::X)?;
        let rd = self.catalog.get_by_name(name)?;
        ctx.lock(LockName::Relation(rd.id), LockMode::X)?;
        self.catalog.remove(rd.id)?;
        self.auth.purge_relation(rd.id);
        self.deps.invalidate(DepKey::Relation(rd.id));
        for (att_id, insts) in rd.attached_types() {
            for inst in insts {
                self.deps
                    .invalidate(DepKey::Attachment(rd.id, att_id, inst.instance));
            }
        }
        // Log intents so a post-commit crash still completes the release.
        let sm_intent = txn.log(LogBody::DeferredIntent {
            payload: encode_drop_sm_intent(rd.sm, &rd.sm_desc),
        });
        let mut att_intents = Vec::new();
        for (att_id, insts) in rd.attached_types() {
            for inst in insts {
                let lsn = txn.log(LogBody::DeferredIntent {
                    payload: encode_drop_att_intent(att_id, &inst.desc),
                });
                att_intents.push((att_id, inst.desc.clone(), lsn));
            }
        }
        self.mark_ddl(txn);
        // At commit: physically destroy + mark intents done.
        let (registry, services, log) = (
            self.registry.clone(),
            self.services.clone(),
            self.services.log.clone(),
        );
        let (rd_commit, txn_id) = (rd.clone(), txn.id());
        txn.defer(
            TxnEvent::AtCommit,
            Box::new(move || {
                let sm = registry.storage(rd_commit.sm)?;
                match sm.destroy_instance(&services, &rd_commit.sm_desc) {
                    Err(DmxError::NotFound(_)) | Ok(()) => {}
                    Err(e) => return Err(e),
                }
                log.append(
                    txn_id,
                    Lsn::NULL,
                    LogBody::DeferredDone {
                        intent_lsn: sm_intent,
                    },
                );
                for (att_id, desc, lsn) in &att_intents {
                    let att = registry.attachment(*att_id)?;
                    match att.destroy_instance(&services, desc) {
                        Err(DmxError::NotFound(_)) | Ok(()) => {}
                        Err(e) => return Err(e),
                    }
                    log.append(
                        txn_id,
                        Lsn::NULL,
                        LogBody::DeferredDone { intent_lsn: *lsn },
                    );
                }
                Ok(())
            }),
        );
        // On abort: the relation reappears.
        let catalog = self.catalog.clone();
        let rd_abort = (*rd).clone();
        txn.defer(
            TxnEvent::AtAbort,
            Box::new(move || catalog.insert(rd_abort).map(|_| ())),
        );
        Ok(())
    }

    /// Drops one attachment instance by name (deferred physical release,
    /// like [`Database::drop_relation`]).
    pub fn drop_attachment(
        self: &Arc<Self>,
        txn: &Arc<Transaction>,
        rel_name: &str,
        att_name: &str,
    ) -> Result<()> {
        txn.check_active()?;
        let ctx = ExecCtx { db: self, txn };
        ctx.lock(LockName::Catalog, LockMode::X)?;
        let old_rd = self.catalog.get_by_name(rel_name)?;
        ctx.lock(LockName::Relation(old_rd.id), LockMode::X)?;
        let (new_rd, att_id, removed) = old_rd.without_attachment(att_name)?;
        self.catalog.replace(new_rd)?;
        // Retract attachment-published in-memory state right away; if
        // the transaction aborts, the next maintained change (or reopen)
        // republishes it — until then the planner falls back to guesses.
        if let Ok(att) = self.registry.attachment(att_id) {
            att.deactivate(&old_rd, &removed);
        }
        self.deps
            .invalidate(DepKey::Attachment(old_rd.id, att_id, removed.instance));
        self.deps.invalidate(DepKey::Relation(old_rd.id));
        let intent = txn.log(LogBody::DeferredIntent {
            payload: encode_drop_att_intent(att_id, &removed.desc),
        });
        self.mark_ddl(txn);
        let (registry, services, log) = (
            self.registry.clone(),
            self.services.clone(),
            self.services.log.clone(),
        );
        let (desc, txn_id) = (removed.desc.clone(), txn.id());
        txn.defer(
            TxnEvent::AtCommit,
            Box::new(move || {
                let att = registry.attachment(att_id)?;
                match att.destroy_instance(&services, &desc) {
                    Err(DmxError::NotFound(_)) | Ok(()) => {}
                    Err(e) => return Err(e),
                }
                log.append(
                    txn_id,
                    Lsn::NULL,
                    LogBody::DeferredDone { intent_lsn: intent },
                );
                Ok(())
            }),
        );
        let catalog = self.catalog.clone();
        let old_snapshot = (*old_rd).clone();
        txn.defer(
            TxnEvent::AtAbort,
            Box::new(move || catalog.replace(old_snapshot).map(|_| ())),
        );
        Ok(())
    }
}

impl Drop for Database {
    /// Clean-shutdown checkpoint (best effort). Under no-force the pool
    /// holds committed page images that exist durably only in the log;
    /// writing them out here — and logging a checkpoint once they are on
    /// disk — lets the next open skip redo entirely instead of replaying
    /// the whole session. Skipped when the log has not grown since the
    /// last checkpoint (an untouched open/close cycle must leave the
    /// stable log byte-identical) and abandoned silently on any I/O
    /// error: a crashed or out-of-space device simply reopens through
    /// restart recovery, which needs no checkpoint to be correct.
    fn drop(&mut self) {
        if self.services.log.last_lsn().0 <= self.ckpt_lsn.load(Ordering::Acquire) {
            return;
        }
        if self.services.pool.flush_all().is_err() {
            return; // no checkpoint without every page state on disk
        }
        self.services
            .log
            .append(TxnId(0), Lsn::NULL, LogBody::Checkpoint);
        let _ = self.services.log.force_all();
    }
}
