//! The core's [`UndoHandler`]: dispatching recovery work to extensions.
//!
//! The common recovery log "is used to drive the storage method and
//! attachment implementations to undo the partial effects" of aborted
//! work. This module routes each logged extension operation back to its
//! extension through the procedure vectors, and re-drives committed
//! deferred intents (physical drops, catalog images) at restart.

use std::sync::Arc;

use dmx_types::sync::Mutex;
use dmx_types::{DmxError, RelationId, Result};
use dmx_wal::{ExtKind, LogBody, LogRecord, UndoHandler};

use crate::catalog::Catalog;
use crate::registry::ExtensionRegistry;
use crate::services::CommonServices;

const INTENT_DROP_SM: u8 = 1;
const INTENT_DROP_ATT: u8 = 2;
const INTENT_CATALOG: u8 = 3;

/// Encodes a deferred drop of a storage-method instance.
pub fn encode_drop_sm_intent(sm: dmx_types::SmTypeId, sm_desc: &[u8]) -> Vec<u8> {
    let mut v = vec![INTENT_DROP_SM, sm.0];
    v.extend_from_slice(sm_desc);
    v
}

/// Encodes a deferred drop of an attachment instance.
pub fn encode_drop_att_intent(att: dmx_types::AttTypeId, inst_desc: &[u8]) -> Vec<u8> {
    let mut v = vec![INTENT_DROP_ATT, att.0];
    v.extend_from_slice(inst_desc);
    v
}

/// Encodes a catalog-image persist intent.
pub fn encode_catalog_intent(image: &[u8]) -> Vec<u8> {
    let mut v = vec![INTENT_CATALOG];
    v.extend_from_slice(image);
    v
}

/// True when `rec` is a deferred intent carrying a catalog image — the
/// kind restart can use to reconstruct a damaged on-disk catalog file.
pub(crate) fn is_catalog_intent(rec: &LogRecord) -> bool {
    matches!(&rec.body, LogBody::DeferredIntent { payload }
        if payload.first() == Some(&INTENT_CATALOG))
}

/// The handler the recovery driver calls into.
pub struct UndoDispatch {
    pub registry: Arc<ExtensionRegistry>,
    pub catalog: Arc<Catalog>,
    pub services: Arc<CommonServices>,
    /// Relations whose attachment undo hit persistent corruption. The
    /// undo is treated as complete (a CLR is written) because attachment
    /// state is derivable: the caller drains this list and quarantines
    /// each relation so the repair pipeline rebuilds the attachment
    /// instead of recovery failing outright.
    damaged: Mutex<Vec<(RelationId, String)>>,
}

impl UndoDispatch {
    pub fn new(
        registry: Arc<ExtensionRegistry>,
        catalog: Arc<Catalog>,
        services: Arc<CommonServices>,
    ) -> Self {
        UndoDispatch {
            registry,
            catalog,
            services,
            damaged: Mutex::new(Vec::new()),
        }
    }

    /// Drains the relations whose attachment undo found corrupt state.
    pub fn take_damaged(&self) -> Vec<(RelationId, String)> {
        std::mem::take(&mut *self.damaged.lock())
    }
}

impl UndoHandler for UndoDispatch {
    fn undo(&self, rec: &LogRecord) -> Result<()> {
        let LogBody::ExtOp {
            ext,
            relation,
            op,
            payload,
        } = &rec.body
        else {
            return Ok(());
        };
        // A relation missing from the catalog means the same transaction
        // created it (loser DDL, never persisted): its state is being
        // discarded wholesale, so record-level undo is moot.
        let Ok(rd) = self.catalog.get(*relation) else {
            return Ok(());
        };
        match ext {
            ExtKind::Storage(id) => {
                self.registry
                    .storage(*id)?
                    .undo(&self.services, &rd, rec.lsn, *op, payload)
            }
            ExtKind::Attachment(id) => {
                let res =
                    self.registry
                        .attachment(*id)?
                        .undo(&self.services, &rd, rec.lsn, *op, payload);
                match res {
                    // Attachment state too damaged for record-level undo
                    // (e.g. a crash left the instance's pages unwritten)
                    // needs a rebuild, not a failed restart: attachment
                    // state is derivable from the base, so note the
                    // relation for quarantine and report the record as
                    // undone. Storage (base) undo gets no such tolerance
                    // — base state is not derivable from anything.
                    Err(DmxError::Corrupt(reason)) => {
                        self.damaged.lock().push((*relation, reason));
                        Ok(())
                    }
                    other => other,
                }
            }
        }
    }

    fn redo(&self, rec: &LogRecord) -> Result<()> {
        let LogBody::ExtOp {
            ext,
            relation,
            op,
            payload,
        } = &rec.body
        else {
            return Ok(());
        };
        // Missing relation: the op belongs to a committed transaction, so
        // this means a *later* committed transaction dropped it — its
        // deferred drop already released the storage, and replaying into
        // freed files would be wrong. (Restart re-drives committed
        // catalog-image intents before this pass, so committed CREATEs
        // are visible here.)
        let Ok(rd) = self.catalog.get(*relation) else {
            return Ok(());
        };
        let res = match ext {
            ExtKind::Storage(id) => {
                self.registry
                    .storage(*id)?
                    .redo(&self.services, &rd, rec.lsn, *op, payload)
            }
            ExtKind::Attachment(id) => {
                self.registry
                    .attachment(*id)?
                    .redo(&self.services, &rd, rec.lsn, *op, payload)
            }
        };
        match res {
            // Corrupt state blocks redo of this relation only; fence it
            // and keep restarting. For attachments the state is derivable
            // from the base; for storage the committed ops remain in the
            // log, so quarantine-and-repair beats failing the whole
            // database open over one rotten relation. (Undo gives storage
            // no such tolerance: an un-undone loser would silently stand.)
            Err(DmxError::Corrupt(reason)) => {
                self.damaged.lock().push((*relation, reason));
                Ok(())
            }
            other => other,
        }
    }

    fn redo_deferred(&self, rec: &LogRecord) -> Result<()> {
        let LogBody::DeferredIntent { payload } = &rec.body else {
            return Ok(());
        };
        let Some((&tag, body)) = payload.split_first() else {
            return Err(DmxError::Corrupt("empty deferred intent".into()));
        };
        match tag {
            INTENT_DROP_SM => {
                let (&id, desc) = body
                    .split_first()
                    .ok_or_else(|| DmxError::Corrupt("short drop intent".into()))?;
                let sm = self.registry.storage(dmx_types::SmTypeId(id))?;
                tolerate_missing(sm.destroy_instance(&self.services, desc))
            }
            INTENT_DROP_ATT => {
                let (&id, desc) = body
                    .split_first()
                    .ok_or_else(|| DmxError::Corrupt("short drop intent".into()))?;
                let att = self.registry.attachment(dmx_types::AttTypeId(id))?;
                tolerate_missing(att.destroy_instance(&self.services, desc))
            }
            INTENT_CATALOG => {
                Catalog::write_image(&self.services.disk, body)?;
                self.catalog.restore(body)
            }
            other => Err(DmxError::Corrupt(format!("bad intent tag {other}"))),
        }
    }
}

/// Deferred destroys must be idempotent: at restart the files may already
/// be gone.
fn tolerate_missing(r: Result<()>) -> Result<()> {
    match r {
        Err(DmxError::NotFound(_)) => Ok(()),
        other => other,
    }
}
