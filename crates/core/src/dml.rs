//! The relation modification dispatcher and unified data access.
//!
//! "The execution of relation modification operations proceeds in two
//! steps. The first step, using the storage method identifier from the
//! relation descriptor, calls the appropriate storage method modification
//! routine via the storage method operation vectors. After completing the
//! storage method operation, the extensions attached to the relation are
//! invoked via the attached procedures vectors. … The storage method
//! operation or the procedurally-attached extensions can abort the entire
//! relation modification operation. Common system facilities will be used
//! to undo the effects of completed storage method and attachment
//! modifications if the relation modification operation is aborted."

use std::collections::{HashSet, VecDeque};
use std::sync::Arc;

use dmx_expr::Expr;
use dmx_lock::{LockMode, LockName};
use dmx_txn::{Snapshot, Transaction, VersionImage};
use dmx_types::{DmxError, FieldId, Record, RecordKey, RelationId, Result, ScanId, Value};

use crate::access::{AccessPath, AccessQuery, KeyRange, ScanItem, ScanOps};
use crate::context::ExecCtx;
use crate::database::Database;
use crate::descriptor::RelationDescriptor;

/// Projects `values` to `fields` (`None` = all), failing on an
/// out-of-range field id.
pub fn project_values(values: &[Value], fields: Option<&[FieldId]>) -> Result<Vec<Value>> {
    match fields {
        None => Ok(values.to_vec()),
        Some(ids) => ids
            .iter()
            .map(|&f| {
                values
                    .get(f as usize)
                    .cloned()
                    .ok_or_else(|| DmxError::InvalidArg(format!("no field {f}")))
            })
            .collect(),
    }
}

/// Wraps a scan so every item's record is S-locked as it is returned
/// (record-level locking maintains scan-position integrity, per the
/// paper: "the access procedures use locking to maintain the integrity
/// of the scan position").
///
/// Scans position optimistically (the inner scan decodes records in the
/// buffer pool before any lock is granted), but every returned item is
/// **re-read under its S lock**: a writer's entire X-hold can fit between
/// the optimistic read and the lock grant, so "granted without waiting"
/// does not imply the read was current. Storage-method scans re-fetch the
/// record (re-applying predicate and projection); access-path scans
/// re-check record existence (their per-entry values — index keys, join
/// pairs — are immutable once present).
struct LockingScan {
    inner: Box<dyn ScanOps>,
    rd: Arc<RelationDescriptor>,
    /// True when the inner scan is a storage-method scan ("path zero").
    sm_path: bool,
    pred: Option<Expr>,
    fields: Option<Vec<FieldId>>,
    /// Rows returned so far; flushed into the rows-per-scan histogram
    /// when the scan reports exhaustion.
    rows: u64,
    exhausted: bool,
}

impl LockingScan {
    fn next_inner(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<ScanItem>> {
        loop {
            let Some(item) = self.inner.next(ctx)? else {
                return Ok(None);
            };
            if !self.inner.items_are_record_keys() {
                // derived items (e.g. aggregate groups): covered by the
                // relation-level lock, nothing to re-read
                return Ok(Some(item));
            }
            ctx.lock_record(self.rd.id, &item.key, LockMode::S)?;
            // Re-read under the lock.
            let sm = ctx.db.registry().storage(self.rd.sm)?;
            if self.sm_path {
                match sm.fetch(
                    ctx,
                    &self.rd,
                    &item.key,
                    self.fields.as_deref(),
                    self.pred.as_ref(),
                )? {
                    Some(values) => {
                        return Ok(Some(ScanItem {
                            key: item.key,
                            values: Some(values),
                        }))
                    }
                    None => continue, // vanished or no longer qualifies
                }
            } else if self.inner.supports_versioned_read() {
                // Re-derive the item from the record's current state:
                // the optimistically-read entry values may belong to a
                // concurrent writer that has since rolled back (the
                // covered-scan staleness race), so the entry itself
                // cannot be trusted even when the record exists.
                match sm.fetch(ctx, &self.rd, &item.key, None, None)? {
                    Some(values) => match self.inner.item_from_version(ctx, &item.key, &values)? {
                        Some(fresh) => return Ok(Some(fresh)),
                        None => continue, // no longer inside this scan
                    },
                    None => continue, // vanished
                }
            } else {
                // existence check only (empty projection, no predicate)
                match sm.fetch(ctx, &self.rd, &item.key, Some(&[]), None)? {
                    Some(_) => return Ok(Some(item)),
                    None => continue,
                }
            }
        }
    }
}

impl ScanOps for LockingScan {
    fn next(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<ScanItem>> {
        let rel = self.rd.id;
        let res = ctx.db.fence_corrupt(rel, self.next_inner(ctx));
        match &res {
            Ok(Some(_)) => {
                self.rows += 1;
                ctx.db.counters().scan_rows.incr();
            }
            Ok(None) if !self.exhausted => {
                self.exhausted = true;
                ctx.db.counters().rows_per_scan.record(self.rows);
            }
            _ => {}
        }
        res
    }
    fn save_position(&self) -> Vec<u8> {
        self.inner.save_position()
    }
    fn restore_position(&mut self, pos: &[u8]) -> Result<()> {
        self.inner.restore_position(pos)
    }
}

/// A lock-free read-only scan against the transaction's snapshot.
///
/// The inner scan positions through the pages as usual, but **no record
/// locks are taken**. Instead every record-keyed item is checked
/// against the version store: when the record has a chain, the page (or
/// index-entry) bytes may belong to an in-flight or recently-aborted
/// writer, so the item is re-derived from the chain's snapshot-visible
/// image; when it has none, the page state is committed for every live
/// snapshot (the GC fence guarantees chains outlive the snapshots that
/// might need them) and the item is trusted as read.
///
/// When the inner scan exhausts, a *delta sweep* re-derives items for
/// snapshot-visible records the scan never surfaced — records whose
/// tree entries an in-flight writer deleted or moved. Delta items are
/// emitted after the regular stream in record-key order, so same-seed
/// runs are deterministic; under concurrent writers the scan's overall
/// key ordering is therefore best-effort (DESIGN.md §6.2).
struct SnapshotScan {
    inner: Box<dyn ScanOps>,
    rd: Arc<RelationDescriptor>,
    snap: Snapshot,
    /// Record keys the inner scan surfaced to this wrapper (whether the
    /// chain probe then emitted or suppressed them). Double duty: the
    /// regular stream dedupes against it — a concurrent update can
    /// relocate a record's tree entry ahead of the scan position, so
    /// the inner scan may surface the same record key twice — and the
    /// delta sweep must not re-emit its members. Keys the inner scan
    /// filtered *internally* (predicate/range) never reach this set;
    /// the delta sweep intentionally re-derives those records from
    /// their chains.
    seen: HashSet<Vec<u8>>,
    /// `seen`'s members in arrival order, so a savepoint position
    /// restore can rewind the set in step with the inner scan (keys
    /// surfaced after the saved position must be re-emittable).
    surfaced: Vec<Vec<u8>>,
    /// The delta sweep, once the inner scan exhausted.
    delta: Option<VecDeque<(Vec<u8>, VersionImage)>>,
    rows: u64,
    exhausted: bool,
}

impl SnapshotScan {
    fn next_inner(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<ScanItem>> {
        let me = ctx.txn.id();
        loop {
            if let Some(delta) = &mut self.delta {
                let Some((key, image)) = delta.pop_front() else {
                    return Ok(None);
                };
                let VersionImage::Present(values) = image else {
                    continue;
                };
                let key = RecordKey::new(key);
                if let Some(item) = self.inner.item_from_version(ctx, &key, &values)? {
                    return Ok(Some(item));
                }
                continue;
            }
            let Some(item) = self.inner.next(ctx)? else {
                // Inner scan exhausted: sweep the chains for visible
                // records it never surfaced.
                let entries = ctx.db.versions().visible_entries(self.rd.id, self.snap, me);
                let delta: VecDeque<_> = entries
                    .into_iter()
                    .filter(|(k, _)| !self.seen.contains(k))
                    .collect();
                if !delta.is_empty() {
                    // Observable: the sweep found snapshot-visible
                    // records the inner scan never surfaced.
                    ctx.db.counters().scan_delta_sweeps.incr();
                    ctx.db.metrics().emit(dmx_types::obs::ObsEvent {
                        layer: "scan",
                        op: "delta_sweep",
                        target: self.rd.id.0 as u64,
                        detail: delta.len() as u64,
                    });
                }
                self.delta = Some(delta);
                continue;
            };
            if !self.inner.items_are_record_keys() {
                return Ok(Some(item));
            }
            let key_bytes = item.key.as_bytes().to_vec();
            if !self.seen.insert(key_bytes.clone()) {
                // A concurrent writer relocated this record's tree
                // entry past the scan position, resurfacing a key the
                // stream already handled; both probes would re-derive
                // the identical snapshot-visible image, so emit each
                // record at most once.
                continue;
            }
            self.surfaced.push(key_bytes.clone());
            // Between the page read (inside `inner.next`) and the chain
            // probe below, drain this relation's unstamped-write
            // windows: a mutation the page read may have observed
            // either still holds its window open (we wait out the
            // stamp) or has already published its chain. Fast path: one
            // atomic load.
            ctx.db.versions().wait_unstamped(self.rd.id);
            match ctx
                .db
                .versions()
                .visible(self.rd.id, &key_bytes, self.snap, me)
            {
                // No chain: the page state is committed for this
                // snapshot. The common case — zero overhead beyond one
                // hash probe.
                None => return Ok(Some(item)),
                Some(image) => {
                    ctx.db.counters().mvcc_version_reads.incr();
                    match image {
                        VersionImage::Absent => continue,
                        VersionImage::Present(values) => {
                            match self.inner.item_from_version(ctx, &item.key, &values)? {
                                Some(fresh) => return Ok(Some(fresh)),
                                None => continue,
                            }
                        }
                    }
                }
            }
        }
    }
}

impl ScanOps for SnapshotScan {
    fn next(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<ScanItem>> {
        let rel = self.rd.id;
        let res = ctx.db.fence_corrupt(rel, self.next_inner(ctx));
        match &res {
            Ok(Some(_)) => {
                self.rows += 1;
                ctx.db.counters().scan_rows.incr();
            }
            Ok(None) if !self.exhausted => {
                self.exhausted = true;
                ctx.db.counters().rows_per_scan.record(self.rows);
            }
            _ => {}
        }
        res
    }
    fn save_position(&self) -> Vec<u8> {
        // Composite position: how many keys the regular stream had
        // surfaced, then the inner scan's own position. A restore must
        // shrink `seen` in step with the inner rewind, or re-surfaced
        // keys would be deduped away instead of re-emitted.
        let mut pos = (self.surfaced.len() as u64).to_le_bytes().to_vec();
        pos.extend_from_slice(&self.inner.save_position());
        pos
    }
    fn restore_position(&mut self, pos: &[u8]) -> Result<()> {
        let corrupt = || DmxError::Corrupt("bad snapshot-scan position".into());
        let n = dmx_types::bytes::le_u64(pos, 0).ok_or_else(corrupt)? as usize;
        if n > self.surfaced.len() {
            return Err(corrupt());
        }
        for key in self.surfaced.drain(n..) {
            self.seen.remove(&key);
        }
        // A partial rollback rewinds the inner scan; the delta sweep (if
        // it had started) is discarded and rebuilt at re-exhaustion.
        self.delta = None;
        self.inner
            .restore_position(pos.get(8..).ok_or_else(corrupt)?)
    }
}

impl Database {
    /// Stamps a write's after-image into the version store (called by
    /// the DML paths *before* the page mutation they describe, under the
    /// record X lock).
    fn stamp(
        &self,
        txn: &Arc<Transaction>,
        rel: RelationId,
        key: &RecordKey,
        base: VersionImage,
        image: VersionImage,
    ) {
        self.counters().mvcc_versions_recorded.incr();
        self.versions()
            .record_write(txn.id(), rel, key.as_bytes(), base, image);
    }

    /// The committed on-page state of `(rel, key)` as a version image,
    /// read under the caller's record X lock (so it is stable).
    fn base_image(
        self: &Arc<Self>,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        key: &RecordKey,
    ) -> Result<VersionImage> {
        let sm = self.registry().storage(rd.sm)?;
        Ok(match sm.fetch(ctx, rd, key, None, None)? {
            Some(values) => VersionImage::Present(values),
            None => VersionImage::Absent,
        })
    }
    /// Runs one relation operation as a statement: on failure, the
    /// common recovery log drives the undo of its partial effects back to
    /// the statement's entry point.
    fn with_stmt<T>(
        self: &Arc<Self>,
        txn: &Arc<Transaction>,
        f: impl FnOnce(&ExecCtx<'_>) -> Result<T>,
    ) -> Result<T> {
        txn.check_active()?;
        let ctx = ExecCtx { db: self, txn };
        let start_lsn = txn.last_lsn();
        let vmark = self.versions().mark(txn.id());
        match f(&ctx) {
            Ok(v) => Ok(v),
            Err(e) => {
                let handler = crate::undo::UndoDispatch::new(
                    self.registry().clone(),
                    self.catalog().clone(),
                    self.services().clone(),
                );
                let new_last = dmx_wal::rollback_to(
                    &self.services().log,
                    &handler,
                    txn.id(),
                    txn.last_lsn(),
                    start_lsn,
                )?;
                self.fence_undo_damage(&handler);
                txn.set_last_lsn(new_last);
                // The pages are back to their pre-statement state; the
                // chain stamps describing the undone writes follow.
                self.versions().rollback_to_mark(txn.id(), vmark);
                // The statement is cleanly undone; if it died of
                // out-of-space, degrade to read-only so later writes
                // fail fast instead of tearing a commit.
                self.note_enospc(&e);
                Err(e)
            }
        }
    }

    /// Runs one attachment side-effect invocation, counting it and —
    /// when the attachment vetoes (returns any error) — counting the
    /// veto with an event naming the vetoed relation.
    fn invoke_attachment<T>(&self, rel: RelationId, f: impl FnOnce() -> Result<T>) -> Result<T> {
        self.counters().att_invocations.incr();
        match f() {
            Ok(v) => Ok(v),
            Err(e) => {
                self.counters().att_vetoes.incr();
                self.metrics().emit(dmx_types::obs::ObsEvent {
                    layer: "att",
                    op: "veto",
                    target: rel.0 as u64,
                    detail: 0,
                });
                Err(e)
            }
        }
    }

    /// Converts a [`DmxError::Corrupt`] escaping a relation operation
    /// into quarantine of that relation: the buffer manager already
    /// retried the read, so the damage is persistent — fence the relation
    /// off and keep everything else serving.
    pub(crate) fn fence_corrupt<T>(&self, rel: RelationId, res: Result<T>) -> Result<T> {
        match res {
            Err(DmxError::Corrupt(reason)) => Err(self.quarantine(rel, reason)),
            other => other,
        }
    }

    /// Inserts a record: storage method first, then each attachment type
    /// with instances; a veto rolls the modification back.
    pub fn insert(
        self: &Arc<Self>,
        txn: &Arc<Transaction>,
        rel: RelationId,
        record: Record,
    ) -> Result<RecordKey> {
        let rd = self.catalog().get(rel)?;
        self.check_ddl_visible(&rd, txn)?;
        self.check_not_quarantined(rel)?;
        self.check_writable()?;
        rd.schema.validate(&record.values)?;
        let res = self.with_stmt(txn, |ctx| {
            ctx.lock(LockName::Relation(rel), LockMode::IX)?;
            let sm = self.registry().storage(rd.sm)?;
            // The record key is the page mutation's *output*, so the
            // chain stamp cannot precede it; the unstamped window makes
            // snapshot readers that race the mutation wait for the
            // stamp instead of trusting the uncommitted page bytes.
            let window = self.versions().begin_unstamped(rel);
            let key = sm.insert(ctx, &rd, &record)?;
            ctx.lock_record(rel, &key, LockMode::X)?;
            self.stamp(
                txn,
                rel,
                &key,
                VersionImage::Absent,
                VersionImage::Present(record.values.clone()),
            );
            drop(window);
            for (att_id, insts) in rd.attached_types() {
                let att = self.registry().attachment(att_id)?;
                self.invoke_attachment(rel, || att.on_insert(ctx, &rd, insts, &key, &record))?;
            }
            rd.stats.on_insert(record.encode().len());
            self.counters().inserts.incr();
            Ok(key)
        });
        self.fence_corrupt(rel, res)
    }

    /// Updates the record at `key`, returning the (possibly relocated)
    /// new record key.
    pub fn update(
        self: &Arc<Self>,
        txn: &Arc<Transaction>,
        rel: RelationId,
        key: &RecordKey,
        new: Record,
    ) -> Result<RecordKey> {
        let rd = self.catalog().get(rel)?;
        self.check_ddl_visible(&rd, txn)?;
        self.check_not_quarantined(rel)?;
        self.check_writable()?;
        rd.schema.validate(&new.values)?;
        let res = self.with_stmt(txn, |ctx| {
            ctx.lock(LockName::Relation(rel), LockMode::IX)?;
            ctx.lock_record(rel, key, LockMode::X)?;
            // Stamp *before* the page mutation: a snapshot scan that
            // races the update finds the chain and reads the committed
            // base image instead of trusting the half-updated page.
            let base = self.base_image(ctx, &rd, key)?;
            self.stamp(txn, rel, key, base, VersionImage::Absent);
            let sm = self.registry().storage(rd.sm)?;
            // The (possibly relocated) new key is the mutation's output;
            // same unstamped window as insert until its stamp lands.
            let window = self.versions().begin_unstamped(rel);
            let (old, new_key) = sm.update(ctx, &rd, key, &new)?;
            if new_key != *key {
                ctx.lock_record(rel, &new_key, LockMode::X)?;
            }
            // Now the final location is known: stamp the after-image.
            self.stamp(
                txn,
                rel,
                &new_key,
                VersionImage::Absent,
                VersionImage::Present(new.values.clone()),
            );
            drop(window);
            for (att_id, insts) in rd.attached_types() {
                let att = self.registry().attachment(att_id)?;
                self.invoke_attachment(rel, || {
                    att.on_update(ctx, &rd, insts, key, &new_key, &old, &new)
                })?;
            }
            rd.stats.on_update(old.encode().len(), new.encode().len());
            self.counters().updates.incr();
            Ok(new_key)
        });
        self.fence_corrupt(rel, res)
    }

    /// Deletes the record at `key`.
    pub fn delete(
        self: &Arc<Self>,
        txn: &Arc<Transaction>,
        rel: RelationId,
        key: &RecordKey,
    ) -> Result<()> {
        let rd = self.catalog().get(rel)?;
        self.check_ddl_visible(&rd, txn)?;
        self.check_not_quarantined(rel)?;
        self.check_writable()?;
        let res = self.with_stmt(txn, |ctx| {
            ctx.lock(LockName::Relation(rel), LockMode::IX)?;
            ctx.lock_record(rel, key, LockMode::X)?;
            let base = self.base_image(ctx, &rd, key)?;
            self.stamp(txn, rel, key, base, VersionImage::Absent);
            let sm = self.registry().storage(rd.sm)?;
            let old = sm.delete(ctx, &rd, key)?;
            for (att_id, insts) in rd.attached_types() {
                let att = self.registry().attachment(att_id)?;
                self.invoke_attachment(rel, || att.on_delete(ctx, &rd, insts, key, &old))?;
            }
            rd.stats.on_delete(old.encode().len());
            self.counters().deletes.incr();
            Ok(())
        });
        self.fence_corrupt(rel, res)
    }

    /// Direct-by-key access through the storage method, with projection
    /// and buffer-resident filtering.
    pub fn fetch(
        self: &Arc<Self>,
        txn: &Arc<Transaction>,
        rel: RelationId,
        key: &RecordKey,
        fields: Option<&[FieldId]>,
        pred: Option<&Expr>,
    ) -> Result<Option<Vec<Value>>> {
        txn.check_active()?;
        let rd = self.catalog().get(rel)?;
        self.check_ddl_visible(&rd, txn)?;
        self.check_not_quarantined(rel)?;
        let ctx = ExecCtx { db: self, txn };
        ctx.lock(LockName::Relation(rel), LockMode::IS)?;
        self.counters().fetches.incr();
        if txn.snapshot_reads() {
            // Snapshot read: no record lock. Page read first, then —
            // after draining unstamped-write windows, so a racing
            // insert's stamp is visible — the chain probe. A chain
            // image (committed for this snapshot, or our own write)
            // overrides whatever the page said; a chainless record's
            // page state is committed everywhere.
            let sm = self.registry().storage(rd.sm)?;
            let page = self.fence_corrupt(rel, sm.fetch(&ctx, &rd, key, fields, pred))?;
            self.versions().wait_unstamped(rel);
            let Some(image) =
                self.versions()
                    .visible(rel, key.as_bytes(), txn.snapshot(), txn.id())
            else {
                return Ok(page);
            };
            self.counters().mvcc_version_reads.incr();
            let VersionImage::Present(values) = image else {
                return Ok(None);
            };
            if let Some(p) = pred {
                if !ctx.eval_predicate(p, &values)? {
                    return Ok(None);
                }
            }
            return Ok(Some(project_values(&values, fields)?));
        }
        ctx.lock_record(rel, key, LockMode::S)?;
        let sm = self.registry().storage(rd.sm)?;
        self.fence_corrupt(rel, sm.fetch(&ctx, &rd, key, fields, pred))
    }

    /// Opens a key-sequential access via any access path ("access path
    /// zero is … the storage method"), registered with the scan manager
    /// for end-of-transaction cleanup and savepoint position handling.
    pub fn open_scan(
        self: &Arc<Self>,
        txn: &Arc<Transaction>,
        rel: RelationId,
        path: AccessPath,
        query: AccessQuery,
        pred: Option<Expr>,
        fields: Option<Vec<FieldId>>,
    ) -> Result<ScanId> {
        txn.check_active()?;
        let rd = self.catalog().get(rel)?;
        self.check_ddl_visible(&rd, txn)?;
        self.check_not_quarantined(rel)?;
        let ctx = ExecCtx { db: self, txn };
        ctx.lock(LockName::Relation(rel), LockMode::IS)?;
        let mut inner = self.fence_corrupt(
            rel,
            self.open_scan_raw(&ctx, &rd, path, query, pred.clone(), fields.clone()),
        )?;
        self.counters().scan_opens.incr();
        if txn.snapshot_reads() && inner.supports_versioned_read() {
            // Snapshot scan: zero record locks, zero range locks;
            // visibility comes from the version store.
            self.counters().mvcc_snapshot_scans.incr();
            let scan = Box::new(SnapshotScan {
                inner,
                rd,
                snap: txn.snapshot(),
                seen: HashSet::new(),
                surfaced: Vec::new(),
                delta: None,
                rows: 0,
                exhausted: false,
            });
            return Ok(self.scans().open(txn.id(), scan));
        }
        // Locking scan: range locks fence phantoms at the key gaps the
        // scan traverses (only meaningful for ordered record-key scans).
        inner.set_range_locking(true);
        let scan = Box::new(LockingScan {
            inner,
            sm_path: matches!(path, AccessPath::StorageMethod),
            rd,
            pred,
            fields,
            rows: 0,
            exhausted: false,
        });
        Ok(self.scans().open(txn.id(), scan))
    }

    /// Access-path dispatch without scan-manager registration (used
    /// internally, e.g. by attachment backfill).
    pub fn open_scan_raw(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        path: AccessPath,
        query: AccessQuery,
        pred: Option<Expr>,
        fields: Option<Vec<FieldId>>,
    ) -> Result<Box<dyn ScanOps>> {
        match path {
            AccessPath::StorageMethod => {
                let range = match query {
                    AccessQuery::All => KeyRange::all(),
                    AccessQuery::Range(r) => r,
                    AccessQuery::KeyEquals(k) => KeyRange::exact(k),
                    AccessQuery::Spatial(_, _) => {
                        return Err(DmxError::Unsupported(
                            "storage methods do not serve spatial queries".into(),
                        ))
                    }
                };
                let sm = self.registry().storage(rd.sm)?;
                sm.open_scan(ctx, rd, range, pred, fields)
            }
            AccessPath::Attachment(att_id, inst_id) => {
                let att = self.registry().attachment(att_id)?;
                let insts = rd
                    .attachment_instances(att_id)
                    .ok_or_else(|| DmxError::NotFound(format!("attachment type {att_id}")))?;
                let inst = insts
                    .iter()
                    .find(|i| i.instance == inst_id)
                    .ok_or_else(|| DmxError::NotFound(format!("attachment {att_id}{inst_id}")))?;
                self.counters().att_probes.incr();
                self.metrics().emit(dmx_types::obs::ObsEvent {
                    layer: "att",
                    op: "probe",
                    target: rd.id.0 as u64,
                    detail: att_id.0 as u64,
                });
                att.open_scan(ctx, rd, inst, &query)
            }
        }
    }

    /// Advances a registered scan.
    pub fn scan_next(
        self: &Arc<Self>,
        txn: &Arc<Transaction>,
        scan: ScanId,
    ) -> Result<Option<ScanItem>> {
        txn.check_active()?;
        let ctx = ExecCtx { db: self, txn };
        self.scans().next(&ctx, scan)
    }

    /// Closes a registered scan.
    pub fn scan_close(&self, txn: &Arc<Transaction>, scan: ScanId) {
        self.scans().close(txn.id(), scan);
    }
}
