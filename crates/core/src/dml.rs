//! The relation modification dispatcher and unified data access.
//!
//! "The execution of relation modification operations proceeds in two
//! steps. The first step, using the storage method identifier from the
//! relation descriptor, calls the appropriate storage method modification
//! routine via the storage method operation vectors. After completing the
//! storage method operation, the extensions attached to the relation are
//! invoked via the attached procedures vectors. … The storage method
//! operation or the procedurally-attached extensions can abort the entire
//! relation modification operation. Common system facilities will be used
//! to undo the effects of completed storage method and attachment
//! modifications if the relation modification operation is aborted."

use std::sync::Arc;

use dmx_expr::Expr;
use dmx_lock::{LockMode, LockName};
use dmx_txn::Transaction;
use dmx_types::{DmxError, FieldId, Record, RecordKey, RelationId, Result, ScanId, Value};

use crate::access::{AccessPath, AccessQuery, KeyRange, ScanItem, ScanOps};
use crate::context::ExecCtx;
use crate::database::Database;
use crate::descriptor::RelationDescriptor;

/// Wraps a scan so every item's record is S-locked as it is returned
/// (record-level locking maintains scan-position integrity, per the
/// paper: "the access procedures use locking to maintain the integrity
/// of the scan position").
///
/// Scans position optimistically (the inner scan decodes records in the
/// buffer pool before any lock is granted), but every returned item is
/// **re-read under its S lock**: a writer's entire X-hold can fit between
/// the optimistic read and the lock grant, so "granted without waiting"
/// does not imply the read was current. Storage-method scans re-fetch the
/// record (re-applying predicate and projection); access-path scans
/// re-check record existence (their per-entry values — index keys, join
/// pairs — are immutable once present).
struct LockingScan {
    inner: Box<dyn ScanOps>,
    rd: Arc<RelationDescriptor>,
    /// True when the inner scan is a storage-method scan ("path zero").
    sm_path: bool,
    pred: Option<Expr>,
    fields: Option<Vec<FieldId>>,
    /// Rows returned so far; flushed into the rows-per-scan histogram
    /// when the scan reports exhaustion.
    rows: u64,
    exhausted: bool,
}

impl LockingScan {
    fn next_inner(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<ScanItem>> {
        loop {
            let Some(item) = self.inner.next(ctx)? else {
                return Ok(None);
            };
            if !self.inner.items_are_record_keys() {
                // derived items (e.g. aggregate groups): covered by the
                // relation-level lock, nothing to re-read
                return Ok(Some(item));
            }
            ctx.lock_record(self.rd.id, &item.key, LockMode::S)?;
            // Re-read under the lock.
            let sm = ctx.db.registry().storage(self.rd.sm)?;
            if self.sm_path {
                match sm.fetch(
                    ctx,
                    &self.rd,
                    &item.key,
                    self.fields.as_deref(),
                    self.pred.as_ref(),
                )? {
                    Some(values) => {
                        return Ok(Some(ScanItem {
                            key: item.key,
                            values: Some(values),
                        }))
                    }
                    None => continue, // vanished or no longer qualifies
                }
            } else {
                // existence check only (empty projection, no predicate)
                match sm.fetch(ctx, &self.rd, &item.key, Some(&[]), None)? {
                    Some(_) => return Ok(Some(item)),
                    None => continue,
                }
            }
        }
    }
}

impl ScanOps for LockingScan {
    fn next(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<ScanItem>> {
        let rel = self.rd.id;
        let res = ctx.db.fence_corrupt(rel, self.next_inner(ctx));
        match &res {
            Ok(Some(_)) => {
                self.rows += 1;
                ctx.db.counters().scan_rows.incr();
            }
            Ok(None) if !self.exhausted => {
                self.exhausted = true;
                ctx.db.counters().rows_per_scan.record(self.rows);
            }
            _ => {}
        }
        res
    }
    fn save_position(&self) -> Vec<u8> {
        self.inner.save_position()
    }
    fn restore_position(&mut self, pos: &[u8]) -> Result<()> {
        self.inner.restore_position(pos)
    }
}

impl Database {
    /// Runs one relation operation as a statement: on failure, the
    /// common recovery log drives the undo of its partial effects back to
    /// the statement's entry point.
    fn with_stmt<T>(
        self: &Arc<Self>,
        txn: &Arc<Transaction>,
        f: impl FnOnce(&ExecCtx<'_>) -> Result<T>,
    ) -> Result<T> {
        txn.check_active()?;
        let ctx = ExecCtx { db: self, txn };
        let start_lsn = txn.last_lsn();
        match f(&ctx) {
            Ok(v) => Ok(v),
            Err(e) => {
                let handler = crate::undo::UndoDispatch::new(
                    self.registry().clone(),
                    self.catalog().clone(),
                    self.services().clone(),
                );
                let new_last = dmx_wal::rollback_to(
                    &self.services().log,
                    &handler,
                    txn.id(),
                    txn.last_lsn(),
                    start_lsn,
                )?;
                self.fence_undo_damage(&handler);
                txn.set_last_lsn(new_last);
                // The statement is cleanly undone; if it died of
                // out-of-space, degrade to read-only so later writes
                // fail fast instead of tearing a commit.
                self.note_enospc(&e);
                Err(e)
            }
        }
    }

    /// Runs one attachment side-effect invocation, counting it and —
    /// when the attachment vetoes (returns any error) — counting the
    /// veto with an event naming the vetoed relation.
    fn invoke_attachment<T>(&self, rel: RelationId, f: impl FnOnce() -> Result<T>) -> Result<T> {
        self.counters().att_invocations.incr();
        match f() {
            Ok(v) => Ok(v),
            Err(e) => {
                self.counters().att_vetoes.incr();
                self.metrics().emit(dmx_types::obs::ObsEvent {
                    layer: "att",
                    op: "veto",
                    target: rel.0 as u64,
                    detail: 0,
                });
                Err(e)
            }
        }
    }

    /// Converts a [`DmxError::Corrupt`] escaping a relation operation
    /// into quarantine of that relation: the buffer manager already
    /// retried the read, so the damage is persistent — fence the relation
    /// off and keep everything else serving.
    pub(crate) fn fence_corrupt<T>(&self, rel: RelationId, res: Result<T>) -> Result<T> {
        match res {
            Err(DmxError::Corrupt(reason)) => Err(self.quarantine(rel, reason)),
            other => other,
        }
    }

    /// Inserts a record: storage method first, then each attachment type
    /// with instances; a veto rolls the modification back.
    pub fn insert(
        self: &Arc<Self>,
        txn: &Arc<Transaction>,
        rel: RelationId,
        record: Record,
    ) -> Result<RecordKey> {
        let rd = self.catalog().get(rel)?;
        self.check_not_quarantined(rel)?;
        self.check_writable()?;
        rd.schema.validate(&record.values)?;
        let res = self.with_stmt(txn, |ctx| {
            ctx.lock(LockName::Relation(rel), LockMode::IX)?;
            let sm = self.registry().storage(rd.sm)?;
            let key = sm.insert(ctx, &rd, &record)?;
            ctx.lock_record(rel, &key, LockMode::X)?;
            for (att_id, insts) in rd.attached_types() {
                let att = self.registry().attachment(att_id)?;
                self.invoke_attachment(rel, || att.on_insert(ctx, &rd, insts, &key, &record))?;
            }
            rd.stats.on_insert(record.encode().len());
            self.counters().inserts.incr();
            Ok(key)
        });
        self.fence_corrupt(rel, res)
    }

    /// Updates the record at `key`, returning the (possibly relocated)
    /// new record key.
    pub fn update(
        self: &Arc<Self>,
        txn: &Arc<Transaction>,
        rel: RelationId,
        key: &RecordKey,
        new: Record,
    ) -> Result<RecordKey> {
        let rd = self.catalog().get(rel)?;
        self.check_not_quarantined(rel)?;
        self.check_writable()?;
        rd.schema.validate(&new.values)?;
        let res = self.with_stmt(txn, |ctx| {
            ctx.lock(LockName::Relation(rel), LockMode::IX)?;
            ctx.lock_record(rel, key, LockMode::X)?;
            let sm = self.registry().storage(rd.sm)?;
            let (old, new_key) = sm.update(ctx, &rd, key, &new)?;
            if new_key != *key {
                ctx.lock_record(rel, &new_key, LockMode::X)?;
            }
            for (att_id, insts) in rd.attached_types() {
                let att = self.registry().attachment(att_id)?;
                self.invoke_attachment(rel, || {
                    att.on_update(ctx, &rd, insts, key, &new_key, &old, &new)
                })?;
            }
            rd.stats.on_update(old.encode().len(), new.encode().len());
            self.counters().updates.incr();
            Ok(new_key)
        });
        self.fence_corrupt(rel, res)
    }

    /// Deletes the record at `key`.
    pub fn delete(
        self: &Arc<Self>,
        txn: &Arc<Transaction>,
        rel: RelationId,
        key: &RecordKey,
    ) -> Result<()> {
        let rd = self.catalog().get(rel)?;
        self.check_not_quarantined(rel)?;
        self.check_writable()?;
        let res = self.with_stmt(txn, |ctx| {
            ctx.lock(LockName::Relation(rel), LockMode::IX)?;
            ctx.lock_record(rel, key, LockMode::X)?;
            let sm = self.registry().storage(rd.sm)?;
            let old = sm.delete(ctx, &rd, key)?;
            for (att_id, insts) in rd.attached_types() {
                let att = self.registry().attachment(att_id)?;
                self.invoke_attachment(rel, || att.on_delete(ctx, &rd, insts, key, &old))?;
            }
            rd.stats.on_delete(old.encode().len());
            self.counters().deletes.incr();
            Ok(())
        });
        self.fence_corrupt(rel, res)
    }

    /// Direct-by-key access through the storage method, with projection
    /// and buffer-resident filtering.
    pub fn fetch(
        self: &Arc<Self>,
        txn: &Arc<Transaction>,
        rel: RelationId,
        key: &RecordKey,
        fields: Option<&[FieldId]>,
        pred: Option<&Expr>,
    ) -> Result<Option<Vec<Value>>> {
        txn.check_active()?;
        let rd = self.catalog().get(rel)?;
        self.check_not_quarantined(rel)?;
        let ctx = ExecCtx { db: self, txn };
        ctx.lock(LockName::Relation(rel), LockMode::IS)?;
        ctx.lock_record(rel, key, LockMode::S)?;
        let sm = self.registry().storage(rd.sm)?;
        self.counters().fetches.incr();
        self.fence_corrupt(rel, sm.fetch(&ctx, &rd, key, fields, pred))
    }

    /// Opens a key-sequential access via any access path ("access path
    /// zero is … the storage method"), registered with the scan manager
    /// for end-of-transaction cleanup and savepoint position handling.
    pub fn open_scan(
        self: &Arc<Self>,
        txn: &Arc<Transaction>,
        rel: RelationId,
        path: AccessPath,
        query: AccessQuery,
        pred: Option<Expr>,
        fields: Option<Vec<FieldId>>,
    ) -> Result<ScanId> {
        txn.check_active()?;
        let rd = self.catalog().get(rel)?;
        self.check_not_quarantined(rel)?;
        let ctx = ExecCtx { db: self, txn };
        ctx.lock(LockName::Relation(rel), LockMode::IS)?;
        let inner = self.fence_corrupt(
            rel,
            self.open_scan_raw(&ctx, &rd, path, query, pred.clone(), fields.clone()),
        )?;
        let scan = Box::new(LockingScan {
            inner,
            sm_path: matches!(path, AccessPath::StorageMethod),
            rd,
            pred,
            fields,
            rows: 0,
            exhausted: false,
        });
        self.counters().scan_opens.incr();
        Ok(self.scans().open(txn.id(), scan))
    }

    /// Access-path dispatch without scan-manager registration (used
    /// internally, e.g. by attachment backfill).
    pub fn open_scan_raw(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        path: AccessPath,
        query: AccessQuery,
        pred: Option<Expr>,
        fields: Option<Vec<FieldId>>,
    ) -> Result<Box<dyn ScanOps>> {
        match path {
            AccessPath::StorageMethod => {
                let range = match query {
                    AccessQuery::All => KeyRange::all(),
                    AccessQuery::Range(r) => r,
                    AccessQuery::KeyEquals(k) => KeyRange::exact(k),
                    AccessQuery::Spatial(_, _) => {
                        return Err(DmxError::Unsupported(
                            "storage methods do not serve spatial queries".into(),
                        ))
                    }
                };
                let sm = self.registry().storage(rd.sm)?;
                sm.open_scan(ctx, rd, range, pred, fields)
            }
            AccessPath::Attachment(att_id, inst_id) => {
                let att = self.registry().attachment(att_id)?;
                let insts = rd
                    .attachment_instances(att_id)
                    .ok_or_else(|| DmxError::NotFound(format!("attachment type {att_id}")))?;
                let inst = insts
                    .iter()
                    .find(|i| i.instance == inst_id)
                    .ok_or_else(|| DmxError::NotFound(format!("attachment {att_id}{inst_id}")))?;
                self.counters().att_probes.incr();
                self.metrics().emit(dmx_types::obs::ObsEvent {
                    layer: "att",
                    op: "probe",
                    target: rd.id.0 as u64,
                    detail: att_id.0 as u64,
                });
                att.open_scan(ctx, rd, inst, &query)
            }
        }
    }

    /// Advances a registered scan.
    pub fn scan_next(
        self: &Arc<Self>,
        txn: &Arc<Transaction>,
        scan: ScanId,
    ) -> Result<Option<ScanItem>> {
        txn.check_active()?;
        let ctx = ExecCtx { db: self, txn };
        self.scans().next(&ctx, scan)
    }

    /// Closes a registered scan.
    pub fn scan_close(&self, txn: &Arc<Transaction>, scan: ScanId) {
        self.scans().close(txn.id(), scan);
    }
}
