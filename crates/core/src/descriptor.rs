//! The extensible relation descriptor.
//!
//! "The relation descriptor is composed of a relation storage method
//! descriptor and descriptors for any attachments defined on the relation
//! instance. The structure of the relation descriptor is a record whose
//! header contains the storage method identifier and whose first field
//! contains the storage method descriptor. Each attachment has an
//! assigned identifier, and the descriptor for the attachment with
//! identifier N is found in field N of the relation descriptor. If there
//! are no instances of attachment type N defined on a particular
//! relation, then field N of that relation's descriptor will be NULL."
//!
//! Each extension supplies and interprets the *contents* of its own
//! descriptor bytes; the common system manages the composite record,
//! fetches it at query compilation time and embeds it in the plan so no
//! catalog access happens at run time (`Arc<RelationDescriptor>` is that
//! embedded copy). Descriptors are immutable; DDL produces a new version.

use std::sync::Arc;

use dmx_types::{AttInstanceId, AttTypeId, DmxError, RelationId, Result, Schema, SmTypeId};

use crate::registry::MAX_ATTACHMENT_TYPES;
use crate::stats::RelationStats;

/// One attachment instance on a relation: its instance number, user
/// name, and the attachment-interpreted descriptor bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct AttachmentInstance {
    pub instance: AttInstanceId,
    pub name: String,
    pub desc: Vec<u8>,
}

/// The composite relation descriptor.
#[derive(Debug, Clone)]
pub struct RelationDescriptor {
    pub id: RelationId,
    pub name: String,
    pub schema: Schema,
    /// Storage method identifier (the descriptor record's "header").
    pub sm: SmTypeId,
    /// Field 0: the storage-method descriptor.
    pub sm_desc: Vec<u8>,
    /// Field N: instances of attachment type N; `None` = NULL field.
    attachments: Vec<Option<Vec<AttachmentInstance>>>,
    /// Shared statistics (live counters; cached plans stay fresh).
    pub stats: Arc<RelationStats>,
    /// Bumped by every DDL change; plan invalidation key.
    pub version: u64,
    /// Next instance number per attachment type.
    next_instance: Vec<u16>,
}

impl RelationDescriptor {
    /// A new descriptor with no attachments.
    pub fn new(
        id: RelationId,
        name: impl Into<String>,
        schema: Schema,
        sm: SmTypeId,
        sm_desc: Vec<u8>,
    ) -> Self {
        RelationDescriptor {
            id,
            name: name.into(),
            schema,
            sm,
            sm_desc,
            attachments: vec![None; MAX_ATTACHMENT_TYPES],
            stats: Arc::new(RelationStats::default()),
            version: 1,
            next_instance: vec![1; MAX_ATTACHMENT_TYPES],
        }
    }

    /// Instances of attachment type `att`, if any (field N lookup).
    pub fn attachment_instances(&self, att: AttTypeId) -> Option<&[AttachmentInstance]> {
        self.attachments
            .get(att.0 as usize)
            .and_then(|o| o.as_deref())
    }

    /// Attachment types that have at least one instance, in id order —
    /// the dispatcher's iteration set ("each attachment type is invoked
    /// at most once per relation modification and must service all
    /// instances of its type").
    pub fn attached_types(&self) -> impl Iterator<Item = (AttTypeId, &[AttachmentInstance])> {
        self.attachments
            .iter()
            .enumerate()
            .filter_map(|(i, o)| o.as_deref().map(|v| (AttTypeId(i as u8), v)))
    }

    /// Total number of attachment instances across all types.
    pub fn attachment_count(&self) -> usize {
        self.attachments.iter().flatten().map(|v| v.len()).sum()
    }

    /// Finds an attachment instance by user name.
    pub fn find_attachment(&self, name: &str) -> Option<(AttTypeId, &AttachmentInstance)> {
        self.attached_types().find_map(|(t, insts)| {
            insts
                .iter()
                .find(|i| i.name.eq_ignore_ascii_case(name))
                .map(|i| (t, i))
        })
    }

    /// Adds an attachment instance (new descriptor version). Returns the
    /// assigned instance id.
    pub fn with_attachment(
        &self,
        att: AttTypeId,
        name: impl Into<String>,
        desc: Vec<u8>,
    ) -> Result<(RelationDescriptor, AttInstanceId)> {
        let idx = att.0 as usize;
        if idx == 0 || idx >= MAX_ATTACHMENT_TYPES {
            return Err(DmxError::InvalidArg(format!(
                "attachment type {att} out of range"
            )));
        }
        let name = name.into();
        if self.find_attachment(&name).is_some() {
            return Err(DmxError::Duplicate(format!("attachment {name}")));
        }
        let mut new = self.clone();
        let inst = AttInstanceId(new.next_instance[idx]);
        new.next_instance[idx] += 1;
        new.attachments[idx]
            .get_or_insert_with(Vec::new)
            .push(AttachmentInstance {
                instance: inst,
                name,
                desc,
            });
        new.version += 1;
        Ok((new, inst))
    }

    /// Removes an attachment instance by name, returning the new
    /// descriptor and the removed instance.
    pub fn without_attachment(
        &self,
        name: &str,
    ) -> Result<(RelationDescriptor, AttTypeId, AttachmentInstance)> {
        let (att, _) = self
            .find_attachment(name)
            .ok_or_else(|| DmxError::NotFound(format!("attachment {name}")))?;
        let mut new = self.clone();
        let slot = &mut new.attachments[att.0 as usize];
        // find_attachment located `name` under this type id, so the slot
        // and entry exist; surface a typed error if they somehow don't.
        let not_found = || DmxError::NotFound(format!("attachment {name}"));
        let list = slot.as_mut().ok_or_else(not_found)?;
        let pos = list
            .iter()
            .position(|i| i.name.eq_ignore_ascii_case(name))
            .ok_or_else(not_found)?;
        let removed = list.remove(pos);
        if list.is_empty() {
            *slot = None; // field N returns to NULL
        }
        new.version += 1;
        Ok((new, att, removed))
    }

    /// Replaces the descriptor bytes of one attachment instance (an
    /// attachment updating its own meta-data, e.g. a new root page).
    pub fn with_updated_attachment_desc(
        &self,
        att: AttTypeId,
        inst: AttInstanceId,
        desc: Vec<u8>,
    ) -> Result<RelationDescriptor> {
        let mut new = self.clone();
        let list = new.attachments[att.0 as usize]
            .as_mut()
            .ok_or_else(|| DmxError::NotFound(format!("attachment type {att}")))?;
        let entry = list
            .iter_mut()
            .find(|i| i.instance == inst)
            .ok_or_else(|| DmxError::NotFound(format!("attachment {att}{inst}")))?;
        entry.desc = desc;
        new.version += 1;
        Ok(new)
    }

    /// Serializes for catalog persistence.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.id.0.to_le_bytes());
        put_str(&mut out, &self.name);
        put_bytes(&mut out, &self.schema.encode());
        out.push(self.sm.0);
        put_bytes(&mut out, &self.sm_desc);
        out.extend_from_slice(&self.version.to_le_bytes());
        let (records, pages, bytes) = self.stats.snapshot();
        for v in [records, pages, bytes] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        // attachment fields: count of non-null fields, then per field:
        // type id, next_instance, instance list
        let non_null: Vec<usize> = (0..MAX_ATTACHMENT_TYPES)
            .filter(|&i| self.attachments[i].is_some())
            .collect();
        out.push(non_null.len() as u8);
        for i in non_null {
            // `non_null` filtered on is_some, so flatten() keeps the slot.
            let Some(list) = self.attachments[i].as_ref() else {
                continue;
            };
            out.push(i as u8);
            out.extend_from_slice(&self.next_instance[i].to_le_bytes());
            out.extend_from_slice(&(list.len() as u16).to_le_bytes());
            for inst in list {
                out.extend_from_slice(&inst.instance.0.to_le_bytes());
                put_str(&mut out, &inst.name);
                put_bytes(&mut out, &inst.desc);
            }
        }
        // next_instance for types without instances (so ids never repeat)
        for i in 0..MAX_ATTACHMENT_TYPES {
            out.extend_from_slice(&self.next_instance[i].to_le_bytes());
        }
        out
    }

    /// Deserializes an [`RelationDescriptor::encode`] payload.
    pub fn decode(buf: &[u8]) -> Result<RelationDescriptor> {
        let mut pos = 0usize;
        let id = RelationId(get_u32(buf, &mut pos)?);
        let name = get_str(buf, &mut pos)?;
        let schema = Schema::decode(&get_bytes(buf, &mut pos)?)?;
        let sm = SmTypeId(get_u8(buf, &mut pos)?);
        let sm_desc = get_bytes(buf, &mut pos)?;
        let version = get_u64(buf, &mut pos)?;
        let records = get_u64(buf, &mut pos)?;
        let pages = get_u64(buf, &mut pos)?;
        let bytes = get_u64(buf, &mut pos)?;
        let mut attachments: Vec<Option<Vec<AttachmentInstance>>> =
            vec![None; MAX_ATTACHMENT_TYPES];
        let n_fields = get_u8(buf, &mut pos)? as usize;
        let mut next_instance = vec![1u16; MAX_ATTACHMENT_TYPES];
        for _ in 0..n_fields {
            let ty = get_u8(buf, &mut pos)? as usize;
            if ty >= MAX_ATTACHMENT_TYPES {
                return Err(DmxError::Corrupt(format!(
                    "attachment type {ty} out of range"
                )));
            }
            next_instance[ty] = get_u16(buf, &mut pos)?;
            let n = get_u16(buf, &mut pos)? as usize;
            let mut list = Vec::with_capacity(n);
            for _ in 0..n {
                let instance = AttInstanceId(get_u16(buf, &mut pos)?);
                let name = get_str(buf, &mut pos)?;
                let desc = get_bytes(buf, &mut pos)?;
                list.push(AttachmentInstance {
                    instance,
                    name,
                    desc,
                });
            }
            attachments[ty] = Some(list);
        }
        for slot in next_instance.iter_mut().take(MAX_ATTACHMENT_TYPES) {
            let v = get_u16(buf, &mut pos)?;
            *slot = (*slot).max(v);
        }
        let stats = Arc::new(RelationStats::default());
        stats.reset(records, pages, bytes);
        Ok(RelationDescriptor {
            id,
            name,
            schema,
            sm,
            sm_desc,
            attachments,
            stats,
            version,
            next_instance,
        })
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

fn corrupt() -> DmxError {
    DmxError::Corrupt("truncated relation descriptor".into())
}

fn get_u8(buf: &[u8], pos: &mut usize) -> Result<u8> {
    let v = *buf.get(*pos).ok_or_else(corrupt)?;
    *pos += 1;
    Ok(v)
}

fn get_u16(buf: &[u8], pos: &mut usize) -> Result<u16> {
    let v = dmx_types::bytes::le_u16(buf, *pos).ok_or_else(corrupt)?;
    *pos += 2;
    Ok(v)
}

fn get_u32(buf: &[u8], pos: &mut usize) -> Result<u32> {
    let v = dmx_types::bytes::le_u32(buf, *pos).ok_or_else(corrupt)?;
    *pos += 4;
    Ok(v)
}

fn get_u64(buf: &[u8], pos: &mut usize) -> Result<u64> {
    let v = dmx_types::bytes::le_u64(buf, *pos).ok_or_else(corrupt)?;
    *pos += 8;
    Ok(v)
}

fn get_bytes(buf: &[u8], pos: &mut usize) -> Result<Vec<u8>> {
    let len = get_u32(buf, pos)? as usize;
    let s = buf.get(*pos..*pos + len).ok_or_else(corrupt)?;
    *pos += len;
    Ok(s.to_vec())
}

fn get_str(buf: &[u8], pos: &mut usize) -> Result<String> {
    String::from_utf8(get_bytes(buf, pos)?)
        .map_err(|_| DmxError::Corrupt("descriptor string not utf8".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmx_types::{ColumnDef, DataType};

    fn schema() -> Schema {
        Schema::new(vec![
            ColumnDef::not_null("id", DataType::Int),
            ColumnDef::new("name", DataType::Str),
        ])
        .unwrap()
    }

    fn rd() -> RelationDescriptor {
        RelationDescriptor::new(RelationId(7), "emp", schema(), SmTypeId(2), vec![1, 2, 3])
    }

    #[test]
    fn attachment_field_semantics() {
        let d = rd();
        assert_eq!(d.attachment_instances(AttTypeId(3)), None, "field NULL");
        let (d, i1) = d.with_attachment(AttTypeId(3), "idx_a", vec![9]).unwrap();
        let (d, i2) = d.with_attachment(AttTypeId(3), "idx_b", vec![8]).unwrap();
        let (d, _i3) = d.with_attachment(AttTypeId(5), "chk", vec![7]).unwrap();
        assert_ne!(i1, i2);
        assert_eq!(d.attachment_instances(AttTypeId(3)).unwrap().len(), 2);
        assert_eq!(d.attachment_count(), 3);
        // attached_types iterates in id order, skipping NULL fields
        let types: Vec<AttTypeId> = d.attached_types().map(|(t, _)| t).collect();
        assert_eq!(types, vec![AttTypeId(3), AttTypeId(5)]);
        // version bumped thrice
        assert_eq!(d.version, 4);
    }

    #[test]
    fn duplicate_and_missing_names() {
        let d = rd();
        let (d, _) = d.with_attachment(AttTypeId(3), "idx", vec![]).unwrap();
        assert!(
            d.with_attachment(AttTypeId(4), "IDX", vec![]).is_err(),
            "names global per relation"
        );
        assert!(d.without_attachment("nope").is_err());
        assert!(d.find_attachment("idx").is_some());
    }

    #[test]
    fn remove_returns_field_to_null_but_instance_ids_advance() {
        let d = rd();
        let (d, first) = d.with_attachment(AttTypeId(3), "idx", vec![]).unwrap();
        let (d, att, inst) = d.without_attachment("idx").unwrap();
        assert_eq!(att, AttTypeId(3));
        assert_eq!(inst.instance, first);
        assert_eq!(d.attachment_instances(AttTypeId(3)), None);
        // a re-created attachment gets a fresh instance number
        let (_, second) = d.with_attachment(AttTypeId(3), "idx", vec![]).unwrap();
        assert!(second > first);
    }

    #[test]
    fn type_id_bounds_enforced() {
        let d = rd();
        assert!(
            d.with_attachment(AttTypeId(0), "x", vec![]).is_err(),
            "field 0 is the SM"
        );
        assert!(d
            .with_attachment(AttTypeId(MAX_ATTACHMENT_TYPES as u8), "x", vec![])
            .is_err());
    }

    #[test]
    fn update_attachment_desc() {
        let d = rd();
        let (d, inst) = d.with_attachment(AttTypeId(3), "idx", vec![1]).unwrap();
        let d2 = d
            .with_updated_attachment_desc(AttTypeId(3), inst, vec![4, 5])
            .unwrap();
        assert_eq!(
            d2.attachment_instances(AttTypeId(3)).unwrap()[0].desc,
            vec![4, 5]
        );
        assert_eq!(d2.version, d.version + 1);
        assert!(d
            .with_updated_attachment_desc(AttTypeId(3), AttInstanceId(99), vec![])
            .is_err());
    }

    #[test]
    fn encode_decode_roundtrip() {
        let d = rd();
        let (d, _) = d
            .with_attachment(AttTypeId(3), "idx_a", vec![9, 9])
            .unwrap();
        let (d, _) = d.with_attachment(AttTypeId(5), "chk", vec![]).unwrap();
        d.stats.on_insert(120);
        d.stats.on_page_allocated();
        let back = RelationDescriptor::decode(&d.encode()).unwrap();
        assert_eq!(back.id, d.id);
        assert_eq!(back.name, d.name);
        assert_eq!(back.schema, d.schema);
        assert_eq!(back.sm, d.sm);
        assert_eq!(back.sm_desc, d.sm_desc);
        assert_eq!(back.version, d.version);
        assert_eq!(back.attachment_count(), 2);
        assert_eq!(
            back.attachment_instances(AttTypeId(3)).unwrap()[0].desc,
            vec![9, 9]
        );
        assert_eq!(back.stats.records(), 1);
        assert_eq!(back.stats.snapshot(), d.stats.snapshot());
        // truncation never panics
        let bytes = d.encode();
        for cut in 0..bytes.len() {
            assert!(RelationDescriptor::decode(&bytes[..cut]).is_err());
        }
    }
}
