//! Bound-plan dependency tracking and invalidation.
//!
//! "A uniform mechanism for recording the dependencies of execution plans
//! on the relations they use allows the system to invalidate any plans
//! which depend upon relations or access paths that have been deleted
//! from the system. Invalidated execution plans are automatically
//! re-translated, by the common system, the next time the query is
//! invoked." The query layer registers each compiled plan's dependencies
//! here; DDL paths call [`DependencyRegistry::invalidate`].

use std::collections::{HashMap, HashSet};

use dmx_types::sync::Mutex;

use dmx_types::{AttInstanceId, AttTypeId, RelationId};

/// Identifies a registered bound plan.
pub type PlanId = u64;

/// Something a plan can depend on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DepKey {
    /// The relation itself (any DDL on it invalidates).
    Relation(RelationId),
    /// A specific access-path attachment instance.
    Attachment(RelationId, AttTypeId, AttInstanceId),
}

#[derive(Default)]
struct DepState {
    next: PlanId,
    by_plan: HashMap<PlanId, Vec<DepKey>>,
    by_dep: HashMap<DepKey, HashSet<PlanId>>,
    invalid: HashSet<PlanId>,
}

/// The dependency registry (one per database).
#[derive(Default)]
pub struct DependencyRegistry {
    state: Mutex<DepState>,
}

impl DependencyRegistry {
    /// Registers a plan with its dependencies, returning its id.
    pub fn register_plan(&self, deps: Vec<DepKey>) -> PlanId {
        let mut st = self.state.lock();
        st.next += 1;
        let id = st.next;
        for d in &deps {
            st.by_dep.entry(*d).or_default().insert(id);
        }
        st.by_plan.insert(id, deps);
        id
    }

    /// True while every dependency of the plan still exists.
    pub fn is_valid(&self, plan: PlanId) -> bool {
        let st = self.state.lock();
        st.by_plan.contains_key(&plan) && !st.invalid.contains(&plan)
    }

    /// Marks every plan depending on `key` invalid, returning them.
    pub fn invalidate(&self, key: DepKey) -> Vec<PlanId> {
        let mut st = self.state.lock();
        let hit: Vec<PlanId> = st
            .by_dep
            .get(&key)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        st.invalid.extend(hit.iter().copied());
        hit
    }

    /// Unregisters a plan (e.g. when the query layer evicts or replaces
    /// it after re-translation).
    pub fn forget_plan(&self, plan: PlanId) {
        let mut st = self.state.lock();
        if let Some(deps) = st.by_plan.remove(&plan) {
            for d in deps {
                if let Some(set) = st.by_dep.get_mut(&d) {
                    set.remove(&plan);
                    if set.is_empty() {
                        st.by_dep.remove(&d);
                    }
                }
            }
        }
        st.invalid.remove(&plan);
    }

    /// Number of registered plans.
    pub fn plan_count(&self) -> usize {
        self.state.lock().by_plan.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_invalidate_retranslate_cycle() {
        let reg = DependencyRegistry::default();
        let rel = RelationId(1);
        let idx = DepKey::Attachment(rel, AttTypeId(2), AttInstanceId(1));
        let p1 = reg.register_plan(vec![DepKey::Relation(rel), idx]);
        let p2 = reg.register_plan(vec![DepKey::Relation(rel)]);
        assert!(reg.is_valid(p1));
        assert!(reg.is_valid(p2));

        // dropping the index invalidates only the plan that used it
        let hit = reg.invalidate(idx);
        assert_eq!(hit, vec![p1]);
        assert!(!reg.is_valid(p1));
        assert!(reg.is_valid(p2));

        // "re-translation": forget the stale plan, register its successor
        reg.forget_plan(p1);
        let p3 = reg.register_plan(vec![DepKey::Relation(rel)]);
        assert!(reg.is_valid(p3));

        // dropping the relation takes out everything left
        let mut hit = reg.invalidate(DepKey::Relation(rel));
        hit.sort_unstable();
        assert_eq!(hit, vec![p2, p3]);
    }

    #[test]
    fn unknown_plans_and_keys() {
        let reg = DependencyRegistry::default();
        assert!(!reg.is_valid(42));
        assert!(reg.invalidate(DepKey::Relation(RelationId(9))).is_empty());
        reg.forget_plan(42); // harmless
        assert_eq!(reg.plan_count(), 0);
    }

    #[test]
    fn forget_cleans_reverse_edges() {
        let reg = DependencyRegistry::default();
        let key = DepKey::Relation(RelationId(1));
        let p = reg.register_plan(vec![key]);
        reg.forget_plan(p);
        assert!(reg.invalidate(key).is_empty(), "no dangling reverse edge");
    }
}
