//! The procedure vectors.
//!
//! "For each direct or indirect generic operation, there is a vector of
//! addresses for the procedures that implement the corresponding
//! operation. … Storage method and attachment internal identifiers are
//! small integers that serve as indexes into the vectors of procedures."
//!
//! In Rust the per-operation address vectors collapse into one vector of
//! trait objects per abstraction (a trait object *is* a vtable of
//! procedure addresses); activation is still a single indexed load plus
//! an indirect call — experiment E1 measures exactly this. Extensions
//! are registered "at the factory": at database-open time, before any
//! transaction runs.

use std::collections::HashMap;
use std::sync::Arc;

use dmx_types::sync::RwLock;

use dmx_types::{AttTypeId, DmxError, Result, SmTypeId};

use crate::attachment::Attachment;
use crate::storage_method::StorageMethod;

/// Cap on attachment types: the record-oriented relation descriptor
/// "effectively limits the number of different attachment types to a few
/// dozen without … significant storage overhead".
pub const MAX_ATTACHMENT_TYPES: usize = 32;

/// Cap on storage-method types (same small-integer encoding).
pub const MAX_STORAGE_METHODS: usize = 32;

#[derive(Default)]
struct Inner {
    /// Index = small-integer type id; slot 0 reserved (attachment field 0
    /// of the descriptor is the storage-method descriptor).
    storage: Vec<Option<Arc<dyn StorageMethod>>>,
    attach: Vec<Option<Arc<dyn Attachment>>>,
    sm_by_name: HashMap<String, SmTypeId>,
    att_by_name: HashMap<String, AttTypeId>,
}

/// The extension registry: both procedure vectors plus name lookup for
/// DDL.
#[derive(Default)]
pub struct ExtensionRegistry {
    inner: RwLock<Inner>,
}

impl ExtensionRegistry {
    /// An empty registry.
    pub fn new() -> Arc<Self> {
        let reg = ExtensionRegistry::default();
        {
            let mut inner = reg.inner.write();
            inner.storage.resize(1, None); // slot 0 reserved
            inner.attach.resize(1, None);
        }
        Arc::new(reg)
    }

    /// Installs a storage method, assigning the next small-integer id.
    pub fn register_storage_method(&self, sm: Arc<dyn StorageMethod>) -> Result<SmTypeId> {
        let mut inner = self.inner.write();
        let name = sm.name().to_ascii_lowercase();
        if inner.sm_by_name.contains_key(&name) {
            return Err(DmxError::Duplicate(format!("storage method {name}")));
        }
        if inner.storage.len() >= MAX_STORAGE_METHODS {
            return Err(DmxError::InvalidArg("storage-method vector full".into()));
        }
        let id = SmTypeId(inner.storage.len() as u8);
        inner.storage.push(Some(sm));
        inner.sm_by_name.insert(name, id);
        Ok(id)
    }

    /// Installs an attachment type, assigning the next small-integer id
    /// (which is also its descriptor field number).
    pub fn register_attachment(&self, att: Arc<dyn Attachment>) -> Result<AttTypeId> {
        let mut inner = self.inner.write();
        let name = att.name().to_ascii_lowercase();
        if inner.att_by_name.contains_key(&name) {
            return Err(DmxError::Duplicate(format!("attachment type {name}")));
        }
        if inner.attach.len() >= MAX_ATTACHMENT_TYPES {
            return Err(DmxError::InvalidArg("attachment vector full".into()));
        }
        let id = AttTypeId(inner.attach.len() as u8);
        inner.attach.push(Some(att));
        inner.att_by_name.insert(name, id);
        Ok(id)
    }

    /// Activates a storage method by id — the procedure-vector index.
    pub fn storage(&self, id: SmTypeId) -> Result<Arc<dyn StorageMethod>> {
        self.inner
            .read()
            .storage
            .get(id.0 as usize)
            .and_then(|o| o.clone())
            .ok_or_else(|| DmxError::NotFound(format!("storage method {id}")))
    }

    /// Activates an attachment type by id.
    pub fn attachment(&self, id: AttTypeId) -> Result<Arc<dyn Attachment>> {
        self.inner
            .read()
            .attach
            .get(id.0 as usize)
            .and_then(|o| o.clone())
            .ok_or_else(|| DmxError::NotFound(format!("attachment type {id}")))
    }

    /// DDL name lookup.
    pub fn storage_id_by_name(&self, name: &str) -> Result<SmTypeId> {
        self.inner
            .read()
            .sm_by_name
            .get(&name.to_ascii_lowercase())
            .copied()
            .ok_or_else(|| DmxError::NotFound(format!("storage method '{name}'")))
    }

    /// DDL name lookup.
    pub fn attachment_id_by_name(&self, name: &str) -> Result<AttTypeId> {
        self.inner
            .read()
            .att_by_name
            .get(&name.to_ascii_lowercase())
            .copied()
            .ok_or_else(|| DmxError::NotFound(format!("attachment type '{name}'")))
    }

    /// Registered storage-method names with ids (diagnostics / catalogs).
    pub fn storage_methods(&self) -> Vec<(SmTypeId, String)> {
        let inner = self.inner.read();
        inner
            .storage
            .iter()
            .enumerate()
            .filter_map(|(i, o)| {
                o.as_ref()
                    .map(|s| (SmTypeId(i as u8), s.name().to_string()))
            })
            .collect()
    }

    /// Registered attachment-type names with ids.
    pub fn attachment_types(&self) -> Vec<(AttTypeId, String)> {
        let inner = self.inner.read();
        inner
            .attach
            .iter()
            .enumerate()
            .filter_map(|(i, o)| {
                o.as_ref()
                    .map(|a| (AttTypeId(i as u8), a.name().to_string()))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::KeyRange;
    use crate::context::ExecCtx;
    use crate::cost::PathChoice;
    use crate::descriptor::RelationDescriptor;
    use crate::services::CommonServices;
    use crate::storage_method::StorageMethod;
    use dmx_expr::Expr;
    use dmx_types::{AttrList, FieldId, Lsn, Record, RecordKey, RelationId, Schema, Value};

    struct StubSm(&'static str);

    impl StorageMethod for StubSm {
        fn name(&self) -> &str {
            self.0
        }
        fn validate_params(&self, _: &AttrList, _: &Schema) -> Result<()> {
            Ok(())
        }
        fn create_instance(
            &self,
            _: &ExecCtx<'_>,
            _: RelationId,
            _: &Schema,
            _: &AttrList,
        ) -> Result<Vec<u8>> {
            Ok(vec![])
        }
        fn destroy_instance(&self, _: &Arc<CommonServices>, _: &[u8]) -> Result<()> {
            Ok(())
        }
        fn insert(&self, _: &ExecCtx<'_>, _: &RelationDescriptor, _: &Record) -> Result<RecordKey> {
            Err(DmxError::Unsupported("stub".into()))
        }
        fn update(
            &self,
            _: &ExecCtx<'_>,
            _: &RelationDescriptor,
            _: &RecordKey,
            _: &Record,
        ) -> Result<(Record, RecordKey)> {
            Err(DmxError::Unsupported("stub".into()))
        }
        fn delete(&self, _: &ExecCtx<'_>, _: &RelationDescriptor, _: &RecordKey) -> Result<Record> {
            Err(DmxError::Unsupported("stub".into()))
        }
        fn fetch(
            &self,
            _: &ExecCtx<'_>,
            _: &RelationDescriptor,
            _: &RecordKey,
            _: Option<&[FieldId]>,
            _: Option<&Expr>,
        ) -> Result<Option<Vec<Value>>> {
            Ok(None)
        }
        fn open_scan(
            &self,
            _: &ExecCtx<'_>,
            _: &RelationDescriptor,
            _: KeyRange,
            _: Option<Expr>,
            _: Option<Vec<FieldId>>,
        ) -> Result<Box<dyn crate::access::ScanOps>> {
            Err(DmxError::Unsupported("stub".into()))
        }
        fn estimate(&self, _: &RelationDescriptor, _: &[Expr]) -> PathChoice {
            PathChoice::full_scan(crate::access::AccessPath::StorageMethod, 1, 0)
        }
        fn undo(
            &self,
            _: &Arc<CommonServices>,
            _: &RelationDescriptor,
            _: Lsn,
            _: u8,
            _: &[u8],
        ) -> Result<()> {
            Ok(())
        }
    }

    #[test]
    fn ids_are_sequential_small_integers_starting_at_one() {
        let reg = ExtensionRegistry::new();
        let a = reg
            .register_storage_method(Arc::new(StubSm("alpha")))
            .unwrap();
        let b = reg
            .register_storage_method(Arc::new(StubSm("beta")))
            .unwrap();
        assert_eq!(a, SmTypeId(1), "slot 0 is reserved");
        assert_eq!(b, SmTypeId(2));
        assert_eq!(reg.storage(a).unwrap().name(), "alpha");
        assert_eq!(reg.storage_id_by_name("BETA").unwrap(), b);
    }

    #[test]
    fn duplicate_names_and_unknown_ids_rejected() {
        let reg = ExtensionRegistry::new();
        reg.register_storage_method(Arc::new(StubSm("x"))).unwrap();
        assert!(matches!(
            reg.register_storage_method(Arc::new(StubSm("X"))),
            Err(DmxError::Duplicate(_))
        ));
        assert!(reg.storage(SmTypeId(0)).is_err(), "reserved slot");
        assert!(reg.storage(SmTypeId(9)).is_err());
        assert!(reg.storage_id_by_name("nope").is_err());
        assert!(reg.attachment(AttTypeId(1)).is_err());
    }

    #[test]
    fn vector_capacity_is_capped() {
        let reg = ExtensionRegistry::new();
        // names must be unique; fill to the cap
        let names: Vec<String> = (0..MAX_STORAGE_METHODS + 4)
            .map(|i| format!("sm{i}"))
            .collect();
        let mut registered = 0;
        for name in &names {
            let leaked: &'static str = Box::leak(name.clone().into_boxed_str());
            if reg
                .register_storage_method(Arc::new(StubSm(leaked)))
                .is_ok()
            {
                registered += 1;
            }
        }
        assert_eq!(
            registered,
            MAX_STORAGE_METHODS - 1,
            "slot 0 reserved, rest filled"
        );
        assert_eq!(reg.storage_methods().len(), MAX_STORAGE_METHODS - 1);
    }
}
