//! The unified access interface and scan management.
//!
//! "The internal interface for data access is uniform across relation
//! storage and access path extensions. All accesses take keys as input
//! and return keys and data. … Access path zero is interpreted as an
//! access to the storage method." Scans (key-sequential accesses) have
//! explicit *positions* with the paper's rules: a scan is on / before /
//! after an item; deleting the item at the current position leaves the
//! scan just after it; every scan is closed at transaction termination;
//! and positions are saved when a rollback point is established and
//! restored after a partial rollback.

use std::collections::HashMap;
use std::ops::Bound;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dmx_types::sync::Mutex;

use dmx_types::{
    AttInstanceId, AttTypeId, DmxError, RecordKey, Rect, Result, ScanId, TxnId, Value,
};

use crate::context::ExecCtx;

/// Which access path serves an access. Path zero is the storage method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessPath {
    /// "Access path zero": the relation storage method itself.
    StorageMethod,
    /// An attachment instance (type id + instance number, e.g. "B-tree
    /// number 3").
    Attachment(AttTypeId, AttInstanceId),
}

/// A range over opaque key bytes (storage-method record keys for path 0,
/// access-path keys otherwise).
#[derive(Debug, Clone, PartialEq)]
pub struct KeyRange {
    pub lo: Bound<Vec<u8>>,
    pub hi: Bound<Vec<u8>>,
}

impl KeyRange {
    /// The unbounded range.
    pub fn all() -> Self {
        KeyRange {
            lo: Bound::Unbounded,
            hi: Bound::Unbounded,
        }
    }

    /// The exact-key range `[k, k]`.
    pub fn exact(k: Vec<u8>) -> Self {
        KeyRange {
            lo: Bound::Included(k.clone()),
            hi: Bound::Included(k),
        }
    }

    /// True when `k` lies inside the range.
    pub fn contains(&self, k: &[u8]) -> bool {
        let lo_ok = match &self.lo {
            Bound::Unbounded => true,
            Bound::Included(b) => k >= b.as_slice(),
            Bound::Excluded(b) => k > b.as_slice(),
        };
        let hi_ok = match &self.hi {
            Bound::Unbounded => true,
            Bound::Included(b) => k <= b.as_slice(),
            Bound::Excluded(b) => k < b.as_slice(),
        };
        lo_ok && hi_ok
    }
}

/// Spatial query operators recognized by spatial access paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpatialOp {
    /// Record rectangles that enclose the query rectangle.
    Encloses,
    /// Record rectangles enclosed by the query rectangle (window query).
    EnclosedBy,
    /// Record rectangles intersecting the query rectangle.
    Intersects,
}

/// The concrete question asked of an access path.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessQuery {
    /// Every entry.
    All,
    /// Entries within an encoded-key range.
    Range(KeyRange),
    /// Entries with exactly this access key (hash paths).
    KeyEquals(Vec<u8>),
    /// Spatial predicate against the query rectangle.
    Spatial(SpatialOp, Rect),
}

/// One item produced by a scan: the storage-method record key plus,
/// when available, field values (projected record fields from a storage
/// method, or covered fields from an access path).
#[derive(Debug, Clone, PartialEq)]
pub struct ScanItem {
    pub key: RecordKey,
    pub values: Option<Vec<Value>>,
}

/// The generic key-sequential access interface implemented by storage
/// methods and access-path attachments.
pub trait ScanOps: Send {
    /// The item after the current position, advancing the position onto
    /// it. `None` when exhausted.
    fn next(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<ScanItem>>;

    /// Serializes the current position (the paper's savepoint-time
    /// "obtain their key-sequential access positions").
    fn save_position(&self) -> Vec<u8>;

    /// Restores a previously saved position after a partial rollback.
    fn restore_position(&mut self, pos: &[u8]) -> Result<()>;

    /// True when item keys are storage-method record keys (lockable and
    /// re-readable through the storage method). Access paths that emit
    /// derived items — e.g. maintained-aggregate groups — return false,
    /// and the dispatcher skips record locking/re-validation for them.
    fn items_are_record_keys(&self) -> bool {
        true
    }

    /// True when the scan can re-derive its items from a versioned
    /// record image via [`ScanOps::item_from_version`] — the opt-in for
    /// lock-free snapshot scans. Scans whose per-item state is not a
    /// pure function of `(record key, record values)` (join pairs,
    /// derived aggregates, spatial hits) keep the default `false` and
    /// the dispatcher falls back to the locking protocol.
    fn supports_versioned_read(&self) -> bool {
        false
    }

    /// Re-derives the scan's item for a record given its snapshot-
    /// visible `values`: applies the scan's own range/predicate/
    /// projection and returns `None` when the versioned record does not
    /// qualify. `key` is the storage-method record key.
    fn item_from_version(
        &self,
        _ctx: &ExecCtx<'_>,
        _key: &RecordKey,
        _values: &[Value],
    ) -> Result<Option<ScanItem>> {
        Err(DmxError::Unsupported(
            "scan does not support versioned reads".into(),
        ))
    }

    /// Enables next-key range (gap) locking on this scan: tree scans
    /// S-lock the gap below every entry they return (and the gap just
    /// past the range on exhaustion) so serializable writers cannot
    /// slip phantoms into the scanned range. Only the dispatcher's
    /// locking protocol turns this on — raw internal scans (backfill,
    /// scrub, referential-integrity probes) run without range locks,
    /// exactly as they run without record locks. Default: no-op for
    /// scans without a gap-lockable key space.
    fn set_range_locking(&mut self, _on: bool) {}
}

type SharedScan = Arc<Mutex<Box<dyn ScanOps>>>;

/// Tracks every open scan per transaction so the common system can (a)
/// close them all at transaction termination and (b) save/restore their
/// positions around rollback points.
///
/// Each scan carries its own lock: advancing a scan must **not** hold the
/// registry lock, because a scan may block in the lock manager (record
/// locks) and other transactions' scans have to keep moving — and the
/// deadlock detector must see the blocked request as a lock wait.
#[derive(Default)]
pub struct ScanManager {
    next_id: AtomicU64,
    open: Mutex<HashMap<TxnId, HashMap<ScanId, SharedScan>>>,
}

impl ScanManager {
    /// An empty scan manager.
    pub fn new() -> Arc<Self> {
        Arc::new(ScanManager::default())
    }

    /// Registers an open scan for a transaction.
    pub fn open(&self, txn: TxnId, scan: Box<dyn ScanOps>) -> ScanId {
        let id = ScanId(self.next_id.fetch_add(1, Ordering::Relaxed) + 1);
        self.open
            .lock()
            .entry(txn)
            .or_default()
            .insert(id, Arc::new(Mutex::new(scan)));
        id
    }

    /// Advances a scan (registry lock released before the scan runs).
    pub fn next(&self, ctx: &ExecCtx<'_>, id: ScanId) -> Result<Option<ScanItem>> {
        let scan = {
            let open = self.open.lock();
            open.get(&ctx.txn.id())
                .and_then(|scans| scans.get(&id))
                .cloned()
                .ok_or_else(|| DmxError::NotFound(format!("scan {id}")))?
        };
        let mut guard = scan.lock();
        guard.next(ctx)
    }

    /// Closes one scan.
    pub fn close(&self, txn: TxnId, id: ScanId) {
        if let Some(scans) = self.open.lock().get_mut(&txn) {
            scans.remove(&id);
        }
    }

    /// End-of-transaction notification: closes every scan the transaction
    /// had open ("all key-sequential accesses must be terminated at
    /// transaction termination").
    pub fn close_all(&self, txn: TxnId) -> usize {
        self.open.lock().remove(&txn).map(|s| s.len()).unwrap_or(0)
    }

    /// Number of scans a transaction holds open.
    pub fn open_count(&self, txn: TxnId) -> usize {
        self.open.lock().get(&txn).map(|s| s.len()).unwrap_or(0)
    }

    /// Rollback-point establishment: collect every open scan's position.
    pub fn save_positions(&self, txn: TxnId) -> Vec<(ScanId, Vec<u8>)> {
        let scans: Vec<(ScanId, SharedScan)> = {
            let open = self.open.lock();
            open.get(&txn)
                .map(|scans| scans.iter().map(|(id, s)| (*id, s.clone())).collect())
                .unwrap_or_default()
        };
        let mut out: Vec<(ScanId, Vec<u8>)> = scans
            .into_iter()
            .map(|(id, s)| {
                let pos = s.lock().save_position();
                (id, pos)
            })
            .collect();
        out.sort_unstable_by_key(|(id, _)| *id);
        out
    }

    /// Partial-rollback completion: restore saved positions. Scans opened
    /// after the savepoint (not in `saved`) are closed — they did not
    /// exist at the rollback point.
    pub fn restore_positions(&self, txn: TxnId, saved: &[(ScanId, Vec<u8>)]) -> Result<()> {
        let survivors: Vec<(ScanId, SharedScan)> = {
            let mut open = self.open.lock();
            let Some(scans) = open.get_mut(&txn) else {
                return Ok(());
            };
            scans.retain(|id, _| saved.iter().any(|(s, _)| s == id));
            scans.iter().map(|(id, s)| (*id, s.clone())).collect()
        };
        for (id, pos) in saved {
            if let Some((_, s)) = survivors.iter().find(|(sid, _)| sid == id) {
                s.lock().restore_position(pos)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_range_contains() {
        let r = KeyRange {
            lo: Bound::Included(vec![2]),
            hi: Bound::Excluded(vec![9]),
        };
        assert!(r.contains(&[2]));
        assert!(r.contains(&[5, 1]));
        assert!(!r.contains(&[9]));
        assert!(!r.contains(&[1]));
        assert!(KeyRange::all().contains(&[]));
        let e = KeyRange::exact(vec![7]);
        assert!(e.contains(&[7]));
        assert!(!e.contains(&[7, 0]));
    }

    // A scriptable scan over a vector of numbered items; position = index.
    struct VecScan {
        items: Vec<u8>,
        pos: usize,
    }
    impl ScanOps for VecScan {
        fn next(&mut self, _ctx: &ExecCtx<'_>) -> Result<Option<ScanItem>> {
            if self.pos >= self.items.len() {
                return Ok(None);
            }
            let item = ScanItem {
                key: RecordKey::new(vec![self.items[self.pos]]),
                values: None,
            };
            self.pos += 1;
            Ok(Some(item))
        }
        fn save_position(&self) -> Vec<u8> {
            vec![self.pos as u8]
        }
        fn restore_position(&mut self, pos: &[u8]) -> Result<()> {
            self.pos = pos[0] as usize;
            Ok(())
        }
    }

    // ScanManager tests that need an ExecCtx live in dml.rs's test module
    // (where a full Database exists); here we exercise the bookkeeping
    // that doesn't need one.
    #[test]
    fn open_close_and_end_of_txn_cleanup() {
        let sm = ScanManager::new();
        let t = TxnId(1);
        let a = sm.open(
            t,
            Box::new(VecScan {
                items: vec![1, 2],
                pos: 0,
            }),
        );
        let b = sm.open(
            t,
            Box::new(VecScan {
                items: vec![3],
                pos: 0,
            }),
        );
        assert_ne!(a, b);
        assert_eq!(sm.open_count(t), 2);
        sm.close(t, a);
        assert_eq!(sm.open_count(t), 1);
        assert_eq!(sm.close_all(t), 1);
        assert_eq!(sm.open_count(t), 0);
        assert_eq!(sm.close_all(t), 0, "idempotent");
    }

    #[test]
    fn save_restore_positions_drops_younger_scans() {
        let sm = ScanManager::new();
        let t = TxnId(2);
        let a = sm.open(
            t,
            Box::new(VecScan {
                items: vec![1, 2, 3],
                pos: 2,
            }),
        );
        let saved = sm.save_positions(t);
        assert_eq!(saved, vec![(a, vec![2])]);
        // a scan opened after the savepoint must be closed on restore
        let _b = sm.open(
            t,
            Box::new(VecScan {
                items: vec![9],
                pos: 0,
            }),
        );
        assert_eq!(sm.open_count(t), 2);
        sm.restore_positions(t, &saved).unwrap();
        assert_eq!(sm.open_count(t), 1);
    }
}
