//! Cost-estimation interface types.
//!
//! "Given a list of 'eligible' predicates supplied by the query planner,
//! the storage method or access attachment can determine the 'relevance'
//! of the predicates to the access path instance and then estimate the
//! I/O and CPU costs to return the record fields or keys that satisfy the
//! predicates." An extension answers with a [`PathChoice`]; the planner
//! compares [`Cost`]s across access paths (path 0 = the storage method).

use dmx_expr::Expr;
use dmx_types::FieldId;

use crate::access::{AccessPath, AccessQuery};

/// Cost model weights: one page transfer costs `IO_UNIT`, one record
/// touched costs `CPU_UNIT`, one extension procedure call costs
/// `CALL_UNIT`.
pub const IO_UNIT: f64 = 1.0;
pub const CPU_UNIT: f64 = 0.001;
pub const CALL_UNIT: f64 = 0.0002;

/// Estimated I/O and CPU cost.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Cost {
    /// Page transfers.
    pub io: f64,
    /// Records / keys processed.
    pub cpu: f64,
}

impl Cost {
    /// A cost of `io` page reads and `cpu` record touches.
    pub fn new(io: f64, cpu: f64) -> Self {
        Cost { io, cpu }
    }

    /// Weighted scalar total used for comparison.
    pub fn total(&self) -> f64 {
        self.io * IO_UNIT + self.cpu * CPU_UNIT
    }

    /// Component-wise sum.
    pub fn plus(&self, other: Cost) -> Cost {
        Cost {
            io: self.io + other.io,
            cpu: self.cpu + other.cpu,
        }
    }

    /// Scales both components (e.g. per-probe cost × probe count).
    pub fn times(&self, k: f64) -> Cost {
        Cost {
            io: self.io * k,
            cpu: self.cpu * k,
        }
    }
}

/// An extension's answer to the planner: how it would run an access and
/// what that costs.
#[derive(Debug, Clone)]
pub struct PathChoice {
    /// Which access path this is.
    pub path: AccessPath,
    /// The concrete query the access path would execute.
    pub query: AccessQuery,
    /// Estimated cost of producing the qualifying record keys / fields.
    pub cost: Cost,
    /// Estimated number of records the path emits.
    pub rows_out: f64,
    /// Base-table fields available directly from the path (a covering
    /// path lets the executor skip the storage-method fetch).
    pub covered: Option<Vec<FieldId>>,
    /// Predicates the path *fully* applies (the executor need not
    /// re-check them).
    pub applied: Vec<Expr>,
    /// Field ordering of the emitted stream, if any (lets the planner
    /// skip sorts).
    pub ordering: Option<Vec<FieldId>>,
}

impl PathChoice {
    /// A full-scan baseline choice for a storage method.
    pub fn full_scan(path: AccessPath, pages: u64, records: u64) -> PathChoice {
        PathChoice {
            path,
            query: AccessQuery::All,
            cost: Cost::new(pages as f64, records as f64),
            rows_out: records as f64,
            covered: None,
            applied: Vec::new(),
            ordering: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_arithmetic() {
        let a = Cost::new(10.0, 1000.0);
        let b = Cost::new(1.0, 1.0);
        assert!(a.total() > b.total());
        let s = a.plus(b);
        assert_eq!(s.io, 11.0);
        assert_eq!(s.cpu, 1001.0);
        let t = b.times(3.0);
        assert_eq!(t.io, 3.0);
    }

    #[test]
    fn io_dominates_cpu_at_equal_counts() {
        // One page read outweighs one record of CPU by construction.
        assert!(Cost::new(1.0, 0.0).total() > Cost::new(0.0, 1.0).total());
    }

    #[test]
    fn full_scan_baseline() {
        let c = PathChoice::full_scan(AccessPath::StorageMethod, 100, 5000);
        assert_eq!(c.cost.io, 100.0);
        assert_eq!(c.rows_out, 5000.0);
        assert!(matches!(c.query, AccessQuery::All));
        assert!(c.applied.is_empty());
    }
}
