//! The seven rule families of `xtask verify`.
//!
//! 1. **Panic discipline** — no `unwrap()` / `expect(` / `panic!` /
//!    `todo!` / `unimplemented!` and no unjustified range-slicing in
//!    non-test runtime code, modulo the shrinking allowlist.
//! 2. **Fault-path discipline** — no direct `MemDisk`/`StableLog`
//!    construction in non-test runtime code outside the I/O crates, so
//!    every disk/log flows through the fault-injection layer.
//! 3. **Unsafe audit** — every `unsafe` token lives in an allowlisted
//!    module and carries a nearby `// SAFETY:` comment.
//! 4. **Layering** — runtime crates only depend on crates below them in
//!    the documented DAG, never on external crates, and the extension
//!    crates never name kernel-internal module paths.
//! 5. **Extension contracts** — every registered storage method and
//!    attachment type implements the full generic operation set.
//! 6. **Deterministic time** — no `Instant`/`SystemTime` in non-test
//!    runtime code (modulo the `[[wallclock]]` allowlist), so metric
//!    snapshots and recovery stay pure functions of the workload;
//!    timing lives in `crates/bench`, which is not a runtime crate.
//! 7. **Registered metrics** — no `static` atomics in runtime crates:
//!    ad-hoc process-global counters bypass the per-database
//!    `MetricsRegistry` and alias state across databases.

use std::collections::{HashMap, HashSet};
use std::fs;
use std::path::Path;

use crate::allowlist::Allowlist;
use crate::scan::SourceFile;

/// One finding. `path` is root-relative.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    pub rule: &'static str,
    pub path: String,
    pub line: usize,
    pub msg: String,
}

impl Violation {
    fn new(rule: &'static str, path: &str, line: usize, msg: String) -> Violation {
        Violation {
            rule,
            path: path.to_string(),
            line,
            msg,
        }
    }

    /// Constructor for rule modules outside this file (effect rules).
    pub(crate) fn at(rule: &'static str, path: &str, line: usize, msg: String) -> Violation {
        Violation::new(rule, path, line, msg)
    }

    /// The stable DMX code of this finding. Codes are append-only: a
    /// retired rule's code is never reused, and report consumers key on
    /// the code, not the internal rule name.
    pub fn code(&self) -> &'static str {
        match self.rule {
            "panic" | "panic-allowlist" => "DMX001",
            "raw-io" => "DMX002",
            "unsafe" | "unsafe-allowlist" => "DMX003",
            "layering" | "private-path" => "DMX004",
            "contract" => "DMX005",
            "wallclock" | "wallclock-allowlist" => "DMX006",
            "metric-static" => "DMX007",
            "write-ahead" => "DMX008",
            "lock-order" => "DMX009",
            "io-under-latch" => "DMX010",
            "effects-baseline" => "DMX011",
            _ => "DMX000",
        }
    }
}

/// The crates subject to the panic and layering rules, together with the
/// set of workspace crates each may depend on (the layering DAG of
/// DESIGN.md: types → pagestore/wal/lock → txn/btree/expr → core →
/// storage/attach → query).
pub const LAYERING: &[(&str, &[&str])] = &[
    ("types", &[]),
    ("pagestore", &["dmx-types"]),
    ("wal", &["dmx-types"]),
    ("lock", &["dmx-types"]),
    ("txn", &["dmx-types", "dmx-wal"]),
    ("btree", &["dmx-types", "dmx-page"]),
    ("expr", &["dmx-types"]),
    (
        "core",
        &[
            "dmx-types",
            "dmx-page",
            "dmx-wal",
            "dmx-lock",
            "dmx-txn",
            "dmx-expr",
            "dmx-btree",
        ],
    ),
    (
        "storage",
        &[
            "dmx-types",
            "dmx-page",
            "dmx-wal",
            "dmx-lock",
            "dmx-txn",
            "dmx-expr",
            "dmx-btree",
            "dmx-core",
        ],
    ),
    (
        "attach",
        &[
            "dmx-types",
            "dmx-page",
            "dmx-wal",
            "dmx-lock",
            "dmx-txn",
            "dmx-expr",
            "dmx-btree",
            "dmx-core",
        ],
    ),
    (
        "query",
        &[
            "dmx-types",
            "dmx-page",
            "dmx-wal",
            "dmx-lock",
            "dmx-txn",
            "dmx-expr",
            "dmx-btree",
            "dmx-core",
            "dmx-storage",
            "dmx-attach",
        ],
    ),
];

/// Crates whose non-test code must be panic-free (rule 1). `types` is
/// included: it is below everything and its panics would surface
/// everywhere.
pub const RUNTIME_CRATES: &[&str] = &[
    "types",
    "pagestore",
    "wal",
    "lock",
    "txn",
    "btree",
    "expr",
    "core",
    "storage",
    "attach",
    "query",
];

const PANIC_TOKENS: &[(&str, &str)] = &[
    (".unwrap()", "unwrap"),
    (".expect(", "expect"),
    ("panic!", "panic"),
    ("todo!", "todo"),
    ("unimplemented!", "unimplemented"),
];

// ---------------------------------------------------------------------
// Rule 1: panic discipline
// ---------------------------------------------------------------------

/// Scans `files` (runtime-crate sources) for banned panic tokens and
/// unjustified range-slicing, then reconciles the hits against the
/// allowlist: uncovered hits are violations, and so are allowlist
/// entries whose recorded count no longer matches the source (the
/// ratchet must shrink explicitly, not rot).
pub fn check_panics(files: &[SourceFile], allow: &Allowlist) -> Vec<Violation> {
    let mut out = Vec::new();
    // (path, token) -> (count, first lines)
    let mut hits: HashMap<(String, String), Vec<usize>> = HashMap::new();
    for f in files {
        for (i, line) in f.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            for (needle, token) in PANIC_TOKENS {
                let mut n = 0;
                let mut rest = line.code.as_str();
                while let Some(p) = rest.find(needle) {
                    n += 1;
                    rest = &rest[p + needle.len()..];
                }
                // `debug_assert!`-style macros are fine; `panic!` inside
                // their message strings was already blanked by the lexer.
                for _ in 0..n {
                    hits.entry((f.rel.clone(), token.to_string()))
                        .or_default()
                        .push(i + 1);
                }
            }
            for col in slice_sites(&line.code) {
                if !slice_justified(f, i) {
                    let _ = col;
                    hits.entry((f.rel.clone(), "slice-index".to_string()))
                        .or_default()
                        .push(i + 1);
                }
            }
        }
    }
    let mut allowed: HashMap<(String, String), usize> = HashMap::new();
    for e in &allow.panics {
        if e.reason.trim().is_empty() {
            out.push(Violation::new(
                "panic-allowlist",
                "crates/xtask/allow.toml",
                e.line,
                format!("entry for {}:{} has no justification", e.path, e.token),
            ));
        }
        *allowed
            .entry((e.path.clone(), e.token.clone()))
            .or_default() += e.count;
    }
    let mut keys: Vec<_> = hits.keys().cloned().collect();
    keys.sort();
    for key in keys {
        let lines = &hits[&key];
        let allow_n = allowed.remove(&key).unwrap_or(0);
        if lines.len() > allow_n {
            for l in lines.iter().skip(allow_n) {
                out.push(Violation::new(
                    "panic",
                    &key.0,
                    *l,
                    format!(
                        "`{}` in non-test runtime code (allowlisted: {allow_n}, found: {})",
                        key.1,
                        lines.len()
                    ),
                ));
            }
        } else if lines.len() < allow_n {
            out.push(Violation::new(
                "panic-allowlist",
                "crates/xtask/allow.toml",
                0,
                format!(
                    "stale entry: {}:{} allows {allow_n} but source has {} — shrink the allowlist",
                    key.0,
                    key.1,
                    lines.len()
                ),
            ));
        }
    }
    // Entries whose file/token produced no hits at all are stale too.
    for ((path, token), n) in allowed {
        out.push(Violation::new(
            "panic-allowlist",
            "crates/xtask/allow.toml",
            0,
            format!("stale entry: {path}:{token} allows {n} but source has 0 — remove it"),
        ));
    }
    out
}

/// Byte columns of range-slicing subscripts (`x[a..b]`, `x[..n]`) in a
/// code line. Subscript position = `[` preceded by an identifier char,
/// `)`, or `]`; the bracket content must contain `..` and no `;` (which
/// would make it an array type/repeat expression).
fn slice_sites(code: &str) -> Vec<usize> {
    let b = code.as_bytes();
    let mut out = Vec::new();
    for i in 0..b.len() {
        if b[i] != b'[' || i == 0 {
            continue;
        }
        let prev = b[i - 1] as char;
        if !(prev.is_alphanumeric() || prev == '_' || prev == ')' || prev == ']') {
            continue;
        }
        // find the matching bracket on this line (subscripts are short)
        let mut depth = 0;
        let mut end = None;
        for (j, &c) in b.iter().enumerate().skip(i) {
            if c == b'[' {
                depth += 1;
            } else if c == b']' {
                depth -= 1;
                if depth == 0 {
                    end = Some(j);
                    break;
                }
            }
        }
        let Some(end) = end else { continue };
        let inner = &code[i + 1..end];
        if inner.contains("..") && !inner.contains(';') {
            out.push(i);
        }
    }
    out
}

/// A range-slice is justified by a comment containing "bounds" on the
/// same line or within the two lines above (e.g. `// bounds: header
/// length validated by the checksum above`).
fn slice_justified(f: &SourceFile, idx: usize) -> bool {
    let lo = idx.saturating_sub(2);
    f.lines[lo..=idx]
        .iter()
        .any(|l| l.comment.to_ascii_lowercase().contains("bounds"))
}

// ---------------------------------------------------------------------
// Rule 2: fault-path discipline
// ---------------------------------------------------------------------

/// Constructors that bypass the fault-injection layer. Runtime code above
/// the I/O crates must obtain its disk and log through the fault-aware
/// environment (`FaultDisk::fresh`/`over`, `StableLog::with_injector`, or
/// `DatabaseEnv`), so every I/O is visible to the shared injector and the
/// crash-point sweep covers it.
const RAW_IO_CONSTRUCTORS: &[&str] = &[
    "MemDisk::new",
    "MemDisk::default",
    "StableLog::new",
    "StableLog::default",
];

/// Denies direct `MemDisk`/`StableLog` construction in non-test runtime
/// code outside `crates/pagestore/` and `crates/wal/` (the crates that
/// define them and their fault-aware wrappers).
pub fn check_raw_io_construction(files: &[SourceFile]) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in files {
        if f.rel.starts_with("crates/pagestore/") || f.rel.starts_with("crates/wal/") {
            continue;
        }
        for (i, line) in f.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            for ctor in RAW_IO_CONSTRUCTORS {
                if line.code.contains(ctor) {
                    out.push(Violation::new(
                        "raw-io",
                        &f.rel,
                        i + 1,
                        format!(
                            "`{ctor}` bypasses the fault-injection layer — construct the \
                             disk/log through `DatabaseEnv` or the fault-aware wrappers"
                        ),
                    ));
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Rule 3: unsafe audit
// ---------------------------------------------------------------------

/// Every `unsafe` token must live in an allowlisted module and carry a
/// `// SAFETY:` comment on the same line or within three lines above.
pub fn check_unsafe(files: &[SourceFile], allow: &Allowlist) -> Vec<Violation> {
    let mut out = Vec::new();
    let allowed: HashSet<&str> = allow
        .unsafe_modules
        .iter()
        .map(|e| e.path.as_str())
        .collect();
    let mut used: HashSet<String> = HashSet::new();
    for f in files {
        for (i, line) in f.lines.iter().enumerate() {
            if !has_word(&line.code, "unsafe") {
                continue;
            }
            used.insert(f.rel.clone());
            if !allowed.contains(f.rel.as_str()) {
                out.push(Violation::new(
                    "unsafe",
                    &f.rel,
                    i + 1,
                    "`unsafe` outside the allowlisted modules in allow.toml".to_string(),
                ));
            }
            let lo = i.saturating_sub(3);
            let justified = f.lines[lo..=i]
                .iter()
                .any(|l| l.comment.contains("SAFETY:"));
            if !justified {
                out.push(Violation::new(
                    "unsafe",
                    &f.rel,
                    i + 1,
                    "`unsafe` without a `// SAFETY:` comment".to_string(),
                ));
            }
        }
    }
    for e in &allow.unsafe_modules {
        if !used.contains(&e.path) {
            out.push(Violation::new(
                "unsafe-allowlist",
                "crates/xtask/allow.toml",
                e.line,
                format!(
                    "stale entry: {} contains no unsafe code — remove it",
                    e.path
                ),
            ));
        }
    }
    out
}

fn has_word(code: &str, word: &str) -> bool {
    let b = code.as_bytes();
    let mut start = 0;
    while let Some(p) = code[start..].find(word) {
        let at = start + p;
        let before_ok = at == 0 || {
            let c = b[at - 1] as char;
            !(c.is_alphanumeric() || c == '_')
        };
        let after = at + word.len();
        let after_ok = after >= b.len() || {
            let c = b[after] as char;
            !(c.is_alphanumeric() || c == '_')
        };
        if before_ok && after_ok {
            return true;
        }
        start = at + word.len();
    }
    false
}

// ---------------------------------------------------------------------
// Rule 6: deterministic time
// ---------------------------------------------------------------------

/// Wall-clock tokens denied in non-test runtime code (word-boundary
/// matched, so e.g. "Instantiates" in prose does not trip it — though
/// comments are stripped before scanning anyway). The observability
/// layer is clock-free by design: a metric snapshot must be a pure
/// function of the workload, and recovery must not branch on real time.
/// Wall-clock timing belongs to the bench harness (`crates/bench`),
/// which is not a runtime crate and is not scanned.
const WALLCLOCK_TOKENS: &[&str] = &["Instant", "SystemTime"];

/// Scans runtime-crate sources for wall-clock tokens and reconciles the
/// hits against the `[[wallclock]]` allowlist with the same ratchet
/// contract as the panic rule: uncovered hits are violations, and so
/// are entries whose recorded count no longer matches the source.
pub fn check_wallclock(files: &[SourceFile], allow: &Allowlist) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut hits: HashMap<String, Vec<usize>> = HashMap::new();
    for f in files {
        for (i, line) in f.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            for tok in WALLCLOCK_TOKENS {
                if has_word(&line.code, tok) {
                    hits.entry(f.rel.clone()).or_default().push(i + 1);
                }
            }
        }
    }
    let mut allowed: HashMap<String, usize> = HashMap::new();
    for e in &allow.wallclock {
        if e.reason.trim().is_empty() {
            out.push(Violation::new(
                "wallclock-allowlist",
                "crates/xtask/allow.toml",
                e.line,
                format!("entry for {} has no justification", e.path),
            ));
        }
        *allowed.entry(e.path.clone()).or_default() += e.count;
    }
    let mut keys: Vec<_> = hits.keys().cloned().collect();
    keys.sort();
    for key in keys {
        let lines = &hits[&key];
        let allow_n = allowed.remove(&key).unwrap_or(0);
        if lines.len() > allow_n {
            for l in lines.iter().skip(allow_n) {
                out.push(Violation::new(
                    "wallclock",
                    &key,
                    *l,
                    format!(
                        "wall-clock type in non-test runtime code (allowlisted: {allow_n}, \
                         found: {}) — deterministic paths must not read real time; \
                         timing belongs in crates/bench",
                        lines.len()
                    ),
                ));
            }
        } else if lines.len() < allow_n {
            out.push(Violation::new(
                "wallclock-allowlist",
                "crates/xtask/allow.toml",
                0,
                format!(
                    "stale entry: {key} allows {allow_n} but source has {} — shrink the allowlist",
                    lines.len()
                ),
            ));
        }
    }
    for (path, n) in allowed {
        out.push(Violation::new(
            "wallclock-allowlist",
            "crates/xtask/allow.toml",
            0,
            format!("stale entry: {path} allows {n} but source has 0 — remove it"),
        ));
    }
    out
}

// ---------------------------------------------------------------------
// Rule 7: registered metrics (no ad-hoc atomic statics)
// ---------------------------------------------------------------------

/// Denies `static` items holding atomics in non-test runtime code.
/// Observability state must live in the per-database `MetricsRegistry`
/// (`crates/types/src/obs.rs`, the one exempt module): a process-global
/// counter aliases state across concurrently open databases and makes
/// snapshots depend on unrelated instances.
pub fn check_metric_statics(files: &[SourceFile]) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in files {
        if f.rel == "crates/types/src/obs.rs" {
            continue;
        }
        for (i, line) in f.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            if has_word(&line.code, "static") && line.code.contains("Atomic") {
                out.push(Violation::new(
                    "metric-static",
                    &f.rel,
                    i + 1,
                    "`static` atomic in runtime code — register a counter on the \
                     per-database `MetricsRegistry` instead of a process-global"
                        .to_string(),
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Rule 4: layering
// ---------------------------------------------------------------------

/// Verifies the dependency DAG from each crate's `Cargo.toml` and the
/// std-only constraint (no external crates anywhere in runtime crates,
/// dev-dependencies included — the workspace must resolve offline).
pub fn check_layering(root: &Path) -> Vec<Violation> {
    let mut out = Vec::new();
    for (krate, allowed) in LAYERING {
        let rel = format!("crates/{krate}/Cargo.toml");
        let path = root.join(&rel);
        if !path.exists() {
            continue;
        }
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                out.push(Violation::new(
                    "layering",
                    &rel,
                    0,
                    format!("unreadable: {e}"),
                ));
                continue;
            }
        };
        let allowed: HashSet<&str> = allowed.iter().copied().collect();
        let mut section = String::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.starts_with('[') {
                section = line.to_string();
                continue;
            }
            let dep_section = matches!(
                section.as_str(),
                "[dependencies]" | "[dev-dependencies]" | "[build-dependencies]"
            );
            if !dep_section || line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some((name, _)) = line.split_once('=') else {
                continue;
            };
            // `dmx-types.workspace = true` — the dep name is the part
            // before the first dot.
            let name = name.trim().trim_matches('"');
            let name = name.split('.').next().unwrap_or(name);
            if let Some(dep) = name.strip_prefix("dmx-") {
                let _ = dep;
                if section == "[dependencies]" && !allowed.contains(name) {
                    out.push(Violation::new(
                        "layering",
                        &rel,
                        i + 1,
                        format!(
                            "crate `{krate}` must not depend on `{name}` (layering DAG: {})",
                            if allowed.is_empty() {
                                "no workspace deps".to_string()
                            } else {
                                let mut v: Vec<_> = allowed.iter().copied().collect();
                                v.sort();
                                v.join(", ")
                            }
                        ),
                    ));
                }
            } else {
                out.push(Violation::new(
                    "layering",
                    &rel,
                    i + 1,
                    format!(
                        "external dependency `{name}` in runtime crate `{krate}` — the \
                         workspace is std-only (put tooling deps in the excluded bench crate)"
                    ),
                ));
            }
        }
    }
    out
}

/// Extension crates must reach the kernel only through the generic trait
/// surface re-exported at `dmx_core::` root — naming `dmx_core::database::`
/// or `dmx_core::catalog::` module paths is a contract violation.
pub fn check_private_paths(files: &[SourceFile]) -> Vec<Violation> {
    const DENIED: &[&str] = &["dmx_core::database::", "dmx_core::catalog::"];
    let mut out = Vec::new();
    for f in files {
        if !(f.rel.starts_with("crates/storage/") || f.rel.starts_with("crates/attach/")) {
            continue;
        }
        for (i, line) in f.lines.iter().enumerate() {
            for d in DENIED {
                if line.code.contains(d) {
                    out.push(Violation::new(
                        "private-path",
                        &f.rel,
                        i + 1,
                        format!(
                            "extension crate names kernel-internal path `{d}` — use the \
                             generic interface re-exports at `dmx_core::` root"
                        ),
                    ));
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Rule 5: extension-contract conformance
// ---------------------------------------------------------------------

/// Methods every registered storage method must implement — the full
/// generic operation set including cost estimation (`estimate`).
pub const STORAGE_OPS: &[&str] = &[
    "name",
    "validate_params",
    "create_instance",
    "destroy_instance",
    "insert",
    "update",
    "delete",
    "fetch",
    "open_scan",
    "estimate",
    "undo",
];

/// Methods every registered attachment must implement — including the
/// veto-capable side-effect entry points (`on_insert`/`on_update`/
/// `on_delete`) and undo.
pub const ATTACH_OPS: &[&str] = &[
    "name",
    "validate_params",
    "create_instance",
    "destroy_instance",
    "on_insert",
    "on_update",
    "on_delete",
    "undo",
];

/// Checks that every type registered in the extension crate's `lib.rs`
/// has a trait impl carrying the complete operation set.
pub fn check_contracts(files: &[SourceFile]) -> Vec<Violation> {
    let mut out = Vec::new();
    out.extend(check_contract_side(
        files,
        "crates/storage/src/lib.rs",
        "register_storage_method",
        "StorageMethod",
        STORAGE_OPS,
    ));
    out.extend(check_contract_side(
        files,
        "crates/attach/src/lib.rs",
        "register_attachment",
        "Attachment",
        ATTACH_OPS,
    ));
    out
}

fn check_contract_side(
    files: &[SourceFile],
    lib_rel: &str,
    register_fn: &str,
    trait_name: &str,
    required: &[&str],
) -> Vec<Violation> {
    let mut out = Vec::new();
    let Some(lib) = files.iter().find(|f| f.rel == lib_rel) else {
        return out; // crate absent (fixture trees)
    };
    // 1. collect registered type names from `register_x(Arc::new(Type...))`
    let mut registered: Vec<(String, usize)> = Vec::new();
    for (i, line) in lib.lines.iter().enumerate() {
        let code = &line.code;
        let Some(p) = code.find(register_fn) else {
            continue;
        };
        let rest = &code[p..];
        let Some(a) = rest.find("Arc::new(") else {
            continue;
        };
        let ident: String = rest[a + "Arc::new(".len()..]
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if !ident.is_empty() {
            registered.push((ident, i + 1));
        }
    }
    // 2. for each, find the trait impl anywhere in the crate and collect
    //    its top-level fn names by brace matching.
    let crate_prefix = lib_rel.trim_end_matches("lib.rs");
    for (ty, reg_line) in registered {
        let mut found_impl = false;
        for f in files.iter().filter(|f| f.rel.starts_with(crate_prefix)) {
            let Some(fns) = impl_fns(f, trait_name, &ty) else {
                continue;
            };
            found_impl = true;
            let missing: Vec<&str> = required
                .iter()
                .copied()
                .filter(|m| !fns.contains(&m.to_string()))
                .collect();
            if !missing.is_empty() {
                out.push(Violation::new(
                    "contract",
                    &f.rel,
                    0,
                    format!(
                        "`impl {trait_name} for {ty}` is missing generic operations: {}",
                        missing.join(", ")
                    ),
                ));
            }
        }
        if !found_impl {
            out.push(Violation::new(
                "contract",
                lib_rel,
                reg_line,
                format!("registered type `{ty}` has no `impl {trait_name} for {ty}` in the crate"),
            ));
        }
    }
    out
}

/// Top-level `fn` names inside `impl <Trait> for <Ty>`, or `None` when
/// the file has no such impl.
fn impl_fns(f: &SourceFile, trait_name: &str, ty: &str) -> Option<Vec<String>> {
    // Find the impl header line; tolerate generics on the trait.
    let mut start = None;
    'outer: for (i, line) in f.lines.iter().enumerate() {
        let code = &line.code;
        let Some(p) = code.find("impl") else { continue };
        let rest = &code[p..];
        if rest.contains(trait_name) && rest.contains(" for ") {
            // exact type-name match after `for`
            if let Some(fp) = rest.find(" for ") {
                let after: String = rest[fp + 5..]
                    .trim_start()
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                if after == ty {
                    start = Some(i);
                    break 'outer;
                }
            }
        }
    }
    let start = start?;
    let mut fns = Vec::new();
    let mut depth = 0i32;
    let mut entered = false;
    for line in &f.lines[start..] {
        let code = &line.code;
        if entered && depth == 1 {
            // top level of the impl body: collect `fn name`
            let mut rest = code.as_str();
            while let Some(p) = rest.find("fn ") {
                let word_ok = p == 0 || {
                    let c = rest.as_bytes()[p - 1] as char;
                    !(c.is_alphanumeric() || c == '_')
                };
                if word_ok {
                    let name: String = rest[p + 3..]
                        .chars()
                        .take_while(|c| c.is_alphanumeric() || *c == '_')
                        .collect();
                    if !name.is_empty() {
                        fns.push(name);
                    }
                }
                rest = &rest[p + 3..];
            }
        }
        for c in code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    entered = true;
                }
                '}' => {
                    depth -= 1;
                    if entered && depth == 0 {
                        return Some(fns);
                    }
                }
                _ => {}
            }
        }
    }
    Some(fns)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sf(rel: &str, src: &str) -> SourceFile {
        let dir = std::env::temp_dir().join(format!(
            "xtask-test-{}-{}",
            std::process::id(),
            rel.replace('/', "_")
        ));
        std::fs::write(&dir, src).expect("write temp");
        let f = SourceFile::load(&dir, rel.to_string()).expect("load");
        let _ = std::fs::remove_file(&dir);
        f
    }

    #[test]
    fn panic_tokens_found_outside_tests_only() {
        let f = sf(
            "crates/wal/src/log.rs",
            "fn a() { x.unwrap(); }\n#[cfg(test)]\nmod t { fn b() { y.unwrap(); } }\n",
        );
        let v = check_panics(&[f], &Allowlist::default());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn slice_needs_bounds_comment() {
        let with = sf(
            "crates/wal/src/a.rs",
            "// bounds: header checked above\nlet y = &buf[4..8];\n",
        );
        let without = sf("crates/wal/src/b.rs", "let y = &buf[4..8];\n");
        assert!(check_panics(&[with], &Allowlist::default()).is_empty());
        let v = check_panics(&[without], &Allowlist::default());
        assert_eq!(v.len(), 1);
        assert!(v[0].msg.contains("slice-index"));
    }

    #[test]
    fn array_types_and_attrs_are_not_slices() {
        let f = sf(
            "crates/wal/src/c.rs",
            "let a: [u8; 4] = [0; 4];\n#[cfg(feature = \"x\")]\nlet m = map[key];\n",
        );
        assert!(check_panics(&[f], &Allowlist::default()).is_empty());
    }

    #[test]
    fn raw_io_construction_denied_outside_io_crates() {
        let core = sf(
            "crates/core/src/services.rs",
            "fn mk() { let d = MemDisk::new(); }\n#[cfg(test)]\nmod t { fn b() { let l = StableLog::new(); } }\n",
        );
        let v = check_raw_io_construction(&[core]);
        assert_eq!(v.len(), 1, "only the non-test hit: {v:?}");
        assert_eq!(v[0].line, 1);
        assert!(v[0].msg.contains("MemDisk::new"));

        let wal = sf(
            "crates/wal/src/log.rs",
            "fn mk() { let l = StableLog::new(); }\n",
        );
        assert!(check_raw_io_construction(&[wal]).is_empty());
    }

    #[test]
    fn unsafe_requires_safety_and_allowlisting() {
        let f = sf("crates/pagestore/src/raw.rs", "unsafe { do_it() }\n");
        let v = check_unsafe(&[f], &Allowlist::default());
        assert_eq!(v.len(), 2, "both unallowlisted and uncommented: {v:?}");
    }

    #[test]
    fn wallclock_denied_outside_tests_with_word_boundaries() {
        let f = sf(
            "crates/core/src/database.rs",
            "fn now() { let t = std::time::Instant::now(); }\n\
             /// Instantiates a plan subtree.\n\
             fn mk() { let s = SystemTime::now(); }\n\
             #[cfg(test)]\nmod t { use std::time::Instant; }\n",
        );
        let v = check_wallclock(&[f], &Allowlist::default());
        // line 1 (Instant) and line 3 (SystemTime); the doc comment and
        // the test module are exempt.
        assert_eq!(v.len(), 2, "{v:?}");
        assert_eq!(v[0].line, 1);
        assert_eq!(v[1].line, 3);
    }

    #[test]
    fn wallclock_allowlist_covers_and_ratchets() {
        let f = sf(
            "crates/lock/src/manager.rs",
            "fn a() { let t = Instant::now(); }\n",
        );
        let mut allow = Allowlist::default();
        allow.wallclock.push(crate::allowlist::WallclockAllow {
            path: "crates/lock/src/manager.rs".into(),
            count: 1,
            reason: "timeout".into(),
            line: 1,
        });
        assert!(check_wallclock(std::slice::from_ref(&f), &allow).is_empty());
        // An over-counted entry is stale and fails the ratchet.
        allow.wallclock[0].count = 2;
        let v = check_wallclock(&[f], &allow);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].msg.contains("shrink"));
    }

    #[test]
    fn metric_statics_denied_outside_obs() {
        let bad = sf(
            "crates/wal/src/log.rs",
            "static APPENDS: AtomicU64 = AtomicU64::new(0);\n",
        );
        let v = check_metric_statics(&[bad]);
        assert_eq!(v.len(), 1, "{v:?}");
        // Atomics as struct fields (no `static`) and the obs module
        // itself are both fine.
        let field = sf("crates/wal/src/log.rs", "appends: AtomicU64,\n");
        let obs = sf(
            "crates/types/src/obs.rs",
            "static FALLBACK: AtomicU64 = AtomicU64::new(0);\n",
        );
        assert!(check_metric_statics(&[field, obs]).is_empty());
    }

    #[test]
    fn obs_extension_code_paths_stay_rule7_clean() {
        // The observability surface keeps all state per database: the
        // EXPLAIN ANALYZE profile holds its counters as struct fields
        // and the system storage method only reads the registry. Both
        // shapes must pass; a static atomic in either file must not.
        let profile = sf(
            "crates/query/src/exec.rs",
            "pub struct PlanProfile {\n    counters: Vec<AtomicU64>,\n}\n",
        );
        let sysrel = sf(
            "crates/storage/src/system.rs",
            "fn materialize() { let m = db.metrics().snapshot(); }\n",
        );
        assert!(check_metric_statics(&[profile, sysrel]).is_empty());
        let bad = sf(
            "crates/storage/src/system.rs",
            "static SCANS: AtomicU64 = AtomicU64::new(0);\n",
        );
        let v = check_metric_statics(&[bad]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].msg.contains("MetricsRegistry"));
    }
}
