//! The checked-in violation allowlist (`crates/xtask/allow.toml`).
//!
//! The file is a deliberately small TOML subset (array-of-tables with
//! string/integer scalar keys) parsed by hand so the analyzer itself
//! stays dependency-free. The contract is ratchet-shaped: every entry
//! must carry a justification, the recorded count must match the source
//! exactly (an entry larger than reality is stale and fails the pass),
//! and new panic sites fail the pass because nothing adds entries
//! automatically.

use std::fs;
use std::path::Path;

/// One `[[panic]]` entry: `count` tolerated occurrences of `token` in
/// `path`, with a mandatory human justification.
#[derive(Debug, Clone)]
pub struct PanicAllow {
    pub path: String,
    pub token: String,
    pub count: usize,
    pub reason: String,
    /// Line in allow.toml (for error messages).
    pub line: usize,
}

/// One `[[unsafe-module]]` entry: a module allowed to contain `unsafe`
/// blocks (each block still needs its own `// SAFETY:` comment).
#[derive(Debug, Clone)]
pub struct UnsafeAllow {
    pub path: String,
    pub reason: String,
    pub line: usize,
}

/// One `[[wallclock]]` entry: `count` tolerated wall-clock tokens
/// (`Instant`/`SystemTime`) in `path`, with a justification. Same
/// ratchet contract as `[[panic]]`.
#[derive(Debug, Clone)]
pub struct WallclockAllow {
    pub path: String,
    pub count: usize,
    pub reason: String,
    pub line: usize,
}

/// Parsed allowlist.
#[derive(Debug, Default)]
pub struct Allowlist {
    pub panics: Vec<PanicAllow>,
    pub unsafe_modules: Vec<UnsafeAllow>,
    pub wallclock: Vec<WallclockAllow>,
}

impl Allowlist {
    /// Loads `path`; a missing file is an empty allowlist.
    pub fn load(path: &Path) -> Result<Allowlist, String> {
        if !path.exists() {
            return Ok(Allowlist::default());
        }
        let text =
            fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }
}

enum Section {
    None,
    Panic,
    UnsafeModule,
    Wallclock,
}

fn parse(text: &str) -> Result<Allowlist, String> {
    let mut out = Allowlist::default();
    let mut section = Section::None;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match line {
            "[[panic]]" => {
                section = Section::Panic;
                out.panics.push(PanicAllow {
                    path: String::new(),
                    token: String::new(),
                    count: 0,
                    reason: String::new(),
                    line: lineno,
                });
                continue;
            }
            "[[unsafe-module]]" => {
                section = Section::UnsafeModule;
                out.unsafe_modules.push(UnsafeAllow {
                    path: String::new(),
                    reason: String::new(),
                    line: lineno,
                });
                continue;
            }
            "[[wallclock]]" => {
                section = Section::Wallclock;
                out.wallclock.push(WallclockAllow {
                    path: String::new(),
                    count: 0,
                    reason: String::new(),
                    line: lineno,
                });
                continue;
            }
            _ => {}
        }
        if line.starts_with('[') {
            return Err(format!("line {lineno}: unknown section {line}"));
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("line {lineno}: expected key = value"))?;
        let key = key.trim();
        let value = value.trim();
        match section {
            Section::Panic => {
                let entry = out
                    .panics
                    .last_mut()
                    .ok_or_else(|| format!("line {lineno}: key outside [[panic]]"))?;
                match key {
                    "path" => entry.path = unquote(value, lineno)?,
                    "token" => entry.token = unquote(value, lineno)?,
                    "count" => {
                        entry.count = value
                            .parse()
                            .map_err(|_| format!("line {lineno}: bad count {value}"))?
                    }
                    "reason" => entry.reason = unquote(value, lineno)?,
                    _ => return Err(format!("line {lineno}: unknown key {key}")),
                }
            }
            Section::UnsafeModule => {
                let entry = out
                    .unsafe_modules
                    .last_mut()
                    .ok_or_else(|| format!("line {lineno}: key outside [[unsafe-module]]"))?;
                match key {
                    "path" => entry.path = unquote(value, lineno)?,
                    "reason" => entry.reason = unquote(value, lineno)?,
                    _ => return Err(format!("line {lineno}: unknown key {key}")),
                }
            }
            Section::Wallclock => {
                let entry = out
                    .wallclock
                    .last_mut()
                    .ok_or_else(|| format!("line {lineno}: key outside [[wallclock]]"))?;
                match key {
                    "path" => entry.path = unquote(value, lineno)?,
                    "count" => {
                        entry.count = value
                            .parse()
                            .map_err(|_| format!("line {lineno}: bad count {value}"))?
                    }
                    "reason" => entry.reason = unquote(value, lineno)?,
                    _ => return Err(format!("line {lineno}: unknown key {key}")),
                }
            }
            Section::None => {
                return Err(format!("line {lineno}: key before any [[section]]"));
            }
        }
    }
    for e in &out.panics {
        if e.path.is_empty() || e.token.is_empty() || e.count == 0 {
            return Err(format!(
                "line {}: [[panic]] entry needs path, token and count >= 1",
                e.line
            ));
        }
    }
    for e in &out.unsafe_modules {
        if e.path.is_empty() {
            return Err(format!(
                "line {}: [[unsafe-module]] entry needs path",
                e.line
            ));
        }
    }
    for e in &out.wallclock {
        if e.path.is_empty() || e.count == 0 {
            return Err(format!(
                "line {}: [[wallclock]] entry needs path and count >= 1",
                e.line
            ));
        }
    }
    Ok(out)
}

fn unquote(v: &str, lineno: usize) -> Result<String, String> {
    let v = v.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Ok(v[1..v.len() - 1].to_string())
    } else {
        Err(format!("line {lineno}: expected quoted string, got {v}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_both_sections() {
        let text = r##"
# header comment
[[panic]]
path = "crates/a/src/x.rs"
token = "unwrap"
count = 3
reason = "legacy decode path"

[[unsafe-module]]
path = "crates/b/src/raw.rs"
reason = "page aliasing"
"##;
        let a = parse(text).expect("parses");
        assert_eq!(a.panics.len(), 1);
        assert_eq!(a.panics[0].count, 3);
        assert_eq!(a.unsafe_modules[0].path, "crates/b/src/raw.rs");
    }

    #[test]
    fn rejects_incomplete_entries() {
        assert!(parse("[[panic]]\npath = \"x\"\n").is_err());
        assert!(parse("[[unsafe-module]]\nreason = \"r\"\n").is_err());
        assert!(parse("stray = \"v\"\n").is_err());
        assert!(parse("[panic]\n").is_err());
    }
}
