//! Lexical source model.
//!
//! The verify pass works on a line-oriented view of each source file in
//! which comment text and string-literal contents have been separated
//! from code, and `#[cfg(test)]` regions are marked. This is a lexer,
//! not a parser: it understands line/block comments (nested), plain and
//! raw string literals, and char literals — enough to scan for tokens
//! without false positives from prose or test fixtures embedded in
//! strings.

use std::fs;
use std::path::{Path, PathBuf};

/// One analysed line.
pub struct Line {
    /// Code with comments removed and string-literal contents blanked
    /// (the delimiting quotes remain, so tokens never straddle them).
    pub code: String,
    /// Concatenated comment text on this line (for `SAFETY:` / `bounds`
    /// justification checks).
    pub comment: String,
    /// True when the line sits inside a `#[cfg(test)]` item.
    pub in_test: bool,
}

/// An analysed source file.
pub struct SourceFile {
    /// Path relative to the verify root, with `/` separators.
    pub rel: String,
    pub lines: Vec<Line>,
}

impl SourceFile {
    /// Loads and lexes `path`, recording it under the relative name `rel`.
    pub fn load(path: &Path, rel: String) -> Result<SourceFile, String> {
        let text =
            fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Ok(SourceFile {
            rel,
            lines: lex(&text),
        })
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Code,
    Block(u32),  // nested block comment depth
    Str,         // inside "..."
    RawStr(u32), // inside r#"..."# with N hashes
}

/// Splits source text into per-line code/comment channels.
fn lex(text: &str) -> Vec<Line> {
    let mut out = Vec::new();
    let mut mode = Mode::Code;
    for raw in text.lines() {
        let mut code = String::with_capacity(raw.len());
        let mut comment = String::new();
        let chars: Vec<char> = raw.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            let next = chars.get(i + 1).copied();
            match mode {
                Mode::Code => {
                    if c == '/' && next == Some('/') {
                        comment.push_str(&raw[raw.char_indices().nth(i).map_or(0, |(b, _)| b)..]);
                        break;
                    } else if c == '/' && next == Some('*') {
                        mode = Mode::Block(1);
                        i += 2;
                        continue;
                    } else if c == '"' {
                        code.push('"');
                        mode = Mode::Str;
                    } else if c == 'r' && (next == Some('"') || next == Some('#')) {
                        // raw string r"..." or r#"..."#
                        let mut hashes = 0;
                        let mut j = i + 1;
                        while chars.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        if chars.get(j) == Some(&'"') {
                            code.push('"');
                            mode = Mode::RawStr(hashes);
                            i = j + 1;
                            continue;
                        }
                        code.push(c);
                    } else if c == '\'' {
                        // char literal or lifetime; consume conservatively:
                        // 'x' or '\x' forms, otherwise treat as lifetime tick
                        if next == Some('\\') && chars.get(i + 3) == Some(&'\'') {
                            code.push_str("' '");
                            i += 4;
                            continue;
                        }
                        if chars.get(i + 2) == Some(&'\'') && next != Some('\'') {
                            code.push_str("' '");
                            i += 3;
                            continue;
                        }
                        code.push('\'');
                    } else {
                        code.push(c);
                    }
                }
                Mode::Block(d) => {
                    if c == '*' && next == Some('/') {
                        mode = if d == 1 {
                            Mode::Code
                        } else {
                            Mode::Block(d - 1)
                        };
                        i += 2;
                        continue;
                    } else if c == '/' && next == Some('*') {
                        mode = Mode::Block(d + 1);
                        i += 2;
                        continue;
                    }
                    comment.push(c);
                }
                Mode::Str => {
                    if c == '\\' {
                        i += 2;
                        continue;
                    }
                    if c == '"' {
                        code.push('"');
                        mode = Mode::Code;
                    }
                }
                Mode::RawStr(h) => {
                    if c == '"' {
                        let mut ok = true;
                        for k in 0..h {
                            if chars.get(i + 1 + k as usize) != Some(&'#') {
                                ok = false;
                                break;
                            }
                        }
                        if ok {
                            code.push('"');
                            mode = Mode::Code;
                            i += 1 + h as usize;
                            continue;
                        }
                    }
                }
            }
            i += 1;
        }
        // A string literal may legally span lines; block comments too.
        out.push(Line {
            code,
            comment,
            in_test: false,
        });
    }
    mark_test_regions(&mut out);
    out
}

/// Marks lines belonging to `#[cfg(test)]` items by brace matching.
fn mark_test_regions(lines: &mut [Line]) {
    let mut pending = false; // saw #[cfg(test)], waiting for the item body
    let mut depth = 0u32; // >0 while inside a test item
    for line in lines.iter_mut() {
        let code = line.code.clone();
        if depth > 0 {
            line.in_test = true;
        }
        for (i, c) in code.char_indices() {
            if depth == 0 && !pending && code[i..].starts_with("#[cfg(test)]") {
                pending = true;
            }
            match c {
                '{' => {
                    if pending {
                        pending = false;
                        depth = 1;
                        line.in_test = true;
                    } else if depth > 0 {
                        depth += 1;
                    }
                }
                '}' => {
                    if depth > 0 {
                        depth -= 1;
                    }
                }
                ';' => {
                    // `#[cfg(test)] use x;` — attribute on a braceless item
                    if pending {
                        pending = false;
                        line.in_test = true;
                    }
                }
                _ => {}
            }
        }
        if pending {
            line.in_test = true;
        }
    }
}

/// Recursively collects `.rs` files under `dir`, returning (abs, rel)
/// pairs with `rel` relative to `root`.
pub fn rust_files(root: &Path, dir: &Path) -> Result<Vec<(PathBuf, String)>, String> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let entries = fs::read_dir(&d).map_err(|e| format!("cannot list {}: {e}", d.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("read_dir entry: {e}"))?;
            let p = entry.path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                let rel = p
                    .strip_prefix(root)
                    .map_err(|_| format!("{} outside root", p.display()))?
                    .to_string_lossy()
                    .replace('\\', "/");
                out.push((p, rel));
            }
        }
    }
    out.sort();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_separated() {
        let lines = lex("let x = \"unwrap()\"; // call unwrap() here\nlet y = 1; /* panic! */");
        assert!(!lines[0].code.contains("unwrap"));
        assert!(lines[0].comment.contains("unwrap"));
        assert!(!lines[1].code.contains("panic"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let lines = lex("let f = r#\"x.unwrap()\"#;");
        assert!(!lines[0].code.contains("unwrap"));
    }

    #[test]
    fn nested_block_comments() {
        let lines = lex("/* a /* b */ still comment */ let z = 3;");
        assert!(lines[0].code.contains("let z"));
        assert!(!lines[0].code.contains('a'));
    }

    #[test]
    fn test_regions_marked() {
        let src =
            "fn real() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\nfn more() {}\n";
        let lines = lex(src);
        assert!(!lines[0].in_test);
        assert!(lines[1].in_test);
        assert!(lines[3].in_test);
        assert!(!lines[5].in_test);
    }

    #[test]
    fn braceless_cfg_test_item_does_not_latch() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn real() { x { } }\n";
        let lines = lex(src);
        assert!(lines[1].in_test);
        assert!(!lines[2].in_test);
    }

    #[test]
    fn lifetimes_do_not_open_char_literals() {
        let lines = lex("fn f<'a>(x: &'a str) { x.unwrap(); }");
        assert!(lines[0].code.contains("unwrap"));
    }
}
