//! Lexical source model and item extractor.
//!
//! The verify pass works on a line-oriented view of each source file in
//! which comment text and string-literal contents have been separated
//! from code, and `#[cfg(test)]` regions are marked. This is a lexer,
//! not a parser: it understands line/block comments (nested), plain and
//! raw string literals, and char literals — enough to scan for tokens
//! without false positives from prose or test fixtures embedded in
//! strings.
//!
//! On top of the lexical view, [`extract_functions`] recovers the item
//! structure the interprocedural effect analysis needs: `impl` blocks,
//! the functions they contain, and every call site inside a function
//! body — with enough position information (argument-close offsets) to
//! order call completions the way expression evaluation does, which is
//! what the write-ahead rule reasons about.

use std::fs;
use std::path::{Path, PathBuf};

/// One analysed line.
pub struct Line {
    /// Code with comments removed and string-literal contents blanked
    /// (the delimiting quotes remain, so tokens never straddle them).
    pub code: String,
    /// Concatenated comment text on this line (for `SAFETY:` / `bounds`
    /// justification checks).
    pub comment: String,
    /// True when the line sits inside a `#[cfg(test)]` item.
    pub in_test: bool,
}

/// An analysed source file.
pub struct SourceFile {
    /// Path relative to the verify root, with `/` separators.
    pub rel: String,
    pub lines: Vec<Line>,
}

impl SourceFile {
    /// Loads and lexes `path`, recording it under the relative name `rel`.
    pub fn load(path: &Path, rel: String) -> Result<SourceFile, String> {
        let text =
            fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Ok(SourceFile {
            rel,
            lines: lex(&text),
        })
    }
}

/// Test-only access to the lexer for sibling-module unit tests.
#[cfg(test)]
pub(crate) fn lex_for_tests(text: &str) -> Vec<Line> {
    lex(text)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Code,
    Block(u32),  // nested block comment depth
    Str,         // inside "..."
    RawStr(u32), // inside r#"..."# with N hashes
}

/// Splits source text into per-line code/comment channels.
fn lex(text: &str) -> Vec<Line> {
    let mut out = Vec::new();
    let mut mode = Mode::Code;
    for raw in text.lines() {
        let mut code = String::with_capacity(raw.len());
        let mut comment = String::new();
        let chars: Vec<char> = raw.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            let next = chars.get(i + 1).copied();
            match mode {
                Mode::Code => {
                    if c == '/' && next == Some('/') {
                        comment.push_str(&raw[raw.char_indices().nth(i).map_or(0, |(b, _)| b)..]);
                        break;
                    } else if c == '/' && next == Some('*') {
                        mode = Mode::Block(1);
                        i += 2;
                        continue;
                    } else if c == '"' {
                        code.push('"');
                        mode = Mode::Str;
                    } else if c == 'r' && (next == Some('"') || next == Some('#')) {
                        // raw string r"..." or r#"..."#
                        let mut hashes = 0;
                        let mut j = i + 1;
                        while chars.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        if chars.get(j) == Some(&'"') {
                            code.push('"');
                            mode = Mode::RawStr(hashes);
                            i = j + 1;
                            continue;
                        }
                        code.push(c);
                    } else if c == '\'' {
                        // char literal or lifetime; consume conservatively:
                        // 'x' or '\x' forms, otherwise treat as lifetime tick
                        if next == Some('\\') && chars.get(i + 3) == Some(&'\'') {
                            code.push_str("' '");
                            i += 4;
                            continue;
                        }
                        if chars.get(i + 2) == Some(&'\'') && next != Some('\'') {
                            code.push_str("' '");
                            i += 3;
                            continue;
                        }
                        code.push('\'');
                    } else {
                        code.push(c);
                    }
                }
                Mode::Block(d) => {
                    if c == '*' && next == Some('/') {
                        mode = if d == 1 {
                            Mode::Code
                        } else {
                            Mode::Block(d - 1)
                        };
                        i += 2;
                        continue;
                    } else if c == '/' && next == Some('*') {
                        mode = Mode::Block(d + 1);
                        i += 2;
                        continue;
                    }
                    comment.push(c);
                }
                Mode::Str => {
                    if c == '\\' {
                        i += 2;
                        continue;
                    }
                    if c == '"' {
                        code.push('"');
                        mode = Mode::Code;
                    }
                }
                Mode::RawStr(h) => {
                    if c == '"' {
                        let mut ok = true;
                        for k in 0..h {
                            if chars.get(i + 1 + k as usize) != Some(&'#') {
                                ok = false;
                                break;
                            }
                        }
                        if ok {
                            code.push('"');
                            mode = Mode::Code;
                            i += 1 + h as usize;
                            continue;
                        }
                    }
                }
            }
            i += 1;
        }
        // A string literal may legally span lines; block comments too.
        out.push(Line {
            code,
            comment,
            in_test: false,
        });
    }
    mark_test_regions(&mut out);
    out
}

/// Marks lines belonging to `#[cfg(test)]` items by brace matching.
fn mark_test_regions(lines: &mut [Line]) {
    let mut pending = false; // saw #[cfg(test)], waiting for the item body
    let mut depth = 0u32; // >0 while inside a test item
    for line in lines.iter_mut() {
        let code = line.code.clone();
        if depth > 0 {
            line.in_test = true;
        }
        for (i, c) in code.char_indices() {
            if depth == 0 && !pending && code[i..].starts_with("#[cfg(test)]") {
                pending = true;
            }
            match c {
                '{' => {
                    if pending {
                        pending = false;
                        depth = 1;
                        line.in_test = true;
                    } else if depth > 0 {
                        depth += 1;
                    }
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                }
                // `#[cfg(test)] use x;` — attribute on a braceless item
                ';' if pending => {
                    pending = false;
                    line.in_test = true;
                }
                _ => {}
            }
        }
        if pending {
            line.in_test = true;
        }
    }
}

// ---------------------------------------------------------------------
// Item / function extraction (the interprocedural analysis substrate)
// ---------------------------------------------------------------------

/// One call event inside a function body.
///
/// Offsets index the file's flattened code text (test-region lines
/// blanked, lines joined by `\n`), so positions are comparable across
/// lines. `close` — the offset of the matching `)` — is the call's
/// *completion* position: in `f(g())` the inner `g` completes first,
/// and in `a.f().g()` the chain completes left to right, which is the
/// evaluation order the write-ahead rule reasons about.
pub struct CallSite {
    pub name: String,
    /// `Type::name(...)` qualifier (last path segment before `::`).
    pub qual: Option<String>,
    /// Method receiver: the identifier segment immediately before
    /// `.name(` — `self.txn.log(..)` gives `Some("txn")`.
    pub recv: Option<String>,
    /// True for `.name(` method calls (even when the receiver could not
    /// be recovered, e.g. `(a + b).name(..)`).
    pub method: bool,
    /// Index (within the owning function's `calls`) of the call this
    /// one chains onto: in `a.f().g()`, `g.chain == Some(index of f)`.
    pub chain: Option<usize>,
    /// 1-based source line of the call name.
    pub line: usize,
    /// Offset of the matching close paren (completion position).
    pub close: usize,
    /// Argument text (string contents already blanked by the lexer).
    pub args: String,
    /// `let` binding target when the enclosing statement is
    /// `let <ident> = …` (guard and handle bindings).
    pub bound: Option<String>,
    /// Offset where the enclosing statement ends (`;` or block close).
    pub stmt_end: usize,
    /// Offset where the innermost enclosing block closes (`}`) —
    /// the live range of a `let`-bound guard.
    pub block_end: usize,
}

/// A free or associated function recovered from the lexical view.
pub struct FnItem {
    /// Path of the defining file, relative to the verify root.
    pub file: String,
    /// Enclosing `impl` type, e.g. `Some("HeapStorage")`.
    pub impl_ty: Option<String>,
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Call events in the body, in source order.
    pub calls: Vec<CallSite>,
}

impl FnItem {
    /// Stable workspace-unique-ish key: `Type::name` or bare `name`.
    pub fn key(&self) -> String {
        match &self.impl_ty {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Keywords that look like `name(` but are not calls.
const KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "in", "fn", "impl", "where", "as", "move",
    "mut", "let", "else", "ref", "dyn", "pub", "use", "break",
];

/// Extracts the functions (and their call events) of one source file.
/// Test-region lines are excluded; closures stay attributed to the
/// enclosing `fn`; calls inside a nested `fn` belong to the innermost
/// one.
pub fn extract_functions(f: &SourceFile) -> Vec<FnItem> {
    // Flatten: blank test lines, keep line boundaries so offsets map
    // back to line numbers.
    let mut flat = String::new();
    let mut line_start = Vec::with_capacity(f.lines.len());
    for l in &f.lines {
        line_start.push(flat.len());
        if !l.in_test {
            flat.push_str(&l.code);
        }
        flat.push('\n');
    }
    let b = flat.as_bytes();
    let line_of = |off: usize| line_start.partition_point(|&s| s <= off);

    // impl ranges: (body_open, body_close, type name), top level only.
    let impls = find_impls(&flat);
    // fn spans: (sig_off, body_open, body_close, name)
    let fns = find_fns(&flat);
    // raw call sites over the whole flattened text
    let raw = find_calls(&flat);

    let mut out = Vec::new();
    for (fi, &(sig, open, close, ref name)) in fns.iter().enumerate() {
        let impl_ty = impls
            .iter()
            .find(|&&(io, ic, _)| io < sig && sig < ic)
            .map(|(_, _, t)| t.clone());
        // innermost-fn attribution: skip calls inside a nested fn body
        let nested: Vec<(usize, usize)> = fns
            .iter()
            .enumerate()
            .filter(|&(gi, &(gs, _, gc, _))| gi != fi && open < gs && gc <= close)
            .map(|(_, &(_, go, gc, _))| (go, gc))
            .collect();
        let mut calls = Vec::new();
        let mut closes = Vec::new(); // close offset -> index, for chains
        for site in &raw {
            let ns = site.name_start;
            if ns <= open || ns >= close {
                continue;
            }
            if nested.iter().any(|&(go, gc)| go < ns && ns < gc) {
                continue;
            }
            let chain = site
                .chain_paren
                .and_then(|p| closes.iter().position(|&c| c == p));
            closes.push(site.close);
            calls.push(CallSite {
                name: site.name.clone(),
                qual: site.qual.clone(),
                recv: site.recv.clone(),
                method: site.method,
                chain,
                line: line_of(ns),
                close: site.close,
                args: flat[site.open + 1..site.close].to_string(),
                bound: stmt_binding(&flat, ns),
                stmt_end: stmt_end_of(b, site.close),
                block_end: block_end_of(b, site.close),
            });
        }
        out.push(FnItem {
            file: f.rel.clone(),
            impl_ty,
            name: name.clone(),
            line: line_of(sig),
            calls,
        });
    }
    out
}

/// Top-level `impl` blocks: `(body_open, body_close, type_name)`.
fn find_impls(flat: &str) -> Vec<(usize, usize, String)> {
    let b = flat.as_bytes();
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'{' => depth += 1,
            b'}' => depth -= 1,
            b'i' if depth == 0
                && flat[i..].starts_with("impl")
                && (i == 0 || !is_ident(b[i - 1]))
                && !is_ident(*b.get(i + 4).unwrap_or(&b' ')) =>
            {
                // header runs to the opening brace
                let Some(rel_open) = flat[i..].find('{') else {
                    break;
                };
                let open = i + rel_open;
                let header = &flat[i + 4..open];
                // `impl<G> Trait for Type` → Type; `impl<G> Type` → Type.
                let subject = match header.rfind(" for ") {
                    Some(p) => &header[p + 5..],
                    None => header_after_generics(header),
                };
                let ty: String = subject
                    .trim_start()
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                let close = match_brace(b, open);
                if !ty.is_empty() {
                    out.push((open, close, ty));
                }
                i = open + 1;
                depth += 1;
                continue;
            }
            _ => {}
        }
        i += 1;
    }
    out
}

/// Skips a balanced `<...>` generic list at the start of an impl header.
fn header_after_generics(header: &str) -> &str {
    let t = header.trim_start();
    if !t.starts_with('<') {
        return t;
    }
    let mut depth = 0i32;
    for (i, c) in t.char_indices() {
        match c {
            '<' => depth += 1,
            '>' => {
                depth -= 1;
                if depth == 0 {
                    return &t[i + 1..];
                }
            }
            _ => {}
        }
    }
    t
}

/// All `fn` definitions with a body: `(sig_off, body_open, body_close,
/// name)`. Bodyless trait-method declarations are skipped.
fn find_fns(flat: &str) -> Vec<(usize, usize, usize, String)> {
    let b = flat.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while let Some(p) = flat[i..].find("fn ") {
        let at = i + p;
        i = at + 3;
        if at > 0 && is_ident(b[at - 1]) {
            continue; // e.g. `often `
        }
        let name: String = flat[at + 3..]
            .trim_start()
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if name.is_empty() {
            continue;
        }
        // body opens at the first `{` at paren depth 0; a `;` first
        // means a bodyless declaration.
        let mut depth = 0i32;
        let mut open = None;
        for (j, &c) in b.iter().enumerate().skip(at + 3) {
            match c {
                b'(' | b'[' => depth += 1,
                b')' | b']' => depth -= 1,
                b'{' if depth == 0 => {
                    open = Some(j);
                    break;
                }
                b';' if depth == 0 => break,
                _ => {}
            }
        }
        let Some(open) = open else { continue };
        out.push((at, open, match_brace(b, open), name));
    }
    out
}

/// Offset of the `}` matching the `{` at `open` (or text end).
fn match_brace(b: &[u8], open: usize) -> usize {
    let mut depth = 0i32;
    for (j, &c) in b.iter().enumerate().skip(open) {
        match c {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
    }
    b.len()
}

struct RawCall {
    name_start: usize,
    open: usize,
    close: usize,
    name: String,
    qual: Option<String>,
    recv: Option<String>,
    method: bool,
    /// Offset of the `)` this call chains off (`).name(`).
    chain_paren: Option<usize>,
}

/// Scans the flattened text for `name(` call shapes.
fn find_calls(flat: &str) -> Vec<RawCall> {
    let b = flat.as_bytes();
    let mut out = Vec::new();
    for i in 0..b.len() {
        if b[i] != b'(' || i == 0 || !is_ident(b[i - 1]) {
            continue;
        }
        let mut ns = i;
        while ns > 0 && is_ident(b[ns - 1]) {
            ns -= 1;
        }
        let name = &flat[ns..i];
        if name.as_bytes()[0].is_ascii_digit() || KEYWORDS.contains(&name) {
            continue;
        }
        if ns > 0 && b[ns - 1] == b'!' {
            continue; // macro invocation
        }
        let mut qual = None;
        let mut recv = None;
        let mut method = false;
        let mut chain_paren = None;
        if ns >= 1 && b[ns - 1] == b'.' {
            method = true;
            // skip whitespace before the dot (rustfmt keeps `.name(`
            // attached, but the receiver may sit on a previous line)
            let mut j = ns as isize - 2;
            while j >= 0 && (b[j as usize] as char).is_whitespace() {
                j -= 1;
            }
            if j >= 0 {
                let c = b[j as usize];
                if c == b')' {
                    chain_paren = Some(j as usize);
                } else if is_ident(c) {
                    let mut rs = j as usize;
                    while rs > 0 && is_ident(b[rs - 1]) {
                        rs -= 1;
                    }
                    recv = Some(flat[rs..j as usize + 1].to_string());
                }
            }
        } else if ns >= 2 && &b[ns - 2..ns] == b"::" {
            let mut j = ns - 2;
            while j > 0 && is_ident(b[j - 1]) {
                j -= 1;
            }
            if j < ns - 2 {
                qual = Some(flat[j..ns - 2].to_string());
            }
        }
        // matching close paren
        let mut depth = 0i32;
        let mut close = None;
        for (j, &c) in b.iter().enumerate().skip(i) {
            match c {
                b'(' => depth += 1,
                b')' => {
                    depth -= 1;
                    if depth == 0 {
                        close = Some(j);
                        break;
                    }
                }
                _ => {}
            }
        }
        let Some(close) = close else { continue };
        out.push(RawCall {
            name_start: ns,
            open: i,
            close,
            name: name.to_string(),
            qual,
            recv,
            method,
            chain_paren,
        });
    }
    out
}

/// `let` binding target of the statement containing offset `ns`, found
/// by scanning back to the nearest statement boundary. Compound
/// statements (`let x = if c { f() } …`) yield `None` for inner calls —
/// a conservative answer the analysis tolerates.
fn stmt_binding(flat: &str, ns: usize) -> Option<String> {
    let b = flat.as_bytes();
    let mut k = ns;
    while k > 0 {
        let c = b[k - 1];
        if c == b';' || c == b'{' || c == b'}' {
            break;
        }
        k -= 1;
    }
    let stmt = flat[k..ns].trim_start();
    let rest = stmt.strip_prefix("let ")?;
    let rest = rest.trim_start().strip_prefix("mut ").unwrap_or(rest);
    let ident: String = rest
        .trim_start()
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if ident.is_empty() {
        return None;
    }
    // require a plain `ident =` / `ident: T =` binding, not a pattern
    let after = rest.trim_start()[ident.len()..].trim_start();
    if after.starts_with('=') || after.starts_with(':') {
        Some(ident)
    } else {
        None
    }
}

/// Offset where the statement containing the call that closes at `from`
/// ends: the next `;` at nesting depth 0, or the enclosing close
/// bracket.
fn stmt_end_of(b: &[u8], from: usize) -> usize {
    let mut depth = 0i32;
    for (j, &c) in b.iter().enumerate().skip(from + 1) {
        match c {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => {
                if depth == 0 {
                    return j;
                }
                depth -= 1;
            }
            b';' if depth == 0 => return j,
            _ => {}
        }
    }
    b.len()
}

/// Offset of the `}` closing the innermost block containing the call
/// that closes at `from`.
fn block_end_of(b: &[u8], from: usize) -> usize {
    let mut depth = 0i32;
    for (j, &c) in b.iter().enumerate().skip(from + 1) {
        match c {
            b'{' => depth += 1,
            b'}' => {
                if depth == 0 {
                    return j;
                }
                depth -= 1;
            }
            _ => {}
        }
    }
    b.len()
}

/// Recursively collects `.rs` files under `dir`, returning (abs, rel)
/// pairs with `rel` relative to `root`.
pub fn rust_files(root: &Path, dir: &Path) -> Result<Vec<(PathBuf, String)>, String> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let entries = fs::read_dir(&d).map_err(|e| format!("cannot list {}: {e}", d.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("read_dir entry: {e}"))?;
            let p = entry.path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                let rel = p
                    .strip_prefix(root)
                    .map_err(|_| format!("{} outside root", p.display()))?
                    .to_string_lossy()
                    .replace('\\', "/");
                out.push((p, rel));
            }
        }
    }
    out.sort();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_separated() {
        let lines = lex("let x = \"unwrap()\"; // call unwrap() here\nlet y = 1; /* panic! */");
        assert!(!lines[0].code.contains("unwrap"));
        assert!(lines[0].comment.contains("unwrap"));
        assert!(!lines[1].code.contains("panic"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let lines = lex("let f = r#\"x.unwrap()\"#;");
        assert!(!lines[0].code.contains("unwrap"));
    }

    #[test]
    fn nested_block_comments() {
        let lines = lex("/* a /* b */ still comment */ let z = 3;");
        assert!(lines[0].code.contains("let z"));
        assert!(!lines[0].code.contains('a'));
    }

    #[test]
    fn test_regions_marked() {
        let src =
            "fn real() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\nfn more() {}\n";
        let lines = lex(src);
        assert!(!lines[0].in_test);
        assert!(lines[1].in_test);
        assert!(lines[3].in_test);
        assert!(!lines[5].in_test);
    }

    #[test]
    fn braceless_cfg_test_item_does_not_latch() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn real() { x { } }\n";
        let lines = lex(src);
        assert!(lines[1].in_test);
        assert!(!lines[2].in_test);
    }

    #[test]
    fn lifetimes_do_not_open_char_literals() {
        let lines = lex("fn f<'a>(x: &'a str) { x.unwrap(); }");
        assert!(lines[0].code.contains("unwrap"));
    }

    fn extract(src: &str) -> Vec<FnItem> {
        extract_functions(&SourceFile {
            rel: "crates/x/src/a.rs".into(),
            lines: lex(src),
        })
    }

    #[test]
    fn functions_and_impl_types_extracted() {
        let fns = extract(
            "impl StorageMethod for HeapStorage {\n    fn insert(&self) { self.log(1); }\n}\n\
             pub fn free_one() { help(); }\n",
        );
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].key(), "HeapStorage::insert");
        assert_eq!(fns[1].key(), "free_one");
        assert_eq!(fns[0].calls[0].recv.as_deref(), Some("self"));
        assert!(fns[1].calls[0].recv.is_none() && !fns[1].calls[0].method);
    }

    #[test]
    fn completion_order_nests_and_chains() {
        // f(g()) completes g first; a.f().g() completes f before g.
        let fns = extract("fn h() { outer(inner(1)); x.f().g(); }");
        let c = &fns[0].calls;
        let outer = c.iter().position(|s| s.name == "outer").unwrap();
        let inner = c.iter().position(|s| s.name == "inner").unwrap();
        assert!(c[inner].close < c[outer].close);
        let fpos = c.iter().position(|s| s.name == "f").unwrap();
        let gpos = c.iter().position(|s| s.name == "g").unwrap();
        assert!(c[fpos].close < c[gpos].close);
        assert_eq!(c[gpos].chain, Some(fpos));
    }

    #[test]
    fn qualifiers_receivers_and_bindings() {
        let fns = extract(
            "fn h(&self) {\n    let lsn = Self::log(self);\n    let tree = BTree::open(p)\n        \
             .with_wal_lsn(lsn);\n    tree.insert(k);\n}\n",
        );
        let c = &fns[0].calls;
        assert_eq!(c[0].qual.as_deref(), Some("Self"));
        assert_eq!(c[0].bound.as_deref(), Some("lsn"));
        let open = c.iter().position(|s| s.name == "open").unwrap();
        assert_eq!(c[open].qual.as_deref(), Some("BTree"));
        let wal = c.iter().position(|s| s.name == "with_wal_lsn").unwrap();
        assert_eq!(c[wal].chain, Some(open), "chain across the line break");
        assert_eq!(c[wal].bound.as_deref(), Some("tree"));
        let ins = c.iter().position(|s| s.name == "insert").unwrap();
        assert_eq!(c[ins].recv.as_deref(), Some("tree"));
    }

    #[test]
    fn guard_scopes_have_statement_and_block_ends() {
        let src = "fn c(&self) {\n    {\n        let _g = self.latch.write();\n        \
                   self.pool.flush_all();\n    }\n    self.txn.force();\n}\n";
        let fns = extract(src);
        let c = &fns[0].calls;
        let w = c.iter().position(|s| s.name == "write").unwrap();
        assert_eq!(c[w].recv.as_deref(), Some("latch"));
        assert_eq!(c[w].bound.as_deref(), Some("_g"));
        let fl = c.iter().position(|s| s.name == "flush_all").unwrap();
        let fo = c.iter().position(|s| s.name == "force").unwrap();
        // flush_all is inside the guard's block, force is after it
        assert!(c[fl].close < c[w].block_end);
        assert!(c[fo].close > c[w].block_end);
    }

    #[test]
    fn closure_calls_complete_before_the_outer_call() {
        let fns = extract("fn i() { append_record(pool, |p, s| Self::log(p, s)); }");
        let c = &fns[0].calls;
        let ap = c.iter().position(|s| s.name == "append_record").unwrap();
        let lg = c.iter().position(|s| s.name == "log").unwrap();
        assert!(c[lg].close < c[ap].close);
    }

    #[test]
    fn test_regions_macros_and_nested_fns_are_excluded() {
        let src = "fn outer() {\n    fn inner() { only_inner(); }\n    only_outer();\n    \
                   vec![1];\n}\n#[cfg(test)]\nmod t {\n    fn tt() { in_test(); }\n}\n";
        let fns = extract(src);
        let outer = fns.iter().find(|f| f.name == "outer").unwrap();
        assert!(outer.calls.iter().all(|s| s.name != "only_inner"));
        assert!(outer.calls.iter().any(|s| s.name == "only_outer"));
        let inner = fns.iter().find(|f| f.name == "inner").unwrap();
        assert!(inner.calls.iter().any(|s| s.name == "only_inner"));
        assert!(!fns.iter().any(|f| f.name == "tt"));
    }
}
