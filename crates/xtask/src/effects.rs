//! Interprocedural effect analysis (rules 8–10).
//!
//! Effect facts are declared in `crates/xtask/effects.toml` against the
//! known extension-API surface (WAL appends, LSN stamps, page-dirtying
//! operations, lock/latch acquisitions, device I/O), assigned to call
//! events recovered by the scanner, and propagated bottom-up over the
//! conservative workspace call graph to a fixed point. Three
//! whole-program disciplines are then checked:
//!
//! - **DMX008 write-ahead** — every path from a declared entry point to
//!   a page-dirtying effect must complete a WAL-append effect first (in
//!   the entry function itself or a dominating caller, ordered by call
//!   *completion* position so `append_record(.., |p, s| log(..))`
//!   counts), and must have an LSN-stamp effect in scope.
//! - **DMX009 lock order** — the interprocedural lock-acquisition graph
//!   must respect the declared catalog → relation → record → page-latch
//!   hierarchy: no event may acquire a coarser level than one already
//!   held (same-level re-acquisition is allowed).
//! - **DMX010 no I/O under latch** — no device-I/O effect may complete
//!   while a page-latch guard is live in the enclosing scope
//!   (`let`-bound guards live to the end of their block, temporaries to
//!   the end of their statement).
//!
//! Findings are reconciled against the shrink-only waiver baseline in
//! `crates/xtask/effects_baseline.toml`: every waiver needs a
//! justification, over-counted waivers are stale (DMX011), and nothing
//! adds waivers automatically. A missing `effects.toml` disables the
//! pass (fixture trees for the line-level rules stay unaffected).

use std::collections::HashMap;
use std::fs;
use std::path::Path;

use crate::graph::FnIndex;
use crate::rules::Violation;
use crate::scan::{CallSite, FnItem, SourceFile};

/// The declared lock hierarchy, coarsest first. Rank order is the
/// required acquisition order.
pub const LOCK_LEVELS: &[&str] = &["catalog", "relation", "record", "page_latch"];

const PAGE_LATCH: u8 = 3;

fn level_bit(level: u8) -> u8 {
    1 << level
}

fn level_name(level: u8) -> &'static str {
    LOCK_LEVELS[level as usize]
}

fn parse_level(s: &str) -> Option<u8> {
    LOCK_LEVELS.iter().position(|l| *l == s).map(|p| p as u8)
}

// ---------------------------------------------------------------------
// Declarative configuration (effects.toml)
// ---------------------------------------------------------------------

/// How a `[[fact]]`'s `call` pattern addresses call events.
#[derive(Debug, Clone)]
enum CallPat {
    /// `"name"` — a bare (free-function) call.
    Bare(String),
    /// `".name"` — a method call on any receiver.
    AnyRecv(String),
    /// `"recv.name"` — a method call whose receiver's last path segment
    /// is `recv` (`self.txn.log(..)` matches `"txn.log"`).
    RecvDot(String, String),
    /// `"Type::name"` — a path-qualified call (`Self::` matches the
    /// literal `Self` qualifier in any impl).
    Qual(String, String),
}

impl CallPat {
    fn parse(s: &str) -> Result<CallPat, String> {
        if let Some((ty, name)) = s.split_once("::") {
            if ty.is_empty() || name.is_empty() {
                return Err(format!("bad call pattern `{s}`"));
            }
            return Ok(CallPat::Qual(ty.to_string(), name.to_string()));
        }
        if let Some(name) = s.strip_prefix('.') {
            return Ok(CallPat::AnyRecv(name.to_string()));
        }
        if let Some((recv, name)) = s.split_once('.') {
            return Ok(CallPat::RecvDot(recv.to_string(), name.to_string()));
        }
        Ok(CallPat::Bare(s.to_string()))
    }

    fn matches(&self, site: &CallSite) -> bool {
        match self {
            CallPat::Bare(n) => {
                site.name == *n && !site.method && site.qual.is_none() && site.chain.is_none()
            }
            CallPat::AnyRecv(n) => site.method && site.name == *n,
            CallPat::RecvDot(r, n) => {
                site.method && site.name == *n && site.recv.as_deref() == Some(r)
            }
            CallPat::Qual(t, n) => site.name == *n && site.qual.as_deref() == Some(t),
        }
    }
}

/// The effects a single event can carry.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct EffectSet {
    pub appends_wal: bool,
    pub stamps_lsn: bool,
    pub dirties_page: bool,
    pub performs_io: bool,
    pub checks_quarantine: bool,
    pub acquires_latch: bool,
    /// Bitmask over [`LOCK_LEVELS`].
    pub locks: u8,
}

impl EffectSet {
    fn add(&mut self, name: &str) -> Result<(), String> {
        match name {
            "appends_wal" => self.appends_wal = true,
            "stamps_lsn" => self.stamps_lsn = true,
            "dirties_page" => self.dirties_page = true,
            "performs_io" => self.performs_io = true,
            "checks_quarantine" => self.checks_quarantine = true,
            "acquires_latch" => {
                self.acquires_latch = true;
                self.locks |= level_bit(PAGE_LATCH);
            }
            other => {
                let inner = other
                    .strip_prefix("acquires_lock(")
                    .and_then(|r| r.strip_suffix(')'))
                    .ok_or_else(|| format!("unknown effect `{other}`"))?;
                let level =
                    parse_level(inner).ok_or_else(|| format!("unknown lock level `{inner}`"))?;
                self.locks |= level_bit(level);
            }
        }
        Ok(())
    }

    fn is_empty(&self) -> bool {
        *self == EffectSet::default()
    }
}

/// One `[[fact]]`: effects attached to matching call events. Either a
/// `call` pattern or a `kind` + `method` handle fact.
#[derive(Debug)]
struct Fact {
    pat: Option<CallPat>,
    kind: Option<String>,
    method: Option<String>,
    args_contains: Option<String>,
    effects: EffectSet,
    /// Handle kind of the call's result (chain/binding propagation).
    returns: Option<String>,
}

/// One `[[binder]]`: a producer call whose result is a typed handle
/// (e.g. `Self::tree` → kind `tree`).
#[derive(Debug)]
struct Binder {
    pat: CallPat,
    kind: String,
}

/// Parsed `effects.toml`.
#[derive(Debug, Default)]
pub struct EffectsConfig {
    facts: Vec<Fact>,
    binders: Vec<Binder>,
    /// `Type::fn` entry-point patterns (`*` wildcards one segment).
    entries: Vec<String>,
}

impl EffectsConfig {
    /// Loads `path`; `Ok(None)` when the file is absent (pass disabled).
    pub fn load(path: &Path) -> Result<Option<EffectsConfig>, String> {
        if !path.exists() {
            return Ok(None);
        }
        let text =
            fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        parse_config(&text)
            .map(Some)
            .map_err(|e| format!("{}: {e}", path.display()))
    }
}

fn parse_config(text: &str) -> Result<EffectsConfig, String> {
    #[derive(Default)]
    struct RawFact {
        call: Option<String>,
        kind: Option<String>,
        method: Option<String>,
        args_contains: Option<String>,
        effect: Option<String>,
        returns: Option<String>,
        line: usize,
    }
    enum Section {
        None,
        Fact,
        Binder,
        Entry,
    }
    let mut facts: Vec<RawFact> = Vec::new();
    let mut binders: Vec<(Option<String>, Option<String>, usize)> = Vec::new();
    let mut entries: Vec<(Option<String>, usize)> = Vec::new();
    let mut section = Section::None;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match line {
            "[[fact]]" => {
                section = Section::Fact;
                facts.push(RawFact {
                    line: lineno,
                    ..RawFact::default()
                });
                continue;
            }
            "[[binder]]" => {
                section = Section::Binder;
                binders.push((None, None, lineno));
                continue;
            }
            "[[entry]]" => {
                section = Section::Entry;
                entries.push((None, lineno));
                continue;
            }
            _ => {}
        }
        if line.starts_with('[') {
            return Err(format!("line {lineno}: unknown section {line}"));
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("line {lineno}: expected key = value"))?;
        let key = key.trim();
        let value = unquote(value.trim(), lineno)?;
        match section {
            Section::Fact => {
                let f = facts
                    .last_mut()
                    .ok_or_else(|| format!("line {lineno}: key before [[fact]]"))?;
                match key {
                    "call" => f.call = Some(value),
                    "kind" => f.kind = Some(value),
                    "method" => f.method = Some(value),
                    "args_contains" => f.args_contains = Some(value),
                    "effect" => f.effect = Some(value),
                    "returns" => f.returns = Some(value),
                    _ => return Err(format!("line {lineno}: unknown key {key}")),
                }
            }
            Section::Binder => {
                let b = binders
                    .last_mut()
                    .ok_or_else(|| format!("line {lineno}: key before [[binder]]"))?;
                match key {
                    "call" => b.0 = Some(value),
                    "kind" => b.1 = Some(value),
                    _ => return Err(format!("line {lineno}: unknown key {key}")),
                }
            }
            Section::Entry => {
                let e = entries
                    .last_mut()
                    .ok_or_else(|| format!("line {lineno}: key before [[entry]]"))?;
                match key {
                    "fn" => e.0 = Some(value),
                    _ => return Err(format!("line {lineno}: unknown key {key}")),
                }
            }
            Section::None => return Err(format!("line {lineno}: key before any [[section]]")),
        }
    }
    let mut out = EffectsConfig::default();
    for f in facts {
        let line = f.line;
        let err = |m: String| format!("line {line}: {m}");
        let mut effects = EffectSet::default();
        if let Some(e) = &f.effect {
            for part in e.split(',') {
                effects.add(part.trim()).map_err(err)?;
            }
        }
        if effects.is_empty() && f.returns.is_none() {
            return Err(err("[[fact]] needs an effect or a returns kind".into()));
        }
        let pat = match (&f.call, &f.kind, &f.method) {
            (Some(c), None, None) => Some(CallPat::parse(c).map_err(err)?),
            (None, Some(_), Some(_)) => None,
            _ => {
                return Err(err(
                    "[[fact]] needs either call = … or kind = … with method = …".into(),
                ))
            }
        };
        out.facts.push(Fact {
            pat,
            kind: f.kind,
            method: f.method,
            args_contains: f.args_contains,
            effects,
            returns: f.returns,
        });
    }
    for (call, kind, line) in binders {
        let (Some(call), Some(kind)) = (call, kind) else {
            return Err(format!("line {line}: [[binder]] needs call and kind"));
        };
        out.binders.push(Binder {
            pat: CallPat::parse(&call).map_err(|m| format!("line {line}: {m}"))?,
            kind,
        });
    }
    for (pat, line) in entries {
        let Some(pat) = pat else {
            return Err(format!("line {line}: [[entry]] needs fn"));
        };
        out.entries.push(pat);
    }
    Ok(out)
}

fn unquote(v: &str, lineno: usize) -> Result<String, String> {
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Ok(v[1..v.len() - 1].to_string())
    } else {
        Err(format!("line {lineno}: expected quoted string, got {v}"))
    }
}

// ---------------------------------------------------------------------
// Waiver baseline (effects_baseline.toml)
// ---------------------------------------------------------------------

/// One `[[waiver]]`: `count` tolerated findings of `code` whose site is
/// `site` (a `Type::fn` key), with a mandatory justification. Same
/// shrink-only contract as `allow.toml`.
#[derive(Debug, Clone)]
pub struct Waiver {
    pub code: String,
    pub site: String,
    pub count: usize,
    pub reason: String,
    pub line: usize,
}

/// Parsed waiver baseline.
#[derive(Debug, Default)]
pub struct Baseline {
    pub waivers: Vec<Waiver>,
}

impl Baseline {
    /// Loads `path`; a missing file is an empty baseline.
    pub fn load(path: &Path) -> Result<Baseline, String> {
        if !path.exists() {
            return Ok(Baseline::default());
        }
        let text =
            fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        parse_baseline(&text).map_err(|e| format!("{}: {e}", path.display()))
    }
}

fn parse_baseline(text: &str) -> Result<Baseline, String> {
    let mut out = Baseline::default();
    let mut in_section = false;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[waiver]]" {
            in_section = true;
            out.waivers.push(Waiver {
                code: String::new(),
                site: String::new(),
                count: 0,
                reason: String::new(),
                line: lineno,
            });
            continue;
        }
        if line.starts_with('[') {
            return Err(format!("line {lineno}: unknown section {line}"));
        }
        if !in_section {
            return Err(format!("line {lineno}: key before [[waiver]]"));
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("line {lineno}: expected key = value"))?;
        let entry = out
            .waivers
            .last_mut()
            .ok_or_else(|| format!("line {lineno}: key before [[waiver]]"))?;
        match key.trim() {
            "code" => entry.code = unquote(value.trim(), lineno)?,
            "site" => entry.site = unquote(value.trim(), lineno)?,
            "count" => {
                entry.count = value
                    .trim()
                    .parse()
                    .map_err(|_| format!("line {lineno}: bad count {value}"))?
            }
            "reason" => entry.reason = unquote(value.trim(), lineno)?,
            k => return Err(format!("line {lineno}: unknown key {k}")),
        }
    }
    for w in &out.waivers {
        if w.code.is_empty() || w.site.is_empty() || w.count == 0 {
            return Err(format!(
                "line {}: [[waiver]] entry needs code, site and count >= 1",
                w.line
            ));
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Per-event effect assignment
// ---------------------------------------------------------------------

/// Effects and handle kind of every call event of one function, in the
/// function's source order.
fn assign_effects(item: &FnItem, cfg: &EffectsConfig) -> Vec<(EffectSet, Option<String>)> {
    let mut out: Vec<(EffectSet, Option<String>)> = Vec::with_capacity(item.calls.len());
    // `let`-bound handle kinds, in source order (no shadowing model).
    let mut vars: HashMap<String, String> = HashMap::new();
    for site in &item.calls {
        let mut eff = EffectSet::default();
        // subject kind: the handle this call is invoked on
        let subject = site
            .chain
            .and_then(|p| out[p].1.clone())
            .or_else(|| site.recv.as_ref().and_then(|r| vars.get(r).cloned()));
        let mut result_kind = None;
        for fact in &cfg.facts {
            let hit = match &fact.pat {
                Some(pat) => pat.matches(site),
                None => {
                    subject.as_deref() == fact.kind.as_deref()
                        && fact.method.as_deref() == Some(site.name.as_str())
                }
            };
            if !hit {
                continue;
            }
            if let Some(needle) = &fact.args_contains {
                if !site.args.contains(needle.as_str()) {
                    continue;
                }
            }
            eff.appends_wal |= fact.effects.appends_wal;
            eff.stamps_lsn |= fact.effects.stamps_lsn;
            eff.dirties_page |= fact.effects.dirties_page;
            eff.performs_io |= fact.effects.performs_io;
            eff.checks_quarantine |= fact.effects.checks_quarantine;
            eff.acquires_latch |= fact.effects.acquires_latch;
            eff.locks |= fact.effects.locks;
            if fact.returns.is_some() {
                result_kind = fact.returns.clone();
            }
        }
        for binder in &cfg.binders {
            if binder.pat.matches(site) {
                result_kind = Some(binder.kind.clone());
            }
        }
        if let (Some(bound), Some(kind)) = (&site.bound, &result_kind) {
            vars.insert(bound.clone(), kind.clone());
        }
        out.push((eff, result_kind));
    }
    out
}

// ---------------------------------------------------------------------
// Summaries and fixed-point propagation
// ---------------------------------------------------------------------

/// Bottom-up effect summary of one function.
#[derive(Debug, Default, Clone, PartialEq)]
struct Summary {
    /// Function may complete a WAL append.
    appends: bool,
    /// Function has an LSN-stamp effect in scope.
    stamps: bool,
    performs_io: bool,
    checks_quarantine: bool,
    /// Lock levels still held after return (transaction locks persist
    /// under strict 2PL; internal latch guards do not).
    locks_held: u8,
    /// Acquires a page latch somewhere inside (edge target only).
    latches_inside: bool,
    /// Witness of a page-dirtying effect with no dominating WAL append.
    dirty_unlogged: Option<String>,
    /// Witness of a page-dirtying effect with no LSN stamp in scope.
    dirty_unstamped: Option<String>,
}

/// One call event prepared for propagation, ordered by completion.
struct Ev {
    call: usize,
    close: usize,
    eff: EffectSet,
    callee: Option<usize>,
}

struct Analysis<'a> {
    idx: &'a FnIndex,
    /// events of each fn, sorted by completion position
    events: Vec<Vec<Ev>>,
    summaries: Vec<Summary>,
}

fn site_label(item: &FnItem, site: &CallSite) -> String {
    let callee = match (&site.qual, &site.recv) {
        (Some(q), _) => format!("{q}::{}", site.name),
        (_, Some(r)) => format!("{r}.{}", site.name),
        _ => site.name.clone(),
    };
    format!("`{callee}` ({}:{})", item.file, site.line)
}

fn build_analysis<'a>(idx: &'a FnIndex, cfg: &EffectsConfig) -> Analysis<'a> {
    let mut events = Vec::with_capacity(idx.fns.len());
    for item in &idx.fns {
        let eff = assign_effects(item, cfg);
        let mut evs: Vec<Ev> = item
            .calls
            .iter()
            .enumerate()
            .map(|(i, site)| Ev {
                call: i,
                close: site.close,
                eff: eff[i].0,
                callee: idx.resolve(item, site),
            })
            .collect();
        evs.sort_by_key(|e| e.close);
        events.push(evs);
    }
    let mut an = Analysis {
        idx,
        events,
        summaries: vec![Summary::default(); idx.fns.len()],
    };
    // Effects are monotone over the call graph, so iteration converges;
    // the bound covers the longest acyclic chain plus recursion slack.
    for _ in 0..an.idx.fns.len() + 2 {
        let mut changed = false;
        for f in 0..an.idx.fns.len() {
            let next = summarize(&an, f);
            if next != an.summaries[f] {
                an.summaries[f] = next;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    an
}

fn summarize(an: &Analysis<'_>, f: usize) -> Summary {
    let item = &an.idx.fns[f];
    let empty = Summary::default();
    let callee = |ev: &Ev| -> &Summary {
        match ev.callee {
            Some(c) => &an.summaries[c],
            None => &empty,
        }
    };
    // LSN-stamp coverage is scoped to the whole function: the heap
    // stamps the page *after* the slot mutation (same pin), which is
    // the correct protocol shape.
    let stamps = an.events[f]
        .iter()
        .any(|ev| ev.eff.stamps_lsn || callee(ev).stamps);
    let mut s = Summary {
        stamps,
        ..Summary::default()
    };
    let mut seen_append = false;
    for ev in &an.events[f] {
        let c = callee(ev);
        let site = &item.calls[ev.call];
        if ev.eff.dirties_page {
            if !seen_append && s.dirty_unlogged.is_none() {
                s.dirty_unlogged = Some(format!(
                    "{} dirties a page before any WAL append",
                    site_label(item, site)
                ));
            }
            if !s.stamps && s.dirty_unstamped.is_none() {
                s.dirty_unstamped = Some(format!(
                    "{} dirties a page with no LSN stamp in scope",
                    site_label(item, site)
                ));
            }
        }
        if let Some(w) = &c.dirty_unlogged {
            if !seen_append && s.dirty_unlogged.is_none() {
                s.dirty_unlogged = Some(format!("{w}, via {}", site_label(item, site)));
            }
        }
        if let Some(w) = &c.dirty_unstamped {
            if !s.stamps && s.dirty_unstamped.is_none() {
                s.dirty_unstamped = Some(format!("{w}, via {}", site_label(item, site)));
            }
        }
        if ev.eff.appends_wal || c.appends {
            seen_append = true;
            s.appends = true;
        }
        s.performs_io |= ev.eff.performs_io || c.performs_io;
        s.checks_quarantine |= ev.eff.checks_quarantine || c.checks_quarantine;
        // Latch bits do not persist past the acquiring function: guards
        // are scope-bound, unlike transaction locks.
        s.locks_held |= (ev.eff.locks & !level_bit(PAGE_LATCH)) | c.locks_held;
        s.latches_inside |= ev.eff.acquires_latch || c.latches_inside;
    }
    s
}

// ---------------------------------------------------------------------
// Rules 8–10
// ---------------------------------------------------------------------

fn entry_matches(pat: &str, key: &str) -> bool {
    let (pt, pn) = pat.split_once("::").unwrap_or(("", pat));
    let (kt, kn) = key.split_once("::").unwrap_or(("", key));
    let seg = |p: &str, k: &str| p == "*" || p == k;
    seg(pt, kt) && seg(pn, kn)
}

/// All rule 8–10 findings, pre-baseline. Each finding's waiver site is
/// the reporting function's `Type::fn` key, carried in `msg` and used
/// for reconciliation.
fn run_rules(an: &Analysis<'_>, cfg: &EffectsConfig) -> Vec<(String, Violation)> {
    let mut out = Vec::new();
    for (f, item) in an.idx.fns.iter().enumerate() {
        let key = item.key();
        // Rule 8 at declared entry points only: interior helpers with a
        // residual unlogged dirty (e.g. `append_record`) are the reason
        // callers must dominate them with an append, not findings.
        if cfg.entries.iter().any(|p| entry_matches(p, &key)) {
            let s = &an.summaries[f];
            if let Some(w) = &s.dirty_unlogged {
                out.push((
                    key.clone(),
                    Violation::at(
                        "write-ahead",
                        &item.file,
                        item.line,
                        format!(
                            "{key}: {w} — the WAL append must complete before the page \
                             mutation on every entry path"
                        ),
                    ),
                ));
            }
            if let Some(w) = &s.dirty_unstamped {
                out.push((
                    key.clone(),
                    Violation::at(
                        "write-ahead",
                        &item.file,
                        item.line,
                        format!(
                            "{key}: {w} — stamp the dirtied page with the record's LSN \
                             (`set_lsn` / `with_wal_lsn`)"
                        ),
                    ),
                ));
            }
        }
        rule9_rule10(an, f, &key, &mut out);
    }
    out
}

fn rule9_rule10(an: &Analysis<'_>, f: usize, key: &str, out: &mut Vec<(String, Violation)>) {
    let item = &an.idx.fns[f];
    let empty = Summary::default();
    let callee = |ev: &Ev| -> &Summary {
        match ev.callee {
            Some(c) => &an.summaries[c],
            None => &empty,
        }
    };
    // Rule 9: ordered acquisition edges must never go coarser.
    let mut held: u8 = 0;
    let mut reported: Vec<(u8, u8)> = Vec::new();
    for ev in &an.events[f] {
        let c = callee(ev);
        let mut acquired = ev.eff.locks | c.locks_held;
        if c.latches_inside {
            acquired |= level_bit(PAGE_LATCH);
        }
        for la in 0..LOCK_LEVELS.len() as u8 {
            if held & level_bit(la) == 0 {
                continue;
            }
            for lb in 0..la {
                if acquired & level_bit(lb) == 0 || reported.contains(&(la, lb)) {
                    continue;
                }
                reported.push((la, lb));
                let site = &item.calls[ev.call];
                out.push((
                    key.to_string(),
                    Violation::at(
                        "lock-order",
                        &item.file,
                        site.line,
                        format!(
                            "{key}: {} acquires `{}` while `{}` is already held — \
                             inverts the declared {} hierarchy",
                            site_label(item, site),
                            level_name(lb),
                            level_name(la),
                            LOCK_LEVELS.join(" → "),
                        ),
                    ),
                ));
            }
        }
        // Transaction locks persist (strict 2PL); a latch acquired by a
        // *guard-producing* event is handled by the live-range walk
        // below, so only lock levels extend `held` here.
        held |= ev.eff.locks & !level_bit(PAGE_LATCH) | c.locks_held;
    }
    // Latch-guard live ranges: rule 9 (coarser acquisition under latch)
    // and rule 10 (device I/O under latch).
    for g in &an.events[f] {
        if !g.eff.acquires_latch {
            continue;
        }
        let gsite = &item.calls[g.call];
        let live_end = match gsite.bound.as_deref() {
            Some("_") | None => gsite.stmt_end,
            Some(_) => gsite.block_end,
        };
        for ev in &an.events[f] {
            if ev.close <= g.close || ev.close > live_end {
                continue;
            }
            let c = callee(ev);
            let site = &item.calls[ev.call];
            let acquired = ev.eff.locks | c.locks_held;
            for lb in 0..PAGE_LATCH {
                if acquired & level_bit(lb) == 0 {
                    continue;
                }
                out.push((
                    key.to_string(),
                    Violation::at(
                        "lock-order",
                        &item.file,
                        site.line,
                        format!(
                            "{key}: {} acquires `{}` while the page-latch guard from {} \
                             is live — latches are the hierarchy's leaf level",
                            site_label(item, site),
                            level_name(lb),
                            site_label(item, gsite),
                        ),
                    ),
                ));
            }
            if ev.eff.performs_io || c.performs_io {
                out.push((
                    key.to_string(),
                    Violation::at(
                        "io-under-latch",
                        &item.file,
                        site.line,
                        format!(
                            "{key}: {} performs device I/O while the page-latch guard \
                             from {} is live",
                            site_label(item, site),
                            site_label(item, gsite),
                        ),
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Baseline reconciliation and the public entry point
// ---------------------------------------------------------------------

/// A waiver consumed by the current run (reported in `--json`).
#[derive(Debug, Clone)]
pub struct WaiverUse {
    pub code: String,
    pub site: String,
    pub count: usize,
}

/// Runs the interprocedural pass for the workspace at `root` over the
/// already-loaded runtime sources. A missing `effects.toml` disables
/// the pass.
pub fn check_effects(
    root: &Path,
    files: &[SourceFile],
) -> Result<(Vec<Violation>, Vec<WaiverUse>), String> {
    let Some(cfg) = EffectsConfig::load(&root.join("crates/xtask/effects.toml"))? else {
        return Ok((Vec::new(), Vec::new()));
    };
    let baseline = Baseline::load(&root.join("crates/xtask/effects_baseline.toml"))?;
    let idx = FnIndex::build(files);
    let an = build_analysis(&idx, &cfg);
    let findings = run_rules(&an, &cfg);

    let mut out = Vec::new();
    let mut used = Vec::new();
    // group findings by (code, site) for waiver reconciliation
    let mut groups: HashMap<(String, String), Vec<Violation>> = HashMap::new();
    for (site, v) in findings {
        groups
            .entry((v.code().to_string(), site))
            .or_default()
            .push(v);
    }
    let mut consumed = vec![0usize; baseline.waivers.len()];
    for w in &baseline.waivers {
        if w.reason.trim().is_empty() {
            out.push(Violation::at(
                "effects-baseline",
                "crates/xtask/effects_baseline.toml",
                w.line,
                format!("waiver {} {} has no justification", w.code, w.site),
            ));
        }
    }
    let mut keys: Vec<_> = groups.keys().cloned().collect();
    keys.sort();
    for gkey in keys {
        let Some(vs) = groups.remove(&gkey) else {
            continue;
        };
        let (code, site) = &gkey;
        let mut budget = 0usize;
        for (i, w) in baseline.waivers.iter().enumerate() {
            if &w.code == code && &w.site == site {
                budget += w.count;
                consumed[i] = w.count.min(vs.len().saturating_sub(budget - w.count));
            }
        }
        if budget > 0 {
            used.push(WaiverUse {
                code: code.clone(),
                site: site.clone(),
                count: vs.len().min(budget),
            });
        }
        if vs.len() > budget {
            out.extend(vs.into_iter().skip(budget));
        } else if vs.len() < budget {
            out.push(Violation::at(
                "effects-baseline",
                "crates/xtask/effects_baseline.toml",
                0,
                format!(
                    "stale waiver: {code} {site} allows {budget} but the analysis reports \
                     {} — shrink the baseline",
                    vs.len()
                ),
            ));
        }
    }
    // Waivers that matched nothing at all are stale too.
    for (i, w) in baseline.waivers.iter().enumerate() {
        if consumed[i] == 0 && !used.iter().any(|u| u.code == w.code && u.site == w.site) {
            out.push(Violation::at(
                "effects-baseline",
                "crates/xtask/effects_baseline.toml",
                w.line,
                format!(
                    "stale waiver: {} {} matches no finding — remove it",
                    w.code, w.site
                ),
            ));
        }
    }
    Ok((out, used))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::{lex_for_tests, SourceFile};

    fn cfg() -> EffectsConfig {
        parse_config(
            r#"
[[fact]]
call = ".log_ext_op"
effect = "appends_wal"

[[fact]]
call = "log_att"
effect = "appends_wal"

[[fact]]
call = "SlottedPage::insert_at"
effect = "dirties_page"

[[fact]]
call = ".set_lsn"
effect = "stamps_lsn"

[[fact]]
kind = "tree"
method = "insert"
effect = "dirties_page"

[[fact]]
kind = "tree"
method = "with_wal_lsn"
effect = "stamps_lsn"
returns = "tree"

[[fact]]
call = ".lock"
args_contains = "LockName::Catalog"
effect = "acquires_lock(catalog)"

[[fact]]
call = ".lock"
args_contains = "LockName::Record"
effect = "acquires_lock(record)"

[[fact]]
call = "latch.write"
effect = "acquires_latch"

[[fact]]
call = ".flush_all"
effect = "performs_io"

[[binder]]
call = "Self::tree"
kind = "tree"

[[entry]]
fn = "*::on_insert"

[[entry]]
fn = "Store::insert"
"#,
        )
        .expect("config parses")
    }

    fn analyze(src: &str) -> (FnIndex, Vec<(String, Violation)>) {
        let file = SourceFile {
            rel: "crates/x/src/a.rs".into(),
            lines: lex_for_tests(src),
        };
        let idx = FnIndex::build(std::slice::from_ref(&file));
        let an = build_analysis(&idx, &cfg());
        let findings = run_rules(&an, &cfg());
        (idx, findings)
    }

    #[test]
    fn log_before_mutate_is_clean_even_through_closures_and_helpers() {
        let (_, f) = analyze(
            "fn append_record(x: X) { SlottedPage::insert_at(p, s); pin.set_lsn(l); }\n\
             impl Store {\n    fn insert(&self, ctx: &C) {\n        \
             append_record(pool, |p, s| ctx.log_ext_op(op));\n    }\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn mutate_before_log_is_dmx008_at_the_entry() {
        // the PR 3 bug shape: the tree mutation completes before the
        // attachment's WAL append
        let (_, f) = analyze(
            "impl Ix {\n    fn on_insert(&self, ctx: &C) {\n        \
             let tree = Self::tree(s, &d);\n        tree.insert(k);\n        \
             log_att(ctx, rd);\n    }\n}\n",
        );
        let codes: Vec<_> = f.iter().map(|(s, v)| (s.as_str(), v.code())).collect();
        assert!(
            codes
                .iter()
                .filter(|(s, c)| *s == "Ix::on_insert" && *c == "DMX008")
                .count()
                == 2,
            "unlogged + unstamped: {f:?}"
        );
    }

    #[test]
    fn wal_lsn_chain_stamps_and_logs() {
        let (_, f) = analyze(
            "impl Ix {\n    fn on_insert(&self, ctx: &C) {\n        \
             let lsn = log_att(ctx, rd);\n        \
             Self::tree(s, &d).with_wal_lsn(lsn).insert(k);\n    }\n}\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn lock_order_inversion_is_dmx009() {
        let (_, f) = analyze(
            "impl Db {\n    fn bad(&self, ctx: &C) {\n        \
             ctx.lock(LockName::Record(r, k), X);\n        \
             ctx.lock(LockName::Catalog, X);\n    }\n}\n",
        );
        assert!(
            f.iter()
                .any(|(s, v)| s == "Db::bad" && v.code() == "DMX009"),
            "{f:?}"
        );
    }

    #[test]
    fn io_under_live_latch_is_dmx010_and_scoped_guards_pass() {
        let (_, f) = analyze(
            "impl Db {\n    fn commit(&self) {\n        \
             let _g = self.latch.write();\n        self.pool.flush_all();\n    }\n}\n",
        );
        assert!(
            f.iter()
                .any(|(s, v)| s == "Db::commit" && v.code() == "DMX010"),
            "{f:?}"
        );
        let (_, ok) = analyze(
            "impl Db {\n    fn commit(&self) {\n        \
             {\n            let _g = self.latch.write();\n        }\n        \
             self.pool.flush_all();\n    }\n}\n",
        );
        assert!(ok.is_empty(), "guard dies with its block: {ok:?}");
    }

    #[test]
    fn unlogged_dirty_propagates_to_callers_until_dominated() {
        // helper dirties unlogged; entry covers it with a prior append
        let (_, clean) = analyze(
            "fn helper(p: P) { SlottedPage::insert_at(p, s); q.set_lsn(l); }\n\
             impl Store {\n    fn insert(&self, ctx: &C) {\n        \
             ctx.log_ext_op(op);\n        helper(p);\n    }\n}\n",
        );
        assert!(clean.is_empty(), "{clean:?}");
        let (_, bad) = analyze(
            "fn helper(p: P) { SlottedPage::insert_at(p, s); q.set_lsn(l); }\n\
             impl Store {\n    fn insert(&self, ctx: &C) {\n        \
             helper(p);\n        ctx.log_ext_op(op);\n    }\n}\n",
        );
        assert!(
            bad.iter()
                .any(|(s, v)| s == "Store::insert" && v.code() == "DMX008"),
            "{bad:?}"
        );
    }

    #[test]
    fn baseline_parses_and_validates() {
        let b = parse_baseline(
            "[[waiver]]\ncode = \"DMX008\"\nsite = \"BTreeStorage::insert\"\ncount = 2\n\
             reason = \"logical undo\"\n",
        )
        .expect("parses");
        assert_eq!(b.waivers.len(), 1);
        assert!(parse_baseline("[[waiver]]\ncode = \"DMX008\"\n").is_err());
    }
}
