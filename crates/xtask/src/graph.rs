//! The workspace call graph.
//!
//! Built from the lexical [`FnItem`] extraction, with deliberately
//! conservative resolution: an edge exists only when the callee is
//! unambiguous from the call shape alone. Unresolvable calls (trait
//! objects, std methods, ambiguous names) simply sever the graph — the
//! effect analysis then relies on declared facts at the call site, so
//! severing can hide an effect but never invent one.
//!
//! Resolution rules:
//! - `self.m(..)` → method `m` of the enclosing `impl` type;
//! - `Self::f(..)` → associated `f` of the enclosing `impl` type;
//! - `Type::f(..)` → associated `f` of `Type`, when exactly one type of
//!   that name defines it workspace-wide;
//! - `module::f(..)` (lower-case qualifier) and bare `f(..)` → the free
//!   function `f`, when exactly one exists workspace-wide;
//! - everything else (plain `.m(..)` on a non-`self` receiver) is
//!   unresolved: that shape is dominated by std-collection and trait-
//!   object calls (`map.insert`, `sm.update`, `att.on_insert`), where a
//!   name-only guess would alias unrelated workspace methods.

use std::collections::HashMap;

use crate::scan::{CallSite, FnItem, SourceFile};

/// Index of every extracted function, addressable by resolution key.
pub struct FnIndex {
    pub fns: Vec<FnItem>,
    /// `Type::name` → defining fns (usually one; ambiguity severs).
    assoc: HashMap<String, Vec<usize>>,
    /// free-function name → defining fns.
    free: HashMap<String, Vec<usize>>,
}

impl FnIndex {
    /// Extracts and indexes every function of `files`.
    pub fn build(files: &[SourceFile]) -> FnIndex {
        let mut fns = Vec::new();
        for f in files {
            fns.extend(crate::scan::extract_functions(f));
        }
        let mut assoc: HashMap<String, Vec<usize>> = HashMap::new();
        let mut free: HashMap<String, Vec<usize>> = HashMap::new();
        for (i, item) in fns.iter().enumerate() {
            match &item.impl_ty {
                Some(_) => assoc.entry(item.key()).or_default().push(i),
                None => free.entry(item.name.clone()).or_default().push(i),
            }
        }
        FnIndex { fns, assoc, free }
    }

    fn unique(m: &HashMap<String, Vec<usize>>, key: &str) -> Option<usize> {
        match m.get(key).map(Vec::as_slice) {
            Some([one]) => Some(*one),
            _ => None,
        }
    }

    /// Resolves `site` (appearing inside `caller`) to a workspace
    /// function, or `None` when the callee is ambiguous or external.
    pub fn resolve(&self, caller: &FnItem, site: &CallSite) -> Option<usize> {
        if let Some(q) = &site.qual {
            let starts_lower = q.chars().next().is_some_and(|c| c.is_lowercase());
            if starts_lower {
                // module-qualified free call: `heap::append_record(..)`
                return Self::unique(&self.free, &site.name);
            }
            let ty = if q == "Self" {
                caller.impl_ty.as_deref()?
            } else {
                q.as_str()
            };
            return Self::unique(&self.assoc, &format!("{ty}::{}", site.name));
        }
        if site.method {
            if site.recv.as_deref() == Some("self") {
                let ty = caller.impl_ty.as_deref()?;
                return Self::unique(&self.assoc, &format!("{ty}::{}", site.name));
            }
            return None;
        }
        if site.chain.is_none() {
            return Self::unique(&self.free, &site.name);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sf(src: &str) -> SourceFile {
        SourceFile {
            rel: "crates/x/src/a.rs".into(),
            lines: crate::scan::lex_for_tests(src),
        }
    }

    #[test]
    fn self_and_qualified_calls_resolve() {
        let idx = FnIndex::build(&[sf(
            "impl Heap {\n    fn log(&self) {}\n    fn insert(&self) { \
                                      self.log(); Self::log(x); Heap::log(y); }\n}\n\
                                      fn free_help() {}\nfn driver() { free_help(); }\n",
        )]);
        let caller_i = idx.fns.iter().position(|f| f.name == "insert").unwrap();
        let log_i = idx.fns.iter().position(|f| f.name == "log").unwrap();
        let caller = &idx.fns[caller_i];
        for site in &caller.calls {
            assert_eq!(idx.resolve(caller, site), Some(log_i), "{}", site.name);
        }
        let driver_i = idx.fns.iter().position(|f| f.name == "driver").unwrap();
        let help_i = idx.fns.iter().position(|f| f.name == "free_help").unwrap();
        let driver = &idx.fns[driver_i];
        assert_eq!(idx.resolve(driver, &driver.calls[0]), Some(help_i));
    }

    #[test]
    fn ambiguous_and_foreign_receivers_sever() {
        let idx = FnIndex::build(&[sf(
            "impl A { fn touch(&self) {} }\nimpl B { fn touch(&self) {} }\n\
             impl C { fn go(&self, m: &M) { m.touch(); m.insert(1); other(); } }\n",
        )]);
        let go_i = idx.fns.iter().position(|f| f.name == "go").unwrap();
        let go = &idx.fns[go_i];
        for site in &go.calls {
            assert_eq!(idx.resolve(go, site), None, "{} must sever", site.name);
        }
    }
}
