//! `xtask` — the workspace's static-analysis gate.
//!
//! `cargo xtask verify` (alias for `cargo run -p xtask -- verify`) runs
//! a source-level analysis over the workspace and fails on any violation
//! of the architecture's checked invariants:
//!
//! 1. panic discipline in runtime crates (shrinking allowlist in
//!    `crates/xtask/allow.toml`);
//! 2. fault-path discipline (no raw `MemDisk`/`StableLog` construction
//!    outside the I/O crates — all I/O passes the fault injector);
//! 3. audited `unsafe` (allowlisted module + `// SAFETY:` comment);
//! 4. the crate-layering DAG and the std-only dependency rule;
//! 5. extension-contract conformance for registered storage methods and
//!    attachment types;
//! 6. deterministic time (no `Instant`/`SystemTime` in runtime crates
//!    outside the `[[wallclock]]` allowlist — wall-clock timing belongs
//!    to `crates/bench`);
//! 7. registered metrics (no `static` atomics in runtime crates — all
//!    observability state flows through the per-database
//!    `MetricsRegistry`).
//!
//! The analysis is deliberately lexical (file walking plus token
//! scanning on comment-stripped source): it needs no network, no
//! rustc internals, and runs in milliseconds, so it can gate every
//! build. See DESIGN.md § "Checked invariants".

pub mod allowlist;
pub mod rules;
pub mod scan;

use std::path::Path;

use allowlist::Allowlist;
use rules::Violation;
use scan::{rust_files, SourceFile};

/// Runs every rule family against the workspace at `root`.
/// Returns violations (empty = pass); `Err` for I/O or allowlist-syntax
/// failures.
pub fn verify(root: &Path) -> Result<Vec<Violation>, String> {
    let allow = Allowlist::load(&root.join("crates/xtask/allow.toml"))?;

    // Load runtime-crate sources once; all source-level rules share them.
    let mut files: Vec<SourceFile> = Vec::new();
    for krate in rules::RUNTIME_CRATES {
        let src = root.join("crates").join(krate).join("src");
        if !src.is_dir() {
            continue;
        }
        for (abs, rel) in rust_files(root, &src)? {
            files.push(SourceFile::load(&abs, rel)?);
        }
    }

    let mut violations = Vec::new();
    violations.extend(rules::check_panics(&files, &allow));
    violations.extend(rules::check_raw_io_construction(&files));
    violations.extend(rules::check_unsafe(&files, &allow));
    violations.extend(rules::check_layering(root));
    violations.extend(rules::check_private_paths(&files));
    violations.extend(rules::check_contracts(&files));
    violations.extend(rules::check_wallclock(&files, &allow));
    violations.extend(rules::check_metric_statics(&files));
    violations.sort_by(|a, b| (a.rule, &a.path, a.line).cmp(&(b.rule, &b.path, b.line)));
    Ok(violations)
}

/// Renders violations in `file:line: [rule] message` form.
pub fn render(violations: &[Violation]) -> String {
    let mut out = String::new();
    for v in violations {
        out.push_str(&format!("{}:{}: [{}] {}\n", v.path, v.line, v.rule, v.msg));
    }
    out
}
