//! `xtask` — the workspace's static-analysis gate.
//!
//! `cargo xtask verify` (alias for `cargo run -p xtask -- verify`) runs
//! a source-level analysis over the workspace and fails on any violation
//! of the architecture's checked invariants:
//!
//! 1. panic discipline in runtime crates (shrinking allowlist in
//!    `crates/xtask/allow.toml`);
//! 2. fault-path discipline (no raw `MemDisk`/`StableLog` construction
//!    outside the I/O crates — all I/O passes the fault injector);
//! 3. audited `unsafe` (allowlisted module + `// SAFETY:` comment);
//! 4. the crate-layering DAG and the std-only dependency rule;
//! 5. extension-contract conformance for registered storage methods and
//!    attachment types;
//! 6. deterministic time (no `Instant`/`SystemTime` in runtime crates
//!    outside the `[[wallclock]]` allowlist — wall-clock timing belongs
//!    to `crates/bench`);
//! 7. registered metrics (no `static` atomics in runtime crates — all
//!    observability state flows through the per-database
//!    `MetricsRegistry`);
//! 8. write-ahead discipline, 9. lock-order acyclicity, and 10. no
//!    device I/O under a live page latch — the interprocedural effect
//!    rules of `effects.rs`, driven by `crates/xtask/effects.toml` and
//!    the shrink-only waiver baseline `effects_baseline.toml`
//!    (skipped by `verify --fast`).
//!
//! The analysis is deliberately lexical (file walking plus token
//! scanning on comment-stripped source): it needs no network, no
//! rustc internals, and runs in milliseconds, so it can gate every
//! build. See DESIGN.md § "Checked invariants".

pub mod allowlist;
pub mod effects;
pub mod graph;
pub mod rules;
pub mod scan;

use std::path::Path;

use allowlist::Allowlist;
use effects::WaiverUse;
use rules::Violation;
use scan::{rust_files, SourceFile};

/// Knobs for a verify run.
#[derive(Debug, Default, Clone, Copy)]
pub struct Options {
    /// Skip the interprocedural effect pass (rules 8–10). Pre-commit
    /// lane; the full pass gates `scripts/check.sh`.
    pub fast: bool,
}

/// Outcome of a verify run: sorted findings plus the waivers the
/// effect pass consumed (surfaced in `--json` so the shrink-only
/// ratchet in check.sh can diff the waiver set).
#[derive(Debug, Default)]
pub struct Report {
    pub violations: Vec<Violation>,
    pub waivers: Vec<WaiverUse>,
}

/// Runs every rule family against the workspace at `root`.
/// `Err` for I/O or config-syntax failures.
pub fn run(root: &Path, opts: Options) -> Result<Report, String> {
    let allow = Allowlist::load(&root.join("crates/xtask/allow.toml"))?;

    // Load runtime-crate sources once; all source-level rules share them.
    let mut files: Vec<SourceFile> = Vec::new();
    for krate in rules::RUNTIME_CRATES {
        let src = root.join("crates").join(krate).join("src");
        if !src.is_dir() {
            continue;
        }
        for (abs, rel) in rust_files(root, &src)? {
            files.push(SourceFile::load(&abs, rel)?);
        }
    }

    let mut violations = Vec::new();
    violations.extend(rules::check_panics(&files, &allow));
    violations.extend(rules::check_raw_io_construction(&files));
    violations.extend(rules::check_unsafe(&files, &allow));
    violations.extend(rules::check_layering(root));
    violations.extend(rules::check_private_paths(&files));
    violations.extend(rules::check_contracts(&files));
    violations.extend(rules::check_wallclock(&files, &allow));
    violations.extend(rules::check_metric_statics(&files));
    let mut waivers = Vec::new();
    if !opts.fast {
        let (effect_violations, used) = effects::check_effects(root, &files)?;
        violations.extend(effect_violations);
        waivers = used;
    }
    violations.sort_by(|a, b| (a.rule, &a.path, a.line).cmp(&(b.rule, &b.path, b.line)));
    waivers.sort_by_key(|w| (w.code.clone(), w.site.clone()));
    Ok(Report {
        violations,
        waivers,
    })
}

/// Compatibility wrapper: full run, violations only.
pub fn verify(root: &Path) -> Result<Vec<Violation>, String> {
    run(root, Options::default()).map(|r| r.violations)
}

/// Renders violations in `file:line: [CODE/rule] message` form.
pub fn render(violations: &[Violation]) -> String {
    let mut out = String::new();
    for v in violations {
        out.push_str(&format!(
            "{}:{}: [{}/{}] {}\n",
            v.path,
            v.line,
            v.code(),
            v.rule,
            v.msg
        ));
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the machine-readable report. Violations carry their stable
/// DMX code; consumed waivers carry an `id` of the form
/// `"DMXnnn Type::fn"`, which check.sh diffs shrink-only against the
/// committed `VERIFY_pr6.json`.
pub fn render_json(report: &Report) -> String {
    let mut out = String::from("{\n  \"violations\": [");
    for (i, v) in report.violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"code\": \"{}\", \"rule\": \"{}\", \"path\": \"{}\", \
             \"line\": {}, \"msg\": \"{}\"}}",
            v.code(),
            json_escape(v.rule),
            json_escape(&v.path),
            v.line,
            json_escape(&v.msg)
        ));
    }
    out.push_str(if report.violations.is_empty() {
        "],\n"
    } else {
        "\n  ],\n"
    });
    out.push_str("  \"waivers\": [");
    for (i, w) in report.waivers.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"id\": \"{} {}\", \"count\": {}}}",
            json_escape(&w.code),
            json_escape(&w.site),
            w.count
        ));
    }
    out.push_str(if report.waivers.is_empty() {
        "]\n}\n"
    } else {
        "\n  ]\n}\n"
    });
    out
}
