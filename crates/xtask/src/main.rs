//! CLI for the workspace static-analysis gate.
//!
//! Usage: `cargo xtask verify [--root <dir>] [--fast] [--json]`
//! (`cargo xtask` is an alias for `cargo run -p xtask --`, see
//! `.cargo/config.toml`).
//!
//! `--fast` skips the interprocedural effect pass (rules 8–10) for
//! quick pre-commit runs; `--json` emits the machine-readable report
//! (stable DMX codes plus the consumed-waiver set) that check.sh
//! ratchets against.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd = None;
    let mut root: Option<PathBuf> = None;
    let mut opts = xtask::Options::default();
    let mut json = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" => {
                if i + 1 >= args.len() {
                    eprintln!("--root needs a path");
                    return ExitCode::from(2);
                }
                root = Some(PathBuf::from(&args[i + 1]));
                i += 2;
            }
            "--fast" => {
                opts.fast = true;
                i += 1;
            }
            "--json" => {
                json = true;
                i += 1;
            }
            c if cmd.is_none() && !c.starts_with('-') => {
                cmd = Some(c.to_string());
                i += 1;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(2);
            }
        }
    }
    match cmd.as_deref() {
        Some("verify") => {}
        _ => {
            eprintln!("usage: cargo xtask verify [--root <dir>] [--fast] [--json]");
            return ExitCode::from(2);
        }
    }
    // Default root: the workspace this binary was built from.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("."))
    });
    match xtask::run(&root, opts) {
        Ok(report) => {
            if json {
                print!("{}", xtask::render_json(&report));
            } else if report.violations.is_empty() {
                println!("xtask verify: all checked invariants hold");
            } else {
                print!("{}", xtask::render(&report.violations));
            }
            if report.violations.is_empty() {
                ExitCode::SUCCESS
            } else {
                eprintln!("xtask verify: {} violation(s)", report.violations.len());
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("xtask verify: error: {e}");
            ExitCode::from(2)
        }
    }
}
