//! Violation fixture for the interprocedural effect rules: the PR 3
//! tree-attachment bug shape (mutate before log), a lock-order
//! inversion, and device I/O under a live latch guard.

pub struct BadIndex;

impl BadIndex {
    fn tree(services: &Services) -> Tree {
        services.open_tree()
    }

    /// The pre-fix PR 3 bug shape: the tree mutation completes before
    /// the attachment's log record exists, and no dirtied page carries
    /// the record's LSN. Rule 8 must flag both defects.
    pub fn on_insert(&self, ctx: &Ctx) -> Result<()> {
        let tree = Self::tree(ctx.services());
        tree.insert(b"k")?;
        log_att(ctx, b"payload");
        Ok(())
    }
}

pub struct BadStore;

impl BadStore {
    /// Helper dirties unlogged; the entry appends only afterwards, so
    /// the caller never dominates the mutation.
    fn scribble(pool: &Pool) -> Result<()> {
        let mut page = pool.page();
        SlottedPage::insert_at(&mut page, 0, b"r")?;
        page.set_lsn(Lsn(0));
        Ok(())
    }

    pub fn insert(&self, ctx: &Ctx) -> Result<()> {
        Self::scribble(&ctx.pool())?;
        ctx.log_ext_op(0, 0);
        Ok(())
    }
}

pub struct BadDb;

impl BadDb {
    /// Fine-to-coarse: a record lock is held when the catalog lock is
    /// requested, inverting the declared hierarchy.
    pub fn ddl(&self, ctx: &Ctx) -> Result<()> {
        ctx.lock_record(rel, b"k", X)?;
        ctx.lock(LockName::Catalog, X)?;
        Ok(())
    }

    /// The `let`-bound guard lives to the end of the function block, so
    /// the flush runs under it.
    pub fn commit(&self) -> Result<()> {
        let _g = self.latch.write();
        self.pool.flush_all()
    }
}
