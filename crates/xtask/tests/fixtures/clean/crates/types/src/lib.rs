//! Clean fixture: every checked invariant is satisfied here.
//!
//! Not compiled — scanned by the verify pass in xtask's fixture tests.

/// Allowlisted in allow.toml (count = 1, with a reason).
pub fn base_ten() -> u32 {
    "10".parse().unwrap()
}

/// A justified range slice.
pub fn header(buf: &[u8]) -> &[u8] {
    // bounds: callers validate an 8-byte header before decoding.
    &buf[..8]
}

/// An audited unsafe block in an allowlisted module.
pub fn read_raw(p: *const u8, len: usize) -> u8 {
    if len == 0 {
        return 0;
    }
    // SAFETY: len > 0 was checked above, so `p` points at one readable byte.
    unsafe { *p }
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap_freely() {
        let v: Option<u8> = Some(3);
        assert_eq!(v.unwrap(), 3);
        let s = "abc";
        assert_eq!(&s.as_bytes()[0..2], b"ab");
    }
}

/// Allowlisted wall-clock use (count = 2 in allow.toml: the return
/// type and the call).
pub fn lock_deadline() -> std::time::Instant {
    std::time::Instant::now()
}
