//! Clean fixture: a registered attachment with every veto-capable
//! entry point and undo.

pub fn register(reg: &mut Registry) {
    reg.register_attachment(Arc::new(Watcher));
}

pub struct Watcher;

impl Attachment for Watcher {
    fn name(&self) -> &str {
        "watcher"
    }
    fn validate_params(&self) {}
    fn create_instance(&self) {}
    fn destroy_instance(&self) {}
    fn on_insert(&self) {}
    fn on_update(&self) {}
    fn on_delete(&self) {}
    fn undo(&self) {}
}
