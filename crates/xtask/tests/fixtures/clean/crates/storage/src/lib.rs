//! Clean fixture: a registered storage method with the complete
//! generic operation set, including cost estimation.

pub fn register(reg: &mut Registry) {
    reg.register_storage_method(Arc::new(Complete));
}

pub struct Complete;

impl StorageMethod for Complete {
    fn name(&self) -> &str {
        "complete"
    }
    fn validate_params(&self) {}
    fn create_instance(&self) {}
    fn destroy_instance(&self) {}
    fn insert(&self) {}
    fn update(&self) {}
    fn delete(&self) {}
    fn fetch(&self) {}
    fn open_scan(&self) {}
    fn estimate(&self) {}
    fn undo(&self) {}
}
