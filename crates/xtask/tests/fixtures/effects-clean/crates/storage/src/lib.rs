//! Clean fixture for the interprocedural effect rules: every entry
//! point appends its WAL record before the page mutation completes,
//! every dirtied page is stamped, lock acquisition follows the declared
//! hierarchy, and no device I/O runs under a live latch guard.

/// Heap-shaped helper: dirties and stamps, WAL coverage comes from the
/// caller's closure (the append completes before this call does).
pub fn append_record(pool: &Pool, log: impl Fn(u32, u16) -> Lsn) -> Result<()> {
    let mut page = pool.page();
    SlottedPage::insert_at(&mut page, 0, b"r")?;
    let lsn = log(0, 0);
    page.set_lsn(lsn);
    Ok(())
}

pub struct GoodStore;

impl GoodStore {
    fn tree(services: &Services) -> Tree {
        services.open_tree()
    }

    /// Entry point: the append happens inside `append_record`'s logging
    /// closure, strictly before the mutation applies.
    pub fn insert(&self, ctx: &Ctx) -> Result<()> {
        append_record(&ctx.pool(), |p, s| ctx.log_ext_op(p, s))
    }
}

pub struct GoodIndex;

impl GoodIndex {
    fn tree(services: &Services) -> Tree {
        services.open_tree()
    }

    /// Attachment entry: log first, then mutate through a handle whose
    /// every dirtied page is stamped from the record's LSN.
    pub fn on_insert(&self, ctx: &Ctx) -> Result<()> {
        let lsn = log_att(ctx, b"payload");
        Self::tree(ctx.services()).with_wal_lsn(lsn).insert(b"k")?;
        Ok(())
    }
}

pub struct GoodDb;

impl GoodDb {
    /// Locks strictly coarse-to-fine.
    pub fn ddl(&self, ctx: &Ctx) -> Result<()> {
        ctx.lock(LockName::Catalog, X)?;
        ctx.lock(LockName::Relation(rel), X)?;
        ctx.lock_record(rel, b"k", X)?;
        Ok(())
    }

    /// The latch guard dies with its block before the flush starts.
    pub fn commit(&self) -> Result<()> {
        {
            let _g = self.latch.write();
            self.quiesce();
        }
        self.pool.flush_all()
    }
}
