//! Violation fixture: a storage method missing generic operations, a
//! registration with no impl at all, and a kernel-internal path.

use dmx_core::database::Database;

pub fn register(reg: &mut Registry) {
    reg.register_storage_method(Arc::new(Partial));
    reg.register_storage_method(Arc::new(Ghost));
}

pub struct Partial;

impl StorageMethod for Partial {
    fn name(&self) -> &str {
        "partial"
    }
    fn validate_params(&self) {}
    fn create_instance(&self) {}
    fn destroy_instance(&self) {}
    fn insert(&self) {}
    fn update(&self) {}
    fn delete(&self) {}
    fn fetch(&self) {}
}
