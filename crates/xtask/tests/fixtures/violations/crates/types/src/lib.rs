//! Violation fixture: panic discipline and unsafe audit offences.
//!
//! Not compiled — scanned by the verify pass in xtask's fixture tests.

/// Un-allowlisted `.unwrap()` in non-test runtime code.
pub fn first(v: &[u8]) -> u8 {
    *v.iter().next().unwrap()
}

/// Covered by a stale allowlist entry (count = 3, source has 1).
pub fn must(v: Option<u8>) -> u8 {
    v.expect("present")
}

/// Unjustified range slice (no justification comment above it).
pub fn middle(v: &[u8]) -> &[u8] {
    &v[1..3]
}

/// Unaudited pointer read, in a module the allowlist does not cover.
pub fn peek(p: *const u8) -> u8 {
    unsafe { *p }
}

/// Wall-clock reads in runtime code (deterministic-time rule): the
/// `use` and the call are two separate token hits.
pub fn elapsed_budget() -> std::time::Instant {
    std::time::Instant::now()
}

/// Ad-hoc process-global counter (registered-metrics rule).
pub static RAW_HITS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
