//! Violation fixture: an attachment missing veto entry points and undo.

pub fn register(reg: &mut Registry) {
    reg.register_attachment(Arc::new(Half));
}

pub struct Half;

impl Attachment for Half {
    fn name(&self) -> &str {
        "half"
    }
    fn validate_params(&self) {}
    fn create_instance(&self) {}
    fn destroy_instance(&self) {}
    fn on_insert(&self) {}
}
