//! End-to-end tests for the verify pass over the miniature workspace
//! trees in `tests/fixtures/`. The clean tree must produce zero
//! violations; the violations tree must fire every rule family; and a
//! shrink-only allowlist must flag entries the source has outgrown.

// Test helpers may panic on a broken fixture tree; `is_in_test` does not
// reach helper fns in integration-test crates, so allow it file-wide.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::collections::BTreeSet;
use std::path::PathBuf;

use xtask::rules::Violation;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn run(name: &str) -> Vec<Violation> {
    xtask::verify(&fixture(name)).expect("verify runs on fixture tree")
}

#[test]
fn clean_tree_passes() {
    let v = run("clean");
    assert!(
        v.is_empty(),
        "clean fixture should have no violations, got:\n{}",
        xtask::render(&v)
    );
}

#[test]
fn violation_tree_fires_every_rule_family() {
    let v = run("violations");
    let rules: BTreeSet<&str> = v.iter().map(|x| x.rule).collect();
    for expected in [
        "panic",
        "panic-allowlist",
        "unsafe",
        "layering",
        "private-path",
        "contract",
        "wallclock",
        "wallclock-allowlist",
        "metric-static",
    ] {
        assert!(
            rules.contains(expected),
            "rule `{expected}` did not fire; got:\n{}",
            xtask::render(&v)
        );
    }
}

#[test]
fn panic_rule_reports_unwrap_and_unjustified_slice() {
    let v = run("violations");
    let panics: Vec<&Violation> = v
        .iter()
        .filter(|x| x.rule == "panic" && x.path == "crates/types/src/lib.rs")
        .collect();
    assert!(
        panics.iter().any(|x| x.msg.contains("`unwrap`")),
        "unwrap not reported:\n{}",
        xtask::render(&v)
    );
    assert!(
        panics.iter().any(|x| x.msg.contains("`slice-index`")),
        "unjustified range slice not reported:\n{}",
        xtask::render(&v)
    );
    // The stale-covered `.expect(` must NOT surface as a panic violation
    // (its allowlist entry still covers it; only the count is stale).
    assert!(
        !panics.iter().any(|x| x.msg.contains("`expect`")),
        "allow-covered expect wrongly reported:\n{}",
        xtask::render(&v)
    );
}

#[test]
fn stale_allowlist_entries_fail_the_pass() {
    let v = run("violations");
    let stale: Vec<&Violation> = v.iter().filter(|x| x.rule == "panic-allowlist").collect();
    // Entry whose count (3) exceeds the single remaining site.
    assert!(
        stale
            .iter()
            .any(|x| x.msg.contains("crates/types/src/lib.rs:expect") && x.msg.contains("shrink")),
        "over-counted entry not flagged:\n{}",
        xtask::render(&v)
    );
    // Entry covering a file with no hits at all.
    assert!(
        stale
            .iter()
            .any(|x| x.msg.contains("crates/wal/src/gone.rs:unwrap") && x.msg.contains("remove")),
        "entry for vanished file not flagged:\n{}",
        xtask::render(&v)
    );
}

#[test]
fn wallclock_rule_reports_uncovered_reads_and_stale_entries() {
    let v = run("violations");
    let wc: Vec<&Violation> = v.iter().filter(|x| x.rule == "wallclock").collect();
    // Two uncovered `Instant` token hits in the fixture source.
    assert_eq!(
        wc.len(),
        2,
        "expected both Instant hits reported:\n{}",
        xtask::render(&v)
    );
    assert!(wc.iter().all(|x| x.path == "crates/types/src/lib.rs"));
    assert!(
        v.iter().any(|x| x.rule == "wallclock-allowlist"
            && x.msg.contains("crates/wal/src/gone.rs")
            && x.msg.contains("remove")),
        "stale wallclock entry not flagged:\n{}",
        xtask::render(&v)
    );
    // The clean tree covers its wall-clock use with a matching entry.
    assert!(
        !run("clean").iter().any(|x| x.rule.starts_with("wallclock")),
        "allowlisted wallclock use must not fire"
    );
}

#[test]
fn metric_static_rule_reports_global_atomics() {
    let v = run("violations");
    assert!(
        v.iter().any(|x| x.rule == "metric-static"
            && x.path == "crates/types/src/lib.rs"
            && x.msg.contains("MetricsRegistry")),
        "global atomic static not reported:\n{}",
        xtask::render(&v)
    );
}

#[test]
fn unsafe_rule_requires_safety_comment_and_allowlisted_module() {
    let v = run("violations");
    let msgs: Vec<&str> = v
        .iter()
        .filter(|x| x.rule == "unsafe")
        .map(|x| x.msg.as_str())
        .collect();
    assert!(
        msgs.iter().any(|m| m.contains("SAFETY")),
        "missing SAFETY comment not reported:\n{}",
        xtask::render(&v)
    );
    assert!(
        msgs.iter().any(|m| m.contains("allowlisted")),
        "un-allowlisted module not reported:\n{}",
        xtask::render(&v)
    );
}

#[test]
fn layering_rule_rejects_external_and_upward_deps() {
    let v = run("violations");
    let layering: Vec<&Violation> = v.iter().filter(|x| x.rule == "layering").collect();
    assert!(
        layering.iter().any(|x| x.msg.contains("serde")),
        "external dependency not reported:\n{}",
        xtask::render(&v)
    );
    assert!(
        layering.iter().any(|x| x.msg.contains("dmx-core")),
        "upward dependency from `types` not reported:\n{}",
        xtask::render(&v)
    );
}

#[test]
fn contract_rule_reports_missing_ops_and_missing_impls() {
    let v = run("violations");
    let contracts: Vec<&Violation> = v.iter().filter(|x| x.rule == "contract").collect();
    assert!(
        contracts
            .iter()
            .any(|x| x.msg.contains("Partial") && x.msg.contains("estimate")),
        "missing storage ops (incl. cost estimation) not reported:\n{}",
        xtask::render(&v)
    );
    assert!(
        contracts
            .iter()
            .any(|x| x.msg.contains("Ghost") && x.msg.contains("no `impl")),
        "registered type without impl not reported:\n{}",
        xtask::render(&v)
    );
    assert!(
        contracts
            .iter()
            .any(|x| x.msg.contains("Half") && x.msg.contains("on_update")),
        "missing attachment entry points not reported:\n{}",
        xtask::render(&v)
    );
}

#[test]
fn effects_clean_tree_passes() {
    let v = run("effects-clean");
    assert!(
        v.is_empty(),
        "clean effect fixture should have no violations, got:\n{}",
        xtask::render(&v)
    );
}

#[test]
fn write_ahead_rule_flags_the_pr3_regression_shape() {
    let v = run("effects-violations");
    // The tree-attachment bug shape from PR 3: both the missing append
    // domination and the missing LSN stamp are reported at the entry.
    let hits: Vec<&Violation> = v
        .iter()
        .filter(|x| x.code() == "DMX008" && x.msg.contains("BadIndex::on_insert"))
        .collect();
    assert_eq!(
        hits.len(),
        2,
        "expected unlogged + unstamped at BadIndex::on_insert:\n{}",
        xtask::render(&v)
    );
}

#[test]
fn lock_order_and_io_under_latch_rules_fire() {
    let v = run("effects-violations");
    assert!(
        v.iter()
            .any(|x| x.code() == "DMX009" && x.msg.contains("BadDb::ddl")),
        "lock-order inversion not reported:\n{}",
        xtask::render(&v)
    );
    assert!(
        v.iter()
            .any(|x| x.code() == "DMX010" && x.msg.contains("BadDb::commit")),
        "I/O under live latch guard not reported:\n{}",
        xtask::render(&v)
    );
}

#[test]
fn effect_waivers_suppress_exactly_and_ratchet() {
    let report =
        xtask::run(&fixture("effects-violations"), xtask::Options::default()).expect("runs");
    let v = &report.violations;
    // the exact-count waiver consumes BadStore::insert's finding …
    assert!(
        !v.iter().any(|x| x.msg.contains("BadStore::insert")),
        "waived finding still reported:\n{}",
        xtask::render(v)
    );
    assert!(
        report
            .waivers
            .iter()
            .any(|w| w.code == "DMX008" && w.site == "BadStore::insert" && w.count == 1),
        "consumed waiver missing from the report: {:?}",
        report.waivers
    );
    // … while stale and unjustified waivers are themselves violations.
    assert!(
        v.iter()
            .any(|x| x.code() == "DMX011" && x.msg.contains("GhostStore::insert")),
        "stale waiver not reported:\n{}",
        xtask::render(v)
    );
    assert!(
        v.iter()
            .any(|x| x.code() == "DMX011" && x.msg.contains("no justification")),
        "unjustified waiver not reported:\n{}",
        xtask::render(v)
    );
}

#[test]
fn fast_mode_skips_the_interprocedural_pass() {
    let opts = xtask::Options { fast: true };
    let report = xtask::run(&fixture("effects-violations"), opts).expect("runs");
    assert!(
        report.violations.is_empty() && report.waivers.is_empty(),
        "--fast must skip rules 8-10, got:\n{}",
        xtask::render(&report.violations)
    );
}
