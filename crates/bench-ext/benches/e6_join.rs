//! E6 — join strategies: plain nested loop vs index nested loop vs the
//! join-index attachment's precomputed pairs.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use dmx_bench::open_db;
use dmx_core::Database;
use dmx_query::SqlExt;
use dmx_types::{Record, Value};

const N_EMP: usize = 3000;
const N_DEPT: usize = 60;

fn setup(with_index: bool, with_ji: bool) -> Arc<Database> {
    let db = open_db();
    db.execute_sql("CREATE TABLE dept (id INT NOT NULL, dname STRING NOT NULL)").unwrap();
    db.execute_sql("CREATE TABLE emp (id INT NOT NULL, dept INT)").unwrap();
    if with_index {
        db.execute_sql("CREATE UNIQUE INDEX dept_pk ON dept (id)").unwrap();
    }
    if with_ji {
        db.execute_sql("CREATE ATTACHMENT ed ON emp USING joinindex WITH (side=left, fields=dept)")
            .unwrap();
        db.execute_sql(
            "CREATE ATTACHMENT ed ON dept USING joinindex WITH (side=right, fields=id, other=emp)",
        )
        .unwrap();
    }
    let dept = db.catalog().get_by_name("dept").unwrap();
    let emp = db.catalog().get_by_name("emp").unwrap();
    db.with_txn(|txn| {
        for d in 0..N_DEPT {
            db.insert(
                txn,
                dept.id,
                Record::new(vec![Value::Int(d as i64), Value::Str(format!("d{d}"))]),
            )?;
        }
        for i in 0..N_EMP {
            db.insert(
                txn,
                emp.id,
                Record::new(vec![Value::Int(i as i64), Value::Int((i % N_DEPT) as i64)]),
            )?;
        }
        Ok(())
    })
    .unwrap();
    db
}

fn bench(c: &mut Criterion) {
    let q = "SELECT COUNT(*) FROM emp e, dept d WHERE e.dept = d.id";
    let mut g = c.benchmark_group("e6_join");
    g.sample_size(10);
    let nl = setup(false, false);
    g.bench_function("nested_loop", |b| b.iter(|| nl.query_sql(q).unwrap()));
    let inl = setup(true, false);
    g.bench_function("index_nested_loop", |b| b.iter(|| inl.query_sql(q).unwrap()));
    let ji = setup(false, true);
    g.bench_function("join_index", |b| b.iter(|| ji.query_sql(q).unwrap()));
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);
