//! E1 — extension activation cost: procedure-vector (id-indexed trait
//! object) dispatch vs a direct static call vs a name-keyed hash lookup.

use std::collections::HashMap;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use dmx_bench::registry;
use dmx_core::StorageMethod;

fn bench(c: &mut Criterion) {
    let reg = registry();
    let heap_id = reg.storage_id_by_name("heap").unwrap();
    let concrete = dmx_storage::HeapStorage;
    let resolved: Arc<dyn StorageMethod> = reg.storage(heap_id).unwrap();
    let mut by_name: HashMap<String, Arc<dyn StorageMethod>> = HashMap::new();
    for (id, name) in reg.storage_methods() {
        by_name.insert(name, reg.storage(id).unwrap());
    }

    let mut g = c.benchmark_group("e1_dispatch");
    g.bench_function("static_concrete", |b| {
        b.iter(|| std::hint::black_box(&concrete).name().len())
    });
    g.bench_function("pre_resolved_dyn", |b| {
        b.iter(|| std::hint::black_box(&resolved).name().len())
    });
    g.bench_function("procedure_vector", |b| {
        b.iter(|| {
            reg.storage(std::hint::black_box(heap_id))
                .unwrap()
                .name()
                .len()
        })
    });
    g.bench_function("hash_by_name", |b| {
        b.iter(|| by_name.get(std::hint::black_box("heap")).unwrap().name().len())
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);
