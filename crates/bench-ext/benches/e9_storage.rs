//! E9 — alternative relation storage methods compared on insert, keyed
//! probe and full scan.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dmx_bench::open_db;
use dmx_query::SqlExt;
use dmx_types::{Record, RecordKey, Value};

const N: usize = 5000;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e9_storage");
    g.sample_size(10);
    for sm in ["heap", "btree", "memory", "readonly"] {
        let db = open_db();
        let using = match sm {
            "btree" => " USING btree WITH (key=id)".to_string(),
            "heap" => String::new(),
            other => format!(" USING {other}"),
        };
        db.execute_sql(&format!("CREATE TABLE t (id INT NOT NULL, v STRING){using}"))
            .unwrap();
        let rd = db.catalog().get_by_name("t").unwrap();
        let keys: Vec<RecordKey> = db
            .with_txn(|txn| {
                (0..N)
                    .map(|i| {
                        db.insert(
                            txn,
                            rd.id,
                            Record::new(vec![Value::Int(i as i64), Value::Str(format!("v{i}"))]),
                        )
                    })
                    .collect()
            })
            .unwrap();

        g.bench_with_input(BenchmarkId::new("probe", sm), &sm, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 7919) % N;
                db.with_txn(|txn| db.fetch(txn, rd.id, &keys[i], Some(&[0]), None))
                    .unwrap()
            })
        });
        g.bench_with_input(BenchmarkId::new("scan", sm), &sm, |b, _| {
            b.iter(|| db.query_sql("SELECT COUNT(*) FROM t").unwrap())
        });
        if sm != "readonly" {
            // criterion may invoke the closure several times (warm-up +
            // sampling); the id counter must survive across invocations or
            // keyed storage methods see duplicate keys
            let next = std::sync::atomic::AtomicI64::new(N as i64);
            g.bench_with_input(BenchmarkId::new("insert", sm), &sm, |b, _| {
                b.iter(|| {
                    let id = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
                    db.with_txn(|txn| {
                        db.insert(
                            txn,
                            rd.id,
                            Record::new(vec![Value::Int(id), Value::Str("x".into())]),
                        )
                    })
                    .unwrap()
                })
            });
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);
