//! E5 — access-path selection: keyed access through the B-tree index vs a
//! storage-method scan, across selectivities (the crossover the cost
//! estimates must track).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dmx_bench::{load_emp, open_db};
use dmx_core::{AccessPath, AccessQuery};
use dmx_expr::{CmpOp, Expr};

const N: usize = 20_000;

fn bench(c: &mut Criterion) {
    let db = open_db();
    load_emp(&db, "t", N, &["CREATE UNIQUE INDEX t_pk ON {t} (id)"]).unwrap();
    let rd = db.catalog().get_by_name("t").unwrap();
    let (att_t, inst) = rd.find_attachment("t_pk").unwrap();
    let att = db.registry().attachment(att_t).unwrap();

    let mut g = c.benchmark_group("e5_paths");
    g.sample_size(10);
    for k in [1i64, 200, 20_000] {
        let pred = Expr::cmp_col(CmpOp::Lt, 0, k);
        g.bench_with_input(BenchmarkId::new("scan", k), &k, |b, _| {
            b.iter(|| {
                db.with_txn(|txn| {
                    let scan = db.open_scan(
                        txn,
                        rd.id,
                        AccessPath::StorageMethod,
                        AccessQuery::All,
                        Some(pred.clone()),
                        Some(vec![0]),
                    )?;
                    let mut n = 0;
                    while db.scan_next(txn, scan)?.is_some() {
                        n += 1;
                    }
                    Ok(n)
                })
                .unwrap()
            })
        });
        let choice = att.estimate(&rd, inst, std::slice::from_ref(&pred)).unwrap();
        g.bench_with_input(BenchmarkId::new("index", k), &k, |b, _| {
            b.iter(|| {
                db.with_txn(|txn| {
                    let scan = db.open_scan(
                        txn,
                        rd.id,
                        AccessPath::Attachment(att_t, inst.instance),
                        choice.query.clone(),
                        None,
                        None,
                    )?;
                    let mut n = 0;
                    while db.scan_next(txn, scan)?.is_some() {
                        n += 1;
                    }
                    Ok(n)
                })
                .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);
