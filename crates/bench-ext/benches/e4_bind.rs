//! E4 — bound-plan reuse vs re-translating (parse + name resolution +
//! access-path selection) on every execution.

use criterion::{criterion_group, criterion_main, Criterion};
use dmx_bench::{load_emp, open_db};
use dmx_query::{PlanCache, SqlExt};

fn bench(c: &mut Criterion) {
    let db = open_db();
    load_emp(&db, "t", 10_000, &["CREATE UNIQUE INDEX t_pk ON {t} (id)"]).unwrap();
    let cache = db.query_state::<PlanCache, _>(PlanCache::default);
    let q = "SELECT name FROM t WHERE id = 7777";
    db.query_sql(q).unwrap();

    let mut g = c.benchmark_group("e4_bind");
    g.bench_function("bound_plan_reused", |b| b.iter(|| db.query_sql(q).unwrap()));
    g.bench_function("retranslate_each_call", |b| {
        b.iter(|| {
            cache.clear(&db);
            db.query_sql(q).unwrap()
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);
