//! E2 — per-insert cost as attachment instances accumulate: the
//! dispatcher invokes each attachment *type* with instances once per
//! modification; absent types cost nothing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dmx_bench::open_db;
use dmx_query::SqlExt;
use dmx_types::{Record, Value};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2_attachments");
    g.sample_size(10);
    for n_idx in [0usize, 1, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::new("insert_with_indexes", n_idx), &n_idx, |b, &n| {
            let db = open_db();
            db.execute_sql("CREATE TABLE t (id INT NOT NULL, name STRING NOT NULL)")
                .unwrap();
            for i in 0..n {
                db.execute_sql(&format!("CREATE INDEX i{i} ON t (id)")).unwrap();
            }
            let rd = db.catalog().get_by_name("t").unwrap();
            let next = std::sync::atomic::AtomicI64::new(0);
            b.iter(|| {
                let id = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
                db.with_txn(|txn| {
                    db.insert(
                        txn,
                        rd.id,
                        Record::new(vec![Value::Int(id), Value::Str("x".into())]),
                    )
                })
                .unwrap()
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);
