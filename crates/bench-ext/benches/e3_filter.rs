//! E3 — filter predicates evaluated against buffer-resident records (the
//! common-services predicate evaluator) vs copying every record out and
//! filtering in the caller.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dmx_bench::{load_emp, open_db};
use dmx_core::{AccessPath, AccessQuery};
use dmx_expr::{CmpOp, Expr};

const N: usize = 20_000;

fn bench(c: &mut Criterion) {
    let db = open_db();
    load_emp(&db, "t", N, &[]).unwrap();
    let rd = db.catalog().get_by_name("t").unwrap();
    let mut g = c.benchmark_group("e3_filter");
    g.sample_size(10);
    for sel in [1usize, 200, 20_000] {
        let pred = Expr::cmp_col(CmpOp::Lt, 0, sel as i64);
        g.bench_with_input(BenchmarkId::new("in_pool", sel), &sel, |b, _| {
            b.iter(|| {
                db.with_txn(|txn| {
                    let scan = db.open_scan(
                        txn,
                        rd.id,
                        AccessPath::StorageMethod,
                        AccessQuery::All,
                        Some(pred.clone()),
                        Some(vec![0]),
                    )?;
                    let mut n = 0u64;
                    while db.scan_next(txn, scan)?.is_some() {
                        n += 1;
                    }
                    Ok(n)
                })
                .unwrap()
            })
        });
        g.bench_with_input(BenchmarkId::new("copy_out", sel), &sel, |b, _| {
            b.iter(|| {
                db.with_txn(|txn| {
                    let scan = db.open_scan(
                        txn,
                        rd.id,
                        AccessPath::StorageMethod,
                        AccessQuery::All,
                        None,
                        None,
                    )?;
                    let mut n = 0u64;
                    let funcs = db.services().funcs.read();
                    while let Some(item) = db.scan_next(txn, scan)? {
                        let values = item.values.unwrap();
                        if dmx_expr::eval_predicate(
                            &pred,
                            &values,
                            dmx_expr::EvalContext::new(&funcs),
                        )? {
                            n += 1;
                        }
                    }
                    Ok(n)
                })
                .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);
