//! Empty library target: this package exists only to host the Criterion
//! benches in `benches/`, which wrap the std-only `dmx-bench` fixtures.
