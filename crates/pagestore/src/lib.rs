//! Paged storage substrate: a simulated disk, slotted pages and a buffer
//! pool.
//!
//! The paper's experiments ran against real 1987 disks; we substitute a
//! [`disk::MemDisk`] that counts every read, write and allocation
//! ([`disk::IoStats`]) so the cost-estimation experiments can report I/O
//! counts, and that supports a *simulated crash*: the disk image survives
//! while all volatile state (buffer pool, transaction tables) is dropped.
//!
//! The [`buffer::BufferPool`] implements a **steal / no-force** policy
//! (DESIGN.md §6): eviction may write back a dirty page belonging to an
//! in-flight transaction after forcing the write-ahead log up to the
//! page's stamped LSN through an installed [`buffer::WalHook`], and
//! commit forces only the log — [`buffer::BufferPool::flush_all`] remains
//! for checkpoints and the DDL catalog-image exception.

pub mod buffer;
pub mod disk;
pub mod fault;
pub mod page;
pub mod slotted;

pub use buffer::{BufferPool, PinnedPage, WalHook};
pub use disk::{DiskManager, IoSnapshot, IoStats, MemDisk};
pub use fault::FaultDisk;
pub use page::{Page, PAGE_SIZE};
pub use slotted::SlottedPage;
