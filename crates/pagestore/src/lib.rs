//! Paged storage substrate: a simulated disk, slotted pages and a buffer
//! pool.
//!
//! The paper's experiments ran against real 1987 disks; we substitute a
//! [`disk::MemDisk`] that counts every read, write and allocation
//! ([`disk::IoStats`]) so the cost-estimation experiments can report I/O
//! counts, and that supports a *simulated crash*: the disk image survives
//! while all volatile state (buffer pool, transaction tables) is dropped.
//!
//! The [`buffer::BufferPool`] implements a strict **no-steal /
//! force-at-commit** policy (see DESIGN.md): dirty pages are never written
//! by eviction, only by an explicit [`buffer::BufferPool::flush_all`] at
//! commit, which first forces the write-ahead log through an installed
//! [`buffer::WalHook`].

pub mod buffer;
pub mod disk;
pub mod fault;
pub mod page;
pub mod slotted;

pub use buffer::{BufferPool, PinnedPage, WalHook};
pub use disk::{DiskManager, IoSnapshot, IoStats, MemDisk};
pub use fault::FaultDisk;
pub use page::{Page, PAGE_SIZE};
pub use slotted::SlottedPage;
