//! The buffer pool.
//!
//! Policy (documented in DESIGN.md §6): **steal / no-force**. Commit
//! forces only the log; dirty data pages stay in the pool and reach disk
//! lazily — through checkpoints ([`BufferPool::flush_all`]), targeted
//! flushes ([`BufferPool::flush_file`]), or *steal* eviction. When every
//! frame is dirty, the clock sweep's final pass may write back an
//! unpinned dirty frame whose page type was registered via
//! [`BufferPool::set_stealable_types`] (storage methods opt in; complex
//! multi-page structures stay no-steal and report
//! [`DmxError::BufferFull`] instead). Before any page is written — by
//! flush or by steal — the installed [`WalHook`] is asked to force the
//! log up to that page's LSN: the write-ahead rule, which is what makes
//! stealing uncommitted data safe (restart can always undo it from the
//! durable log).
//!
//! Multi-page operations and flushes are serialized by an *operation
//! gate*: every relation modification holds the gate in read mode for its
//! duration, while `flush_all` takes it in write mode, so a flush never
//! observes a half-done multi-page structural change (e.g. a B-tree split).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;

use dmx_types::sync::{Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};

use dmx_types::fault::{backoff, with_io_retries, MAX_IO_RETRIES};
use dmx_types::obs::{name, Counter, Gauge, MetricsRegistry, ObsEvent};
use dmx_types::{DmxError, FileId, Lsn, PageId, Result};

use crate::disk::DiskManager;
use crate::page::Page;

/// Installed by the recovery component so the pool can enforce
/// write-ahead logging.
pub trait WalHook: Send + Sync {
    /// Make the log durable up to at least `lsn`.
    fn force(&self, lsn: Lsn) -> Result<()>;
}

struct Frame {
    page: RwLock<Page>,
    pin_count: AtomicU32,
    dirty: AtomicBool,
    ref_bit: AtomicBool,
}

impl Frame {
    fn new() -> Self {
        Frame {
            page: RwLock::new(Page::new()),
            pin_count: AtomicU32::new(0),
            dirty: AtomicBool::new(false),
            ref_bit: AtomicBool::new(false),
        }
    }
}

#[derive(Default)]
struct MapState {
    /// page id -> frame index
    table: HashMap<PageId, usize>,
    /// frame index -> page id (inverse mapping for eviction)
    resident: Vec<Option<PageId>>,
    clock_hand: usize,
}

/// Buffer pool statistics: handles into the pool's [`MetricsRegistry`],
/// resolved once at construction so the hot paths pay a single relaxed
/// atomic add per event.
#[derive(Debug)]
pub struct PoolStats {
    /// Fetches served from a resident frame.
    pub hits: Arc<Counter>,
    /// Fetches that had to read from disk.
    pub misses: Arc<Counter>,
    /// Frames evicted to make room.
    pub evictions: Arc<Counter>,
    /// Dirty frames written back to disk.
    pub flushes: Arc<Counter>,
    /// Dirty frames written back by steal eviction (a subset of
    /// `flushes`): uncommitted data pushed to disk under memory pressure
    /// after forcing the WAL up to the page's LSN.
    pub steals: Arc<Counter>,
    /// Page pin attempts that found the frame latch contended.
    pub pin_waits: Arc<Counter>,
    /// Page reads retried after a transient fault or checksum failure.
    pub retries: Arc<Counter>,
    /// Current number of dirty frames, maintained incrementally on every
    /// clean<->dirty transition (no frame walk).
    pub dirty: Arc<Gauge>,
}

impl PoolStats {
    fn new(reg: &MetricsRegistry) -> Self {
        PoolStats {
            hits: reg.counter(name::POOL_HITS),
            misses: reg.counter(name::POOL_MISSES),
            evictions: reg.counter(name::POOL_EVICTIONS),
            flushes: reg.counter(name::POOL_FLUSHES),
            steals: reg.counter(name::POOL_STEALS),
            pin_waits: reg.counter(name::POOL_PIN_WAITS),
            retries: reg.counter(name::IO_RETRIES),
            dirty: reg.gauge(name::POOL_DIRTY),
        }
    }
}

/// A fixed-size pool of page frames over a [`DiskManager`].
pub struct BufferPool {
    disk: Arc<dyn DiskManager>,
    frames: Vec<Frame>,
    map: Mutex<MapState>,
    wal: RwLock<Option<Arc<dyn WalHook>>>,
    /// Page types whose frames may be *stolen*: written back (after a WAL
    /// force to the page's LSN) and evicted while dirty. Installed at
    /// database open from the storage-method registry; empty by default,
    /// which degrades to the historical no-steal policy.
    stealable: RwLock<Vec<u8>>,
    op_gate: RwLock<()>,
    obs: Arc<MetricsRegistry>,
    stats: PoolStats,
}

impl BufferPool {
    /// Creates a pool with `capacity` frames and a private metrics
    /// registry (used by component-level tests; the database wires a
    /// shared registry through [`BufferPool::with_metrics`]).
    pub fn new(disk: Arc<dyn DiskManager>, capacity: usize) -> Arc<Self> {
        Self::with_metrics(disk, capacity, MetricsRegistry::new())
    }

    /// Creates a pool with `capacity` frames registering its metrics in
    /// `obs`.
    pub fn with_metrics(
        disk: Arc<dyn DiskManager>,
        capacity: usize,
        obs: Arc<MetricsRegistry>,
    ) -> Arc<Self> {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        let stats = PoolStats::new(&obs);
        Arc::new(BufferPool {
            disk,
            frames: (0..capacity).map(|_| Frame::new()).collect(),
            map: Mutex::new(MapState {
                table: HashMap::with_capacity(capacity),
                resident: vec![None; capacity],
                clock_hand: 0,
            }),
            wal: RwLock::new(None),
            stealable: RwLock::new(Vec::new()),
            op_gate: RwLock::new(()),
            obs,
            stats,
        })
    }

    /// Installs the write-ahead-log hook (done once at database open).
    pub fn set_wal_hook(&self, hook: Arc<dyn WalHook>) {
        *self.wal.write() = Some(hook);
    }

    /// Declares which page types may be steal-evicted while dirty (done
    /// once at database open, from the union of every registered storage
    /// method's `stealable_page_types()`). Pages of any other type keep
    /// the no-steal behavior: eviction skips them and a pool full of
    /// dirty non-stealable pages reports [`DmxError::BufferFull`].
    pub fn set_stealable_types(&self, types: &[u8]) {
        let mut v = types.to_vec();
        v.sort_unstable();
        v.dedup();
        *self.stealable.write() = v;
    }

    /// The underlying disk.
    pub fn disk(&self) -> &Arc<dyn DiskManager> {
        &self.disk
    }

    /// Pool statistics.
    pub fn stats(&self) -> &PoolStats {
        &self.stats
    }

    /// Number of frames.
    pub fn capacity(&self) -> usize {
        self.frames.len()
    }

    /// Acquires the operation gate in read mode. Relation modification
    /// operations hold this for their duration so `flush_all` (write mode)
    /// never captures a torn multi-page change.
    pub fn op_guard(&self) -> RwLockReadGuard<'_, ()> {
        self.op_gate.read()
    }

    /// Fetches a page, reading it from disk on a miss.
    pub fn fetch(self: &Arc<Self>, pid: PageId) -> Result<PinnedPage> {
        let mut map = self.map.lock();
        if let Some(&idx) = map.table.get(&pid) {
            self.frames[idx].pin_count.fetch_add(1, Ordering::AcqRel);
            self.frames[idx].ref_bit.store(true, Ordering::Relaxed);
            self.stats.hits.incr();
            return Ok(PinnedPage {
                pool: Arc::clone(self),
                frame: idx,
                pid,
            });
        }
        self.stats.misses.incr();
        self.obs.emit(ObsEvent {
            layer: "pool",
            op: "miss",
            target: pid.page_no as u64,
            detail: pid.file.0 as u64,
        });
        let idx = self.claim_victim(&mut map, pid)?;
        // Pin and lock the frame before releasing the map so no other
        // thread can observe the frame before its contents are loaded.
        let frame = &self.frames[idx];
        frame.pin_count.store(1, Ordering::Release);
        frame.ref_bit.store(true, Ordering::Relaxed);
        let mut guard = frame.page.write();
        drop(map);
        if let Err(e) = self.read_verified(pid, &mut guard) {
            // Undo the reservation.
            drop(guard);
            let mut map = self.map.lock();
            map.table.remove(&pid);
            map.resident[idx] = None;
            frame.pin_count.store(0, Ordering::Release);
            return Err(e);
        }
        drop(guard);
        Ok(PinnedPage {
            pool: Arc::clone(self),
            frame: idx,
            pid,
        })
    }

    /// Allocates a fresh page in `file` and pins it, zeroed and dirty.
    pub fn new_page(self: &Arc<Self>, file: FileId) -> Result<PinnedPage> {
        let pid = self.disk.allocate_page(file)?;
        let mut map = self.map.lock();
        let idx = self.claim_victim(&mut map, pid)?;
        let frame = &self.frames[idx];
        frame.pin_count.store(1, Ordering::Release);
        frame.ref_bit.store(true, Ordering::Relaxed);
        if !frame.dirty.swap(true, Ordering::AcqRel) {
            self.stats.dirty.incr();
        }
        let mut guard = frame.page.write();
        drop(map);
        *guard = Page::new();
        drop(guard);
        Ok(PinnedPage {
            pool: Arc::clone(self),
            frame: idx,
            pid,
        })
    }

    /// Reads `pid` from disk with checksum verification and a bounded
    /// deterministic retry: transient I/O errors *and* checksum failures
    /// are retried (the corruption may be in the transfer rather than the
    /// media); a checksum that still fails after the retry budget is
    /// promoted to [`DmxError::Corrupt`], which the database layer turns
    /// into relation quarantine.
    fn read_verified(&self, pid: PageId, out: &mut Page) -> Result<()> {
        let mut attempt = 0;
        loop {
            let res = self.disk.read_page(pid, out).and_then(|()| {
                if out.verify_crc() {
                    Ok(())
                } else {
                    Err(DmxError::Corrupt(format!("page {pid} failed checksum")))
                }
            });
            match res {
                Err(e) if attempt < MAX_IO_RETRIES => {
                    let retryable = e.is_transient_io() || matches!(e, DmxError::Corrupt(_));
                    if !retryable {
                        return Err(e);
                    }
                    attempt += 1;
                    self.stats.retries.incr();
                    backoff(attempt)?;
                }
                Err(DmxError::IoTransient(m)) => {
                    return Err(DmxError::Io(format!(
                        "transient i/o did not clear after {attempt} retries: {m}"
                    )))
                }
                other => return other,
            }
        }
    }

    /// Picks a free or evictable frame and installs `pid` in the mapping.
    /// Caller must hold the map lock.
    fn claim_victim(&self, map: &mut MapState, pid: PageId) -> Result<usize> {
        let n = self.frames.len();
        let mut chosen = None;
        // Clock sweep with a reference bit; two full passes preferring
        // clean frames, plus one pass ignoring ref bits in which dirty
        // frames of a stealable page type may be written back and stolen.
        for round in 0..3 * n {
            let idx = (map.clock_hand + round) % n;
            let f = &self.frames[idx];
            if f.pin_count.load(Ordering::Acquire) != 0 {
                continue;
            }
            if f.dirty.load(Ordering::Acquire) {
                // Dirty frames are never discarded. On the final pass a
                // frame whose page type opted into stealing is written
                // back (WAL forced first) and then evicted clean; all
                // other dirty frames stay resident.
                if round < 2 * n {
                    continue;
                }
                let Some(victim) = map.resident[idx] else {
                    continue;
                };
                let page_type = f.page.read().page_type();
                if !self.stealable.read().contains(&page_type) {
                    continue;
                }
                // Safe to write with the map lock held: the frame is
                // unpinned and gaining a new pin requires the map lock,
                // so no mutator can touch the page mid-write.
                self.steal_write(idx, victim)?;
            }
            if round < 2 * n && f.ref_bit.swap(false, Ordering::Relaxed) {
                continue;
            }
            chosen = Some(idx);
            map.clock_hand = (idx + 1) % n;
            break;
        }
        let idx = chosen.ok_or(DmxError::BufferFull)?;
        if let Some(old) = map.resident[idx].take() {
            map.table.remove(&old);
            self.stats.evictions.incr();
            self.obs.emit(ObsEvent {
                layer: "pool",
                op: "evict",
                target: old.page_no as u64,
                detail: old.file.0 as u64,
            });
        }
        map.table.insert(pid, idx);
        map.resident[idx] = Some(pid);
        Ok(idx)
    }

    /// Writes one dirty frame back to disk so it can be stolen: force the
    /// WAL up to the page's LSN (the write-ahead rule — the log must be
    /// able to undo this possibly-uncommitted image), stamp the checksum,
    /// write, and mark the frame clean. Runs *before* the mapping is
    /// removed so an I/O error leaves the pool consistent.
    fn steal_write(&self, idx: usize, pid: PageId) -> Result<()> {
        let frame = &self.frames[idx];
        let mut guard = frame.page.write();
        let lsn = guard.lsn();
        if !lsn.is_null() {
            if let Some(wal) = self.wal.read().clone() {
                wal.force(lsn)?;
            }
        }
        guard.stamp_crc();
        with_io_retries(MAX_IO_RETRIES, || self.disk.write_page(pid, &guard))?;
        if frame.dirty.swap(false, Ordering::AcqRel) {
            self.stats.dirty.decr();
        }
        self.stats.flushes.incr();
        self.stats.steals.incr();
        self.obs.emit(ObsEvent {
            layer: "pool",
            op: "steal",
            target: pid.page_no as u64,
            detail: pid.file.0 as u64,
        });
        Ok(())
    }

    /// Writes every dirty frame to disk (forcing the log first) and marks
    /// them clean. Takes the operation gate in write mode.
    pub fn flush_all(&self) -> Result<()> {
        let _gate = self.op_gate.write();
        self.flush_where(|_| true)
    }

    /// Flushes only the dirty pages of one file (used by deferred drops
    /// and targeted checkpoints).
    pub fn flush_file(&self, file: FileId) -> Result<()> {
        let _gate = self.op_gate.write();
        self.flush_where(|pid| pid.file == file)
    }

    fn flush_where(&self, want: impl Fn(PageId) -> bool) -> Result<()> {
        let map = self.map.lock();
        let mut targets: Vec<(usize, PageId)> = Vec::new();
        let mut max_lsn = Lsn::NULL;
        for (idx, pid) in map.resident.iter().enumerate() {
            let Some(pid) = pid else { continue };
            if !want(*pid) || !self.frames[idx].dirty.load(Ordering::Acquire) {
                continue;
            }
            let lsn = self.frames[idx].page.read().lsn();
            if lsn > max_lsn {
                max_lsn = lsn;
            }
            targets.push((idx, *pid));
        }
        drop(map);
        if targets.is_empty() {
            return Ok(());
        }
        if !max_lsn.is_null() {
            if let Some(wal) = self.wal.read().clone() {
                wal.force(max_lsn)?;
            }
        }
        for (idx, pid) in targets {
            let frame = &self.frames[idx];
            // Write access so the checksum can be stamped over the final
            // image immediately before it leaves the pool.
            let mut guard = frame.page.write();
            guard.stamp_crc();
            with_io_retries(MAX_IO_RETRIES, || self.disk.write_page(pid, &guard))?;
            if frame.dirty.swap(false, Ordering::AcqRel) {
                self.stats.dirty.decr();
            }
            self.stats.flushes.incr();
            self.obs.emit(ObsEvent {
                layer: "pool",
                op: "flush",
                target: pid.page_no as u64,
                detail: pid.file.0 as u64,
            });
        }
        Ok(())
    }

    /// Drops every cached frame of `file` without writing (used when a
    /// relation is physically destroyed).
    pub fn discard_file(&self, file: FileId) {
        let mut map = self.map.lock();
        let doomed: Vec<(usize, PageId)> = map
            .resident
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.filter(|p| p.file == file).map(|p| (i, p)))
            .collect();
        for (idx, pid) in doomed {
            debug_assert_eq!(
                self.frames[idx].pin_count.load(Ordering::Acquire),
                0,
                "discarding pinned page {pid}"
            );
            map.table.remove(&pid);
            map.resident[idx] = None;
            if self.frames[idx].dirty.swap(false, Ordering::AcqRel) {
                self.stats.dirty.decr();
            }
        }
    }

    /// Number of dirty frames, read from the incrementally maintained
    /// gauge (no frame walk, no map lock).
    pub fn dirty_count(&self) -> usize {
        self.stats.dirty.get().max(0) as usize
    }

    /// Number of dirty frames counted by walking every frame. O(frames);
    /// only for tests cross-checking the incremental gauge.
    #[cfg(test)]
    fn dirty_count_walk(&self) -> usize {
        self.frames
            .iter()
            .filter(|f| f.dirty.load(Ordering::Acquire))
            .count()
    }
}

/// A pinned page handle. The page stays resident while any handle exists;
/// dropping the handle unpins it.
pub struct PinnedPage {
    pool: Arc<BufferPool>,
    frame: usize,
    pid: PageId,
}

impl PinnedPage {
    /// The page's id.
    pub fn id(&self) -> PageId {
        self.pid
    }

    /// Shared access to the page image. A contended frame latch counts
    /// one `pool.pin_waits` before blocking.
    pub fn read(&self) -> RwLockReadGuard<'_, Page> {
        let f = &self.pool.frames[self.frame];
        if let Some(g) = f.page.try_read() {
            return g;
        }
        self.pool.stats.pin_waits.incr();
        f.page.read()
    }

    /// Exclusive access; marks the frame dirty. A contended frame latch
    /// counts one `pool.pin_waits` before blocking.
    pub fn write(&self) -> RwLockWriteGuard<'_, Page> {
        let f = &self.pool.frames[self.frame];
        if !f.dirty.swap(true, Ordering::AcqRel) {
            self.pool.stats.dirty.incr();
        }
        match f.page.try_write() {
            Some(g) => g,
            None => {
                self.pool.stats.pin_waits.incr();
                f.page.write()
            }
        }
    }
}

impl Drop for PinnedPage {
    fn drop(&mut self) {
        self.pool.frames[self.frame]
            .pin_count
            .fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;
    use std::sync::atomic::AtomicU64;

    fn setup(frames: usize) -> (Arc<MemDisk>, Arc<BufferPool>, FileId) {
        let disk = Arc::new(MemDisk::new());
        let pool = BufferPool::new(disk.clone() as Arc<dyn DiskManager>, frames);
        let file = disk.create_file().unwrap();
        (disk, pool, file)
    }

    #[test]
    fn new_page_then_fetch_hits() {
        let (_d, pool, f) = setup(4);
        let pid = {
            let p = pool.new_page(f).unwrap();
            p.write().body_mut()[0] = 77;
            p.id()
        };
        let before = pool.stats().hits.get();
        let p = pool.fetch(pid).unwrap();
        assert_eq!(p.read().body()[0], 77);
        assert_eq!(pool.stats().hits.get(), before + 1);
    }

    // This test used to be `eviction_is_no_steal` and asserted the global
    // no-steal policy. Under the steal/no-force contract (DESIGN.md §6)
    // stealing is opt-in per page type, so the old assertion survives in a
    // narrower form: dirty pages of a type *not* in the stealable set are
    // still never written back by eviction.
    #[test]
    fn dirty_non_stealable_pages_are_not_stolen() {
        let (disk, pool, f) = setup(2);
        // Two dirty pages fill the pool; their page type (0) is not in
        // the (empty) stealable set.
        let a = pool.new_page(f).unwrap();
        let b = pool.new_page(f).unwrap();
        let (pa, _pb) = (a.id(), b.id());
        drop(a);
        drop(b);
        // A third page cannot enter: everything is dirty, nothing steals.
        assert!(matches!(pool.new_page(f), Err(DmxError::BufferFull)));
        assert_eq!(disk.stats().snapshot().writes, 0, "no-steal wrote nothing");
        assert_eq!(pool.stats().steals.get(), 0);
        // After a flush, frames are clean and evictable.
        pool.flush_all().unwrap();
        let c = pool.new_page(f).unwrap();
        drop(c);
        // The evicted page can be re-read with its data intact.
        let back = pool.fetch(pa).unwrap();
        assert_eq!(back.id(), pa);
    }

    #[test]
    fn steal_evicts_dirty_stealable_page() {
        let (disk, pool, f) = setup(2);
        pool.set_stealable_types(&[3]);
        let mk = |byte: u8| {
            let p = pool.new_page(f).unwrap();
            {
                let mut g = p.write();
                g.set_page_type(3);
                g.body_mut()[9] = byte;
            }
            p.id()
        };
        let (pa, pb) = (mk(0xA1), mk(0xB2));
        // A third page steals a dirty frame: a write-back happens even
        // though no flush was requested.
        let pc = mk(0xC3);
        assert_eq!(pool.stats().steals.get(), 1);
        assert!(disk.stats().snapshot().writes > 0, "steal wrote the victim");
        // Every page — stolen or resident — still reads back intact.
        for (pid, byte) in [(pa, 0xA1), (pb, 0xB2), (pc, 0xC3)] {
            let p = pool.fetch(pid).unwrap();
            assert_eq!(p.read().body()[9], byte);
        }
    }

    #[test]
    fn steal_forces_wal_to_victim_lsn_before_write() {
        struct Probe {
            forced: AtomicU64,
            disk_writes_at_force: AtomicU64,
            disk: Arc<MemDisk>,
        }
        impl WalHook for Probe {
            fn force(&self, lsn: Lsn) -> Result<()> {
                self.forced.store(lsn.0, Ordering::SeqCst);
                self.disk_writes_at_force
                    .store(self.disk.stats().snapshot().writes, Ordering::SeqCst);
                Ok(())
            }
        }
        let (disk, pool, f) = setup(1);
        pool.set_stealable_types(&[3]);
        let probe = Arc::new(Probe {
            forced: AtomicU64::new(0),
            disk_writes_at_force: AtomicU64::new(0),
            disk: disk.clone(),
        });
        pool.set_wal_hook(probe.clone());
        {
            let p = pool.new_page(f).unwrap();
            let mut g = p.write();
            g.set_page_type(3);
            g.set_lsn(Lsn(73));
        }
        // The single frame is dirty; the next allocation must steal it.
        let p2 = pool.new_page(f).unwrap();
        drop(p2);
        assert_eq!(pool.stats().steals.get(), 1);
        assert_eq!(probe.forced.load(Ordering::SeqCst), 73);
        assert_eq!(
            probe.disk_writes_at_force.load(Ordering::SeqCst),
            0,
            "log forced before the stolen page was written"
        );
    }

    #[test]
    fn steal_prefers_clean_victims() {
        let (_d, pool, f) = setup(2);
        pool.set_stealable_types(&[3]);
        let mk = |b: u8| {
            let p = pool.new_page(f).unwrap();
            let mut g = p.write();
            g.set_page_type(3);
            g.body_mut()[0] = b;
            drop(g);
            p.id()
        };
        let (pa, _pb) = (mk(1), mk(2));
        pool.flush_all().unwrap();
        // Re-dirty only page A; B stays clean.
        {
            let p = pool.fetch(pa).unwrap();
            p.write().body_mut()[0] = 9;
        }
        // The newcomer evicts clean B rather than stealing dirty A, even
        // though A's type is stealable.
        let p = pool.new_page(f).unwrap();
        drop(p);
        assert_eq!(pool.stats().steals.get(), 0, "clean victim preferred");
        let back = pool.fetch(pa).unwrap();
        assert_eq!(back.read().body()[0], 9, "dirty page stayed resident");
    }

    #[test]
    fn flush_writes_dirty_and_clears() {
        let (disk, pool, f) = setup(4);
        let p = pool.new_page(f).unwrap();
        p.write().body_mut()[1] = 5;
        let pid = p.id();
        drop(p);
        assert_eq!(pool.dirty_count(), 1);
        pool.flush_all().unwrap();
        assert_eq!(pool.dirty_count(), 0);
        let mut img = Page::new();
        disk.read_page(pid, &mut img).unwrap();
        assert_eq!(img.body()[1], 5);
        // flushing again is a no-op
        let w = disk.stats().snapshot().writes;
        pool.flush_all().unwrap();
        assert_eq!(disk.stats().snapshot().writes, w);
    }

    #[test]
    fn wal_hook_forced_before_write() {
        struct Probe {
            forced: AtomicU64,
            disk_writes_at_force: AtomicU64,
            disk: Arc<MemDisk>,
        }
        impl WalHook for Probe {
            fn force(&self, lsn: Lsn) -> Result<()> {
                self.forced.store(lsn.0, Ordering::SeqCst);
                self.disk_writes_at_force
                    .store(self.disk.stats().snapshot().writes, Ordering::SeqCst);
                Ok(())
            }
        }
        let (disk, pool, f) = setup(4);
        let probe = Arc::new(Probe {
            forced: AtomicU64::new(0),
            disk_writes_at_force: AtomicU64::new(0),
            disk: disk.clone(),
        });
        pool.set_wal_hook(probe.clone());
        let p = pool.new_page(f).unwrap();
        p.write().set_lsn(Lsn(41));
        drop(p);
        pool.flush_all().unwrap();
        assert_eq!(probe.forced.load(Ordering::SeqCst), 41);
        assert_eq!(
            probe.disk_writes_at_force.load(Ordering::SeqCst),
            0,
            "log forced before the first page write"
        );
    }

    #[test]
    fn pinned_pages_are_not_evicted() {
        let (_d, pool, f) = setup(2);
        let a = pool.new_page(f).unwrap();
        let b = pool.new_page(f).unwrap();
        pool.flush_all().unwrap(); // clean, but still pinned
        assert!(matches!(pool.new_page(f), Err(DmxError::BufferFull)));
        drop(a);
        drop(b);
        assert!(pool.new_page(f).is_ok());
    }

    #[test]
    fn discard_file_drops_frames_without_io() {
        let (disk, pool, f) = setup(4);
        let p = pool.new_page(f).unwrap();
        let pid = p.id();
        drop(p);
        pool.discard_file(f);
        assert_eq!(pool.dirty_count(), 0);
        assert_eq!(disk.stats().snapshot().writes, 0);
        // the page can still be fetched from disk (zeroed image)
        let back = pool.fetch(pid).unwrap();
        assert_eq!(back.read().body()[0], 0);
    }

    #[test]
    fn fetch_missing_page_fails_cleanly() {
        let (_d, pool, f) = setup(2);
        assert!(pool.fetch(PageId::new(f, 99)).is_err());
        // pool still fully usable afterwards (reservation rolled back)
        let a = pool.new_page(f).unwrap();
        let b = pool.new_page(f).unwrap();
        drop((a, b));
        pool.flush_all().unwrap();
    }

    #[test]
    fn flush_file_is_selective() {
        let (disk, pool, f1) = setup(8);
        let f2 = disk.create_file().unwrap();
        let p1 = pool.new_page(f1).unwrap();
        let p2 = pool.new_page(f2).unwrap();
        let (pid1, _pid2) = (p1.id(), p2.id());
        drop(p1);
        drop(p2);
        pool.flush_file(f1).unwrap();
        assert_eq!(pool.dirty_count(), 1, "f2's page remains dirty");
        let mut img = Page::new();
        disk.read_page(pid1, &mut img).unwrap();
    }

    #[test]
    fn dirty_gauge_tracks_frame_walk() {
        let (disk, pool, f) = setup(8);
        let f2 = disk.create_file().unwrap();
        // Dirty three pages across two files.
        let pids: Vec<PageId> = [f, f, f2]
            .iter()
            .map(|file| {
                let p = pool.new_page(*file).unwrap();
                p.write().body_mut()[0] = 1;
                p.id()
            })
            .collect();
        assert_eq!(pool.dirty_count(), 3);
        assert_eq!(pool.dirty_count(), pool.dirty_count_walk());
        // Redundant re-dirty must not double count.
        let p = pool.fetch(pids[0]).unwrap();
        p.write().body_mut()[1] = 2;
        drop(p);
        assert_eq!(pool.dirty_count(), 3);
        // Selective flush decrements only the flushed file's frames.
        pool.flush_file(f).unwrap();
        assert_eq!(pool.dirty_count(), 1);
        assert_eq!(pool.dirty_count(), pool.dirty_count_walk());
        // Discard clears the rest without I/O.
        pool.discard_file(f2);
        assert_eq!(pool.dirty_count(), 0);
        assert_eq!(pool.dirty_count(), pool.dirty_count_walk());
        assert_eq!(pool.stats().pin_waits.get(), 0, "uncontended: no waits");
    }

    #[test]
    fn fetch_retries_transient_read() {
        use crate::fault::FaultDisk;
        use dmx_types::{FaultInjector, FaultPlan};
        // I/O sequence: 0 create_file, 1 allocate, 2 flush write, 3 read
        // (fails transient), 4 retried read (succeeds).
        let disk = FaultDisk::fresh(FaultInjector::new(FaultPlan::new(1).transient_at(3)));
        let pool = BufferPool::new(disk.clone() as Arc<dyn DiskManager>, 4);
        let f = disk.create_file().unwrap();
        let pid = {
            let p = pool.new_page(f).unwrap();
            p.write().body_mut()[0] = 3;
            p.id()
        };
        pool.flush_all().unwrap();
        pool.discard_file(f); // force the next fetch to hit the disk
        let p = pool.fetch(pid).unwrap();
        assert_eq!(p.read().body()[0], 3);
        assert_eq!(disk.stats().snapshot().faults_injected, 1);
    }

    #[test]
    fn fetch_promotes_persistent_corruption() {
        use crate::page::PAGE_SIZE;
        let (disk, pool, f) = setup(4);
        let pid = {
            let p = pool.new_page(f).unwrap();
            p.write().body_mut()[0] = 1;
            p.id()
        };
        pool.flush_all().unwrap();
        pool.discard_file(f);
        // Rot one body byte directly in the persisted image, below any
        // wrapper — only the checksum can catch this.
        let mut img = Page::new();
        disk.read_page(pid, &mut img).unwrap();
        img.raw_mut()[PAGE_SIZE - 1] ^= 0x10;
        disk.write_page(pid, &img).unwrap();
        assert!(matches!(pool.fetch(pid), Err(DmxError::Corrupt(_))));
        // the reservation was rolled back; the pool stays usable
        assert!(pool.new_page(f).is_ok());
    }

    #[test]
    fn flush_stamps_checksums() {
        let (disk, pool, f) = setup(4);
        let pid = {
            let p = pool.new_page(f).unwrap();
            p.write().body_mut()[7] = 42;
            p.id()
        };
        pool.flush_all().unwrap();
        let mut img = Page::new();
        disk.read_page(pid, &mut img).unwrap();
        assert_ne!(img.stored_crc(), 0, "flush stamped a checksum");
        assert!(img.verify_crc());
    }

    #[test]
    fn concurrent_fetch_same_page() {
        let (_d, pool, f) = setup(8);
        let p = pool.new_page(f).unwrap();
        let pid = p.id();
        p.write().body_mut()[0] = 9;
        drop(p);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let pool = pool.clone();
                s.spawn(move || {
                    for _ in 0..200 {
                        let g = pool.fetch(pid).unwrap();
                        assert_eq!(g.read().body()[0], 9);
                    }
                });
            }
        });
    }

    #[test]
    fn concurrent_writers_different_pages() {
        let (_d, pool, f) = setup(16);
        let pids: Vec<PageId> = (0..8).map(|_| pool.new_page(f).unwrap().id()).collect();
        std::thread::scope(|s| {
            for (i, pid) in pids.iter().enumerate() {
                let pool = pool.clone();
                let pid = *pid;
                s.spawn(move || {
                    for k in 0..100u64 {
                        let g = pool.fetch(pid).unwrap();
                        g.write().put_u64(64, k * (i as u64 + 1));
                    }
                });
            }
        });
        for (i, pid) in pids.iter().enumerate() {
            let g = pool.fetch(*pid).unwrap();
            assert_eq!(g.read().get_u64(64), 99 * (i as u64 + 1));
        }
    }
}
