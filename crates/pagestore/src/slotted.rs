//! Slotted page layout.
//!
//! A classic slotted page: a slot directory grows upward after the page
//! header, record payloads grow downward from the end of the page. Slot
//! numbers are stable across deletes (deleted slots become tombstones and
//! may be re-used), which lets heap record ids (page, slot) stay valid for
//! the life of a record and lets recovery re-insert a record at its
//! original slot during undo of a delete.
//!
//! Layout (full-page offsets):
//! ```text
//! 0..16   generic page header (LSN, page type)
//! 16..18  slot_count: u16
//! 18..20  free_end:   u16   offset of the lowest record byte
//! 20..    slot directory, 4 bytes per slot: offset u16, len u16
//!         (offset 0 = tombstone)
//! ...     free space
//! ...PAGE_SIZE  record payloads
//! ```

use crate::page::{Page, PAGE_SIZE};
use dmx_types::{DmxError, Result};

const SLOT_COUNT_OFF: usize = 16;
const FREE_END_OFF: usize = 18;
const DIR_OFF: usize = 20;
const SLOT_BYTES: usize = 4;

/// Namespace for slotted-page operations over [`Page`] images.
pub struct SlottedPage;

impl SlottedPage {
    /// Largest record payload a single page can hold.
    pub const MAX_RECORD: usize = PAGE_SIZE - DIR_OFF - SLOT_BYTES;

    /// Formats an empty slotted page (leaves the generic header alone).
    pub fn init(page: &mut Page) {
        page.put_u16(SLOT_COUNT_OFF, 0);
        page.put_u16(FREE_END_OFF, PAGE_SIZE as u16);
    }

    /// Number of slots in the directory (live + tombstones).
    pub fn slot_count(page: &Page) -> u16 {
        page.get_u16(SLOT_COUNT_OFF)
    }

    /// Number of live (non-tombstone) records.
    pub fn live_count(page: &Page) -> u16 {
        (0..Self::slot_count(page))
            .filter(|&s| Self::slot_entry(page, s).0 != 0)
            .count() as u16
    }

    fn slot_entry(page: &Page, slot: u16) -> (u16, u16) {
        let off = DIR_OFF + slot as usize * SLOT_BYTES;
        (page.get_u16(off), page.get_u16(off + 2))
    }

    fn set_slot_entry(page: &mut Page, slot: u16, offset: u16, len: u16) {
        let off = DIR_OFF + slot as usize * SLOT_BYTES;
        page.put_u16(off, offset);
        page.put_u16(off + 2, len);
    }

    /// Contiguous free bytes between the slot directory and the record
    /// heap.
    pub fn free_space(page: &Page) -> usize {
        let free_end = page.get_u16(FREE_END_OFF) as usize;
        let dir_end = DIR_OFF + Self::slot_count(page) as usize * SLOT_BYTES;
        free_end.saturating_sub(dir_end)
    }

    /// Bytes reclaimable by [`SlottedPage::compact`] (tombstoned payloads
    /// and holes).
    pub fn reclaimable(page: &Page) -> usize {
        let live: usize = (0..Self::slot_count(page))
            .map(|s| Self::slot_entry(page, s))
            .filter(|&(off, _)| off != 0)
            .map(|(_, len)| len as usize)
            .sum();
        let used = PAGE_SIZE - page.get_u16(FREE_END_OFF) as usize;
        used - live
    }

    /// Reads a record payload; `None` for tombstones or out-of-range slots.
    pub fn get(page: &Page, slot: u16) -> Option<&[u8]> {
        if slot >= Self::slot_count(page) {
            return None;
        }
        let (off, len) = Self::slot_entry(page, slot);
        if off == 0 {
            return None;
        }
        // A corrupt slot entry yields `None` rather than a panic.
        page.raw().get(off as usize..(off as usize) + len as usize)
    }

    /// Inserts a record, preferring tombstone slots, appending a new slot
    /// otherwise. Compacts if fragmentation blocks an otherwise-fitting
    /// insert. Returns the slot number, or `None` when the page cannot
    /// hold the record.
    pub fn insert(page: &mut Page, data: &[u8]) -> Option<u16> {
        if data.len() > Self::MAX_RECORD {
            return None;
        }
        let slot = (0..Self::slot_count(page))
            .find(|&s| Self::slot_entry(page, s).0 == 0)
            .unwrap_or_else(|| Self::slot_count(page));
        Self::insert_at(page, slot, data).ok()?;
        Some(slot)
    }

    /// Inserts a record at a specific slot (the slot must be a tombstone or
    /// the next fresh slot). Recovery uses this to undo a delete without
    /// changing the record's id.
    pub fn insert_at(page: &mut Page, slot: u16, data: &[u8]) -> Result<()> {
        let count = Self::slot_count(page);
        if slot > count {
            return Err(DmxError::InvalidArg(format!(
                "slot {slot} beyond directory end {count}"
            )));
        }
        if slot < count && Self::slot_entry(page, slot).0 != 0 {
            return Err(DmxError::InvalidArg(format!("slot {slot} is occupied")));
        }
        let new_slot_bytes = if slot == count { SLOT_BYTES } else { 0 };
        if Self::free_space(page) + Self::reclaimable(page) < data.len() + new_slot_bytes {
            return Err(DmxError::Io("page full".into()));
        }
        if Self::free_space(page) < data.len() + new_slot_bytes {
            Self::compact(page);
        }
        let free_end = page.get_u16(FREE_END_OFF) as usize;
        let new_off = free_end.saturating_sub(data.len());
        // bounds: free-space accounting above guarantees the range; a
        // corrupt FREE_END is caught by the checked subslice.
        match page.raw_mut().get_mut(new_off..free_end) {
            Some(dst) => dst.copy_from_slice(data),
            None => return Err(DmxError::Corrupt("bad free-end offset".into())),
        }
        page.put_u16(FREE_END_OFF, new_off as u16);
        if slot == count {
            page.put_u16(SLOT_COUNT_OFF, count + 1);
        }
        Self::set_slot_entry(page, slot, new_off as u16, data.len() as u16);
        Ok(())
    }

    /// Tombstones a slot, returning the payload that was there.
    pub fn delete(page: &mut Page, slot: u16) -> Option<Vec<u8>> {
        let data = Self::get(page, slot)?.to_vec();
        Self::set_slot_entry(page, slot, 0, 0);
        Some(data)
    }

    /// Replaces a record in place, keeping its slot number. Fails with
    /// `Io("page full")` when the page cannot hold the new payload even
    /// after compaction; the caller (heap storage method) then relocates.
    pub fn update(page: &mut Page, slot: u16, data: &[u8]) -> Result<()> {
        let (off, len) = match Self::get(page, slot) {
            Some(_) => Self::slot_entry(page, slot),
            None => return Err(DmxError::NotFound(format!("slot {slot}"))),
        };
        if data.len() <= len as usize {
            // shrink in place
            let start = off as usize;
            match page.raw_mut().get_mut(start..start + data.len()) {
                Some(dst) => dst.copy_from_slice(data),
                None => return Err(DmxError::Corrupt("bad slot offset".into())),
            }
            Self::set_slot_entry(page, slot, off, data.len() as u16);
            return Ok(());
        }
        // Grow: tombstone then re-insert at the same slot; roll back the
        // tombstone on failure.
        let Some(old) = Self::delete(page, slot) else {
            return Err(DmxError::NotFound(format!("slot {slot}")));
        };
        match Self::insert_at(page, slot, data) {
            Ok(()) => Ok(()),
            Err(e) => {
                // The old payload came off this page, so it always fits
                // back; surface the impossible case instead of panicking.
                Self::insert_at(page, slot, &old)?;
                Err(e)
            }
        }
    }

    /// Repacks live payloads to eliminate holes. Slot numbers are
    /// preserved.
    pub fn compact(page: &mut Page) {
        let count = Self::slot_count(page);
        let mut live: Vec<(u16, Vec<u8>)> = (0..count)
            .filter_map(|s| Self::get(page, s).map(|d| (s, d.to_vec())))
            .collect();
        // Pack from the end of the page downward.
        let mut free_end = PAGE_SIZE;
        for (slot, data) in live.drain(..) {
            free_end -= data.len();
            // bounds: live payloads came off this page, so they re-pack
            // into PAGE_SIZE bytes; checked all the same.
            if let Some(dst) = page.raw_mut().get_mut(free_end..free_end + data.len()) {
                dst.copy_from_slice(&data);
            }
            Self::set_slot_entry(page, slot, free_end as u16, data.len() as u16);
        }
        page.put_u16(FREE_END_OFF, free_end as u16);
    }

    /// Extends the slot directory with tombstones so the next fresh slot
    /// is `slot`. Restart redo uses this when a compensated
    /// (never-replayed) insert left a gap in the logged slot sequence:
    /// the replayed page must put each surviving record at its logged
    /// slot, and the gap slots were tombstoned by the original rollback
    /// anyway.
    pub fn pad_to_slot(page: &mut Page, slot: u16) -> Result<()> {
        while Self::slot_count(page) < slot {
            if Self::free_space(page) < SLOT_BYTES {
                return Err(DmxError::Io("page full".into()));
            }
            let count = Self::slot_count(page);
            Self::set_slot_entry(page, count, 0, 0);
            page.put_u16(SLOT_COUNT_OFF, count + 1);
        }
        Ok(())
    }

    /// Slot numbers of live records, ascending.
    pub fn live_slots(page: &Page) -> Vec<u16> {
        (0..Self::slot_count(page))
            .filter(|&s| Self::slot_entry(page, s).0 != 0)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmx_types::testrng::TestRng;

    fn fresh() -> Page {
        let mut p = Page::new();
        SlottedPage::init(&mut p);
        p
    }

    #[test]
    fn insert_and_get() {
        let mut p = fresh();
        let s0 = SlottedPage::insert(&mut p, b"hello").unwrap();
        let s1 = SlottedPage::insert(&mut p, b"world!").unwrap();
        assert_eq!(s0, 0);
        assert_eq!(s1, 1);
        assert_eq!(SlottedPage::get(&p, s0).unwrap(), b"hello");
        assert_eq!(SlottedPage::get(&p, s1).unwrap(), b"world!");
        assert_eq!(SlottedPage::get(&p, 9), None);
        assert_eq!(SlottedPage::live_count(&p), 2);
    }

    #[test]
    fn delete_tombstones_and_slot_reuse() {
        let mut p = fresh();
        let s0 = SlottedPage::insert(&mut p, b"aaa").unwrap();
        let s1 = SlottedPage::insert(&mut p, b"bbb").unwrap();
        assert_eq!(SlottedPage::delete(&mut p, s0).unwrap(), b"aaa");
        assert_eq!(SlottedPage::get(&p, s0), None);
        assert_eq!(SlottedPage::get(&p, s1).unwrap(), b"bbb");
        // next insert reuses the tombstone
        let s2 = SlottedPage::insert(&mut p, b"ccc").unwrap();
        assert_eq!(s2, s0);
        assert_eq!(SlottedPage::live_slots(&p), vec![0, 1]);
        assert!(SlottedPage::delete(&mut p, 7).is_none());
    }

    #[test]
    fn insert_at_rules() {
        let mut p = fresh();
        SlottedPage::insert(&mut p, b"x").unwrap();
        // occupied
        assert!(SlottedPage::insert_at(&mut p, 0, b"y").is_err());
        // gap beyond directory end
        assert!(SlottedPage::insert_at(&mut p, 2, b"y").is_err());
        // append at directory end
        SlottedPage::insert_at(&mut p, 1, b"y").unwrap();
        assert_eq!(SlottedPage::get(&p, 1).unwrap(), b"y");
        // reinsert into a tombstone restores the original slot
        SlottedPage::delete(&mut p, 0).unwrap();
        SlottedPage::insert_at(&mut p, 0, b"z").unwrap();
        assert_eq!(SlottedPage::get(&p, 0).unwrap(), b"z");
    }

    #[test]
    fn update_shrink_grow_and_full() {
        let mut p = fresh();
        let s = SlottedPage::insert(&mut p, &[7u8; 100]).unwrap();
        SlottedPage::update(&mut p, s, &[1u8; 10]).unwrap();
        assert_eq!(SlottedPage::get(&p, s).unwrap(), &[1u8; 10]);
        SlottedPage::update(&mut p, s, &[2u8; 500]).unwrap();
        assert_eq!(SlottedPage::get(&p, s).unwrap(), &[2u8; 500]);
        // grow beyond capacity fails and preserves the old payload
        let err = SlottedPage::update(&mut p, s, &[3u8; PAGE_SIZE]).unwrap_err();
        assert!(matches!(err, DmxError::Io(_)));
        assert_eq!(SlottedPage::get(&p, s).unwrap(), &[2u8; 500]);
        assert!(SlottedPage::update(&mut p, 9, b"x").is_err());
    }

    #[test]
    fn fills_page_then_rejects() {
        let mut p = fresh();
        let rec = [0xABu8; 1000];
        let mut n = 0;
        while SlottedPage::insert(&mut p, &rec).is_some() {
            n += 1;
        }
        assert!(
            n >= 7,
            "8 KiB page should hold at least 7 1000-byte records"
        );
        assert!(SlottedPage::free_space(&p) < rec.len() + 4);
        // deleting one makes room again
        SlottedPage::delete(&mut p, 0).unwrap();
        assert!(SlottedPage::insert(&mut p, &rec).is_some());
    }

    #[test]
    fn compaction_defragments() {
        let mut p = fresh();
        // Fill with alternating sizes, delete every other record, then
        // insert something that only fits after compaction.
        let mut slots = Vec::new();
        while let Some(s) = SlottedPage::insert(&mut p, &[9u8; 512]) {
            slots.push(s);
        }
        for s in slots.iter().step_by(2) {
            SlottedPage::delete(&mut p, *s);
        }
        assert!(SlottedPage::reclaimable(&p) > 0);
        let big = vec![5u8; 2048];
        let s = SlottedPage::insert(&mut p, &big).expect("fits after implicit compaction");
        assert_eq!(SlottedPage::get(&p, s).unwrap(), &big[..]);
        // survivors intact
        for s in slots.iter().skip(1).step_by(2) {
            assert_eq!(SlottedPage::get(&p, *s).unwrap(), &[9u8; 512]);
        }
    }

    #[test]
    fn pad_to_slot_creates_tombstone_gap() {
        let mut p = fresh();
        SlottedPage::insert(&mut p, b"a").unwrap();
        SlottedPage::pad_to_slot(&mut p, 4).unwrap();
        assert_eq!(SlottedPage::slot_count(&p), 4);
        assert_eq!(SlottedPage::live_slots(&p), vec![0]);
        SlottedPage::insert_at(&mut p, 4, b"e").unwrap();
        assert_eq!(SlottedPage::get(&p, 4).unwrap(), b"e");
        // already past the target: no-op
        SlottedPage::pad_to_slot(&mut p, 2).unwrap();
        assert_eq!(SlottedPage::slot_count(&p), 5);
    }

    #[test]
    fn zero_length_records_are_legal() {
        let mut p = fresh();
        let s = SlottedPage::insert(&mut p, b"").unwrap();
        assert_eq!(SlottedPage::get(&p, s).unwrap(), b"");
        assert_eq!(SlottedPage::delete(&mut p, s).unwrap(), b"");
    }

    /// Random op sequences keep the page consistent with a shadow map.
    /// Deterministic seeds replace the old proptest strategy; a failure
    /// reproduces exactly from its seed.
    #[test]
    fn randomized_matches_shadow() {
        for seed in 0..24u64 {
            let mut rng = TestRng::new(0x510_77ED ^ seed);
            let mut p = fresh();
            let mut shadow: std::collections::HashMap<u16, Vec<u8>> = Default::default();
            for _ in 0..rng.index(120) {
                let op = rng.below(4) as u8;
                let slot = rng.below(24) as u16;
                let data = rng.bytes(299);
                match op {
                    0 => {
                        if let Some(s) = SlottedPage::insert(&mut p, &data) {
                            shadow.insert(s, data);
                        }
                    }
                    1 => {
                        let got = SlottedPage::delete(&mut p, slot);
                        assert_eq!(got, shadow.remove(&slot));
                    }
                    2 => {
                        let ok = SlottedPage::update(&mut p, slot, &data).is_ok();
                        if ok {
                            shadow.insert(slot, data);
                        }
                    }
                    _ => SlottedPage::compact(&mut p),
                }
                for (s, v) in &shadow {
                    assert_eq!(SlottedPage::get(&p, *s), Some(&v[..]), "seed {seed}");
                }
                assert_eq!(SlottedPage::live_count(&p) as usize, shadow.len());
            }
        }
    }
}
