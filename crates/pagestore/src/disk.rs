//! The simulated disk.
//!
//! [`MemDisk`] stands in for the paper's physical storage: files of
//! fixed-size pages with create/delete/allocate/read/write operations.
//! Every operation is counted in [`IoStats`] so experiments can report I/O
//! costs, and the whole disk image can outlive a simulated crash (drop
//! every volatile structure, keep the `Arc<MemDisk>`, reopen).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use dmx_types::sync::Mutex;

use dmx_types::{DmxError, FileId, PageId, Result};

use crate::page::{Page, PAGE_SIZE};

/// Abstract disk interface. `MemDisk` is the only production
/// implementation; tests may supply fault-injecting wrappers.
pub trait DiskManager: Send + Sync {
    /// Creates a new empty file and returns its id.
    fn create_file(&self) -> Result<FileId>;
    /// Deletes a file and all its pages.
    fn delete_file(&self, file: FileId) -> Result<()>;
    /// Appends a zeroed page to the file, returning its id.
    fn allocate_page(&self, file: FileId) -> Result<PageId>;
    /// Reads a page image.
    fn read_page(&self, pid: PageId, out: &mut Page) -> Result<()>;
    /// Writes a page image.
    fn write_page(&self, pid: PageId, page: &Page) -> Result<()>;
    /// Number of pages ever allocated in the file.
    fn page_count(&self, file: FileId) -> Result<u32>;
    /// True when the file exists.
    fn file_exists(&self, file: FileId) -> bool;
    /// I/O statistics.
    fn stats(&self) -> &IoStats;
}

/// Monotonic counters for simulated I/O.
#[derive(Debug, Default)]
pub struct IoStats {
    pub reads: AtomicU64,
    pub writes: AtomicU64,
    pub allocs: AtomicU64,
    pub files_created: AtomicU64,
    pub files_deleted: AtomicU64,
    /// Faults injected by a wrapping [`crate::FaultDisk`] (0 on a bare
    /// `MemDisk`).
    pub faults_injected: AtomicU64,
}

/// A point-in-time copy of [`IoStats`], subtractable for per-experiment
/// deltas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoSnapshot {
    pub reads: u64,
    pub writes: u64,
    pub allocs: u64,
    pub files_created: u64,
    pub files_deleted: u64,
    pub faults_injected: u64,
}

impl IoStats {
    /// Captures current counter values.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            allocs: self.allocs.load(Ordering::Relaxed),
            files_created: self.files_created.load(Ordering::Relaxed),
            files_deleted: self.files_deleted.load(Ordering::Relaxed),
            faults_injected: self.faults_injected.load(Ordering::Relaxed),
        }
    }
}

impl IoSnapshot {
    /// Counter deltas since `earlier`.
    pub fn since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            allocs: self.allocs - earlier.allocs,
            files_created: self.files_created - earlier.files_created,
            files_deleted: self.files_deleted - earlier.files_deleted,
            faults_injected: self.faults_injected - earlier.faults_injected,
        }
    }

    /// Total page transfers (reads + writes).
    pub fn io(&self) -> u64 {
        self.reads + self.writes
    }
}

#[derive(Default)]
struct DiskState {
    files: BTreeMap<FileId, Vec<Box<[u8; PAGE_SIZE]>>>,
    next_file: u32,
}

/// In-memory page store with I/O accounting.
#[derive(Default)]
pub struct MemDisk {
    state: Mutex<DiskState>,
    stats: IoStats,
}

impl MemDisk {
    /// A fresh, empty disk.
    pub fn new() -> Self {
        MemDisk::default()
    }

    /// Total bytes "on disk" (for reporting).
    pub fn size_bytes(&self) -> usize {
        let st = self.state.lock();
        st.files.values().map(|f| f.len() * PAGE_SIZE).sum()
    }

    /// Ids of all existing files.
    pub fn file_ids(&self) -> Vec<FileId> {
        self.state.lock().files.keys().copied().collect()
    }
}

impl DiskManager for MemDisk {
    fn create_file(&self) -> Result<FileId> {
        let mut st = self.state.lock();
        st.next_file += 1;
        let id = FileId(st.next_file);
        st.files.insert(id, Vec::new());
        self.stats.files_created.fetch_add(1, Ordering::Relaxed);
        Ok(id)
    }

    fn delete_file(&self, file: FileId) -> Result<()> {
        let mut st = self.state.lock();
        st.files
            .remove(&file)
            .ok_or_else(|| DmxError::NotFound(format!("file {file}")))?;
        self.stats.files_deleted.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn allocate_page(&self, file: FileId) -> Result<PageId> {
        let mut st = self.state.lock();
        let f = st
            .files
            .get_mut(&file)
            .ok_or_else(|| DmxError::NotFound(format!("file {file}")))?;
        if f.len() >= u32::MAX as usize {
            return Err(DmxError::Io("file full".into()));
        }
        f.push(Box::new([0u8; PAGE_SIZE]));
        self.stats.allocs.fetch_add(1, Ordering::Relaxed);
        Ok(PageId::new(file, (f.len() - 1) as u32))
    }

    fn read_page(&self, pid: PageId, out: &mut Page) -> Result<()> {
        let st = self.state.lock();
        let f = st
            .files
            .get(&pid.file)
            .ok_or_else(|| DmxError::NotFound(format!("file {}", pid.file)))?;
        let img = f
            .get(pid.page_no as usize)
            .ok_or_else(|| DmxError::NotFound(format!("page {pid}")))?;
        out.raw_mut().copy_from_slice(img.as_slice());
        self.stats.reads.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn write_page(&self, pid: PageId, page: &Page) -> Result<()> {
        let mut st = self.state.lock();
        let f = st
            .files
            .get_mut(&pid.file)
            .ok_or_else(|| DmxError::NotFound(format!("file {}", pid.file)))?;
        let img = f
            .get_mut(pid.page_no as usize)
            .ok_or_else(|| DmxError::NotFound(format!("page {pid}")))?;
        img.copy_from_slice(page.raw());
        self.stats.writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn page_count(&self, file: FileId) -> Result<u32> {
        let st = self.state.lock();
        st.files
            .get(&file)
            .map(|f| f.len() as u32)
            .ok_or_else(|| DmxError::NotFound(format!("file {file}")))
    }

    fn file_exists(&self, file: FileId) -> bool {
        self.state.lock().files.contains_key(&file)
    }

    fn stats(&self) -> &IoStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_allocate_read_write() {
        let d = MemDisk::new();
        let f = d.create_file().unwrap();
        let pid = d.allocate_page(f).unwrap();
        assert_eq!(pid.page_no, 0);

        let mut p = Page::new();
        p.body_mut()[0] = 42;
        p.set_lsn(dmx_types::Lsn(9));
        d.write_page(pid, &p).unwrap();

        let mut back = Page::new();
        d.read_page(pid, &mut back).unwrap();
        assert_eq!(back.body()[0], 42);
        assert_eq!(back.lsn(), dmx_types::Lsn(9));
        assert_eq!(d.page_count(f).unwrap(), 1);
    }

    #[test]
    fn missing_objects_error() {
        let d = MemDisk::new();
        let mut p = Page::new();
        assert!(d.read_page(PageId::new(FileId(5), 0), &mut p).is_err());
        assert!(d.allocate_page(FileId(5)).is_err());
        assert!(d.delete_file(FileId(5)).is_err());
        let f = d.create_file().unwrap();
        assert!(d.read_page(PageId::new(f, 3), &mut p).is_err());
    }

    #[test]
    fn delete_file_frees_pages() {
        let d = MemDisk::new();
        let f = d.create_file().unwrap();
        d.allocate_page(f).unwrap();
        assert!(d.file_exists(f));
        d.delete_file(f).unwrap();
        assert!(!d.file_exists(f));
        assert!(d.page_count(f).is_err());
    }

    #[test]
    fn stats_count_operations() {
        let d = MemDisk::new();
        let before = d.stats().snapshot();
        let f = d.create_file().unwrap();
        let pid = d.allocate_page(f).unwrap();
        let p = Page::new();
        d.write_page(pid, &p).unwrap();
        let mut out = Page::new();
        d.read_page(pid, &mut out).unwrap();
        d.read_page(pid, &mut out).unwrap();
        let delta = d.stats().snapshot().since(&before);
        assert_eq!(delta.files_created, 1);
        assert_eq!(delta.allocs, 1);
        assert_eq!(delta.writes, 1);
        assert_eq!(delta.reads, 2);
        assert_eq!(delta.io(), 3);
    }

    #[test]
    fn file_ids_monotonic_and_unique() {
        let d = MemDisk::new();
        let a = d.create_file().unwrap();
        let b = d.create_file().unwrap();
        assert!(b > a);
        assert_eq!(d.file_ids(), vec![a, b]);
    }
}
