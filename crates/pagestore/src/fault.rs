//! Fault-injecting disk wrapper.
//!
//! [`FaultDisk`] interposes a [`FaultInjector`] between callers and a
//! [`MemDisk`], so a seeded [`dmx_types::FaultPlan`] can fail, tear, or
//! corrupt any individual disk operation. The wrapper is the *only*
//! sanctioned way to build a runtime disk (enforced by `cargo xtask
//! verify`): production code constructs a pass-through plan, test
//! harnesses supply hostile ones, and both exercise the identical code
//! path.
//!
//! Like `MemDisk`, the wrapper survives a simulated crash: keep the
//! `Arc<FaultDisk>`, drop everything else, call
//! [`FaultInjector::clear`], reopen.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use dmx_types::{FaultDecision, FaultInjector, FileId, PageId, Result};

use crate::disk::{DiskManager, IoStats, MemDisk};
use crate::page::{Page, PAGE_SIZE};

/// A [`DiskManager`] that consults a [`FaultInjector`] before every
/// operation. Structural operations (create/delete/allocate) are counted
/// in the same global I/O sequence as page transfers so crash points
/// exist inside DDL, not just DML.
pub struct FaultDisk {
    inner: Arc<MemDisk>,
    injector: Arc<FaultInjector>,
}

impl FaultDisk {
    /// A fresh empty disk behind `injector`.
    pub fn fresh(injector: Arc<FaultInjector>) -> Arc<Self> {
        FaultDisk::over(Arc::new(MemDisk::new()), injector)
    }

    /// Wraps an existing disk image (the crash-survival path: same
    /// `MemDisk`, new wrapper/injector).
    pub fn over(inner: Arc<MemDisk>, injector: Arc<FaultInjector>) -> Arc<Self> {
        Arc::new(FaultDisk { inner, injector })
    }

    /// The wrapped disk image (shared with the crash-surviving
    /// environment).
    pub fn inner(&self) -> &Arc<MemDisk> {
        &self.inner
    }

    /// The injector driving this wrapper.
    pub fn injector(&self) -> &Arc<FaultInjector> {
        &self.injector
    }

    /// Consults the injector for a structural (non-page) operation; flips
    /// degrade to pass-through since there is no image to corrupt.
    fn gate(&self, is_write: bool, what: &str) -> Result<()> {
        let decision = self.injector.decide(is_write);
        if !matches!(decision, FaultDecision::Proceed) {
            self.count_fault();
        }
        match FaultInjector::error_for(decision, what) {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn count_fault(&self) {
        self.inner
            .stats()
            .faults_injected
            .fetch_add(1, Ordering::Relaxed);
    }
}

impl DiskManager for FaultDisk {
    fn create_file(&self) -> Result<FileId> {
        self.gate(true, "create_file")?;
        self.inner.create_file()
    }

    fn delete_file(&self, file: FileId) -> Result<()> {
        self.gate(true, "delete_file")?;
        self.inner.delete_file(file)
    }

    fn allocate_page(&self, file: FileId) -> Result<PageId> {
        self.gate(true, "allocate_page")?;
        self.inner.allocate_page(file)
    }

    fn read_page(&self, pid: PageId, out: &mut Page) -> Result<()> {
        let decision = self.injector.decide(false);
        match decision {
            FaultDecision::Proceed => self.inner.read_page(pid, out),
            FaultDecision::FlipByte { raw } => {
                self.count_fault();
                self.inner.read_page(pid, out)?;
                if let Some((off, bit)) = FaultDecision::flip_target(raw, PAGE_SIZE) {
                    // bounds: flip_target reduces off modulo PAGE_SIZE
                    out.raw_mut()[off] ^= bit;
                }
                Ok(())
            }
            other => {
                self.count_fault();
                match FaultInjector::error_for(other, "read_page") {
                    Some(e) => Err(e),
                    None => self.inner.read_page(pid, out),
                }
            }
        }
    }

    fn write_page(&self, pid: PageId, page: &Page) -> Result<()> {
        let decision = self.injector.decide(true);
        match decision {
            FaultDecision::Proceed => self.inner.write_page(pid, page),
            FaultDecision::FlipByte { raw } => {
                self.count_fault();
                let mut dirty = page.clone();
                if let Some((off, bit)) = FaultDecision::flip_target(raw, PAGE_SIZE) {
                    // bounds: flip_target reduces off modulo PAGE_SIZE
                    dirty.raw_mut()[off] ^= bit;
                }
                self.inner.write_page(pid, &dirty)
            }
            FaultDecision::Torn { raw } => {
                self.count_fault();
                // Persist a prefix of the new image over the old one —
                // exactly what a power cut mid-sector-sequence leaves
                // behind — then report the crash.
                let keep = (raw as usize) % PAGE_SIZE;
                let mut merged = Page::new();
                if self.inner.read_page(pid, &mut merged).is_ok() {
                    // bounds: keep < PAGE_SIZE by the modulo above
                    merged.raw_mut()[..keep].copy_from_slice(&page.raw()[..keep]);
                    let _ = self.inner.write_page(pid, &merged);
                }
                match FaultInjector::error_for(decision, "write_page") {
                    Some(e) => Err(e),
                    None => Ok(()),
                }
            }
            other => {
                self.count_fault();
                match FaultInjector::error_for(other, "write_page") {
                    Some(e) => Err(e),
                    None => self.inner.write_page(pid, page),
                }
            }
        }
    }

    fn page_count(&self, file: FileId) -> Result<u32> {
        self.inner.page_count(file)
    }

    fn file_exists(&self, file: FileId) -> bool {
        self.inner.file_exists(file)
    }

    fn stats(&self) -> &IoStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmx_types::{DmxError, FaultPlan};

    fn setup(plan: FaultPlan) -> (Arc<FaultDisk>, FileId, PageId) {
        // Plans in these tests schedule faults at indices ≥ 2 so setup
        // (create at 0, allocate at 1) always succeeds.
        let disk = FaultDisk::fresh(FaultInjector::new(plan));
        let f = disk.create_file().unwrap();
        let pid = disk.allocate_page(f).unwrap();
        (disk, f, pid)
    }

    #[test]
    fn passthrough_behaves_like_memdisk() {
        let (disk, f, pid) = setup(FaultPlan::new(0));
        let mut p = Page::new();
        p.body_mut()[0] = 9;
        disk.write_page(pid, &p).unwrap();
        let mut back = Page::new();
        disk.read_page(pid, &mut back).unwrap();
        assert_eq!(back.body()[0], 9);
        assert_eq!(disk.page_count(f).unwrap(), 1);
        assert_eq!(disk.stats().snapshot().faults_injected, 0);
    }

    #[test]
    fn transient_read_fails_once_then_succeeds() {
        let (disk, _f, pid) = setup(FaultPlan::new(1).transient_at(3));
        disk.write_page(pid, &Page::new()).unwrap(); // io 2
        let mut out = Page::new();
        let err = disk.read_page(pid, &mut out).unwrap_err(); // io 3
        assert!(err.is_transient_io());
        disk.read_page(pid, &mut out).unwrap(); // io 4: clean retry
        assert_eq!(disk.stats().snapshot().faults_injected, 1);
    }

    #[test]
    fn flip_byte_corrupts_persisted_image() {
        let (disk, _f, pid) = setup(FaultPlan::new(5).flip_at(2));
        let mut p = Page::new();
        p.stamp_crc();
        disk.write_page(pid, &p).unwrap(); // io 2: flipped on the way down
        let mut back = Page::new();
        disk.read_page(pid, &mut back).unwrap();
        assert!(!back.verify_crc());
    }

    #[test]
    fn torn_write_persists_prefix_then_crashes() {
        let (disk, _f, pid) = setup(FaultPlan::new(3).torn_at(3));
        let mut old = Page::new();
        old.body_mut().fill(0xAA);
        old.stamp_crc();
        disk.write_page(pid, &old).unwrap(); // io 2
        let mut new = Page::new();
        new.body_mut().fill(0xBB);
        new.stamp_crc();
        let err = disk.write_page(pid, &new).unwrap_err(); // io 3: torn
        assert!(matches!(err, DmxError::Io(_)));
        assert!(disk.injector().is_crashed());
        // all later I/O fails until cleared
        let mut out = Page::new();
        assert!(disk.read_page(pid, &mut out).is_err());
        disk.injector().clear();
        disk.read_page(pid, &mut out).unwrap();
        // the image is a mix of old and new bytes and fails its CRC
        assert!(!out.verify_crc());
        let body = out.body();
        assert!(body.contains(&0xAA) || body.contains(&0xBB));
    }

    #[test]
    fn crash_point_in_ddl_path() {
        let disk = FaultDisk::fresh(FaultInjector::new(FaultPlan::new(0).crash_at(0)));
        assert!(matches!(disk.create_file(), Err(DmxError::Io(_))));
        assert!(disk.injector().is_crashed());
    }
}
