//! Fixed-size pages.
//!
//! Every page begins with a small generic header (page LSN + page type)
//! that the recovery machinery understands regardless of which extension
//! owns the page; the rest of the page is extension-defined.

use dmx_types::crc::crc32_update;
use dmx_types::Lsn;

/// Page size in bytes. 8 KiB, a common unit for slotted-page systems.
pub const PAGE_SIZE: usize = 8192;

/// Size of the generic page header: LSN (8) + page type (1) + padding (3)
/// + CRC32 (4).
pub const PAGE_HEADER_SIZE: usize = 16;

const LSN_OFFSET: usize = 0;
const TYPE_OFFSET: usize = 8;
const CRC_OFFSET: usize = 12;

/// A fixed-size page image.
#[derive(Clone)]
pub struct Page {
    data: Box<[u8; PAGE_SIZE]>,
}

impl Default for Page {
    fn default() -> Self {
        Page {
            data: Box::new([0u8; PAGE_SIZE]),
        }
    }
}

impl Page {
    /// A zeroed page.
    pub fn new() -> Self {
        Page::default()
    }

    /// The page LSN: the LSN of the last log record describing a change to
    /// this page. Used by recovery for idempotent undo of physiological
    /// operations.
    pub fn lsn(&self) -> Lsn {
        Lsn(self.get_u64(LSN_OFFSET))
    }

    /// Stamps the page LSN.
    pub fn set_lsn(&mut self, lsn: Lsn) {
        self.put_u64(LSN_OFFSET, lsn.0);
    }

    /// Extension-assigned page type tag (e.g. heap data page, B-tree leaf).
    pub fn page_type(&self) -> u8 {
        self.data[TYPE_OFFSET]
    }

    /// Sets the page type tag.
    pub fn set_page_type(&mut self, t: u8) {
        self.data[TYPE_OFFSET] = t;
    }

    /// Computes the page checksum: CRC32 over the whole image with the
    /// stored checksum field counted as zero, mapped away from zero so
    /// that 0 can mean "never stamped" (a freshly allocated all-zero page
    /// verifies without a stamp).
    pub fn compute_crc(&self) -> u32 {
        let mut state = 0xFFFF_FFFF;
        // bounds: CRC_OFFSET + 4 <= PAGE_HEADER_SIZE < PAGE_SIZE, all consts
        state = crc32_update(state, &self.data[..CRC_OFFSET]);
        state = crc32_update(state, &[0u8; 4]);
        // bounds: CRC_OFFSET + 4 <= PAGE_HEADER_SIZE < PAGE_SIZE, all consts
        state = crc32_update(state, &self.data[CRC_OFFSET + 4..]);
        let crc = state ^ 0xFFFF_FFFF;
        if crc == 0 {
            1
        } else {
            crc
        }
    }

    /// The checksum currently stored in the header (0 = unstamped).
    pub fn stored_crc(&self) -> u32 {
        self.get_u32(CRC_OFFSET)
    }

    /// Stamps the header checksum over the current image. The buffer
    /// manager calls this on every flush; direct writers (the catalog
    /// image) must call it themselves.
    pub fn stamp_crc(&mut self) {
        let crc = self.compute_crc();
        self.put_u32(CRC_OFFSET, crc);
    }

    /// True when the stored checksum matches the image (or the page was
    /// never stamped). A `false` return means the bytes rotted between
    /// stamp and read — torn write, bit flip, or wild write.
    pub fn verify_crc(&self) -> bool {
        let stored = self.stored_crc();
        stored == 0 || stored == self.compute_crc()
    }

    /// The full page image, including the generic header.
    pub fn raw(&self) -> &[u8; PAGE_SIZE] {
        &self.data
    }

    /// Mutable full page image.
    pub fn raw_mut(&mut self) -> &mut [u8; PAGE_SIZE] {
        &mut self.data
    }

    /// The extension-owned body (everything after the generic header).
    pub fn body(&self) -> &[u8] {
        // bounds: PAGE_HEADER_SIZE < PAGE_SIZE, both compile-time consts
        &self.data[PAGE_HEADER_SIZE..]
    }

    /// Mutable extension-owned body.
    pub fn body_mut(&mut self) -> &mut [u8] {
        // bounds: PAGE_HEADER_SIZE < PAGE_SIZE, both compile-time consts
        &mut self.data[PAGE_HEADER_SIZE..]
    }

    /// Reads `N` little-endian bytes at `off`. Offsets are kernel- or
    /// extension-computed and in-page by contract; an out-of-page access
    /// is a bug, reported loudly in debug builds and read as zeroes in
    /// release (the corruption surfaces in the caller's validation
    /// instead of crashing the server).
    fn read_array<const N: usize>(&self, off: usize) -> [u8; N] {
        let mut out = [0u8; N];
        match self.data.get(off..off.saturating_add(N)) {
            Some(src) => out.copy_from_slice(src),
            None => debug_assert!(false, "page read of {N} bytes at {off} out of page"),
        }
        out
    }

    /// Writes `N` bytes at `off`; see [`Page::read_array`] for the
    /// out-of-page contract.
    fn write_array<const N: usize>(&mut self, off: usize, bytes: [u8; N]) {
        match self.data.get_mut(off..off.saturating_add(N)) {
            Some(dst) => dst.copy_from_slice(&bytes),
            None => debug_assert!(false, "page write of {N} bytes at {off} out of page"),
        }
    }

    /// Reads a little-endian u16 at a byte offset into the *full* page.
    pub fn get_u16(&self, off: usize) -> u16 {
        u16::from_le_bytes(self.read_array(off))
    }

    /// Writes a little-endian u16.
    pub fn put_u16(&mut self, off: usize, v: u16) {
        self.write_array(off, v.to_le_bytes());
    }

    /// Reads a little-endian u32.
    pub fn get_u32(&self, off: usize) -> u32 {
        u32::from_le_bytes(self.read_array(off))
    }

    /// Writes a little-endian u32.
    pub fn put_u32(&mut self, off: usize, v: u32) {
        self.write_array(off, v.to_le_bytes());
    }

    /// Reads a little-endian u64.
    pub fn get_u64(&self, off: usize) -> u64 {
        u64::from_le_bytes(self.read_array(off))
    }

    /// Writes a little-endian u64.
    pub fn put_u64(&mut self, off: usize, v: u64) {
        self.write_array(off, v.to_le_bytes());
    }
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Page")
            .field("lsn", &self.lsn())
            .field("type", &self.page_type())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_page_is_zeroed() {
        let p = Page::new();
        assert_eq!(p.lsn(), Lsn::NULL);
        assert_eq!(p.page_type(), 0);
        assert!(p.raw().iter().all(|&b| b == 0));
    }

    #[test]
    fn header_accessors() {
        let mut p = Page::new();
        p.set_lsn(Lsn(0xDEADBEEF));
        p.set_page_type(3);
        assert_eq!(p.lsn(), Lsn(0xDEADBEEF));
        assert_eq!(p.page_type(), 3);
    }

    #[test]
    fn body_excludes_header() {
        let mut p = Page::new();
        p.body_mut()[0] = 0xAB;
        assert_eq!(p.raw()[PAGE_HEADER_SIZE], 0xAB);
        assert_eq!(p.body().len(), PAGE_SIZE - PAGE_HEADER_SIZE);
        // header untouched by body writes
        assert_eq!(p.lsn(), Lsn::NULL);
    }

    #[test]
    fn crc_roundtrip_and_corruption() {
        let mut p = Page::new();
        // unstamped pages verify (fresh allocation)
        assert_eq!(p.stored_crc(), 0);
        assert!(p.verify_crc());

        p.set_lsn(Lsn(12));
        p.body_mut()[100] = 0x77;
        p.stamp_crc();
        assert_ne!(p.stored_crc(), 0);
        assert!(p.verify_crc());

        // stamping is stable: restamping an unmodified page is a no-op
        let stamped = p.stored_crc();
        p.stamp_crc();
        assert_eq!(p.stored_crc(), stamped);

        // any post-stamp mutation is detected, header or body
        p.body_mut()[100] ^= 0x01;
        assert!(!p.verify_crc());
        p.body_mut()[100] ^= 0x01;
        assert!(p.verify_crc());
        p.set_lsn(Lsn(13));
        assert!(!p.verify_crc());
    }

    #[test]
    fn scalar_accessors_roundtrip() {
        let mut p = Page::new();
        p.put_u16(100, 0x1234);
        p.put_u32(102, 0xAABBCCDD);
        p.put_u64(106, u64::MAX - 5);
        assert_eq!(p.get_u16(100), 0x1234);
        assert_eq!(p.get_u32(102), 0xAABBCCDD);
        assert_eq!(p.get_u64(106), u64::MAX - 5);
    }
}
