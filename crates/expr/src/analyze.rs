//! Predicate analysis for the cost-estimation interface.
//!
//! The query planner hands each storage method / access path a list of
//! "eligible" predicates; the extension determines their *relevance* to
//! its instance and estimates cost. This module provides the shared
//! analysis: conjunct extraction, referenced columns, and recognition of
//! *sargable* predicates (`field op constant`, plus the spatial
//! `ENCLOSES` / `INTERSECTS` forms the R-tree recognizes).

use std::collections::BTreeSet;

use dmx_types::{FieldId, Value};

use crate::ast::{CmpOp, Expr};

/// A sargable predicate an access path can evaluate against its key.
#[derive(Debug, Clone, PartialEq)]
pub struct Sarg {
    /// The base-table field the predicate constrains.
    pub field: FieldId,
    pub op: SargOp,
}

/// The constraint shape.
#[derive(Debug, Clone, PartialEq)]
pub enum SargOp {
    /// `field = v`
    Eq(Value),
    /// `field op v` for an ordering comparison (Lt/Le/Gt/Ge).
    Range(CmpOp, Value),
    /// `field ENCLOSES rect-const` — the record's rectangle encloses the
    /// constant.
    Encloses(Value),
    /// `rect-const ENCLOSES field` — the record's rectangle lies within
    /// the constant (a window query).
    EnclosedBy(Value),
    /// `field INTERSECTS rect-const` (symmetric).
    Intersects(Value),
}

/// Flattens a predicate into its top-level conjuncts.
pub fn conjuncts(expr: &Expr) -> Vec<&Expr> {
    match expr {
        Expr::And(terms) => terms.iter().flat_map(conjuncts).collect(),
        e => vec![e],
    }
}

/// All columns referenced anywhere in the expression.
pub fn columns(expr: &Expr) -> BTreeSet<FieldId> {
    let mut out = BTreeSet::new();
    collect_columns(expr, &mut out);
    out
}

fn collect_columns(expr: &Expr, out: &mut BTreeSet<FieldId>) {
    match expr {
        Expr::Const(_) | Expr::Param(_) => {}
        Expr::Column(id) => {
            out.insert(*id);
        }
        Expr::Cmp(_, l, r)
        | Expr::Arith(_, l, r)
        | Expr::Encloses(l, r)
        | Expr::Intersects(l, r) => {
            collect_columns(l, out);
            collect_columns(r, out);
        }
        Expr::And(v) | Expr::Or(v) => v.iter().for_each(|e| collect_columns(e, out)),
        Expr::Not(e) | Expr::Neg(e) | Expr::IsNull(e, _) | Expr::Like(e, _) => {
            collect_columns(e, out)
        }
        Expr::Func(_, args) => args.iter().for_each(|e| collect_columns(e, out)),
    }
}

/// Recognizes a single conjunct as sargable. Handles both operand orders.
pub fn sargable(expr: &Expr) -> Option<Sarg> {
    match expr {
        Expr::Cmp(op, l, r) => {
            let (field, op, v) = match (l.as_ref(), r.as_ref()) {
                (Expr::Column(f), Expr::Const(v)) => (*f, *op, v.clone()),
                (Expr::Const(v), Expr::Column(f)) => (*f, op.flipped(), v.clone()),
                _ => return None,
            };
            if v.is_null() {
                return None; // `x = NULL` never matches; not index-usable
            }
            match op {
                CmpOp::Eq => Some(Sarg {
                    field,
                    op: SargOp::Eq(v),
                }),
                CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => Some(Sarg {
                    field,
                    op: SargOp::Range(op, v),
                }),
                CmpOp::Ne => None,
            }
        }
        Expr::Encloses(l, r) => match (l.as_ref(), r.as_ref()) {
            (Expr::Column(f), Expr::Const(v)) if !v.is_null() => Some(Sarg {
                field: *f,
                op: SargOp::Encloses(v.clone()),
            }),
            (Expr::Const(v), Expr::Column(f)) if !v.is_null() => Some(Sarg {
                field: *f,
                op: SargOp::EnclosedBy(v.clone()),
            }),
            _ => None,
        },
        Expr::Intersects(l, r) => match (l.as_ref(), r.as_ref()) {
            (Expr::Column(f), Expr::Const(v)) | (Expr::Const(v), Expr::Column(f))
                if !v.is_null() =>
            {
                Some(Sarg {
                    field: *f,
                    op: SargOp::Intersects(v.clone()),
                })
            }
            _ => None,
        },
        _ => None,
    }
}

/// All sargable conjuncts of a predicate.
pub fn sargable_conjuncts(expr: &Expr) -> Vec<Sarg> {
    conjuncts(expr).into_iter().filter_map(sargable).collect()
}

/// A crude textbook selectivity guess used when no statistics apply.
pub fn default_selectivity(expr: &Expr) -> f64 {
    match expr {
        Expr::Cmp(CmpOp::Eq, _, _) => 0.05,
        Expr::Cmp(CmpOp::Ne, _, _) => 0.95,
        Expr::Cmp(_, _, _) => 1.0 / 3.0,
        Expr::And(v) => v.iter().map(default_selectivity).product(),
        Expr::Or(v) => {
            let p_none: f64 = v.iter().map(|e| 1.0 - default_selectivity(e)).product();
            1.0 - p_none
        }
        Expr::Not(e) => 1.0 - default_selectivity(e),
        Expr::IsNull(_, false) => 0.05,
        Expr::IsNull(_, true) => 0.95,
        Expr::Like(_, _) => 0.1,
        Expr::Encloses(_, _) | Expr::Intersects(_, _) => 0.05,
        Expr::Const(Value::Bool(true)) => 1.0,
        Expr::Const(Value::Bool(false)) => 0.0,
        _ => 0.5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmx_types::Rect;

    #[test]
    fn conjuncts_flatten_nested_ands() {
        let e = Expr::And(vec![
            Expr::col_eq(0, 1i64),
            Expr::And(vec![Expr::col_eq(1, 2i64), Expr::col_eq(2, 3i64)]),
        ]);
        assert_eq!(conjuncts(&e).len(), 3);
        assert_eq!(conjuncts(&Expr::col_eq(0, 1i64)).len(), 1);
    }

    #[test]
    fn columns_collects_everywhere() {
        let e = Expr::And(vec![
            Expr::col_eq(3, 1i64),
            Expr::Func("abs".into(), vec![Expr::Column(5)]),
            Expr::Like(Box::new(Expr::Column(1)), "x%".into()),
        ]);
        assert_eq!(columns(&e).into_iter().collect::<Vec<_>>(), vec![1, 3, 5]);
    }

    #[test]
    fn sargable_both_orders_and_flip() {
        let s = sargable(&Expr::col_eq(2, 9i64)).unwrap();
        assert_eq!(s.field, 2);
        assert_eq!(s.op, SargOp::Eq(Value::Int(9)));

        // 5 < col  ≡  col > 5
        let e = Expr::Cmp(
            CmpOp::Lt,
            Box::new(Expr::Const(Value::Int(5))),
            Box::new(Expr::Column(1)),
        );
        let s = sargable(&e).unwrap();
        assert_eq!(s.op, SargOp::Range(CmpOp::Gt, Value::Int(5)));
    }

    #[test]
    fn non_sargable_forms() {
        // column-to-column
        let e = Expr::Cmp(
            CmpOp::Eq,
            Box::new(Expr::Column(0)),
            Box::new(Expr::Column(1)),
        );
        assert!(sargable(&e).is_none());
        // != is not index-usable
        assert!(sargable(&Expr::cmp_col(CmpOp::Ne, 0, 1i64)).is_none());
        // NULL constant
        assert!(sargable(&Expr::col_eq(0, Value::Null)).is_none());
        // arithmetic-wrapped column
        let e = Expr::Cmp(
            CmpOp::Eq,
            Box::new(Expr::Arith(
                crate::ast::BinOp::Add,
                Box::new(Expr::Column(0)),
                Box::new(Expr::Const(Value::Int(1))),
            )),
            Box::new(Expr::Const(Value::Int(5))),
        );
        assert!(sargable(&e).is_none());
    }

    #[test]
    fn spatial_sargs_distinguish_direction() {
        let r = Value::Rect(Rect::new(0.0, 0.0, 1.0, 1.0));
        let e = Expr::Encloses(Box::new(Expr::Column(4)), Box::new(Expr::Const(r.clone())));
        assert_eq!(sargable(&e).unwrap().op, SargOp::Encloses(r.clone()));
        let e = Expr::Encloses(Box::new(Expr::Const(r.clone())), Box::new(Expr::Column(4)));
        assert_eq!(sargable(&e).unwrap().op, SargOp::EnclosedBy(r.clone()));
        let e = Expr::Intersects(Box::new(Expr::Const(r.clone())), Box::new(Expr::Column(4)));
        assert_eq!(sargable(&e).unwrap().op, SargOp::Intersects(r));
    }

    #[test]
    fn sargable_conjuncts_filters() {
        let e = Expr::And(vec![
            Expr::col_eq(0, 1i64),
            Expr::Like(Box::new(Expr::Column(1)), "x%".into()),
            Expr::cmp_col(CmpOp::Gt, 2, 5i64),
        ]);
        let sargs = sargable_conjuncts(&e);
        assert_eq!(sargs.len(), 2);
        assert_eq!(sargs[0].field, 0);
        assert_eq!(sargs[1].field, 2);
    }

    #[test]
    fn default_selectivities_are_probabilities() {
        let exprs = [
            Expr::col_eq(0, 1i64),
            Expr::cmp_col(CmpOp::Gt, 0, 1i64),
            Expr::And(vec![Expr::col_eq(0, 1i64), Expr::col_eq(1, 2i64)]),
            Expr::Or(vec![Expr::col_eq(0, 1i64), Expr::col_eq(1, 2i64)]),
            Expr::Not(Box::new(Expr::col_eq(0, 1i64))),
        ];
        for e in &exprs {
            let s = default_selectivity(e);
            assert!((0.0..=1.0).contains(&s), "{e:?} -> {s}");
        }
        // AND is more selective than either conjunct
        assert!(
            default_selectivity(&exprs[2]) < default_selectivity(&exprs[0]),
            "conjunction tightens"
        );
    }
}
