//! Maintained-statistics shapes and the stats-aware selectivity
//! estimator.
//!
//! The paper allows attachments "to maintain statistics about relations";
//! this module defines the *planner-facing* snapshot of such statistics —
//! per-relation row counts, per-field null/distinct counts, min/max and a
//! fixed-bucket equi-width histogram — plus [`selectivity`], the
//! estimator the cost-estimation interface consults. The estimator falls
//! back to [`super::analyze::default_selectivity`]'s textbook guesses for
//! any predicate (or column) the statistics do not cover, so partially
//! analyzed relations still benefit from whatever is known.
//!
//! The statistics *attachment* (crates/attach) owns durable maintenance
//! and publishes immutable [`TableStats`] snapshots; everything here is
//! pure computation over such a snapshot.

use dmx_types::{FieldId, Value};

use crate::analyze::{default_selectivity, sargable, SargOp};
use crate::ast::{CmpOp, Expr};

/// Number of equi-width histogram buckets maintained per field.
pub const HIST_BUCKETS: usize = 8;

/// A fixed-bucket equi-width histogram over a numeric field. Bucket `i`
/// covers `[lo + i*w, lo + (i+1)*w)` with `w = (hi - lo) / buckets`;
/// out-of-range values are clamped into the edge buckets (bounds are
/// frozen when the histogram is built by `ANALYZE`, while maintenance
/// continues under later DML).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    pub lo: f64,
    pub hi: f64,
    pub buckets: Vec<u64>,
}

impl Histogram {
    /// An empty histogram over `[lo, hi]` (degenerate ranges are widened
    /// so every bucket keeps a non-zero width).
    pub fn new(lo: f64, hi: f64) -> Histogram {
        let hi = if hi > lo { hi } else { lo + 1.0 };
        Histogram {
            lo,
            hi,
            buckets: vec![0; HIST_BUCKETS],
        }
    }

    fn width(&self) -> f64 {
        (self.hi - self.lo) / self.buckets.len() as f64
    }

    /// The bucket a value falls into, clamped to the edge buckets.
    pub fn bucket_index(&self, v: f64) -> usize {
        if self.buckets.is_empty() {
            return 0;
        }
        let raw = (v - self.lo) / self.width();
        (raw.max(0.0) as usize).min(self.buckets.len() - 1)
    }

    /// Adds (`delta = 1`) or removes (`delta = -1`) one value.
    pub fn add(&mut self, v: f64, delta: i64) {
        let i = self.bucket_index(v);
        let b = &mut self.buckets[i];
        *b = if delta >= 0 {
            b.saturating_add(delta as u64)
        } else {
            b.saturating_sub((-delta) as u64)
        };
    }

    /// Total count across all buckets.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Estimated fraction of counted values strictly below `v`, with
    /// linear interpolation inside the containing bucket.
    pub fn fraction_below(&self, v: f64) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.5;
        }
        if v <= self.lo {
            return 0.0;
        }
        if v >= self.hi {
            return 1.0;
        }
        let i = self.bucket_index(v);
        let full: u64 = self.buckets.iter().take(i).sum();
        let within = (v - (self.lo + i as f64 * self.width())) / self.width();
        (full as f64 + self.buckets[i] as f64 * within.clamp(0.0, 1.0)) / total as f64
    }
}

/// Maintained statistics for one field.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// NULL values currently in the relation.
    pub nulls: u64,
    /// Approximate distinct non-null values (linear-counting estimate;
    /// never shrinks under deletes until the next `ANALYZE`).
    pub distinct: u64,
    /// Smallest / largest value ever inserted (widen-only under DML,
    /// exact after `ANALYZE`).
    pub min: Option<Value>,
    pub max: Option<Value>,
    /// Present only after `ANALYZE` froze the bucket bounds.
    pub histogram: Option<Histogram>,
}

impl ColumnStats {
    fn non_null_fraction(&self, rows: u64) -> f64 {
        if rows == 0 {
            return 1.0;
        }
        1.0 - (self.nulls.min(rows) as f64 / rows as f64)
    }

    /// Fraction of rows whose value lies strictly below `v`, from the
    /// histogram when present, else interpolated between min and max.
    fn fraction_below(&self, v: f64) -> Option<f64> {
        if let Some(h) = &self.histogram {
            return Some(h.fraction_below(v));
        }
        let (lo, hi) = (
            value_to_f64(self.min.as_ref()?)?,
            value_to_f64(self.max.as_ref()?)?,
        );
        if hi <= lo {
            return Some(if v > lo { 1.0 } else { 0.0 });
        }
        Some(((v - lo) / (hi - lo)).clamp(0.0, 1.0))
    }

    /// Selectivity of one sargable constraint on this column, or `None`
    /// when the statistics cannot answer (non-numeric constant, spatial
    /// constraint, no data).
    pub fn sarg_selectivity(&self, op: &SargOp, rows: u64) -> Option<f64> {
        if rows == 0 {
            return Some(0.0);
        }
        let nn = self.non_null_fraction(rows);
        match op {
            SargOp::Eq(v) => {
                let x = value_to_f64(v)?;
                // min/max only widen under DML, so an out-of-range
                // constant provably matches nothing.
                if let (Some(lo), Some(hi)) = (
                    self.min.as_ref().and_then(value_to_f64),
                    self.max.as_ref().and_then(value_to_f64),
                ) {
                    if x < lo || x > hi {
                        return Some(0.0);
                    }
                }
                // With a histogram, localize the uniform-distinct guess
                // to the constant's bucket: skew a global distinct count
                // cannot see shows up as a heavy bucket.
                if let Some(h) = &self.histogram {
                    let total = h.total();
                    if total > 0 && !h.buckets.is_empty() {
                        let bfrac = h.buckets[h.bucket_index(x)] as f64 / total as f64;
                        let per_bucket =
                            (self.distinct.max(1) as f64 / h.buckets.len() as f64).max(1.0);
                        return Some((bfrac / per_bucket).clamp(0.0, 1.0));
                    }
                }
                Some((nn / self.distinct.max(1) as f64).clamp(0.0, 1.0))
            }
            SargOp::Range(cmp, v) => {
                let x = value_to_f64(v)?;
                let below = self.fraction_below(x)?;
                let sel = match cmp {
                    CmpOp::Lt | CmpOp::Le => below,
                    CmpOp::Gt | CmpOp::Ge => 1.0 - below,
                    _ => return None,
                };
                Some((sel * nn).clamp(0.0, 1.0))
            }
            SargOp::Encloses(_) | SargOp::EnclosedBy(_) | SargOp::Intersects(_) => None,
        }
    }
}

/// An immutable per-relation statistics snapshot, as published to the
/// planner (`sys.statistics` renders the same snapshot as rows).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TableStats {
    /// Rows currently in the relation (maintained exactly).
    pub rows: u64,
    /// Per-field statistics, indexed by [`FieldId`]; `None` for fields
    /// the attachment does not track (non-numeric types).
    pub columns: Vec<Option<ColumnStats>>,
}

impl TableStats {
    /// Statistics for one field, if tracked.
    pub fn column(&self, f: FieldId) -> Option<&ColumnStats> {
        self.columns.get(f as usize).and_then(|c| c.as_ref())
    }
}

/// Numeric view of a value for histogram / range math.
pub fn value_to_f64(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

/// Statistics-based fraction of rows matched by one sargable constraint
/// on `field`, or `None` when no snapshot covers the column (callers
/// fall back to their structural guess, e.g. `1/records` for a unique
/// key probe).
pub fn sarg_fraction(field: FieldId, op: &SargOp, stats: Option<&TableStats>) -> Option<f64> {
    let st = stats?;
    if st.rows == 0 {
        return None;
    }
    st.column(field)?.sarg_selectivity(op, st.rows)
}

/// Estimated selectivity of `expr`: statistics-driven where the snapshot
/// covers the constrained column, [`default_selectivity`] otherwise.
/// Passing `None` reproduces the guess-based baseline exactly.
pub fn selectivity(expr: &Expr, stats: Option<&TableStats>) -> f64 {
    match stats {
        Some(st) if st.rows > 0 => stats_selectivity(expr, st).clamp(0.0, 1.0),
        _ => default_selectivity(expr),
    }
}

fn stats_selectivity(expr: &Expr, st: &TableStats) -> f64 {
    match expr {
        Expr::And(v) => v.iter().map(|e| stats_selectivity(e, st)).product(),
        Expr::Or(v) => {
            let p_none: f64 = v.iter().map(|e| 1.0 - stats_selectivity(e, st)).product();
            1.0 - p_none
        }
        Expr::Not(e) => 1.0 - stats_selectivity(e, st),
        Expr::IsNull(inner, negated) => {
            if let Expr::Column(f) = inner.as_ref() {
                if let Some(cs) = st.column(*f) {
                    let nf = cs.nulls.min(st.rows) as f64 / st.rows as f64;
                    return if *negated { 1.0 - nf } else { nf };
                }
            }
            default_selectivity(expr)
        }
        // `x != c` is the complement of the (sargable) equality.
        Expr::Cmp(CmpOp::Ne, l, r) => {
            let eq = Expr::Cmp(CmpOp::Eq, l.clone(), r.clone());
            1.0 - stats_selectivity(&eq, st)
        }
        Expr::Cmp(_, _, _) => {
            if let Some(s) = sargable(expr) {
                if let Some(cs) = st.column(s.field) {
                    if let Some(sel) = cs.sarg_selectivity(&s.op, st.rows) {
                        return sel;
                    }
                }
            }
            default_selectivity(expr)
        }
        _ => default_selectivity(expr),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(nulls: u64, distinct: u64, min: i64, max: i64, hist: Option<Histogram>) -> ColumnStats {
        ColumnStats {
            nulls,
            distinct,
            min: Some(Value::Int(min)),
            max: Some(Value::Int(max)),
            histogram: hist,
        }
    }

    fn uniform_hist(lo: f64, hi: f64, per_bucket: u64) -> Histogram {
        let mut h = Histogram::new(lo, hi);
        for b in &mut h.buckets {
            *b = per_bucket;
        }
        h
    }

    #[test]
    fn histogram_fraction_below() {
        let h = uniform_hist(0.0, 800.0, 100);
        assert_eq!(h.fraction_below(-5.0), 0.0);
        assert_eq!(h.fraction_below(900.0), 1.0);
        let f = h.fraction_below(200.0);
        assert!((f - 0.25).abs() < 1e-9, "{f}");
        // interpolation inside a bucket
        let f = h.fraction_below(50.0);
        assert!((f - 0.0625).abs() < 1e-9, "{f}");
    }

    #[test]
    fn histogram_clamps_out_of_range_values() {
        let mut h = Histogram::new(0.0, 8.0);
        h.add(-100.0, 1);
        h.add(100.0, 1);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[HIST_BUCKETS - 1], 1);
        h.add(-100.0, -1);
        assert_eq!(h.buckets[0], 0);
        h.add(-100.0, -1); // never underflows
        assert_eq!(h.buckets[0], 0);
    }

    #[test]
    fn eq_uses_distinct_count() {
        let st = TableStats {
            rows: 1000,
            columns: vec![Some(col(0, 10, 0, 9, None))],
        };
        let sel = selectivity(&Expr::col_eq(0, 5i64), Some(&st));
        assert!((sel - 0.1).abs() < 1e-9, "{sel}");
        // out-of-range constant provably matches nothing
        let sel = selectivity(&Expr::col_eq(0, 99i64), Some(&st));
        assert_eq!(sel, 0.0);
        // != is the complement
        let sel = selectivity(&Expr::cmp_col(CmpOp::Ne, 0, 5i64), Some(&st));
        assert!((sel - 0.9).abs() < 1e-9, "{sel}");
    }

    #[test]
    fn range_uses_histogram_then_minmax() {
        let st = TableStats {
            rows: 800,
            columns: vec![Some(col(
                0,
                800,
                0,
                800,
                Some(uniform_hist(0.0, 800.0, 100)),
            ))],
        };
        let sel = selectivity(&Expr::cmp_col(CmpOp::Lt, 0, 200i64), Some(&st));
        assert!((sel - 0.25).abs() < 1e-9, "{sel}");
        // same query without a histogram: min/max interpolation
        let st2 = TableStats {
            rows: 800,
            columns: vec![Some(col(0, 800, 0, 800, None))],
        };
        let sel = selectivity(&Expr::cmp_col(CmpOp::Gt, 0, 600i64), Some(&st2));
        assert!((sel - 0.25).abs() < 1e-9, "{sel}");
    }

    #[test]
    fn nulls_shape_isnull_and_sarg_selectivity() {
        let st = TableStats {
            rows: 100,
            columns: vec![Some(col(25, 5, 0, 9, None))],
        };
        let is_null = Expr::IsNull(Box::new(Expr::Column(0)), false);
        assert!((selectivity(&is_null, Some(&st)) - 0.25).abs() < 1e-9);
        let not_null = Expr::IsNull(Box::new(Expr::Column(0)), true);
        assert!((selectivity(&not_null, Some(&st)) - 0.75).abs() < 1e-9);
        // Eq is scaled by the non-null fraction: 0.75 / 5 distinct
        let sel = selectivity(&Expr::col_eq(0, 5i64), Some(&st));
        assert!((sel - 0.15).abs() < 1e-9, "{sel}");
    }

    #[test]
    fn falls_back_to_defaults_without_stats() {
        let e = Expr::col_eq(0, 1i64);
        assert_eq!(selectivity(&e, None), default_selectivity(&e));
        // untracked column falls back too
        let st = TableStats {
            rows: 10,
            columns: vec![None],
        };
        assert_eq!(selectivity(&e, Some(&st)), default_selectivity(&e));
        // empty relation: everything is zero-selectivity… via defaults
        let st = TableStats {
            rows: 0,
            columns: vec![],
        };
        assert_eq!(selectivity(&e, Some(&st)), default_selectivity(&e));
    }

    #[test]
    fn boolean_combinations_stay_probabilities() {
        let st = TableStats {
            rows: 1000,
            columns: vec![Some(col(0, 10, 0, 9, None)), Some(col(0, 100, 0, 99, None))],
        };
        let e = Expr::And(vec![Expr::col_eq(0, 1i64), Expr::col_eq(1, 2i64)]);
        let s = selectivity(&e, Some(&st));
        assert!((s - 0.001).abs() < 1e-9, "{s}");
        let e = Expr::Or(vec![Expr::col_eq(0, 1i64), Expr::col_eq(1, 2i64)]);
        let s = selectivity(&e, Some(&st));
        assert!((0.0..=1.0).contains(&s) && s > 0.1, "{s}");
        let e = Expr::Not(Box::new(Expr::col_eq(0, 1i64)));
        assert!((selectivity(&e, Some(&st)) - 0.9).abs() < 1e-9);
    }
}
