//! User-function registry for the predicate evaluator.
//!
//! The paper's envisioned predicate evaluator can "call functions that are
//! passed to it". Functions are registered by name at database
//! registration time (like extensions, "at the factory") and invoked
//! through [`crate::ast::Expr::Func`].

use std::collections::HashMap;
use std::sync::Arc;

use dmx_types::{DmxError, Result, Value};

/// A registered scalar function.
pub type ScalarFn = Arc<dyn Fn(&[Value]) -> Result<Value> + Send + Sync>;

/// Name → function mapping with the built-ins pre-registered.
#[derive(Clone, Default)]
pub struct FunctionRegistry {
    funcs: HashMap<String, ScalarFn>,
}

impl FunctionRegistry {
    /// An empty registry (no built-ins).
    pub fn empty() -> Self {
        FunctionRegistry::default()
    }

    /// A registry with the built-in functions: `abs`, `lower`, `upper`,
    /// `length`, `area`.
    pub fn with_builtins() -> Self {
        let mut r = FunctionRegistry::default();
        r.register("abs", |args| {
            expect_arity("abs", args, 1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                Value::Int(i) => Ok(Value::Int(i.wrapping_abs())),
                Value::Float(x) => Ok(Value::Float(x.abs())),
                other => Err(DmxError::TypeMismatch(format!("abs({other})"))),
            }
        });
        r.register("lower", |args| {
            expect_arity("lower", args, 1)?;
            str_fn(&args[0], |s| s.to_lowercase())
        });
        r.register("upper", |args| {
            expect_arity("upper", args, 1)?;
            str_fn(&args[0], |s| s.to_uppercase())
        });
        r.register("length", |args| {
            expect_arity("length", args, 1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                Value::Str(s) => Ok(Value::Int(s.chars().count() as i64)),
                Value::Bytes(b) => Ok(Value::Int(b.len() as i64)),
                other => Err(DmxError::TypeMismatch(format!("length({other})"))),
            }
        });
        r.register("area", |args| {
            expect_arity("area", args, 1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                Value::Rect(rect) => Ok(Value::Float(rect.area())),
                other => Err(DmxError::TypeMismatch(format!("area({other})"))),
            }
        });
        r
    }

    /// Registers (or replaces) a function under a case-insensitive name.
    pub fn register(
        &mut self,
        name: &str,
        f: impl Fn(&[Value]) -> Result<Value> + Send + Sync + 'static,
    ) {
        self.funcs.insert(name.to_ascii_lowercase(), Arc::new(f));
    }

    /// Looks a function up.
    pub fn get(&self, name: &str) -> Result<&ScalarFn> {
        self.funcs
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| DmxError::NotFound(format!("function {name}")))
    }

    /// True when `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.funcs.contains_key(&name.to_ascii_lowercase())
    }
}

fn expect_arity(name: &str, args: &[Value], n: usize) -> Result<()> {
    if args.len() != n {
        return Err(DmxError::InvalidArg(format!(
            "{name} expects {n} argument(s), got {}",
            args.len()
        )));
    }
    Ok(())
}

fn str_fn(v: &Value, f: impl Fn(&str) -> String) -> Result<Value> {
    match v {
        Value::Null => Ok(Value::Null),
        Value::Str(s) => Ok(Value::Str(f(s))),
        other => Err(DmxError::TypeMismatch(format!(
            "expected string, got {other}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmx_types::Rect;

    #[test]
    fn builtins_work() {
        let r = FunctionRegistry::with_builtins();
        assert_eq!(
            r.get("ABS").unwrap()(&[Value::Int(-4)]).unwrap(),
            Value::Int(4)
        );
        assert_eq!(
            r.get("lower").unwrap()(&[Value::from("HeLLo")]).unwrap(),
            Value::from("hello")
        );
        assert_eq!(
            r.get("length").unwrap()(&[Value::from("abc")]).unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            r.get("area").unwrap()(&[Value::Rect(Rect::new(0.0, 0.0, 2.0, 3.0))]).unwrap(),
            Value::Float(6.0)
        );
    }

    #[test]
    fn nulls_propagate_and_types_checked() {
        let r = FunctionRegistry::with_builtins();
        assert_eq!(r.get("abs").unwrap()(&[Value::Null]).unwrap(), Value::Null);
        assert!(r.get("abs").unwrap()(&[Value::from("x")]).is_err());
        assert!(r.get("abs").unwrap()(&[]).is_err());
    }

    #[test]
    fn user_registration_and_lookup() {
        let mut r = FunctionRegistry::empty();
        assert!(!r.contains("double"));
        r.register("double", |args| Ok(Value::Int(args[0].as_int()? * 2)));
        assert!(r.contains("DOUBLE"));
        assert_eq!(
            r.get("Double").unwrap()(&[Value::Int(21)]).unwrap(),
            Value::Int(42)
        );
        assert!(r.get("missing").is_err());
    }
}
