//! The common-services predicate encoding.
//!
//! The paper's example: "a simple integrity constraint extension
//! descriptor would contain a (Common Service) encoding of the predicate
//! to be tested when records of the relation are inserted or updated."
//! This module provides that encoding: a compact self-contained byte
//! serialization of [`Expr`] that extension descriptors embed.

use dmx_types::{DmxError, Rect, Result, Value};

use crate::ast::{BinOp, CmpOp, Expr};

const T_CONST: u8 = 1;
const T_COLUMN: u8 = 2;
const T_PARAM: u8 = 3;
const T_CMP: u8 = 4;
const T_AND: u8 = 5;
const T_OR: u8 = 6;
const T_NOT: u8 = 7;
const T_ARITH: u8 = 8;
const T_NEG: u8 = 9;
const T_ISNULL: u8 = 10;
const T_LIKE: u8 = 11;
const T_ENCLOSES: u8 = 12;
const T_INTERSECTS: u8 = 13;
const T_FUNC: u8 = 14;

const V_NULL: u8 = 0;
const V_BOOL: u8 = 1;
const V_INT: u8 = 2;
const V_FLOAT: u8 = 3;
const V_STR: u8 = 4;
const V_BYTES: u8 = 5;
const V_RECT: u8 = 6;

/// Serializes an expression.
pub fn encode_expr(e: &Expr) -> Vec<u8> {
    let mut out = Vec::new();
    put_expr(e, &mut out);
    out
}

fn put_expr(e: &Expr, out: &mut Vec<u8>) {
    match e {
        Expr::Const(v) => {
            out.push(T_CONST);
            put_value(v, out);
        }
        Expr::Column(id) => {
            out.push(T_COLUMN);
            out.extend_from_slice(&id.to_le_bytes());
        }
        Expr::Param(i) => {
            out.push(T_PARAM);
            out.extend_from_slice(&(*i as u32).to_le_bytes());
        }
        Expr::Cmp(op, l, r) => {
            out.push(T_CMP);
            out.push(cmp_tag(*op));
            put_expr(l, out);
            put_expr(r, out);
        }
        Expr::And(v) | Expr::Or(v) => {
            out.push(if matches!(e, Expr::And(_)) {
                T_AND
            } else {
                T_OR
            });
            out.extend_from_slice(&(v.len() as u16).to_le_bytes());
            for t in v {
                put_expr(t, out);
            }
        }
        Expr::Not(inner) => {
            out.push(T_NOT);
            put_expr(inner, out);
        }
        Expr::Arith(op, l, r) => {
            out.push(T_ARITH);
            out.push(match op {
                BinOp::Add => 0,
                BinOp::Sub => 1,
                BinOp::Mul => 2,
                BinOp::Div => 3,
                BinOp::Mod => 4,
            });
            put_expr(l, out);
            put_expr(r, out);
        }
        Expr::Neg(inner) => {
            out.push(T_NEG);
            put_expr(inner, out);
        }
        Expr::IsNull(inner, negated) => {
            out.push(T_ISNULL);
            out.push(*negated as u8);
            put_expr(inner, out);
        }
        Expr::Like(inner, pattern) => {
            out.push(T_LIKE);
            put_bytes(pattern.as_bytes(), out);
            put_expr(inner, out);
        }
        Expr::Encloses(l, r) => {
            out.push(T_ENCLOSES);
            put_expr(l, out);
            put_expr(r, out);
        }
        Expr::Intersects(l, r) => {
            out.push(T_INTERSECTS);
            put_expr(l, out);
            put_expr(r, out);
        }
        Expr::Func(name, args) => {
            out.push(T_FUNC);
            put_bytes(name.as_bytes(), out);
            out.extend_from_slice(&(args.len() as u16).to_le_bytes());
            for a in args {
                put_expr(a, out);
            }
        }
    }
}

fn cmp_tag(op: CmpOp) -> u8 {
    match op {
        CmpOp::Eq => 0,
        CmpOp::Ne => 1,
        CmpOp::Lt => 2,
        CmpOp::Le => 3,
        CmpOp::Gt => 4,
        CmpOp::Ge => 5,
    }
}

fn put_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(V_NULL),
        Value::Bool(b) => {
            out.push(V_BOOL);
            out.push(*b as u8);
        }
        Value::Int(i) => {
            out.push(V_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(x) => {
            out.push(V_FLOAT);
            out.extend_from_slice(&x.to_le_bytes());
        }
        Value::Str(s) => {
            out.push(V_STR);
            put_bytes(s.as_bytes(), out);
        }
        Value::Bytes(b) => {
            out.push(V_BYTES);
            put_bytes(b, out);
        }
        Value::Rect(r) => {
            out.push(V_RECT);
            out.extend_from_slice(&r.to_bytes());
        }
    }
}

fn put_bytes(b: &[u8], out: &mut Vec<u8>) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

/// Deserializes an expression produced by [`encode_expr`].
pub fn decode_expr(buf: &[u8]) -> Result<Expr> {
    let mut pos = 0usize;
    let e = get_expr(buf, &mut pos)?;
    if pos != buf.len() {
        return Err(DmxError::Corrupt("trailing bytes after expression".into()));
    }
    Ok(e)
}

fn corrupt() -> DmxError {
    DmxError::Corrupt("truncated expression".into())
}

fn take<'a>(buf: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8]> {
    let s = buf.get(*pos..*pos + n).ok_or_else(corrupt)?;
    *pos += n;
    Ok(s)
}

fn take_u16(buf: &[u8], pos: &mut usize) -> Result<u16> {
    let b: [u8; 2] = take(buf, pos, 2)?.try_into().map_err(|_| corrupt())?;
    Ok(u16::from_le_bytes(b))
}

fn take_u32(buf: &[u8], pos: &mut usize) -> Result<u32> {
    let b: [u8; 4] = take(buf, pos, 4)?.try_into().map_err(|_| corrupt())?;
    Ok(u32::from_le_bytes(b))
}

fn take_u64(buf: &[u8], pos: &mut usize) -> Result<u64> {
    let b: [u8; 8] = take(buf, pos, 8)?.try_into().map_err(|_| corrupt())?;
    Ok(u64::from_le_bytes(b))
}

fn get_bytes(buf: &[u8], pos: &mut usize) -> Result<Vec<u8>> {
    let len = take_u32(buf, pos)? as usize;
    Ok(take(buf, pos, len)?.to_vec())
}

fn get_string(buf: &[u8], pos: &mut usize) -> Result<String> {
    String::from_utf8(get_bytes(buf, pos)?)
        .map_err(|_| DmxError::Corrupt("expression string not utf8".into()))
}

fn get_value(buf: &[u8], pos: &mut usize) -> Result<Value> {
    let tag = take(buf, pos, 1)?[0];
    Ok(match tag {
        V_NULL => Value::Null,
        V_BOOL => Value::Bool(take(buf, pos, 1)?[0] != 0),
        V_INT => Value::Int(take_u64(buf, pos)? as i64),
        V_FLOAT => Value::Float(f64::from_bits(take_u64(buf, pos)?)),
        V_STR => Value::Str(get_string(buf, pos)?),
        V_BYTES => Value::Bytes(get_bytes(buf, pos)?),
        V_RECT => Value::Rect(Rect::from_bytes(take(buf, pos, 32)?).ok_or_else(corrupt)?),
        other => return Err(DmxError::Corrupt(format!("bad value tag {other}"))),
    })
}

fn get_cmp(tag: u8) -> Result<CmpOp> {
    Ok(match tag {
        0 => CmpOp::Eq,
        1 => CmpOp::Ne,
        2 => CmpOp::Lt,
        3 => CmpOp::Le,
        4 => CmpOp::Gt,
        5 => CmpOp::Ge,
        other => return Err(DmxError::Corrupt(format!("bad cmp tag {other}"))),
    })
}

fn get_expr(buf: &[u8], pos: &mut usize) -> Result<Expr> {
    let tag = take(buf, pos, 1)?[0];
    Ok(match tag {
        T_CONST => Expr::Const(get_value(buf, pos)?),
        T_COLUMN => Expr::Column(take_u16(buf, pos)?),
        T_PARAM => Expr::Param(take_u32(buf, pos)? as usize),
        T_CMP => {
            let op = get_cmp(take(buf, pos, 1)?[0])?;
            let l = get_expr(buf, pos)?;
            let r = get_expr(buf, pos)?;
            Expr::Cmp(op, Box::new(l), Box::new(r))
        }
        T_AND | T_OR => {
            let n = take_u16(buf, pos)? as usize;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(get_expr(buf, pos)?);
            }
            if tag == T_AND {
                Expr::And(v)
            } else {
                Expr::Or(v)
            }
        }
        T_NOT => Expr::Not(Box::new(get_expr(buf, pos)?)),
        T_ARITH => {
            let op = match take(buf, pos, 1)?[0] {
                0 => BinOp::Add,
                1 => BinOp::Sub,
                2 => BinOp::Mul,
                3 => BinOp::Div,
                4 => BinOp::Mod,
                other => return Err(DmxError::Corrupt(format!("bad arith tag {other}"))),
            };
            let l = get_expr(buf, pos)?;
            let r = get_expr(buf, pos)?;
            Expr::Arith(op, Box::new(l), Box::new(r))
        }
        T_NEG => Expr::Neg(Box::new(get_expr(buf, pos)?)),
        T_ISNULL => {
            let negated = take(buf, pos, 1)?[0] != 0;
            Expr::IsNull(Box::new(get_expr(buf, pos)?), negated)
        }
        T_LIKE => {
            let pattern = get_string(buf, pos)?;
            Expr::Like(Box::new(get_expr(buf, pos)?), pattern)
        }
        T_ENCLOSES => {
            let l = get_expr(buf, pos)?;
            let r = get_expr(buf, pos)?;
            Expr::Encloses(Box::new(l), Box::new(r))
        }
        T_INTERSECTS => {
            let l = get_expr(buf, pos)?;
            let r = get_expr(buf, pos)?;
            Expr::Intersects(Box::new(l), Box::new(r))
        }
        T_FUNC => {
            let name = get_string(buf, pos)?;
            let n = take_u16(buf, pos)? as usize;
            let mut args = Vec::with_capacity(n);
            for _ in 0..n {
                args.push(get_expr(buf, pos)?);
            }
            Expr::Func(name, args)
        }
        other => return Err(DmxError::Corrupt(format!("bad expr tag {other}"))),
    })
}

/// Hex helpers so encoded predicates can travel inside DDL
/// attribute/value lists (which are strings).
pub fn expr_to_hex(e: &Expr) -> String {
    let bytes = encode_expr(e);
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// Parses [`expr_to_hex`] output.
pub fn expr_from_hex(s: &str) -> Result<Expr> {
    if !s.len().is_multiple_of(2) {
        return Err(DmxError::InvalidArg("odd hex length".into()));
    }
    let mut bytes = Vec::with_capacity(s.len() / 2);
    for i in (0..s.len()).step_by(2) {
        // bounds: length is even (checked above) and i < s.len().
        let b = u8::from_str_radix(&s[i..i + 2], 16)
            .map_err(|_| DmxError::InvalidArg("bad hex digit".into()))?;
        bytes.push(b);
    }
    decode_expr(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Expr> {
        vec![
            Expr::Const(Value::Null),
            Expr::col_eq(3, 42i64),
            Expr::And(vec![
                Expr::cmp_col(CmpOp::Ge, 0, 1.5f64),
                Expr::Or(vec![
                    Expr::Like(Box::new(Expr::Column(1)), "a%_".into()),
                    Expr::IsNull(Box::new(Expr::Column(2)), true),
                ]),
            ]),
            Expr::Not(Box::new(Expr::Func(
                "check".into(),
                vec![Expr::Param(2), Expr::Const(Value::Bytes(vec![0, 255]))],
            ))),
            Expr::Encloses(
                Box::new(Expr::Column(4)),
                Box::new(Expr::Const(Value::Rect(Rect::new(0.0, 0.0, 1.0, 2.0)))),
            ),
            Expr::Arith(
                BinOp::Mod,
                Box::new(Expr::Neg(Box::new(Expr::Column(0)))),
                Box::new(Expr::Const(Value::Int(7))),
            ),
            Expr::Intersects(
                Box::new(Expr::Column(1)),
                Box::new(Expr::Const(Value::Rect(Rect::new(1.0, 1.0, 2.0, 2.0)))),
            ),
        ]
    }

    #[test]
    fn roundtrip_all_shapes() {
        for e in samples() {
            let bytes = encode_expr(&e);
            assert_eq!(decode_expr(&bytes).unwrap(), e, "{e:?}");
        }
    }

    #[test]
    fn truncation_detected() {
        let bytes = encode_expr(&samples()[2]);
        for cut in 0..bytes.len() {
            assert!(decode_expr(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = encode_expr(&Expr::Column(0));
        bytes.push(0);
        assert!(decode_expr(&bytes).is_err());
    }

    #[test]
    fn hex_transport() {
        let e = Expr::col_eq(0, "o'reilly");
        let hex = expr_to_hex(&e);
        assert_eq!(expr_from_hex(&hex).unwrap(), e);
        assert!(expr_from_hex("abc").is_err());
        assert!(expr_from_hex("zz").is_err());
    }
}
