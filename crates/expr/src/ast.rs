//! Predicate / scalar expression AST.

use dmx_types::{FieldId, Value};

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// The operator with its operands swapped (`a < b` ⇔ `b > a`).
    pub fn flipped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// Applies the operator to an `Ordering`.
    pub fn matches(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        matches!(
            (self, ord),
            (CmpOp::Eq, Equal)
                | (CmpOp::Ne, Less)
                | (CmpOp::Ne, Greater)
                | (CmpOp::Lt, Less)
                | (CmpOp::Le, Less)
                | (CmpOp::Le, Equal)
                | (CmpOp::Gt, Greater)
                | (CmpOp::Ge, Greater)
                | (CmpOp::Ge, Equal)
        )
    }
}

impl std::fmt::Display for CmpOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

impl std::fmt::Display for BinOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
        })
    }
}

/// An expression over the fields of one record.
///
/// Column references are by field index; name resolution happens in the
/// query layer before expressions reach storage methods or attachments.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal.
    Const(Value),
    /// Field of the current record.
    Column(FieldId),
    /// Host variable, bound at evaluation time from
    /// [`crate::eval::EvalContext::params`].
    Param(usize),
    /// Comparison (SQL three-valued logic: NULL operands yield NULL).
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Conjunction over any number of terms.
    And(Vec<Expr>),
    /// Disjunction over any number of terms.
    Or(Vec<Expr>),
    Not(Box<Expr>),
    /// Arithmetic.
    Arith(BinOp, Box<Expr>, Box<Expr>),
    /// Unary minus.
    Neg(Box<Expr>),
    /// `IS NULL` (`negated = true` for `IS NOT NULL`).
    IsNull(Box<Expr>, bool),
    /// SQL LIKE with `%` and `_` wildcards.
    Like(Box<Expr>, String),
    /// Spatial: left rectangle encloses right (the paper's R-tree example
    /// predicate).
    Encloses(Box<Expr>, Box<Expr>),
    /// Spatial: rectangles overlap.
    Intersects(Box<Expr>, Box<Expr>),
    /// Call of a registered user function (the paper's evaluator "will be
    /// able to call functions that are passed to it").
    Func(String, Vec<Expr>),
}

impl Expr {
    /// `col <op> const` convenience constructor.
    pub fn cmp_col(op: CmpOp, col: FieldId, v: impl Into<Value>) -> Expr {
        Expr::Cmp(
            op,
            Box::new(Expr::Column(col)),
            Box::new(Expr::Const(v.into())),
        )
    }

    /// `col = const` convenience constructor.
    pub fn col_eq(col: FieldId, v: impl Into<Value>) -> Expr {
        Expr::cmp_col(CmpOp::Eq, col, v)
    }

    /// Conjunction of `self` and `other`, flattening nested ANDs.
    pub fn and(self, other: Expr) -> Expr {
        match (self, other) {
            (Expr::And(mut a), Expr::And(b)) => {
                a.extend(b);
                Expr::And(a)
            }
            (Expr::And(mut a), e) => {
                a.push(e);
                Expr::And(a)
            }
            (e, Expr::And(mut b)) => {
                b.insert(0, e);
                Expr::And(b)
            }
            (a, b) => Expr::And(vec![a, b]),
        }
    }

    /// The always-true predicate.
    pub fn always_true() -> Expr {
        Expr::Const(Value::Bool(true))
    }

    /// True when the expression is the trivial `TRUE` constant.
    pub fn is_trivially_true(&self) -> bool {
        matches!(self, Expr::Const(Value::Bool(true)))
            || matches!(self, Expr::And(v) if v.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flipped_is_involutive_on_order_ops() {
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            assert_eq!(op.flipped().flipped(), op);
        }
    }

    #[test]
    fn matches_orderings() {
        use std::cmp::Ordering::*;
        assert!(CmpOp::Le.matches(Equal));
        assert!(CmpOp::Le.matches(Less));
        assert!(!CmpOp::Le.matches(Greater));
        assert!(CmpOp::Ne.matches(Less));
        assert!(!CmpOp::Ne.matches(Equal));
    }

    #[test]
    fn and_flattens() {
        let e = Expr::col_eq(0, 1i64)
            .and(Expr::col_eq(1, 2i64))
            .and(Expr::col_eq(2, 3i64));
        match e {
            Expr::And(v) => assert_eq!(v.len(), 3),
            other => panic!("expected flat And, got {other:?}"),
        }
    }

    #[test]
    fn trivially_true() {
        assert!(Expr::always_true().is_trivially_true());
        assert!(Expr::And(vec![]).is_trivially_true());
        assert!(!Expr::col_eq(0, 1i64).is_trivially_true());
    }
}
