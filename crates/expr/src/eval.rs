//! Expression evaluation with SQL three-valued logic.
//!
//! Evaluation reads record fields through [`FieldSource`], so the same
//! evaluator serves (a) buffer-pool-resident records via the lazy
//! `RecordRef` (no copy — the paper's stated goal), (b) materialized rows
//! in the executor, and (c) access-path keys that cover only a field
//! subset.

use std::cmp::Ordering;

use dmx_types::{DmxError, FieldId, RecordRef, Result, Value};

use crate::ast::{BinOp, Expr};
use crate::func::FunctionRegistry;

/// Supplies field values for the record an expression is evaluated
/// against.
pub trait FieldSource {
    /// Value of field `id`.
    fn field(&self, id: FieldId) -> Result<Value>;
}

/// Materialized rows.
impl FieldSource for [Value] {
    fn field(&self, id: FieldId) -> Result<Value> {
        self.get(id as usize)
            .cloned()
            .ok_or_else(|| DmxError::InvalidArg(format!("no field {id}")))
    }
}

impl FieldSource for Vec<Value> {
    fn field(&self, id: FieldId) -> Result<Value> {
        self.as_slice().field(id)
    }
}

impl FieldSource for &[Value] {
    fn field(&self, id: FieldId) -> Result<Value> {
        (**self).field(id)
    }
}

/// Buffer-resident encoded records: fields are decoded lazily, in place.
impl FieldSource for RecordRef<'_> {
    fn field(&self, id: FieldId) -> Result<Value> {
        RecordRef::field(self, id)
    }
}

/// A source with no fields (for constant-only expressions).
pub struct NoFields;

impl FieldSource for NoFields {
    fn field(&self, id: FieldId) -> Result<Value> {
        Err(DmxError::InvalidArg(format!(
            "expression references field {id} but no record is in scope"
        )))
    }
}

/// A source that remaps a projected record back to base-table field ids —
/// used when a covering access path supplies only the indexed fields.
pub struct MappedSource<'a, S: FieldSource + ?Sized> {
    inner: &'a S,
    /// `mapping[i]` = base-table field id of inner field `i`.
    mapping: &'a [FieldId],
}

impl<'a, S: FieldSource + ?Sized> MappedSource<'a, S> {
    /// Wraps `inner`, whose field `i` corresponds to base field
    /// `mapping[i]`.
    pub fn new(inner: &'a S, mapping: &'a [FieldId]) -> Self {
        MappedSource { inner, mapping }
    }
}

impl<S: FieldSource + ?Sized> FieldSource for MappedSource<'_, S> {
    fn field(&self, id: FieldId) -> Result<Value> {
        let pos = self.mapping.iter().position(|&m| m == id).ok_or_else(|| {
            DmxError::InvalidArg(format!("field {id} not covered by access path"))
        })?;
        self.inner.field(pos as FieldId)
    }
}

/// Evaluation context: the function registry and host-variable bindings.
#[derive(Clone, Copy)]
pub struct EvalContext<'a> {
    pub funcs: &'a FunctionRegistry,
    pub params: &'a [Value],
}

impl<'a> EvalContext<'a> {
    /// Context with functions but no parameters.
    pub fn new(funcs: &'a FunctionRegistry) -> Self {
        EvalContext { funcs, params: &[] }
    }

    /// Context with parameters bound.
    pub fn with_params(funcs: &'a FunctionRegistry, params: &'a [Value]) -> Self {
        EvalContext { funcs, params }
    }
}

/// Evaluates an expression to a [`Value`] (which may be `Null`).
pub fn eval(expr: &Expr, src: &dyn FieldSource, ctx: EvalContext<'_>) -> Result<Value> {
    match expr {
        Expr::Const(v) => Ok(v.clone()),
        Expr::Column(id) => src.field(*id),
        Expr::Param(i) => ctx
            .params
            .get(*i)
            .cloned()
            .ok_or_else(|| DmxError::InvalidArg(format!("unbound parameter ${i}"))),
        Expr::Cmp(op, l, r) => {
            let (lv, rv) = (eval(l, src, ctx)?, eval(r, src, ctx)?);
            if lv.is_null() || rv.is_null() {
                return Ok(Value::Null);
            }
            check_comparable(&lv, &rv)?;
            Ok(Value::Bool(op.matches(lv.total_cmp(&rv))))
        }
        Expr::And(terms) => {
            let mut saw_null = false;
            for t in terms {
                match eval(t, src, ctx)? {
                    Value::Bool(false) => return Ok(Value::Bool(false)),
                    Value::Bool(true) => {}
                    Value::Null => saw_null = true,
                    other => return Err(bool_expected(&other)),
                }
            }
            Ok(if saw_null {
                Value::Null
            } else {
                Value::Bool(true)
            })
        }
        Expr::Or(terms) => {
            let mut saw_null = false;
            for t in terms {
                match eval(t, src, ctx)? {
                    Value::Bool(true) => return Ok(Value::Bool(true)),
                    Value::Bool(false) => {}
                    Value::Null => saw_null = true,
                    other => return Err(bool_expected(&other)),
                }
            }
            Ok(if saw_null {
                Value::Null
            } else {
                Value::Bool(false)
            })
        }
        Expr::Not(e) => match eval(e, src, ctx)? {
            Value::Bool(b) => Ok(Value::Bool(!b)),
            Value::Null => Ok(Value::Null),
            other => Err(bool_expected(&other)),
        },
        Expr::Arith(op, l, r) => {
            let (lv, rv) = (eval(l, src, ctx)?, eval(r, src, ctx)?);
            arith(*op, &lv, &rv)
        }
        Expr::Neg(e) => match eval(e, src, ctx)? {
            Value::Null => Ok(Value::Null),
            Value::Int(i) => Ok(Value::Int(i.wrapping_neg())),
            Value::Float(x) => Ok(Value::Float(-x)),
            other => Err(DmxError::TypeMismatch(format!("cannot negate {other}"))),
        },
        Expr::IsNull(e, negated) => {
            let v = eval(e, src, ctx)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        Expr::Like(e, pattern) => match eval(e, src, ctx)? {
            Value::Null => Ok(Value::Null),
            Value::Str(s) => Ok(Value::Bool(like_match(&s, pattern))),
            other => Err(DmxError::TypeMismatch(format!("LIKE on {other}"))),
        },
        Expr::Encloses(l, r) => spatial(l, r, src, ctx, |a, b| a.encloses(&b)),
        Expr::Intersects(l, r) => spatial(l, r, src, ctx, |a, b| a.intersects(&b)),
        Expr::Func(name, args) => {
            let f = ctx.funcs.get(name)?.clone();
            let argv = args
                .iter()
                .map(|a| eval(a, src, ctx))
                .collect::<Result<Vec<_>>>()?;
            f(&argv)
        }
    }
}

/// Evaluates a predicate; SQL semantics: NULL counts as not-satisfied.
pub fn eval_predicate(expr: &Expr, src: &dyn FieldSource, ctx: EvalContext<'_>) -> Result<bool> {
    match eval(expr, src, ctx)? {
        Value::Bool(b) => Ok(b),
        Value::Null => Ok(false),
        other => Err(bool_expected(&other)),
    }
}

fn bool_expected(v: &Value) -> DmxError {
    DmxError::TypeMismatch(format!("predicate evaluated to non-boolean {v}"))
}

fn check_comparable(a: &Value, b: &Value) -> Result<()> {
    use Value::*;
    let ok = matches!(
        (a, b),
        (Bool(_), Bool(_))
            | (Int(_) | Float(_), Int(_) | Float(_))
            | (Str(_), Str(_))
            | (Bytes(_), Bytes(_))
            | (Rect(_), Rect(_))
    );
    if ok {
        Ok(())
    } else {
        Err(DmxError::TypeMismatch(format!(
            "cannot compare {a} with {b}"
        )))
    }
}

fn arith(op: BinOp, l: &Value, r: &Value) -> Result<Value> {
    use Value::*;
    if l.is_null() || r.is_null() {
        return Ok(Null);
    }
    match (l, r) {
        (Int(a), Int(b)) => {
            let v = match op {
                BinOp::Add => a.checked_add(*b),
                BinOp::Sub => a.checked_sub(*b),
                BinOp::Mul => a.checked_mul(*b),
                BinOp::Div => {
                    if *b == 0 {
                        return Err(DmxError::InvalidArg("division by zero".into()));
                    }
                    a.checked_div(*b)
                }
                BinOp::Mod => {
                    if *b == 0 {
                        return Err(DmxError::InvalidArg("division by zero".into()));
                    }
                    a.checked_rem(*b)
                }
            };
            v.map(Int)
                .ok_or_else(|| DmxError::InvalidArg("integer overflow".into()))
        }
        (Int(_) | Float(_), Int(_) | Float(_)) => {
            let (a, b) = (l.as_float()?, r.as_float()?);
            let v = match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => {
                    if b == 0.0 {
                        return Err(DmxError::InvalidArg("division by zero".into()));
                    }
                    a / b
                }
                BinOp::Mod => a % b,
            };
            Ok(Float(v))
        }
        (Str(a), Str(b)) if op == BinOp::Add => Ok(Str(format!("{a}{b}"))),
        _ => Err(DmxError::TypeMismatch(format!("{l} {op} {r}"))),
    }
}

fn spatial(
    l: &Expr,
    r: &Expr,
    src: &dyn FieldSource,
    ctx: EvalContext<'_>,
    f: impl Fn(dmx_types::Rect, dmx_types::Rect) -> bool,
) -> Result<Value> {
    let (lv, rv) = (eval(l, src, ctx)?, eval(r, src, ctx)?);
    if lv.is_null() || rv.is_null() {
        return Ok(Value::Null);
    }
    Ok(Value::Bool(f(lv.as_rect()?, rv.as_rect()?)))
}

/// SQL LIKE: `%` matches any run, `_` matches one character.
fn like_match(s: &str, pattern: &str) -> bool {
    fn rec(s: &[char], p: &[char]) -> bool {
        match p.first() {
            None => s.is_empty(),
            // bounds: `p` is non-empty in these arms and `k` ≤ s.len().
            Some('%') => (0..=s.len()).any(|k| rec(&s[k..], &p[1..])),
            // bounds: `s[1..]` is guarded by the !s.is_empty() check.
            Some('_') => !s.is_empty() && rec(&s[1..], &p[1..]),
            // bounds: see above; `s.first()` matched so s is non-empty.
            Some(c) => s.first() == Some(c) && rec(&s[1..], &p[1..]),
        }
    }
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    rec(&s, &p)
}

/// Compares two rows field-wise for ORDER BY / sort-merge uses.
pub fn compare_rows(a: &[Value], b: &[Value]) -> Ordering {
    for (x, y) in a.iter().zip(b.iter()) {
        let ord = x.total_cmp(y);
        if ord != Ordering::Equal {
            return ord;
        }
    }
    a.len().cmp(&b.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::CmpOp;
    use dmx_types::{Record, Rect};

    fn ctx_fixture() -> FunctionRegistry {
        FunctionRegistry::with_builtins()
    }

    fn row() -> Vec<Value> {
        vec![
            Value::Int(7),
            Value::from("ann"),
            Value::Null,
            Value::Float(2.5),
            Value::Rect(Rect::new(0.0, 0.0, 10.0, 10.0)),
        ]
    }

    fn check(expr: &Expr, expect: Value) {
        let funcs = ctx_fixture();
        let ctx = EvalContext::new(&funcs);
        assert_eq!(eval(expr, &row(), ctx).unwrap(), expect, "{expr:?}");
    }

    #[test]
    fn comparisons_and_3vl() {
        check(&Expr::col_eq(0, 7i64), Value::Bool(true));
        check(&Expr::cmp_col(CmpOp::Gt, 3, 2i64), Value::Bool(true));
        // NULL comparison yields NULL, and AND/OR propagate it correctly
        check(&Expr::col_eq(2, 1i64), Value::Null);
        check(
            &Expr::And(vec![Expr::col_eq(2, 1i64), Expr::Const(Value::Bool(false))]),
            Value::Bool(false),
        );
        check(
            &Expr::And(vec![Expr::col_eq(2, 1i64), Expr::Const(Value::Bool(true))]),
            Value::Null,
        );
        check(
            &Expr::Or(vec![Expr::col_eq(2, 1i64), Expr::Const(Value::Bool(true))]),
            Value::Bool(true),
        );
        check(&Expr::Not(Box::new(Expr::col_eq(2, 1i64))), Value::Null);
    }

    #[test]
    fn predicate_nulls_reject() {
        let funcs = ctx_fixture();
        let ctx = EvalContext::new(&funcs);
        assert!(!eval_predicate(&Expr::col_eq(2, 1i64), &row(), ctx).unwrap());
        assert!(
            eval_predicate(&Expr::IsNull(Box::new(Expr::Column(2)), false), &row(), ctx).unwrap()
        );
        assert!(
            !eval_predicate(&Expr::IsNull(Box::new(Expr::Column(0)), false), &row(), ctx).unwrap()
        );
    }

    #[test]
    fn arithmetic_with_coercion_and_errors() {
        check(
            &Expr::Arith(
                BinOp::Add,
                Box::new(Expr::Column(0)),
                Box::new(Expr::Column(3)),
            ),
            Value::Float(9.5),
        );
        check(
            &Expr::Arith(
                BinOp::Mul,
                Box::new(Expr::Const(Value::Int(6))),
                Box::new(Expr::Const(Value::Int(7))),
            ),
            Value::Int(42),
        );
        let funcs = ctx_fixture();
        let ctx = EvalContext::new(&funcs);
        let div0 = Expr::Arith(
            BinOp::Div,
            Box::new(Expr::Const(Value::Int(1))),
            Box::new(Expr::Const(Value::Int(0))),
        );
        assert!(eval(&div0, &row(), ctx).is_err());
        let overflow = Expr::Arith(
            BinOp::Add,
            Box::new(Expr::Const(Value::Int(i64::MAX))),
            Box::new(Expr::Const(Value::Int(1))),
        );
        assert!(eval(&overflow, &row(), ctx).is_err());
        // string concatenation via +
        check(
            &Expr::Arith(
                BinOp::Add,
                Box::new(Expr::Column(1)),
                Box::new(Expr::Const(Value::from("!"))),
            ),
            Value::from("ann!"),
        );
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("hello", "he%"));
        assert!(like_match("hello", "%llo"));
        assert!(like_match("hello", "h_llo"));
        assert!(like_match("hello", "%"));
        assert!(!like_match("hello", "h_"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("a%b", "a%b")); // literal works too
    }

    #[test]
    fn spatial_predicates() {
        let inner = Expr::Const(Value::Rect(Rect::new(1.0, 1.0, 2.0, 2.0)));
        let outside = Expr::Const(Value::Rect(Rect::new(20.0, 20.0, 30.0, 30.0)));
        check(
            &Expr::Encloses(Box::new(Expr::Column(4)), Box::new(inner.clone())),
            Value::Bool(true),
        );
        check(
            &Expr::Encloses(Box::new(inner.clone()), Box::new(Expr::Column(4))),
            Value::Bool(false),
        );
        check(
            &Expr::Intersects(Box::new(Expr::Column(4)), Box::new(outside)),
            Value::Bool(false),
        );
    }

    #[test]
    fn params_and_functions() {
        let funcs = ctx_fixture();
        let params = [Value::Int(7)];
        let ctx = EvalContext::with_params(&funcs, &params);
        let e = Expr::Cmp(
            CmpOp::Eq,
            Box::new(Expr::Column(0)),
            Box::new(Expr::Param(0)),
        );
        assert!(eval_predicate(&e, &row(), ctx).unwrap());
        let e2 = Expr::Func("length".into(), vec![Expr::Column(1)]);
        assert_eq!(eval(&e2, &row(), ctx).unwrap(), Value::Int(3));
        assert!(eval(&Expr::Param(3), &row(), ctx).is_err());
        assert!(eval(&Expr::Func("nope".into(), vec![]), &row(), ctx).is_err());
    }

    #[test]
    fn lazy_record_ref_source_no_copy() {
        // Evaluate against an encoded record in place — the buffer-pool
        // filtering path.
        let rec = Record::new(row());
        let bytes = rec.encode();
        let rr = RecordRef::new(&bytes).unwrap();
        let funcs = ctx_fixture();
        let ctx = EvalContext::new(&funcs);
        assert!(eval_predicate(&Expr::col_eq(0, 7i64), &rr, ctx).unwrap());
        assert!(!eval_predicate(&Expr::col_eq(1, "bob"), &rr, ctx).unwrap());
    }

    #[test]
    fn mapped_source_covering_path() {
        // An access path covering base fields [3, 0] supplies a 2-field
        // row; base-field references still resolve.
        let covered = vec![Value::Float(2.5), Value::Int(7)];
        let mapping = [3u16, 0u16];
        let m = MappedSource::new(covered.as_slice(), &mapping);
        let funcs = ctx_fixture();
        let ctx = EvalContext::new(&funcs);
        assert!(eval_predicate(&Expr::col_eq(0, 7i64), &m, ctx).unwrap());
        assert!(eval_predicate(&Expr::cmp_col(CmpOp::Ge, 3, 2i64), &m, ctx).unwrap());
        assert!(eval(&Expr::Column(1), &m, ctx).is_err(), "uncovered field");
    }

    #[test]
    fn incomparable_types_error() {
        let funcs = ctx_fixture();
        let ctx = EvalContext::new(&funcs);
        let e = Expr::col_eq(1, 5i64); // string column vs int
        assert!(eval(&e, &row(), ctx).is_err());
    }

    #[test]
    fn compare_rows_lexicographic() {
        use std::cmp::Ordering::*;
        let a = vec![Value::Int(1), Value::from("b")];
        let b = vec![Value::Int(1), Value::from("c")];
        assert_eq!(compare_rows(&a, &b), Less);
        assert_eq!(compare_rows(&a, &a), Equal);
        assert_eq!(compare_rows(&b, &a), Greater);
        assert_eq!(compare_rows(&a[..1], &a), Less, "prefix first");
    }
}
