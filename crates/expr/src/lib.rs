//! The common-services filter predicate evaluator.
//!
//! The paper's accesses support *record filtering* via predicate
//! expressions passed down to the relation storage or access path: "the
//! intention of this common service facility is to allow filter
//! predicates to be evaluated while the field values from the relation
//! storage or access path are still in the buffer pool". The evaluator
//! therefore works against a [`eval::FieldSource`] abstraction — a lazy,
//! in-place view of the current record (`dmx_types::RecordRef` implements
//! it without copying) — and "will be able to call functions that are
//! passed to it" ([`func::FunctionRegistry`]) and "use both constant and
//! variable data" ([`ast::Expr::Param`]).
//!
//! [`analyze`] extracts the structure the query planner's cost-estimation
//! interface needs: conjuncts, referenced columns, and *sargable*
//! predicates an access path can recognize as relevant (including the
//! R-tree's `ENCLOSES`).

pub mod analyze;
pub mod ast;
pub mod eval;
pub mod func;
pub mod ser;
pub mod stats;

pub use analyze::{columns, conjuncts, sargable, Sarg, SargOp};
pub use ast::{BinOp, CmpOp, Expr};
pub use eval::{eval, eval_predicate, EvalContext, FieldSource};
pub use func::FunctionRegistry;
pub use ser::{decode_expr, encode_expr, expr_from_hex, expr_to_hex};
pub use stats::{sarg_fraction, selectivity, ColumnStats, Histogram, TableStats};
