//! Deadlock-retry helper.
//!
//! When the lock manager's waits-for detector picks a transaction as a
//! deadlock victim, the victim's work is rolled back and the transaction
//! returns [`DmxError::Deadlock`] — but the work itself is usually valid
//! and succeeds if simply re-run once the competing transaction finishes.
//! [`run_with_retries`] packages that re-run loop: deterministic backoff
//! (scheduler yields, no wall clock), a bounded attempt budget, and
//! retry-on-deadlock only — every other error, including the transient
//! I/O errors the buffer manager already retries at its own layer, passes
//! straight through.

use dmx_types::fault::backoff;
use dmx_types::{DmxError, Result};

/// Default number of re-runs after a deadlock abort.
pub const DEFAULT_DEADLOCK_RETRIES: u32 = 3;

/// Runs `body` and, when it fails with [`DmxError::Deadlock`], re-runs it
/// up to `max_retries` more times with a deterministic growing backoff.
/// The closure receives the attempt number (0 on the first run) so tests
/// and callers can vary behavior per attempt. The final deadlock error is
/// returned unchanged once the budget is exhausted.
///
/// The closure must encapsulate a *complete* transaction (begin → work →
/// commit): a deadlock victim's transaction is already rolled back, so
/// only a fresh transaction can retry the work.
pub fn run_with_retries<T>(max_retries: u32, mut body: impl FnMut(u32) -> Result<T>) -> Result<T> {
    let mut attempt = 0;
    loop {
        match body(attempt) {
            Err(DmxError::Deadlock { victim }) if attempt < max_retries => {
                attempt += 1;
                backoff(attempt)?;
                let _ = victim;
            }
            other => return other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmx_types::TxnId;

    fn deadlock() -> DmxError {
        DmxError::Deadlock { victim: TxnId(9) }
    }

    #[test]
    fn succeeds_first_try_without_retry() {
        let mut runs = 0;
        let out = run_with_retries(3, |attempt| {
            runs += 1;
            assert_eq!(attempt, 0);
            Ok(41)
        });
        assert_eq!(out.unwrap(), 41);
        assert_eq!(runs, 1);
    }

    #[test]
    fn retries_deadlock_until_success() {
        let out = run_with_retries(3, |attempt| {
            if attempt < 2 {
                Err(deadlock())
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(out.unwrap(), 2);
    }

    #[test]
    fn exhausted_budget_returns_the_deadlock() {
        let mut runs = 0;
        let out: Result<()> = run_with_retries(2, |_| {
            runs += 1;
            Err(deadlock())
        });
        assert!(matches!(out, Err(DmxError::Deadlock { victim }) if victim == TxnId(9)));
        assert_eq!(runs, 3, "initial run + two retries");
    }

    #[test]
    fn non_deadlock_errors_pass_through_immediately() {
        let mut runs = 0;
        let out: Result<()> = run_with_retries(5, |_| {
            runs += 1;
            Err(DmxError::NotFound("r".into()))
        });
        assert!(matches!(out, Err(DmxError::NotFound(_))));
        assert_eq!(runs, 1);
    }
}
