//! Transactions, transaction events and deferred-action queues.
//!
//! Data management extensions "participate in database events such as
//! transaction commit": the paper's common services include event
//! notification (scans must be closed at end-of-transaction, scan
//! positions saved around rollback points) and **deferred action queues**
//! — an attachment can queue a routine + data to run when the transaction
//! reaches "before prepared state" or commits (used for deferred integrity
//! constraints and for the deferred physical release of dropped objects).
//!
//! This crate provides the [`Transaction`] object (id, undo chain head,
//! savepoint stack, deferred queues) and the [`TxnManager`]. The *commit
//! protocol* itself (run before-prepare queue → log Commit → force →
//! flush pool → run commit queue → release locks → scan cleanup) is
//! orchestrated by `dmx-core`, which owns the participating services.

pub mod deferred;
pub mod mvcc;
pub mod retry;
pub mod txn;

pub use deferred::{DeferredQueues, TxnEvent};
pub use mvcc::{GcOutcome, Snapshot, VersionImage, VersionStore};
pub use retry::{run_with_retries, DEFAULT_DEADLOCK_RETRIES};
pub use txn::{Savepoint, Transaction, TxnManager, TxnState};
