//! Deferred-action queues.
//!
//! The paper: "An attachment instance can place an entry on the queue that
//! will cause an indicated attachment procedure to be invoked with the
//! indicated data when the event occurs." In Rust the (routine address,
//! data pointer) pair is a boxed closure. [`DeferredQueues::enqueue_once`]
//! supports the common pattern where an attachment activated once per
//! modified record wants its deferred check to run only once per
//! transaction.

use std::collections::HashSet;

use dmx_types::Result;

/// Transaction events at which deferred actions can run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TxnEvent {
    /// "Before the transaction enters the prepared state": deferred
    /// integrity constraints run here and may still abort the transaction.
    BeforePrepare,
    /// After the commit record is durable: deferred physical actions
    /// (e.g. releasing a dropped relation's storage) run here and must not
    /// fail the transaction.
    AtCommit,
    /// After the transaction aborted (cleanup of abandoned intents).
    AtAbort,
    /// After commit/abort processing, when locks are about to be released:
    /// the scan-cleanup notification ("all key-sequential accesses must be
    /// terminated at transaction termination").
    AtEnd,
}

/// A deferred action: a closure capturing the "indicated data".
pub type DeferredAction = Box<dyn FnOnce() -> Result<()> + Send>;

/// Per-transaction deferred-action queues, one per event.
#[derive(Default)]
pub struct DeferredQueues {
    before_prepare: Vec<DeferredAction>,
    at_commit: Vec<DeferredAction>,
    at_abort: Vec<DeferredAction>,
    at_end: Vec<DeferredAction>,
    dedup: HashSet<(TxnEvent, u64)>,
}

impl DeferredQueues {
    fn queue_mut(&mut self, event: TxnEvent) -> &mut Vec<DeferredAction> {
        match event {
            TxnEvent::BeforePrepare => &mut self.before_prepare,
            TxnEvent::AtCommit => &mut self.at_commit,
            TxnEvent::AtAbort => &mut self.at_abort,
            TxnEvent::AtEnd => &mut self.at_end,
        }
    }

    /// Queues an action for `event`.
    pub fn enqueue(&mut self, event: TxnEvent, action: DeferredAction) {
        self.queue_mut(event).push(action);
    }

    /// Queues an action unless one with the same `key` was already queued
    /// for this event in this transaction. Returns true when enqueued.
    pub fn enqueue_once(&mut self, event: TxnEvent, key: u64, action: DeferredAction) -> bool {
        if !self.dedup.insert((event, key)) {
            return false;
        }
        self.enqueue(event, action);
        true
    }

    /// Number of actions pending for `event`.
    pub fn pending(&self, event: TxnEvent) -> usize {
        match event {
            TxnEvent::BeforePrepare => self.before_prepare.len(),
            TxnEvent::AtCommit => self.at_commit.len(),
            TxnEvent::AtAbort => self.at_abort.len(),
            TxnEvent::AtEnd => self.at_end.len(),
        }
    }

    /// Removes and returns the actions queued for `event`, in queue order.
    /// The caller runs them (so the transaction lock is not held during
    /// execution).
    pub fn drain(&mut self, event: TxnEvent) -> Vec<DeferredAction> {
        std::mem::take(self.queue_mut(event))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    #[test]
    fn enqueue_and_drain_preserve_order() {
        let mut q = DeferredQueues::default();
        let hits = Arc::new(AtomicU32::new(0));
        for i in 0..3u32 {
            let hits = hits.clone();
            q.enqueue(
                TxnEvent::BeforePrepare,
                Box::new(move || {
                    // record order: each action asserts it runs i-th
                    assert_eq!(hits.fetch_add(1, Ordering::SeqCst), i);
                    Ok(())
                }),
            );
        }
        assert_eq!(q.pending(TxnEvent::BeforePrepare), 3);
        for a in q.drain(TxnEvent::BeforePrepare) {
            a().unwrap();
        }
        assert_eq!(hits.load(Ordering::SeqCst), 3);
        assert_eq!(q.pending(TxnEvent::BeforePrepare), 0);
    }

    #[test]
    fn enqueue_once_dedups_per_event() {
        let mut q = DeferredQueues::default();
        assert!(q.enqueue_once(TxnEvent::BeforePrepare, 42, Box::new(|| Ok(()))));
        assert!(!q.enqueue_once(TxnEvent::BeforePrepare, 42, Box::new(|| Ok(()))));
        // same key, different event: independent
        assert!(q.enqueue_once(TxnEvent::AtCommit, 42, Box::new(|| Ok(()))));
        assert_eq!(q.pending(TxnEvent::BeforePrepare), 1);
        assert_eq!(q.pending(TxnEvent::AtCommit), 1);
    }

    #[test]
    fn queues_are_independent() {
        let mut q = DeferredQueues::default();
        q.enqueue(TxnEvent::AtAbort, Box::new(|| Ok(())));
        q.enqueue(TxnEvent::AtEnd, Box::new(|| Ok(())));
        assert_eq!(q.drain(TxnEvent::AtCommit).len(), 0);
        assert_eq!(q.drain(TxnEvent::AtAbort).len(), 1);
        assert_eq!(q.drain(TxnEvent::AtEnd).len(), 1);
    }
}
