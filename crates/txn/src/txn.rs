//! Transactions and the transaction manager.

use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use dmx_types::sync::Mutex;

use dmx_types::{DmxError, Lsn, Result, TxnId};
use dmx_wal::{LogBody, LogManager};

use crate::deferred::{DeferredAction, DeferredQueues, TxnEvent};
use crate::mvcc::{Snapshot, VersionStore};

/// Transaction lifecycle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnState {
    Active,
    Committed,
    Aborted,
}

/// A named rollback point. `payload` carries whatever the establishing
/// layer saved (dmx-core stores open scan positions there, implementing
/// the paper's scan-position save/restore around partial rollback).
pub struct Savepoint {
    pub name: String,
    pub lsn: Lsn,
    pub payload: Option<Box<dyn Any + Send>>,
}

struct TxnInner {
    state: TxnState,
    last_lsn: Lsn,
    savepoints: Vec<Savepoint>,
}

/// A transaction handle. Shared via `Arc`; internally synchronized.
pub struct Transaction {
    id: TxnId,
    log: Arc<LogManager>,
    inner: Mutex<TxnInner>,
    queues: Mutex<DeferredQueues>,
    /// The transaction-consistent read position, captured at begin.
    snapshot: Snapshot,
    /// When set, read-only scans run against [`Transaction::snapshot`]
    /// with zero record locks instead of S-locking every returned
    /// record. Writers ignore the flag (2PL + range locks always).
    snapshot_reads: AtomicBool,
}

impl Transaction {
    /// The transaction id.
    pub fn id(&self) -> TxnId {
        self.id
    }

    /// The snapshot captured when this transaction began.
    pub fn snapshot(&self) -> Snapshot {
        self.snapshot
    }

    /// Whether read-only scans should use snapshot visibility.
    pub fn snapshot_reads(&self) -> bool {
        self.snapshot_reads.load(Ordering::Acquire)
    }

    /// Sets snapshot-read mode, returning the previous value (callers
    /// scope the flag around a statement and restore it after).
    pub fn set_snapshot_reads(&self, on: bool) -> bool {
        self.snapshot_reads.swap(on, Ordering::AcqRel)
    }

    /// Current state.
    pub fn state(&self) -> TxnState {
        self.inner.lock().state
    }

    /// Errors unless the transaction is still active.
    pub fn check_active(&self) -> Result<()> {
        match self.state() {
            TxnState::Active => Ok(()),
            _ => Err(DmxError::TxnAborted(self.id)),
        }
    }

    /// Head of the undo chain (this transaction's most recent log record).
    pub fn last_lsn(&self) -> Lsn {
        self.inner.lock().last_lsn
    }

    /// Appends a log record for this transaction, maintaining the undo
    /// chain, and returns its LSN.
    ///
    /// Begin is logged lazily, just before the transaction's first real
    /// record: a transaction that never writes leaves no trace in the
    /// log, so read-only work (and an untouched open/close cycle) keeps
    /// the stable log byte-identical.
    pub fn log(&self, body: LogBody) -> Lsn {
        let mut inner = self.inner.lock();
        if inner.last_lsn.is_null() && !matches!(body, LogBody::Begin) {
            inner.last_lsn = self.log.append(self.id, Lsn::NULL, LogBody::Begin);
        }
        let lsn = self.log.append(self.id, inner.last_lsn, body);
        inner.last_lsn = lsn;
        lsn
    }

    /// Overwrites the undo-chain head after a rollback appended CLRs.
    pub fn set_last_lsn(&self, lsn: Lsn) {
        self.inner.lock().last_lsn = lsn;
    }

    /// Establishes a named savepoint and returns its LSN. `payload` is
    /// returned by [`Transaction::pop_savepoint`] so callers can restore
    /// auxiliary state (scan positions) after a partial rollback.
    pub fn savepoint(&self, name: impl Into<String>, payload: Option<Box<dyn Any + Send>>) -> Lsn {
        let lsn = self.log(LogBody::Savepoint);
        self.inner.lock().savepoints.push(Savepoint {
            name: name.into(),
            lsn,
            payload,
        });
        lsn
    }

    /// Removes the most recent savepoint with `name` *and* every savepoint
    /// established after it, returning it. Used both for rollback-to and
    /// for releasing (canceling) a rollback point.
    pub fn pop_savepoint(&self, name: &str) -> Result<Savepoint> {
        let mut inner = self.inner.lock();
        let pos = inner
            .savepoints
            .iter()
            .rposition(|s| s.name == name)
            .ok_or_else(|| DmxError::NotFound(format!("savepoint {name}")))?;
        let sp = inner.savepoints.swap_remove(pos);
        inner.savepoints.truncate(pos);
        Ok(sp)
    }

    /// Names of live savepoints, oldest first.
    pub fn savepoint_names(&self) -> Vec<String> {
        self.inner
            .lock()
            .savepoints
            .iter()
            .map(|s| s.name.clone())
            .collect()
    }

    /// Queues a deferred action.
    pub fn defer(&self, event: TxnEvent, action: DeferredAction) {
        self.queues.lock().enqueue(event, action);
    }

    /// Queues a deferred action at most once per `key` per event.
    pub fn defer_once(&self, event: TxnEvent, key: u64, action: DeferredAction) -> bool {
        self.queues.lock().enqueue_once(event, key, action)
    }

    /// Number of actions pending for an event.
    pub fn deferred_pending(&self, event: TxnEvent) -> usize {
        self.queues.lock().pending(event)
    }

    /// Runs all actions queued for `event`, in order. If one fails the
    /// remaining actions for the event still run for `AtAbort`/`AtEnd`
    /// (cleanup events) but not for `BeforePrepare` (the transaction is
    /// aborting anyway, and constraints report the *first* violation).
    pub fn run_deferred(&self, event: TxnEvent) -> Result<()> {
        // Loop because actions may enqueue further actions for the same
        // event (e.g. a cascading deferred constraint).
        loop {
            let actions = self.queues.lock().drain(event);
            if actions.is_empty() {
                return Ok(());
            }
            let cleanup = matches!(event, TxnEvent::AtAbort | TxnEvent::AtEnd);
            let mut first_err = None;
            for a in actions {
                match a() {
                    Ok(()) => {}
                    Err(e) if cleanup => {
                        first_err.get_or_insert(e);
                    }
                    Err(e) => return Err(e),
                }
            }
            if let Some(e) = first_err {
                return Err(e);
            }
        }
    }

    /// Writes the commit record and forces the log (the commit point).
    ///
    /// Uses [`LogManager::force_group`] so concurrent committers batch:
    /// whoever wins the flush lock carries every record appended so far,
    /// and the others find their commit record already durable.
    pub fn commit_point(&self) -> Result<()> {
        self.check_active()?;
        // Read-only optimization: a transaction that never logged has
        // nothing to make durable — skip the commit record and the force.
        if self.last_lsn().is_null() {
            return Ok(());
        }
        let lsn = self.log(LogBody::Commit);
        self.log.force_group(lsn)
    }

    /// Writes the abort-complete record (after undo finished). A no-op
    /// for transactions that never logged: there is nothing to mark as
    /// rolled back, and appending would make read-only aborts grow the
    /// log.
    pub fn abort_point(&self) {
        if self.last_lsn().is_null() {
            return;
        }
        self.log(LogBody::Abort);
    }

    /// Transitions to a terminal state.
    pub fn finish(&self, state: TxnState) {
        debug_assert!(state != TxnState::Active);
        self.inner.lock().state = state;
    }
}

/// Creates transactions and tracks the active set.
pub struct TxnManager {
    log: Arc<LogManager>,
    next_id: AtomicU64,
    active: Mutex<HashMap<TxnId, Arc<Transaction>>>,
    begins: Arc<dmx_types::obs::Counter>,
    versions: Arc<VersionStore>,
}

impl TxnManager {
    /// Creates a transaction manager over the shared log.
    pub fn new(log: Arc<LogManager>) -> Self {
        Self::new_starting_at(log, 1)
    }

    /// Creates a transaction manager whose first transaction id is
    /// `first_id` — used after restart so ids never repeat across crashes
    /// (restart analysis replays the durable log by transaction id).
    pub fn new_starting_at(log: Arc<LogManager>, first_id: u64) -> Self {
        Self::new_with_metrics(log, first_id, dmx_types::obs::MetricsRegistry::new())
    }

    /// Like [`TxnManager::new_starting_at`], registering metrics in `obs`.
    pub fn new_with_metrics(
        log: Arc<LogManager>,
        first_id: u64,
        obs: Arc<dmx_types::obs::MetricsRegistry>,
    ) -> Self {
        TxnManager {
            log,
            next_id: AtomicU64::new(first_id.max(1)),
            active: Mutex::new(HashMap::new()),
            begins: obs.counter(dmx_types::obs::name::TXN_BEGINS),
            versions: Arc::new(VersionStore::new()),
        }
    }

    /// The shared version store (snapshot visibility side car).
    pub fn versions(&self) -> &Arc<VersionStore> {
        &self.versions
    }

    /// Snapshots of every active transaction — the version GC's
    /// keep-alive set.
    pub fn active_snapshots(&self) -> Vec<Snapshot> {
        self.active.lock().values().map(|t| t.snapshot()).collect()
    }

    /// Runs `f` on the active-snapshot set *while holding the active-set
    /// lock*, serializing it against [`Self::begin`]. Reclamation
    /// decisions (version GC, the DDL-fence pruner) must run here: a
    /// decision made from an unlocked copy of the set can race a
    /// beginning transaction — the beginner captures its snapshot just
    /// before a commit publishes, the reclaimer reads the set just
    /// before the beginner registers, and state the stale snapshot
    /// still needs is reclaimed. Under the lock, either the beginner is
    /// in the set (its snapshot fences the reclaim) or the beginner's
    /// capture is ordered after everything the reclaimer observed (so
    /// its snapshot postdates whatever was reclaimed).
    pub fn with_active_snapshots<T>(&self, f: impl FnOnce(&[Snapshot]) -> T) -> T {
        let active = self.active.lock();
        let snaps: Vec<Snapshot> = active.values().map(|t| t.snapshot()).collect();
        f(&snaps)
    }

    /// Begins a transaction (logs `Begin`).
    pub fn begin(&self) -> Arc<Transaction> {
        self.begins.incr();
        let id = TxnId(self.next_id.fetch_add(1, Ordering::Relaxed));
        // The active-set lock is held across snapshot capture and
        // registration: [`Self::active_snapshots`] is the keep-alive set
        // for the version GC and the DDL-fence pruner, so a snapshot
        // must never exist outside it — a capture-then-register gap
        // would let a concurrent end-of-transaction reclaim state this
        // snapshot still needs.
        let mut active = self.active.lock();
        // No Begin record yet: [`Transaction::log`] writes it lazily
        // before the first real record, so read-only transactions never
        // touch the log.
        let txn = Arc::new(Transaction {
            id,
            log: self.log.clone(),
            inner: Mutex::new(TxnInner {
                state: TxnState::Active,
                last_lsn: Lsn::NULL,
                savepoints: Vec::new(),
            }),
            queues: Mutex::new(DeferredQueues::default()),
            // Captured eagerly so the read position is fixed at begin
            // even if the first read happens much later.
            snapshot: self.versions.capture(),
            snapshot_reads: AtomicBool::new(false),
        });
        active.insert(id, txn.clone());
        txn
    }

    /// Removes a finished transaction from the active set.
    pub fn deregister(&self, id: TxnId) {
        self.active.lock().remove(&id);
    }

    /// Number of active transactions.
    pub fn active_count(&self) -> usize {
        self.active.lock().len()
    }

    /// A snapshot of active transactions (diagnostics).
    pub fn active_ids(&self) -> Vec<TxnId> {
        let mut v: Vec<TxnId> = self.active.lock().keys().copied().collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmx_wal::StableLog;
    use std::sync::atomic::AtomicU32;

    fn mgr() -> (Arc<LogManager>, TxnManager) {
        let log = Arc::new(LogManager::open(StableLog::new()));
        let tm = TxnManager::new(log.clone());
        (log, tm)
    }

    #[test]
    fn begin_logs_and_chains() {
        let (log, tm) = mgr();
        let t = tm.begin();
        assert_eq!(t.state(), TxnState::Active);
        assert_eq!(tm.active_count(), 1);
        let l1 = t.log(LogBody::Savepoint);
        assert_eq!(log.record(l1).unwrap().prev_lsn, Lsn(1), "chained to Begin");
        assert_eq!(t.last_lsn(), l1);
        tm.deregister(t.id());
        assert_eq!(tm.active_count(), 0);
    }

    #[test]
    fn ids_are_unique_and_increasing() {
        let (_log, tm) = mgr();
        let a = tm.begin();
        let b = tm.begin();
        assert!(b.id() > a.id());
        assert_eq!(tm.active_ids(), vec![a.id(), b.id()]);
    }

    #[test]
    fn commit_point_forces_log() {
        let (log, tm) = mgr();
        let t = tm.begin();
        t.commit_point().unwrap();
        assert_eq!(log.durable_lsn(), log.last_lsn());
        t.finish(TxnState::Committed);
        assert!(t.check_active().is_err());
        assert!(t.commit_point().is_err(), "double commit rejected");
    }

    #[test]
    fn savepoint_stack_semantics() {
        let (_log, tm) = mgr();
        let t = tm.begin();
        t.savepoint("a", None);
        t.savepoint("b", Some(Box::new(7u32)));
        t.savepoint("c", None);
        assert_eq!(t.savepoint_names(), vec!["a", "b", "c"]);
        // popping b also discards c (later savepoints die with it)
        let sp = t.pop_savepoint("b").unwrap();
        assert_eq!(
            *sp.payload.unwrap().downcast::<u32>().unwrap(),
            7,
            "payload returned"
        );
        assert_eq!(t.savepoint_names(), vec!["a"]);
        assert!(t.pop_savepoint("b").is_err());
    }

    #[test]
    fn duplicate_savepoint_names_pop_latest() {
        let (_log, tm) = mgr();
        let t = tm.begin();
        let l1 = t.savepoint("sp", None);
        let l2 = t.savepoint("sp", None);
        assert!(l2 > l1);
        assert_eq!(t.pop_savepoint("sp").unwrap().lsn, l2);
        assert_eq!(t.pop_savepoint("sp").unwrap().lsn, l1);
    }

    #[test]
    fn deferred_actions_can_requeue() {
        let (_log, tm) = mgr();
        let t = tm.begin();
        let hits = Arc::new(AtomicU32::new(0));
        let t2 = t.clone();
        let hits2 = hits.clone();
        t.defer(
            TxnEvent::BeforePrepare,
            Box::new(move || {
                hits2.fetch_add(1, Ordering::SeqCst);
                let hits3 = hits2.clone();
                // cascades: enqueue one more round
                t2.defer(
                    TxnEvent::BeforePrepare,
                    Box::new(move || {
                        hits3.fetch_add(1, Ordering::SeqCst);
                        Ok(())
                    }),
                );
                Ok(())
            }),
        );
        t.run_deferred(TxnEvent::BeforePrepare).unwrap();
        assert_eq!(hits.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn before_prepare_failure_stops_and_propagates() {
        let (_log, tm) = mgr();
        let t = tm.begin();
        let ran_after = Arc::new(AtomicU32::new(0));
        t.defer(
            TxnEvent::BeforePrepare,
            Box::new(|| Err(DmxError::ConstraintViolation("sum < 0".into()))),
        );
        let ra = ran_after.clone();
        t.defer(
            TxnEvent::BeforePrepare,
            Box::new(move || {
                ra.fetch_add(1, Ordering::SeqCst);
                Ok(())
            }),
        );
        assert!(t.run_deferred(TxnEvent::BeforePrepare).is_err());
        assert_eq!(
            ran_after.load(Ordering::SeqCst),
            0,
            "stopped at first failure"
        );
    }

    #[test]
    fn cleanup_events_run_all_even_on_failure() {
        let (_log, tm) = mgr();
        let t = tm.begin();
        let ran = Arc::new(AtomicU32::new(0));
        t.defer(TxnEvent::AtEnd, Box::new(|| Err(DmxError::Io("x".into()))));
        let r2 = ran.clone();
        t.defer(
            TxnEvent::AtEnd,
            Box::new(move || {
                r2.fetch_add(1, Ordering::SeqCst);
                Ok(())
            }),
        );
        let err = t.run_deferred(TxnEvent::AtEnd).unwrap_err();
        assert_eq!(err, DmxError::Io("x".into()), "first error reported");
        assert_eq!(ran.load(Ordering::SeqCst), 1, "later cleanup still ran");
    }

    #[test]
    fn defer_once_per_transaction() {
        let (_log, tm) = mgr();
        let t = tm.begin();
        let hits = Arc::new(AtomicU32::new(0));
        for _ in 0..5 {
            let h = hits.clone();
            t.defer_once(
                TxnEvent::BeforePrepare,
                99,
                Box::new(move || {
                    h.fetch_add(1, Ordering::SeqCst);
                    Ok(())
                }),
            );
        }
        t.run_deferred(TxnEvent::BeforePrepare).unwrap();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }
}
