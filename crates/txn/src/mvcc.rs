//! Record versioning for snapshot reads.
//!
//! The version store is an in-memory side car to the pages: every DML
//! write stamps an *uncommitted* after-image into a per-record chain
//! keyed `(relation, record key)` **before** it touches the page, and
//! commit turns those stamps into committed versions in one atomic
//! publication step. Read-only scans then run against a transaction-
//! consistent snapshot with zero record locks: a reader first performs
//! its ordinary page read, then consults the chain — if a chain exists
//! the reader uses the chain's visible image (the page bytes may be
//! uncommitted writer state), and if no chain exists the page bytes are
//! trustworthy, because the garbage collector only reclaims a chain
//! once every active snapshot began after the chain's last mutation.
//!
//! Commit visibility ordering: under the commit mutex the committing
//! transaction stamps all of its chains with `commit_seq + 1` and only
//! then publishes the new `commit_seq`. Snapshot capture reads the
//! published counter lock-free, so a snapshot either sees all of a
//! transaction's versions or none of them.
//!
//! Writers stay under strict 2PL (record X locks plus next-key gap
//! locks on the tree paths), so at most one transaction has an
//! uncommitted stamp per chain at any time.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use dmx_types::sync::{Condvar, Mutex};
use dmx_types::{RelationId, TxnId, Value};

/// A record image as of some version: the full record values, or the
/// record's absence (deleted / not yet inserted).
#[derive(Debug, Clone, PartialEq)]
pub enum VersionImage {
    Present(Vec<Value>),
    Absent,
}

impl VersionImage {
    /// The values of a present image.
    pub fn values(&self) -> Option<&[Value]> {
        match self {
            VersionImage::Present(v) => Some(v),
            VersionImage::Absent => None,
        }
    }
}

/// A transaction-consistent read position: every version committed at
/// or below `csn` is visible, everything newer (and everything
/// uncommitted) is not.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Snapshot {
    /// The published commit sequence number at capture time.
    pub csn: u64,
    /// The store's event counter at capture time; fences the garbage
    /// collector (a chain last touched at or after `born` must outlive
    /// this snapshot).
    pub born: u64,
}

/// One committed version in a chain.
#[derive(Debug, Clone)]
struct Version {
    csn: u64,
    image: VersionImage,
}

/// The per-record version chain. `versions` is ascending by `csn` and
/// always starts with a base image (csn 0): the committed state the
/// record had when the chain was created, so visibility never falls off
/// the bottom of the chain.
#[derive(Debug)]
struct Chain {
    versions: Vec<Version>,
    /// The in-flight after-image of the (single, 2PL-serialized) writer.
    uncommitted: Option<(TxnId, VersionImage)>,
    /// Event count of the last mutation (write, rollback, commit stamp);
    /// the GC fence.
    last_touch: u64,
}

impl Chain {
    /// The newest image visible to `snap`, with read-your-own-writes
    /// for `me`.
    fn visible(&self, snap: Snapshot, me: TxnId) -> &VersionImage {
        if let Some((owner, image)) = &self.uncommitted {
            if *owner == me {
                return image;
            }
        }
        // Base version at csn 0 guarantees a match.
        self.versions
            .iter()
            .rev()
            .find(|v| v.csn <= snap.csn)
            .map(|v| &v.image)
            .unwrap_or(&VersionImage::Absent)
    }
}

/// One entry of a transaction's write log: enough to undo the chain
/// stamp on statement/savepoint/transaction rollback.
struct WriteUndo {
    rel: RelationId,
    key: Vec<u8>,
    /// The chain's `uncommitted` slot before this write (None when this
    /// write created the stamp).
    prev: Option<VersionImage>,
}

#[derive(Default)]
struct Chains {
    by_rel: HashMap<RelationId, HashMap<Vec<u8>, Chain>>,
}

/// Counters reported by store operations so the embedding layer can
/// feed its metrics registry (the store itself stays `std`-only and
/// metric-free).
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct GcOutcome {
    pub scanned: usize,
    pub reclaimed: usize,
}

/// An open unstamped-write window (see [`VersionStore::begin_unstamped`]).
/// Closing is in `Drop` so an error unwind inside the window cannot
/// leave readers parked forever.
pub struct UnstampedWindow<'a> {
    store: &'a VersionStore,
    rel: RelationId,
}

impl Drop for UnstampedWindow<'_> {
    fn drop(&mut self) {
        {
            let mut open = self.store.unstamped.lock();
            if let Some(n) = open.get_mut(&self.rel) {
                *n -= 1;
                if *n == 0 {
                    open.remove(&self.rel);
                }
            }
            self.store.unstamped_total.fetch_sub(1, Ordering::AcqRel);
        }
        self.store.unstamped_cv.notify_all();
    }
}

/// The version store. One per database; shared by the transaction
/// manager (snapshot capture) and the DML/scan dispatcher.
#[derive(Default)]
pub struct VersionStore {
    /// Published commit sequence: the newest csn whose versions are
    /// fully stamped. Read lock-free by snapshot capture.
    commit_seq: AtomicU64,
    /// Monotone event counter for GC fencing.
    events: AtomicU64,
    /// Serializes commit stamping so `commit_seq` publication is atomic
    /// with respect to the stamps it covers.
    commit_mutex: Mutex<()>,
    /// Total open unstamped-write windows across every relation: the
    /// readers' fast path is a single atomic load that is zero whenever
    /// no writer anywhere is mid-window.
    unstamped_total: AtomicU64,
    /// Open windows per relation — writes whose page mutation may
    /// already be visible while their chain stamp is not (the insert
    /// path learns its record key only from the completed page
    /// mutation). Readers that found a chainless page row wait for that
    /// relation's open windows to close before trusting "no chain →
    /// committed"; a stalled writer (e.g. blocked on another
    /// transaction's 2PL locks inside its window) therefore delays only
    /// readers of its own relation, and they park on `unstamped_cv`
    /// instead of spinning.
    unstamped: Mutex<HashMap<RelationId, u64>>,
    /// Wakes parked readers when a window closes.
    unstamped_cv: Condvar,
    chains: Mutex<Chains>,
    /// Per-transaction write logs (append-only; marks index into them).
    write_logs: Mutex<HashMap<TxnId, Vec<WriteUndo>>>,
}

impl VersionStore {
    /// An empty store.
    pub fn new() -> VersionStore {
        VersionStore::default()
    }

    fn bump(&self) -> u64 {
        self.events.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Captures a snapshot at the current published commit sequence.
    pub fn capture(&self) -> Snapshot {
        Snapshot {
            csn: self.commit_seq.load(Ordering::Acquire),
            born: self.bump(),
        }
    }

    /// Opens an unstamped-write window for `rel` around a page mutation
    /// whose chain stamp can only follow it (insert: the record key is
    /// the mutation's output). The guard closes the window on drop —
    /// after the stamp on success, or on the error unwind (where the
    /// statement rollback restores the page before readers can trust
    /// it again).
    pub fn begin_unstamped(&self, rel: RelationId) -> UnstampedWindow<'_> {
        *self.unstamped.lock().entry(rel).or_insert(0) += 1;
        self.unstamped_total.fetch_add(1, Ordering::AcqRel);
        UnstampedWindow { store: self, rel }
    }

    /// Waits until `rel` has no open unstamped-write window. Readers
    /// call this between their page read and their chain probe: a
    /// window open at page-read time is either still open here (we park
    /// until its stamp lands) or already closed (its stamp is visible
    /// to the probe). Windows opened *after* this returns can only
    /// cover page mutations the completed read did not observe. The
    /// fast path is a single atomic load (zero windows anywhere);
    /// otherwise waiters park on a condvar, scoped to the relation so a
    /// writer stalled inside its window — worst case one lock timeout —
    /// holds up only its own relation's readers, without burning CPU.
    pub fn wait_unstamped(&self, rel: RelationId) {
        if self.unstamped_total.load(Ordering::Acquire) == 0 {
            return;
        }
        let mut open = self.unstamped.lock();
        while open.get(&rel).copied().unwrap_or(0) != 0 {
            // Timed re-check: robust against a wake-up racing the next
            // window's open (windows are short; the tick is a backstop).
            open = self.unstamped_cv.wait_for(open, Duration::from_millis(10));
        }
    }

    /// Records a write: stamps `image` as `txn`'s uncommitted
    /// after-image for `(rel, key)`. Must be called **before** the page
    /// mutation it describes, while the writer holds the record X lock.
    /// `base` is the committed on-page state the writer observed (used
    /// as the chain's base version when the chain does not exist yet;
    /// ignored otherwise).
    pub fn record_write(
        &self,
        txn: TxnId,
        rel: RelationId,
        key: &[u8],
        base: VersionImage,
        image: VersionImage,
    ) {
        let touch = self.bump();
        let mut chains = self.chains.lock();
        let per_rel = chains.by_rel.entry(rel).or_default();
        let prev = match per_rel.get_mut(key) {
            Some(chain) => {
                let prev = chain.uncommitted.take().map(|(_, img)| img);
                chain.uncommitted = Some((txn, image));
                chain.last_touch = touch;
                prev
            }
            None => {
                per_rel.insert(
                    key.to_vec(),
                    Chain {
                        versions: vec![Version {
                            csn: 0,
                            image: base,
                        }],
                        uncommitted: Some((txn, image)),
                        last_touch: touch,
                    },
                );
                None
            }
        };
        drop(chains);
        self.write_logs
            .lock()
            .entry(txn)
            .or_default()
            .push(WriteUndo {
                rel,
                key: key.to_vec(),
                prev,
            });
    }

    /// The current length of `txn`'s write log — a rollback mark.
    pub fn mark(&self, txn: TxnId) -> usize {
        self.write_logs.lock().get(&txn).map(Vec::len).unwrap_or(0)
    }

    /// Unwinds `txn`'s chain stamps back to `mark` (statement or
    /// savepoint rollback). The page-level WAL undo runs separately;
    /// this only restores the chains.
    pub fn rollback_to_mark(&self, txn: TxnId, mark: usize) {
        let undone: Vec<WriteUndo> = {
            let mut logs = self.write_logs.lock();
            match logs.get_mut(&txn) {
                Some(log) if log.len() > mark => log.split_off(mark),
                _ => return,
            }
        };
        let touch = self.bump();
        let mut chains = self.chains.lock();
        for u in undone.into_iter().rev() {
            let Some(per_rel) = chains.by_rel.get_mut(&u.rel) else {
                continue;
            };
            let Some(chain) = per_rel.get_mut(&u.key) else {
                continue;
            };
            chain.last_touch = touch;
            match u.prev {
                Some(img) => chain.uncommitted = Some((txn, img)),
                None => {
                    // Do NOT remove the chain, even when this write
                    // created it: a reader that copied the uncommitted
                    // page bytes *before* the WAL undo restored them
                    // must still find the chain afterwards (and read
                    // its base image) — removal would let it trust the
                    // stale copy. The chain lingers as `[base]` until
                    // the GC's born fence says no straddling snapshot
                    // can need it.
                    chain.uncommitted = None;
                }
            }
        }
    }

    /// Commits `txn`: stamps every chain it wrote with `commit_seq + 1`
    /// and publishes the new sequence. Returns the assigned csn (or
    /// None for a read-only transaction).
    pub fn commit(&self, txn: TxnId) -> Option<u64> {
        self.commit_with(txn, |_| {})
    }

    /// Like [`VersionStore::commit`], additionally running `publish`
    /// with the assigned csn under the commit mutex *before* the new
    /// sequence becomes visible to snapshot capture. Side tables keyed
    /// by commit visibility (the embedding layer's DDL fence) update
    /// here so a snapshot that includes the csn can never observe the
    /// side table in its pre-commit state. `publish` is not called for
    /// a transaction with no recorded writes (no csn is assigned).
    pub fn commit_with(&self, txn: TxnId, publish: impl FnOnce(u64)) -> Option<u64> {
        let log = self.write_logs.lock().remove(&txn)?;
        if log.is_empty() {
            return None;
        }
        let _guard = self.commit_mutex.lock();
        let csn = self.commit_seq.load(Ordering::Relaxed) + 1;
        let touch = self.bump();
        {
            let mut chains = self.chains.lock();
            for u in &log {
                let Some(chain) = chains
                    .by_rel
                    .get_mut(&u.rel)
                    .and_then(|m| m.get_mut(&u.key))
                else {
                    continue;
                };
                let Some((owner, image)) = chain.uncommitted.take() else {
                    continue;
                };
                if owner != txn {
                    chain.uncommitted = Some((owner, image));
                    continue;
                }
                chain.versions.push(Version { csn, image });
                chain.last_touch = touch;
            }
        }
        publish(csn);
        self.commit_seq.store(csn, Ordering::Release);
        Some(csn)
    }

    /// Aborts `txn`: unwinds every chain stamp. Call after the WAL undo
    /// restored the pages, so readers that raced the undo keep finding
    /// the chains (the GC fence keeps them alive until every snapshot
    /// born before this abort has ended).
    pub fn abort(&self, txn: TxnId) {
        self.rollback_to_mark(txn, 0);
        self.write_logs.lock().remove(&txn);
    }

    /// The visible image for `(rel, key)`, or None when no chain exists
    /// (the page bytes are committed state for every live snapshot).
    pub fn visible(
        &self,
        rel: RelationId,
        key: &[u8],
        snap: Snapshot,
        me: TxnId,
    ) -> Option<VersionImage> {
        let chains = self.chains.lock();
        chains
            .by_rel
            .get(&rel)
            .and_then(|m| m.get(key))
            .map(|c| c.visible(snap, me).clone())
    }

    /// Every chain of `rel` with its visible image, sorted by key —
    /// the merge input for a snapshot scan's delta sweep (records whose
    /// tree entries an in-flight writer moved or removed).
    pub fn visible_entries(
        &self,
        rel: RelationId,
        snap: Snapshot,
        me: TxnId,
    ) -> Vec<(Vec<u8>, VersionImage)> {
        let chains = self.chains.lock();
        let Some(per_rel) = chains.by_rel.get(&rel) else {
            return Vec::new();
        };
        let mut out: Vec<(Vec<u8>, VersionImage)> = per_rel
            .iter()
            .map(|(k, c)| (k.clone(), c.visible(snap, me).clone()))
            .collect();
        out.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Reclaims chains no live snapshot can need: committed out past
    /// the low-water csn **and** last touched before every active
    /// snapshot began (the born fence — a reader that performed its
    /// optimistic page read while a writer was in flight must still
    /// find the chain afterwards).
    pub fn gc(&self, active: &[Snapshot]) -> GcOutcome {
        let low_water = active
            .iter()
            .map(|s| s.csn)
            .min()
            .unwrap_or_else(|| self.commit_seq.load(Ordering::Acquire));
        let min_born = active
            .iter()
            .map(|s| s.born)
            .min()
            .unwrap_or_else(|| self.events.load(Ordering::Relaxed) + 1);
        let mut out = GcOutcome::default();
        let mut chains = self.chains.lock();
        chains.by_rel.retain(|_, per_rel| {
            per_rel.retain(|_, chain| {
                out.scanned += 1;
                let newest = chain.versions.last().map(|v| v.csn).unwrap_or(0);
                let keep = chain.uncommitted.is_some()
                    || newest > low_water
                    || chain.last_touch >= min_born;
                if keep {
                    // Versions below the low-water mark are unreachable
                    // even when the chain itself must stay.
                    let cut = chain
                        .versions
                        .iter()
                        .rposition(|v| v.csn <= low_water)
                        .unwrap_or(0);
                    if cut > 0 {
                        chain.versions.drain(..cut);
                        // Re-base so visibility never falls off the
                        // bottom: the oldest survivor becomes the base.
                        if let Some(first) = chain.versions.first_mut() {
                            if first.csn > low_water {
                                // can't happen (cut position had csn <=
                                // low_water), but keep the invariant
                                // explicit
                                first.csn = first.csn.min(low_water);
                            }
                        }
                    }
                } else {
                    out.reclaimed += 1;
                }
                keep
            });
            !per_rel.is_empty()
        });
        out
    }

    /// Number of live chains (diagnostics / tests).
    pub fn chain_count(&self) -> usize {
        self.chains.lock().by_rel.values().map(HashMap::len).sum()
    }

    /// The published commit sequence (diagnostics / tests).
    pub fn commit_seq(&self) -> u64 {
        self.commit_seq.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const REL: RelationId = RelationId(7);

    fn present(n: i64) -> VersionImage {
        VersionImage::Present(vec![Value::Int(n)])
    }

    #[test]
    fn uncommitted_writes_are_invisible_and_own_writes_visible() {
        let vs = VersionStore::new();
        let reader = vs.capture();
        vs.record_write(TxnId(1), REL, b"k", VersionImage::Absent, present(1));
        // reader (not the writer) sees the base image
        assert_eq!(
            vs.visible(REL, b"k", reader, TxnId(9)),
            Some(VersionImage::Absent)
        );
        // the writer reads its own stamp
        assert_eq!(vs.visible(REL, b"k", reader, TxnId(1)), Some(present(1)));
    }

    #[test]
    fn commit_publishes_atomically_and_snapshots_are_stable() {
        let vs = VersionStore::new();
        vs.record_write(TxnId(1), REL, b"k", VersionImage::Absent, present(1));
        let before = vs.capture();
        vs.commit(TxnId(1)).unwrap();
        let after = vs.capture();
        assert_eq!(
            vs.visible(REL, b"k", before, TxnId(9)),
            Some(VersionImage::Absent),
            "pre-commit snapshot must stay stable"
        );
        assert_eq!(vs.visible(REL, b"k", after, TxnId(9)), Some(present(1)));
    }

    #[test]
    fn abort_restores_the_base_image() {
        let vs = VersionStore::new();
        vs.record_write(TxnId(1), REL, b"k", present(1), present(2));
        vs.abort(TxnId(1));
        let snap = vs.capture();
        // chain may or may not survive the rollback; if it does, the
        // base image must be what readers see
        if let Some(img) = vs.visible(REL, b"k", snap, TxnId(9)) {
            assert_eq!(img, present(1));
        }
    }

    #[test]
    fn statement_rollback_unwinds_to_mark() {
        let vs = VersionStore::new();
        let t = TxnId(3);
        vs.record_write(t, REL, b"a", VersionImage::Absent, present(1));
        let mark = vs.mark(t);
        vs.record_write(t, REL, b"a", VersionImage::Absent, present(2));
        vs.record_write(t, REL, b"b", VersionImage::Absent, present(3));
        vs.rollback_to_mark(t, mark);
        let snap = vs.capture();
        assert_eq!(vs.visible(REL, b"a", snap, t), Some(present(1)));
        // The unwound chain stays (readers that copied the pre-undo
        // page bytes must still find it) but shows the base image.
        assert_eq!(
            vs.visible(REL, b"b", snap, t),
            Some(VersionImage::Absent),
            "unwound chain shows its base image"
        );
        vs.gc(&[]);
        assert_eq!(vs.chain_count(), 1, "GC folds the unwound chain away");
        vs.commit(t).unwrap();
        let snap = vs.capture();
        assert_eq!(vs.visible(REL, b"a", snap, TxnId(9)), Some(present(1)));
    }

    #[test]
    fn gc_respects_active_snapshots() {
        let vs = VersionStore::new();
        vs.record_write(TxnId(1), REL, b"k", VersionImage::Absent, present(1));
        vs.commit(TxnId(1));
        let old = vs.capture();
        vs.record_write(TxnId(2), REL, b"k", present(1), present(2));
        vs.commit(TxnId(2));
        // `old` still needs version 1: the chain must survive
        let o = vs.gc(&[old]);
        assert_eq!(o.reclaimed, 0);
        assert_eq!(vs.visible(REL, b"k", old, TxnId(9)), Some(present(1)));
        // with no active snapshots everything folds away
        let o = vs.gc(&[]);
        assert_eq!(o.reclaimed, 1);
        assert_eq!(vs.chain_count(), 0);
    }

    #[test]
    fn gc_born_fence_keeps_recently_touched_chains() {
        let vs = VersionStore::new();
        let reader = vs.capture();
        // writer touches the chain after the reader was born, then aborts
        vs.record_write(TxnId(2), REL, b"k", present(1), present(2));
        vs.abort(TxnId(2));
        // the chain (if the abort kept it) or at least nothing the
        // reader needs may be reclaimed while the reader lives
        vs.gc(&[reader]);
        if let Some(img) = vs.visible(REL, b"k", reader, TxnId(9)) {
            assert_eq!(img, present(1));
        }
    }

    #[test]
    fn unstamped_window_blocks_page_trust_until_stamp() {
        let vs = VersionStore::new();
        std::thread::scope(|s| {
            let w = vs.begin_unstamped(REL);
            let h = s.spawn(|| {
                // A reader that saw a chainless page row: it must not
                // probe the chain until the window closes.
                vs.wait_unstamped(REL);
                vs.visible(REL, b"k", vs.capture(), TxnId(9))
            });
            vs.record_write(TxnId(1), REL, b"k", VersionImage::Absent, present(1));
            drop(w);
            assert_eq!(
                h.join().unwrap(),
                Some(VersionImage::Absent),
                "the probe runs after the stamp landed, so it finds the chain"
            );
        });
    }

    #[test]
    fn unstamped_window_is_scoped_to_its_relation() {
        let vs = VersionStore::new();
        let other = RelationId(99);
        let w = vs.begin_unstamped(REL);
        // A reader of a different relation is not delayed by REL's open
        // window (this returns immediately rather than parking).
        vs.wait_unstamped(other);
        drop(w);
        vs.wait_unstamped(REL);
    }

    #[test]
    fn commit_with_runs_publish_before_the_csn_is_visible() {
        let vs = VersionStore::new();
        vs.record_write(TxnId(1), REL, b"k", VersionImage::Absent, present(1));
        let before = vs.commit_seq();
        let csn = vs
            .commit_with(TxnId(1), |csn| {
                // A snapshot captured while `publish` runs must not yet
                // include the csn being assigned.
                assert!(vs.capture().csn < csn);
                assert_eq!(vs.commit_seq(), before);
            })
            .unwrap();
        assert_eq!(vs.commit_seq(), csn);
        // Read-only transactions assign no csn and skip publish.
        vs.commit_with(TxnId(2), |_| panic!("publish for an empty log"));
    }

    #[test]
    fn visible_entries_sorted_and_snapshot_filtered() {
        let vs = VersionStore::new();
        vs.record_write(TxnId(1), REL, b"b", VersionImage::Absent, present(2));
        vs.record_write(TxnId(1), REL, b"a", VersionImage::Absent, present(1));
        vs.commit(TxnId(1));
        let snap = vs.capture();
        vs.record_write(TxnId(2), REL, b"a", present(1), VersionImage::Absent);
        let entries = vs.visible_entries(REL, snap, TxnId(9));
        assert_eq!(
            entries,
            vec![(b"a".to_vec(), present(1)), (b"b".to_vec(), present(2)),]
        );
    }
}
