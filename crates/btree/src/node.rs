//! B+tree node layout.
//!
//! Full-page offsets:
//! ```text
//! 0..16   generic page header
//! 16      flags: bit0 = leaf
//! 17      (pad)
//! 18..20  nkeys: u16
//! 20..24  right sibling page_no (leaves; u32::MAX = none)
//! 24..26  free_end: u16 (lowest cell byte)
//! 26..30  leftmost child page_no (internal nodes)
//! 30..    sorted cell-pointer array, u16 per entry
//! ...     free space ... cells, growing downward
//! cell:   klen u16 | vlen u16 | key | value
//! ```
//! Internal node semantics: an entry `(key, child)` routes keys `>= key`
//! (and `< next entry's key`) to `child`; keys below the first entry go to
//! the leftmost child.

use dmx_page::{Page, PAGE_SIZE};
use dmx_types::{DmxError, Result};

const FLAGS: usize = 16;
const NKEYS: usize = 18;
const RIGHT_SIB: usize = 20;
const FREE_END: usize = 24;
const LEFTMOST: usize = 26;
const PTRS: usize = 30;

/// Sentinel for "no sibling / no child".
pub const NO_PAGE: u32 = u32::MAX;

/// Largest key+value payload a node accepts; guarantees ≥ 4 entries per
/// page so the tree keeps a sane fan-out.
pub const MAX_ENTRY: usize = (PAGE_SIZE - PTRS) / 4 - 8;

/// Page type tag for B-tree nodes (stored in the generic header).
pub const PAGE_TYPE_BTREE: u8 = 2;

/// Namespace for node operations on [`Page`] images.
pub struct Node;

impl Node {
    /// Formats a page as an empty node.
    pub fn init(page: &mut Page, leaf: bool) {
        page.set_page_type(PAGE_TYPE_BTREE);
        page.raw_mut()[FLAGS] = leaf as u8;
        page.put_u16(NKEYS, 0);
        page.put_u32(RIGHT_SIB, NO_PAGE);
        page.put_u16(FREE_END, PAGE_SIZE as u16);
        page.put_u32(LEFTMOST, NO_PAGE);
    }

    pub fn is_leaf(page: &Page) -> bool {
        page.raw()[FLAGS] & 1 == 1
    }

    pub fn nkeys(page: &Page) -> usize {
        page.get_u16(NKEYS) as usize
    }

    pub fn right_sibling(page: &Page) -> Option<u32> {
        match page.get_u32(RIGHT_SIB) {
            NO_PAGE => None,
            p => Some(p),
        }
    }

    pub fn set_right_sibling(page: &mut Page, sib: Option<u32>) {
        page.put_u32(RIGHT_SIB, sib.unwrap_or(NO_PAGE));
    }

    pub fn leftmost_child(page: &Page) -> u32 {
        page.get_u32(LEFTMOST)
    }

    pub fn set_leftmost_child(page: &mut Page, child: u32) {
        page.put_u32(LEFTMOST, child);
    }

    fn cell_at(page: &Page, idx: usize) -> (usize, usize, usize) {
        let ptr = page.get_u16(PTRS + 2 * idx) as usize;
        let klen = page.get_u16(ptr) as usize;
        let vlen = page.get_u16(ptr + 2) as usize;
        (ptr, klen, vlen)
    }

    /// Key of entry `idx`. A corrupt cell pointer yields an empty key in
    /// release builds (and asserts in debug) instead of panicking.
    pub fn key(page: &Page, idx: usize) -> &[u8] {
        let (ptr, klen, _) = Self::cell_at(page, idx);
        page.raw().get(ptr + 4..ptr + 4 + klen).unwrap_or_else(|| {
            debug_assert!(false, "corrupt cell pointer for key {idx}");
            &[]
        })
    }

    /// Value of entry `idx`; same corruption behaviour as [`Node::key`].
    pub fn value(page: &Page, idx: usize) -> &[u8] {
        let (ptr, klen, vlen) = Self::cell_at(page, idx);
        page.raw()
            .get(ptr + 4 + klen..ptr + 4 + klen + vlen)
            .unwrap_or_else(|| {
                debug_assert!(false, "corrupt cell pointer for value {idx}");
                &[]
            })
    }

    /// Child page of entry `idx` (internal nodes store a u32 page_no as
    /// the value). A malformed cell routes to [`NO_PAGE`], which the page
    /// store rejects with a typed error.
    pub fn child(page: &Page, idx: usize) -> u32 {
        match Self::value(page, idx).try_into() {
            Ok(b) => u32::from_le_bytes(b),
            Err(_) => {
                debug_assert!(false, "child cell {idx} is not 4 bytes");
                NO_PAGE
            }
        }
    }

    /// Binary search: `Ok(idx)` exact match, `Err(idx)` insertion point.
    pub fn search(page: &Page, key: &[u8]) -> std::result::Result<usize, usize> {
        let mut lo = 0usize;
        let mut hi = Self::nkeys(page);
        while lo < hi {
            let mid = (lo + hi) / 2;
            match Self::key(page, mid).cmp(key) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Ok(mid),
            }
        }
        Err(lo)
    }

    /// The child an internal node routes `key` to.
    pub fn route(page: &Page, key: &[u8]) -> u32 {
        debug_assert!(!Self::is_leaf(page));
        match Self::search(page, key) {
            Ok(idx) => Self::child(page, idx),
            Err(0) => Self::leftmost_child(page),
            Err(idx) => Self::child(page, idx - 1),
        }
    }

    /// Bytes of live payload (cells referenced by the pointer array).
    pub fn used_cell_bytes(page: &Page) -> usize {
        (0..Self::nkeys(page))
            .map(|i| {
                let (_, klen, vlen) = Self::cell_at(page, i);
                4 + klen + vlen
            })
            .sum()
    }

    /// Contiguous free bytes.
    pub fn free_space(page: &Page) -> usize {
        let free_end = page.get_u16(FREE_END) as usize;
        free_end.saturating_sub(PTRS + 2 * Self::nkeys(page))
    }

    /// Free bytes after compaction.
    pub fn total_free(page: &Page) -> usize {
        PAGE_SIZE - PTRS - 2 * Self::nkeys(page) - Self::used_cell_bytes(page)
    }

    /// True when `(key, val)` fits (possibly after compaction).
    pub fn fits(page: &Page, klen: usize, vlen: usize) -> bool {
        Self::total_free(page) >= 2 + 4 + klen + vlen
    }

    /// Writes one `klen | vlen | key | value` cell at `free_end`. The
    /// caller has already reserved `4 + key + val` bytes of cell space.
    fn write_cell(page: &mut Page, free_end: usize, key: &[u8], val: &[u8]) {
        let cell = 4 + key.len() + val.len();
        let Some(dst) = page.raw_mut().get_mut(free_end..free_end + cell) else {
            debug_assert!(false, "cell write out of page bounds");
            return;
        };
        // bounds: `dst` spans exactly `cell` bytes (checked above).
        dst[..2].copy_from_slice(&(key.len() as u16).to_le_bytes());
        dst[2..4].copy_from_slice(&(val.len() as u16).to_le_bytes());
        // bounds: 4 + klen + vlen == cell, so these ranges tile `dst`.
        dst[4..4 + key.len()].copy_from_slice(key);
        dst[4 + key.len()..].copy_from_slice(val);
    }

    /// Rewrites cells contiguously, dropping dead space.
    pub fn compact(page: &mut Page) {
        let n = Self::nkeys(page);
        let entries: Vec<(Vec<u8>, Vec<u8>)> = (0..n)
            .map(|i| (Self::key(page, i).to_vec(), Self::value(page, i).to_vec()))
            .collect();
        let mut free_end = PAGE_SIZE;
        for (i, (k, v)) in entries.iter().enumerate() {
            free_end -= 4 + k.len() + v.len();
            Self::write_cell(page, free_end, k, v);
            page.put_u16(PTRS + 2 * i, free_end as u16);
        }
        page.put_u16(FREE_END, free_end as u16);
    }

    /// Inserts `(key, val)` at sorted position `idx` (from
    /// [`Node::search`]'s `Err`). The caller must have verified
    /// [`Node::fits`]; splits are the tree layer's business.
    pub fn insert_at(page: &mut Page, idx: usize, key: &[u8], val: &[u8]) -> Result<()> {
        let cell = 4 + key.len() + val.len();
        if Self::free_space(page) < cell + 2 {
            if Self::total_free(page) < cell + 2 {
                return Err(DmxError::Internal(
                    "node overflow; caller must split".into(),
                ));
            }
            Self::compact(page);
        }
        let n = Self::nkeys(page);
        debug_assert!(idx <= n);
        // shift pointer array right
        for i in (idx..n).rev() {
            let p = page.get_u16(PTRS + 2 * i);
            page.put_u16(PTRS + 2 * (i + 1), p);
        }
        let free_end = (page.get_u16(FREE_END) as usize).saturating_sub(cell);
        Self::write_cell(page, free_end, key, val);
        page.put_u16(FREE_END, free_end as u16);
        page.put_u16(PTRS + 2 * idx, free_end as u16);
        page.put_u16(NKEYS, (n + 1) as u16);
        Ok(())
    }

    /// Removes entry `idx` (pointer removal; cell bytes become dead space).
    pub fn remove_at(page: &mut Page, idx: usize) {
        let n = Self::nkeys(page);
        debug_assert!(idx < n);
        for i in idx + 1..n {
            let p = page.get_u16(PTRS + 2 * i);
            page.put_u16(PTRS + 2 * (i - 1), p);
        }
        page.put_u16(NKEYS, (n - 1) as u16);
    }

    /// Replaces the value of entry `idx`.
    pub fn replace_value(page: &mut Page, idx: usize, val: &[u8]) -> Result<()> {
        let (ptr, klen, vlen) = Self::cell_at(page, idx);
        if val.len() == vlen {
            match page
                .raw_mut()
                .get_mut(ptr + 4 + klen..ptr + 4 + klen + vlen)
            {
                Some(dst) => dst.copy_from_slice(val),
                None => {
                    debug_assert!(false, "corrupt cell pointer in replace_value");
                    return Err(DmxError::Internal("corrupt cell pointer".into()));
                }
            }
            return Ok(());
        }
        let key = Self::key(page, idx).to_vec();
        let old = Self::value(page, idx).to_vec();
        Self::remove_at(page, idx);
        if !Self::fits(page, key.len(), val.len()) {
            // The displaced cell came out of this page, so re-inserting it
            // cannot overflow; if it somehow does, surface that error.
            Self::insert_at(page, idx, &key, &old)?;
            return Err(DmxError::Internal(
                "node overflow; caller must split".into(),
            ));
        }
        Self::insert_at(page, idx, &key, val)
    }

    /// Moves the upper half of the entries (by bytes) into `right`,
    /// returning the first key of `right`. Both pages must already be
    /// initialized with the same leaf-ness; `right` must be empty.
    pub fn split_into(page: &mut Page, right: &mut Page) -> Result<Vec<u8>> {
        let n = Self::nkeys(page);
        debug_assert!(n >= 2, "cannot split a node with < 2 entries");
        let total = Self::used_cell_bytes(page);
        // find split point: first index where the left half exceeds 50%
        let mut acc = 0usize;
        let mut split = n / 2; // fallback
        for i in 0..n {
            let (_, klen, vlen) = Self::cell_at(page, i);
            acc += 4 + klen + vlen;
            if acc > total / 2 {
                split = i + 1;
                break;
            }
        }
        split = split.clamp(1, n - 1);
        let moved: Vec<(Vec<u8>, Vec<u8>)> = (split..n)
            .map(|i| (Self::key(page, i).to_vec(), Self::value(page, i).to_vec()))
            .collect();
        for _ in split..n {
            Self::remove_at(page, split);
        }
        Self::compact(page);
        for (i, (k, v)) in moved.iter().enumerate() {
            // Half of a full page always fits in the empty `right` page.
            Self::insert_at(right, i, k, v)?;
        }
        Ok(moved[0].0.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf() -> Page {
        let mut p = Page::new();
        Node::init(&mut p, true);
        p
    }

    #[test]
    fn init_and_flags() {
        let p = leaf();
        assert!(Node::is_leaf(&p));
        assert_eq!(Node::nkeys(&p), 0);
        assert_eq!(Node::right_sibling(&p), None);
        assert_eq!(p.page_type(), PAGE_TYPE_BTREE);
        let mut q = Page::new();
        Node::init(&mut q, false);
        assert!(!Node::is_leaf(&q));
    }

    #[test]
    fn sorted_insert_and_search() {
        let mut p = leaf();
        for k in [b"m", b"a", b"z", b"c"] {
            let idx = Node::search(&p, k).unwrap_err();
            Node::insert_at(&mut p, idx, k, b"v").unwrap();
        }
        assert_eq!(Node::nkeys(&p), 4);
        let keys: Vec<&[u8]> = (0..4).map(|i| Node::key(&p, i)).collect();
        assert_eq!(keys, vec![&b"a"[..], b"c", b"m", b"z"]);
        assert_eq!(Node::search(&p, b"m"), Ok(2));
        assert_eq!(Node::search(&p, b"b"), Err(1));
        assert_eq!(Node::search(&p, b"zz"), Err(4));
    }

    #[test]
    fn remove_and_compact_recover_space() {
        let mut p = leaf();
        for i in 0..10u8 {
            let k = [i];
            let idx = Node::search(&p, &k).unwrap_err();
            Node::insert_at(&mut p, idx, &k, &[0u8; 100]).unwrap();
        }
        let free_before = Node::free_space(&p);
        Node::remove_at(&mut p, 0);
        Node::remove_at(&mut p, 0);
        assert_eq!(Node::nkeys(&p), 8);
        assert_eq!(Node::key(&p, 0), &[2]);
        // dead cells counted by total_free but not contiguous free
        assert!(Node::total_free(&p) > Node::free_space(&p));
        Node::compact(&mut p);
        assert!(Node::free_space(&p) > free_before);
        // survivors intact after compaction
        for i in 0..8usize {
            assert_eq!(Node::key(&p, i), &[(i + 2) as u8]);
            assert_eq!(Node::value(&p, i), &[0u8; 100]);
        }
    }

    #[test]
    fn replace_value_same_and_different_size() {
        let mut p = leaf();
        Node::insert_at(&mut p, 0, b"k", b"aaaa").unwrap();
        Node::replace_value(&mut p, 0, b"bbbb").unwrap();
        assert_eq!(Node::value(&p, 0), b"bbbb");
        Node::replace_value(&mut p, 0, b"cccccccc").unwrap();
        assert_eq!(Node::value(&p, 0), b"cccccccc");
        assert_eq!(Node::key(&p, 0), b"k");
        assert_eq!(Node::nkeys(&p), 1);
    }

    #[test]
    fn internal_routing() {
        let mut p = Page::new();
        Node::init(&mut p, false);
        Node::set_leftmost_child(&mut p, 100);
        // entries: "g" -> 200, "p" -> 300
        Node::insert_at(&mut p, 0, b"g", &200u32.to_le_bytes()).unwrap();
        Node::insert_at(&mut p, 1, b"p", &300u32.to_le_bytes()).unwrap();
        assert_eq!(Node::route(&p, b"a"), 100);
        assert_eq!(Node::route(&p, b"g"), 200, "separator routes right");
        assert_eq!(Node::route(&p, b"m"), 200);
        assert_eq!(Node::route(&p, b"p"), 300);
        assert_eq!(Node::route(&p, b"z"), 300);
        assert_eq!(Node::child(&p, 0), 200);
    }

    #[test]
    fn split_balances_and_returns_separator() {
        let mut left = leaf();
        for i in 0..20u8 {
            let k = [i];
            Node::insert_at(&mut left, i as usize, &k, &[7u8; 64]).unwrap();
        }
        let mut right = leaf();
        let sep = Node::split_into(&mut left, &mut right).unwrap();
        let (nl, nr) = (Node::nkeys(&left), Node::nkeys(&right));
        assert_eq!(nl + nr, 20);
        assert!(nl >= 2 && nr >= 2, "roughly balanced: {nl}/{nr}");
        assert_eq!(Node::key(&right, 0), &sep[..]);
        // strict ordering across the split
        assert!(Node::key(&left, nl - 1) < &sep[..]);
    }

    #[test]
    fn fits_respects_capacity() {
        let mut p = leaf();
        assert!(Node::fits(&p, 10, MAX_ENTRY - 10));
        let mut i = 0u32;
        loop {
            let k = i.to_be_bytes();
            if !Node::fits(&p, k.len(), 200) {
                break;
            }
            let idx = Node::search(&p, &k).unwrap_err();
            Node::insert_at(&mut p, idx, &k, &[1u8; 200]).unwrap();
            i += 1;
        }
        assert!(
            i >= 30,
            "8 KiB page should hold ≥30 208-byte cells, got {i}"
        );
        // and a direct overflow insert errors rather than corrupting
        let k = [0xFFu8; 8];
        let end = Node::nkeys(&p);
        assert!(Node::insert_at(&mut p, end, &k, &[1u8; 200]).is_err());
    }
}
