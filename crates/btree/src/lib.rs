//! A page-based B+tree over the buffer pool.
//!
//! Keys are arbitrary byte strings compared with `memcmp` (the
//! order-preserving encoding in `dmx_types::key` makes that equal to value
//! order); values are arbitrary byte strings. The same structure backs
//! two extensions: the B-tree *storage method* (records stored in the
//! leaves, per the paper's "records … stored in the leaves of a B-tree
//! index") and the B-tree *index attachment* (leaf values are storage
//! method record keys).
//!
//! Design notes:
//! * The root page number is fixed for the life of the tree (root splits
//!   copy the old root into a fresh child), so descriptors can store it.
//! * Deletion is by tombstoning within nodes without rebalancing (lazy
//!   deletion, as many production B-trees do); pages reclaim dead space by
//!   compaction on demand.
//! * Cursors re-descend from the last returned key on every step, which
//!   makes scan positions naturally robust to concurrent inserts, splits
//!   and deletes — matching the paper's scan rule that a scan positioned
//!   *on* a deleted item is thereafter *after* it.
//! * Physical concurrency is handled by a per-tree reader/writer latch
//!   ([`latch::LatchTable`]); logical concurrency (who may see what) is
//!   the lock manager's job, one level up.
//! * No logging happens here: the owning extension logs *logical* undo
//!   records (insert⇄delete), which is exactly the latitude the paper
//!   grants extension implementors in choosing recovery techniques.

pub mod latch;
pub mod node;
pub mod tree;

pub use latch::{LatchTable, OwnedLatchWriteGuard, TreeLatch};
pub use tree::{BTree, BTreeCursor, OnDuplicate, TreeStats};
