//! B+tree operations: descent, insert with splits, delete, seek and
//! cursors.

use std::ops::Bound;
use std::sync::Arc;

use dmx_page::{BufferPool, Page, PinnedPage};
use dmx_types::{DmxError, FileId, Lsn, PageId, Result};

use crate::latch::{LatchTable, TreeLatch};
use crate::node::{Node, MAX_ENTRY, PAGE_TYPE_BTREE};

/// Upper bound on descent depth. Fan-out is at least 4, so a legitimate
/// tree of this height cannot exist; exceeding it means the routing
/// graph has a cycle (damaged or never-written child pointers) and the
/// descent reports [`DmxError::Corrupt`] instead of spinning.
const MAX_DEPTH: usize = 64;

/// Behaviour when an inserted key already exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OnDuplicate {
    /// Fail with [`DmxError::Duplicate`].
    Error,
    /// Replace the stored value.
    Replace,
}

/// A handle to one B+tree. Cheap to clone; the root page id is stable for
/// the life of the tree, so extension descriptors can persist it.
#[derive(Clone)]
pub struct BTree {
    pool: Arc<BufferPool>,
    root: PageId,
    latch: Arc<TreeLatch>,
    /// When non-null, every page a mutation dirties is stamped with this
    /// LSN so the buffer pool's write-ahead hook forces the log through
    /// it before the page can reach disk.
    wal_lsn: Lsn,
}

/// Structural statistics (tests, cost sanity checks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeStats {
    pub height: usize,
    pub nodes: usize,
    pub entries: usize,
}

impl BTree {
    /// Allocates a new empty tree (a single leaf root) in `file`.
    pub fn create(pool: &Arc<BufferPool>, file: FileId, latches: &LatchTable) -> Result<BTree> {
        let page = pool.new_page(file)?;
        Node::init(&mut page.write(), true);
        let root = page.id();
        Ok(BTree {
            pool: pool.clone(),
            root,
            latch: latches.latch(root),
            wal_lsn: Lsn::NULL,
        })
    }

    /// Opens an existing tree by its root page.
    pub fn open(pool: &Arc<BufferPool>, root: PageId, latches: &LatchTable) -> BTree {
        BTree {
            pool: pool.clone(),
            root,
            latch: latches.latch(root),
            wal_lsn: Lsn::NULL,
        }
    }

    /// Returns a handle whose mutations stamp every dirtied page with
    /// `lsn`, establishing write-ahead for the log record that describes
    /// them: the buffer pool forces the log through a page's LSN before
    /// writing it, so a logged-then-applied tree change can never reach
    /// disk with its log record still volatile. Handles without an LSN
    /// (build-time loads, tests) leave page LSNs untouched.
    #[must_use]
    pub fn with_wal_lsn(mut self, lsn: Lsn) -> Self {
        self.wal_lsn = lsn;
        self
    }

    /// Stamps a page this mutation dirtied (LSNs only move forward).
    fn stamp(&self, page: &mut Page) {
        if self.wal_lsn > page.lsn() {
            page.set_lsn(self.wal_lsn);
        }
    }

    /// The stable root page id.
    pub fn root(&self) -> PageId {
        self.root
    }

    fn page(&self, page_no: u32) -> Result<PinnedPage> {
        self.pool.fetch(PageId::new(self.root.file, page_no))
    }

    /// Fetches a page the descent will interpret as a tree node,
    /// rejecting anything that is not one. A crash can leave an
    /// allocated-but-never-written (zeroed) page behind an otherwise
    /// durable child pointer; interpreting it as a node would route the
    /// descent to page 0 forever.
    fn node(&self, page_no: u32) -> Result<PinnedPage> {
        let pin = self.page(page_no)?;
        let ty = pin.read().page_type();
        if ty != PAGE_TYPE_BTREE {
            return Err(DmxError::Corrupt(format!(
                "page {page_no} of file {} is not a btree node (page type {ty})",
                self.root.file.0
            )));
        }
        Ok(pin)
    }

    /// Typed error for a descent that outran any legitimate tree height.
    fn depth_exceeded(&self) -> DmxError {
        DmxError::Corrupt(format!(
            "btree descent in file {} exceeded depth {MAX_DEPTH} (routing cycle)",
            self.root.file.0
        ))
    }

    /// Inserts `(key, val)`. Keys are unique; `on_dup` picks the
    /// duplicate behaviour.
    pub fn insert(&self, key: &[u8], val: &[u8], on_dup: OnDuplicate) -> Result<()> {
        if key.len() + val.len() > MAX_ENTRY {
            return Err(DmxError::InvalidArg(format!(
                "btree entry of {} bytes exceeds max {MAX_ENTRY}",
                key.len() + val.len()
            )));
        }
        if key.is_empty() {
            return Err(DmxError::InvalidArg("empty btree key".into()));
        }
        let _guard = self.latch.write();
        if let Some((sep, right)) = self.insert_rec(self.root.page_no, key, val, on_dup, 0)? {
            self.grow_root(&sep, right)?;
        }
        Ok(())
    }

    /// Recursive insert; returns `Some((separator, new_right_page_no))`
    /// when the visited node split.
    fn insert_rec(
        &self,
        page_no: u32,
        key: &[u8],
        val: &[u8],
        on_dup: OnDuplicate,
        depth: usize,
    ) -> Result<Option<(Vec<u8>, u32)>> {
        if depth > MAX_DEPTH {
            return Err(self.depth_exceeded());
        }
        let pin = self.node(page_no)?;
        let is_leaf = Node::is_leaf(&pin.read());
        if is_leaf {
            let mut page = pin.write();
            match Node::search(&page, key) {
                Ok(idx) => match on_dup {
                    OnDuplicate::Error => Err(DmxError::Duplicate(format!(
                        "btree key {:02x?}",
                        // bounds: length clamped to key.len().
                        &key[..key.len().min(16)]
                    ))),
                    OnDuplicate::Replace => {
                        if Node::replace_value(&mut page, idx, val).is_ok() {
                            self.stamp(&mut page);
                            return Ok(None);
                        }
                        // No room even after compaction: remove and fall
                        // through to a fresh (possibly splitting) insert.
                        Node::remove_at(&mut page, idx);
                        self.stamp(&mut page);
                        drop(page);
                        drop(pin);
                        self.insert_rec(page_no, key, val, OnDuplicate::Error, depth)
                    }
                },
                Err(idx) => {
                    if Node::fits(&page, key.len(), val.len()) {
                        Node::insert_at(&mut page, idx, key, val)?;
                        self.stamp(&mut page);
                        return Ok(None);
                    }
                    // Split the leaf.
                    let right_pin = self.pool.new_page(self.root.file)?;
                    let mut right = right_pin.write();
                    Node::init(&mut right, true);
                    let sep = Node::split_into(&mut page, &mut right)?;
                    Node::set_right_sibling(&mut right, Node::right_sibling(&page));
                    Node::set_right_sibling(&mut page, Some(right_pin.id().page_no));
                    let target = if key < sep.as_slice() {
                        &mut *page
                    } else {
                        &mut *right
                    };
                    // The key cannot be present in either half of a page
                    // that was split because it did not fit, so both the
                    // found and the insertion index are the same slot.
                    let idx = Node::search(target, key).unwrap_or_else(|i| i);
                    Node::insert_at(target, idx, key, val)?;
                    self.stamp(&mut page);
                    self.stamp(&mut right);
                    Ok(Some((sep, right_pin.id().page_no)))
                }
            }
        } else {
            let child = Node::route(&pin.read(), key);
            let split = self.insert_rec(child, key, val, on_dup, depth + 1)?;
            let Some((sep, new_child)) = split else {
                return Ok(None);
            };
            let mut page = pin.write();
            let idx = match Node::search(&page, &sep) {
                Ok(_) => return Err(DmxError::Internal("duplicate separator".into())),
                Err(i) => i,
            };
            if Node::fits(&page, sep.len(), 4) {
                Node::insert_at(&mut page, idx, &sep, &new_child.to_le_bytes())?;
                self.stamp(&mut page);
                return Ok(None);
            }
            // Split the internal node: the right node's first key moves up.
            let right_pin = self.pool.new_page(self.root.file)?;
            let mut right = right_pin.write();
            Node::init(&mut right, false);
            let _first_right = Node::split_into(&mut page, &mut right)?;
            let sep_up = Node::key(&right, 0).to_vec();
            let first_child = Node::child(&right, 0);
            Node::set_leftmost_child(&mut right, first_child);
            Node::remove_at(&mut right, 0);
            // Place the pending (sep, new_child) entry.
            let target = if sep < sep_up {
                &mut *page
            } else {
                &mut *right
            };
            match Node::search(target, &sep) {
                Ok(_) => return Err(DmxError::Internal("duplicate separator".into())),
                Err(i) => Node::insert_at(target, i, &sep, &new_child.to_le_bytes())?,
            }
            self.stamp(&mut page);
            self.stamp(&mut right);
            Ok(Some((sep_up, right_pin.id().page_no)))
        }
    }

    /// Handles a root split: the old root's contents move into a fresh
    /// child so the root page number never changes.
    fn grow_root(&self, sep: &[u8], right: u32) -> Result<()> {
        let root_pin = self.page(self.root.page_no)?;
        let left_pin = self.pool.new_page(self.root.file)?;
        {
            let mut left = left_pin.write();
            let root = root_pin.read();
            *left.raw_mut() = *root.raw();
            self.stamp(&mut left);
        }
        let mut root = root_pin.write();
        Node::init(&mut root, false);
        Node::set_leftmost_child(&mut root, left_pin.id().page_no);
        Node::insert_at(&mut root, 0, sep, &right.to_le_bytes())?;
        self.stamp(&mut root);
        Ok(())
    }

    /// Point lookup.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let _guard = self.latch.read();
        let mut page_no = self.root.page_no;
        for _ in 0..=MAX_DEPTH {
            let pin = self.node(page_no)?;
            let page = pin.read();
            if Node::is_leaf(&page) {
                return Ok(match Node::search(&page, key) {
                    Ok(idx) => Some(Node::value(&page, idx).to_vec()),
                    Err(_) => None,
                });
            }
            page_no = Node::route(&page, key);
        }
        Err(self.depth_exceeded())
    }

    /// Deletes a key, returning its old value. Lazy deletion: nodes are
    /// never merged.
    pub fn delete(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let _guard = self.latch.write();
        let mut page_no = self.root.page_no;
        for _ in 0..=MAX_DEPTH {
            let pin = self.node(page_no)?;
            if Node::is_leaf(&pin.read()) {
                let mut page = pin.write();
                return Ok(match Node::search(&page, key) {
                    Ok(idx) => {
                        let old = Node::value(&page, idx).to_vec();
                        Node::remove_at(&mut page, idx);
                        self.stamp(&mut page);
                        Some(old)
                    }
                    Err(_) => None,
                });
            }
            page_no = Node::route(&pin.read(), key);
        }
        Err(self.depth_exceeded())
    }

    /// First entry at-or-after the bound (walking right siblings across
    /// empty leaves).
    pub fn seek(&self, bound: Bound<&[u8]>) -> Result<Option<(Vec<u8>, Vec<u8>)>> {
        let _guard = self.latch.read();
        let target: &[u8] = match bound {
            Bound::Included(k) | Bound::Excluded(k) => k,
            Bound::Unbounded => &[],
        };
        // Descend to the leaf covering `target`.
        let mut page_no = self.root.page_no;
        let mut depth = 0usize;
        loop {
            let pin = self.node(page_no)?;
            let page = pin.read();
            if Node::is_leaf(&page) {
                break;
            }
            depth += 1;
            if depth > MAX_DEPTH {
                return Err(self.depth_exceeded());
            }
            page_no = Node::route(&page, target);
        }
        // Find the first qualifying entry, spilling into right siblings.
        let mut pin = self.node(page_no)?;
        let mut idx = {
            let page = pin.read();
            match bound {
                Bound::Unbounded => 0,
                Bound::Included(k) => match Node::search(&page, k) {
                    Ok(i) | Err(i) => i,
                },
                Bound::Excluded(k) => match Node::search(&page, k) {
                    Ok(i) => i + 1,
                    Err(i) => i,
                },
            }
        };
        loop {
            let page = pin.read();
            if idx < Node::nkeys(&page) {
                return Ok(Some((
                    Node::key(&page, idx).to_vec(),
                    Node::value(&page, idx).to_vec(),
                )));
            }
            let Some(sib) = Node::right_sibling(&page) else {
                return Ok(None);
            };
            drop(page);
            pin = self.node(sib)?;
            idx = 0;
        }
    }

    /// True when any stored key starts with `prefix` (used by unique
    /// checks over composite-encoded index keys).
    pub fn contains_prefix(&self, prefix: &[u8]) -> Result<bool> {
        Ok(match self.seek(Bound::Included(prefix))? {
            Some((k, _)) => k.starts_with(prefix),
            None => false,
        })
    }

    /// An ascending cursor over `[lo, hi]`.
    pub fn range(&self, lo: Bound<Vec<u8>>, hi: Bound<Vec<u8>>) -> BTreeCursor {
        BTreeCursor {
            tree: self.clone(),
            next_bound: lo,
            hi,
        }
    }

    /// Cursor over every entry.
    pub fn iter_all(&self) -> BTreeCursor {
        self.range(Bound::Unbounded, Bound::Unbounded)
    }

    /// Walks the tree computing structural statistics.
    pub fn stats(&self) -> Result<TreeStats> {
        let _guard = self.latch.read();
        fn rec(tree: &BTree, page_no: u32, depth: usize, st: &mut TreeStats) -> Result<()> {
            if depth > MAX_DEPTH {
                return Err(tree.depth_exceeded());
            }
            let pin = tree.node(page_no)?;
            let page = pin.read();
            st.nodes += 1;
            st.height = st.height.max(depth);
            if Node::is_leaf(&page) {
                st.entries += Node::nkeys(&page);
                return Ok(());
            }
            let children: Vec<u32> = std::iter::once(Node::leftmost_child(&page))
                .chain((0..Node::nkeys(&page)).map(|i| Node::child(&page, i)))
                .collect();
            drop(page);
            drop(pin);
            for c in children {
                rec(tree, c, depth + 1, st)?;
            }
            Ok(())
        }
        let mut st = TreeStats {
            height: 0,
            nodes: 0,
            entries: 0,
        };
        rec(self, self.root.page_no, 1, &mut st)?;
        Ok(st)
    }
}

/// Ascending cursor. Each step re-descends from the last returned key, so
/// the cursor stays valid across arbitrary concurrent mutation — a scan
/// positioned on a deleted item is simply *after* it (the paper's rule).
pub struct BTreeCursor {
    tree: BTree,
    next_bound: Bound<Vec<u8>>,
    hi: Bound<Vec<u8>>,
}

impl BTreeCursor {
    /// Next entry within bounds, or `None` when exhausted. Not an
    /// `Iterator`: positioning is fallible, and `Result<Option<..>>`
    /// keeps the I/O error path explicit at every call site.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<(Vec<u8>, Vec<u8>)>> {
        let bound = match &self.next_bound {
            Bound::Included(k) => Bound::Included(k.as_slice()),
            Bound::Excluded(k) => Bound::Excluded(k.as_slice()),
            Bound::Unbounded => Bound::Unbounded,
        };
        let Some((k, v)) = self.tree.seek(bound)? else {
            return Ok(None);
        };
        let in_hi = match &self.hi {
            Bound::Unbounded => true,
            Bound::Included(h) => k.as_slice() <= h.as_slice(),
            Bound::Excluded(h) => k.as_slice() < h.as_slice(),
        };
        if !in_hi {
            return Ok(None);
        }
        self.next_bound = Bound::Excluded(k.clone());
        Ok(Some((k, v)))
    }

    /// The key the cursor will resume after (its saved position).
    pub fn position(&self) -> &Bound<Vec<u8>> {
        &self.next_bound
    }

    /// Restores a saved position (savepoint scan-position restore).
    pub fn set_position(&mut self, pos: Bound<Vec<u8>>) {
        self.next_bound = pos;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmx_page::{DiskManager, MemDisk};
    use dmx_types::key::encode_values;
    use dmx_types::testrng::TestRng;
    use dmx_types::Value;

    fn setup() -> (Arc<BufferPool>, BTree) {
        let disk = Arc::new(MemDisk::new());
        let pool = BufferPool::new(disk.clone(), 256);
        let file = disk.create_file().unwrap();
        let latches = LatchTable::new();
        let tree = BTree::create(&pool, file, &latches).unwrap();
        (pool, tree)
    }

    fn k(i: i64) -> Vec<u8> {
        encode_values(&[Value::Int(i)])
    }

    #[test]
    fn insert_get_delete_roundtrip() {
        let (_p, t) = setup();
        t.insert(&k(5), b"five", OnDuplicate::Error).unwrap();
        t.insert(&k(1), b"one", OnDuplicate::Error).unwrap();
        assert_eq!(t.get(&k(5)).unwrap().unwrap(), b"five");
        assert_eq!(t.get(&k(2)).unwrap(), None);
        assert_eq!(t.delete(&k(5)).unwrap().unwrap(), b"five");
        assert_eq!(t.get(&k(5)).unwrap(), None);
        assert_eq!(t.delete(&k(5)).unwrap(), None, "idempotent");
    }

    #[test]
    fn duplicate_handling() {
        let (_p, t) = setup();
        t.insert(&k(1), b"a", OnDuplicate::Error).unwrap();
        assert!(matches!(
            t.insert(&k(1), b"b", OnDuplicate::Error),
            Err(DmxError::Duplicate(_))
        ));
        assert_eq!(t.get(&k(1)).unwrap().unwrap(), b"a");
        t.insert(&k(1), b"bb", OnDuplicate::Replace).unwrap();
        assert_eq!(t.get(&k(1)).unwrap().unwrap(), b"bb");
    }

    #[test]
    fn rejects_bad_entries() {
        let (_p, t) = setup();
        assert!(t.insert(&[], b"v", OnDuplicate::Error).is_err());
        let huge = vec![0u8; MAX_ENTRY + 1];
        assert!(t.insert(&huge, b"", OnDuplicate::Error).is_err());
    }

    #[test]
    fn many_keys_force_splits_and_stay_sorted() {
        let (_p, t) = setup();
        let n = 5000i64;
        let mut order: Vec<i64> = (0..n).collect();
        TestRng::new(42).shuffle(&mut order);
        for i in &order {
            t.insert(&k(*i), &i.to_le_bytes(), OnDuplicate::Error)
                .unwrap();
        }
        let st = t.stats().unwrap();
        assert_eq!(st.entries, n as usize);
        assert!(st.height >= 2, "5000 entries must split: {st:?}");
        assert!(st.nodes > 1);
        // every key findable
        for i in 0..n {
            assert_eq!(
                t.get(&k(i)).unwrap().unwrap(),
                i.to_le_bytes(),
                "key {i} lost"
            );
        }
        // full scan is sorted and complete
        let mut cur = t.iter_all();
        let mut prev: Option<Vec<u8>> = None;
        let mut count = 0;
        while let Some((key, _)) = cur.next().unwrap() {
            if let Some(p) = &prev {
                assert!(p < &key, "scan out of order");
            }
            prev = Some(key);
            count += 1;
        }
        assert_eq!(count, n);
    }

    #[test]
    fn range_scans_with_bounds() {
        let (_p, t) = setup();
        for i in 0..100i64 {
            t.insert(&k(i), b"", OnDuplicate::Error).unwrap();
        }
        let collect = |lo: Bound<Vec<u8>>, hi: Bound<Vec<u8>>| -> Vec<Vec<u8>> {
            let mut cur = t.range(lo, hi);
            let mut out = Vec::new();
            while let Some((key, _)) = cur.next().unwrap() {
                out.push(key);
            }
            out
        };
        assert_eq!(
            collect(Bound::Included(k(10)), Bound::Excluded(k(15))).len(),
            5
        );
        assert_eq!(
            collect(Bound::Excluded(k(10)), Bound::Included(k(15))).len(),
            5
        );
        assert_eq!(collect(Bound::Included(k(95)), Bound::Unbounded).len(), 5);
        assert_eq!(collect(Bound::Unbounded, Bound::Excluded(k(0))).len(), 0);
    }

    #[test]
    fn seek_walks_over_emptied_leaves() {
        let (_p, t) = setup();
        // Fill enough to create several leaves, then empty a middle range.
        for i in 0..2000i64 {
            t.insert(&k(i), &[1u8; 64], OnDuplicate::Error).unwrap();
        }
        for i in 500..1500i64 {
            t.delete(&k(i)).unwrap();
        }
        let got = t.seek(Bound::Included(&k(500))).unwrap().unwrap();
        assert_eq!(got.0, k(1500), "seek crossed emptied leaves");
    }

    #[test]
    fn cursor_sees_delete_at_position_as_after() {
        let (_p, t) = setup();
        for i in 0..10i64 {
            t.insert(&k(i), b"", OnDuplicate::Error).unwrap();
        }
        let mut cur = t.iter_all();
        let (first, _) = cur.next().unwrap().unwrap();
        assert_eq!(first, k(0));
        // Delete the item the scan is ON; the scan must continue just
        // after it (the paper's scan rule).
        t.delete(&k(0)).unwrap();
        // Also delete the next item before the scan reaches it.
        t.delete(&k(1)).unwrap();
        let (next, _) = cur.next().unwrap().unwrap();
        assert_eq!(next, k(2));
    }

    #[test]
    fn cursor_position_save_restore() {
        let (_p, t) = setup();
        for i in 0..10i64 {
            t.insert(&k(i), b"", OnDuplicate::Error).unwrap();
        }
        let mut cur = t.iter_all();
        cur.next().unwrap();
        cur.next().unwrap();
        let saved = cur.position().clone();
        cur.next().unwrap();
        cur.next().unwrap();
        cur.set_position(saved);
        assert_eq!(
            cur.next().unwrap().unwrap().0,
            k(2),
            "restored to after k(1)"
        );
    }

    #[test]
    fn contains_prefix_composite_keys() {
        let (_p, t) = setup();
        // composite (dept, emp) keys
        for (d, e) in [(1i64, 1i64), (1, 2), (3, 1)] {
            let key = encode_values(&[Value::Int(d), Value::Int(e)]);
            t.insert(&key, b"", OnDuplicate::Error).unwrap();
        }
        assert!(t.contains_prefix(&encode_values(&[Value::Int(1)])).unwrap());
        assert!(t.contains_prefix(&encode_values(&[Value::Int(3)])).unwrap());
        assert!(!t.contains_prefix(&encode_values(&[Value::Int(2)])).unwrap());
    }

    #[test]
    fn variable_size_values_and_replace_growth() {
        let (_p, t) = setup();
        // values of wildly different sizes, including replacement growth
        for i in 0..300i64 {
            let val = vec![b'x'; (i as usize * 7) % 900];
            t.insert(&k(i), &val, OnDuplicate::Error).unwrap();
        }
        for i in 0..300i64 {
            let val = vec![b'y'; ((i as usize * 13) % 900) + 1];
            t.insert(&k(i), &val, OnDuplicate::Replace).unwrap();
            assert_eq!(t.get(&k(i)).unwrap().unwrap(), val);
        }
        assert_eq!(t.stats().unwrap().entries, 300);
    }

    #[test]
    fn open_existing_tree() {
        let (pool, t) = setup();
        for i in 0..1000i64 {
            t.insert(&k(i), b"v", OnDuplicate::Error).unwrap();
        }
        let root = t.root();
        drop(t);
        let latches = LatchTable::new();
        let t2 = BTree::open(&pool, root, &latches);
        assert_eq!(t2.get(&k(999)).unwrap().unwrap(), b"v");
        assert_eq!(t2.stats().unwrap().entries, 1000);
    }

    /// Random operation sequences agree with std BTreeMap. Deterministic
    /// seeds replace the old proptest strategy (32 cases preserved); a
    /// failure reproduces exactly from its seed.
    #[test]
    fn randomized_matches_std_btreemap() {
        for seed in 0..32u64 {
            let mut rng = TestRng::new(0xB7EE ^ (seed << 8));
            let (_p, t) = setup();
            let mut shadow = std::collections::BTreeMap::new();
            for _ in 0..rng.index(300) {
                let op = rng.below(3) as u8;
                let key = rng.range_i64(-50, 50);
                let val = rng.bytes(39);
                match op {
                    0 => {
                        let r = t.insert(&k(key), &val, OnDuplicate::Error);
                        if let std::collections::btree_map::Entry::Vacant(e) = shadow.entry(key) {
                            assert!(r.is_ok());
                            e.insert(val);
                        } else {
                            assert!(r.is_err());
                        }
                    }
                    1 => {
                        let got = t.delete(&k(key)).unwrap();
                        assert_eq!(got, shadow.remove(&key));
                    }
                    _ => {
                        let got = t.get(&k(key)).unwrap();
                        assert_eq!(got.as_ref(), shadow.get(&key));
                    }
                }
            }
            // final scan equals shadow iteration
            let mut cur = t.iter_all();
            let mut got = Vec::new();
            while let Some((key, v)) = cur.next().unwrap() {
                got.push((key, v));
            }
            let want: Vec<(Vec<u8>, Vec<u8>)> =
                shadow.iter().map(|(i, v)| (k(*i), v.clone())).collect();
            assert_eq!(got, want, "seed {seed}");
        }
    }
}
