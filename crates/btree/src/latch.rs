//! Per-tree physical latches.
//!
//! One reader/writer latch per tree (keyed by the tree's root page id)
//! serializes structural modification against readers. This is coarse —
//! a real system would crab-latch — but correct, and tree operations are
//! short.
//!
//! The latch is hand-rolled on a mutex + condvar rather than
//! `std::sync::RwLock` because the commit-time flush needs *owned* write
//! guards (guards that keep their latch alive via `Arc`), which std's
//! borrowed guards cannot express without unsafe lifetime extension.

use std::collections::HashMap;
use std::sync::Arc;

use dmx_types::sync::{Condvar, Mutex};

use dmx_types::PageId;

/// Reader/writer state of one tree latch.
#[derive(Default)]
struct LatchState {
    readers: usize,
    writer: bool,
}

/// A reader/writer latch for one tree. Writer preference is unnecessary at
/// this granularity: tree operations hold the latch only for the duration
/// of one structural operation.
#[derive(Default)]
pub struct TreeLatch {
    state: Mutex<LatchState>,
    cv: Condvar,
}

impl TreeLatch {
    /// Acquires shared read access for the lifetime of the guard.
    pub fn read(&self) -> LatchReadGuard<'_> {
        let mut st = self.state.lock();
        while st.writer {
            st = self.cv.wait(st);
        }
        st.readers += 1;
        LatchReadGuard { latch: self }
    }

    /// Acquires exclusive write access for the lifetime of the guard.
    pub fn write(&self) -> LatchWriteGuard<'_> {
        self.acquire_write();
        LatchWriteGuard { latch: self }
    }

    /// Acquires exclusive write access with a guard that owns the latch,
    /// for callers that collect guards over many trees (commit flush).
    pub fn write_owned(self: &Arc<Self>) -> OwnedLatchWriteGuard {
        self.acquire_write();
        OwnedLatchWriteGuard {
            latch: Arc::clone(self),
        }
    }

    fn acquire_write(&self) {
        let mut st = self.state.lock();
        while st.writer || st.readers > 0 {
            st = self.cv.wait(st);
        }
        st.writer = true;
    }

    fn release_read(&self) {
        let mut st = self.state.lock();
        st.readers -= 1;
        if st.readers == 0 {
            self.cv.notify_all();
        }
    }

    fn release_write(&self) {
        self.state.lock().writer = false;
        self.cv.notify_all();
    }
}

/// Shared-read RAII guard for [`TreeLatch`].
pub struct LatchReadGuard<'a> {
    latch: &'a TreeLatch,
}

impl Drop for LatchReadGuard<'_> {
    fn drop(&mut self) {
        self.latch.release_read();
    }
}

/// Exclusive-write RAII guard for [`TreeLatch`].
pub struct LatchWriteGuard<'a> {
    latch: &'a TreeLatch,
}

impl Drop for LatchWriteGuard<'_> {
    fn drop(&mut self) {
        self.latch.release_write();
    }
}

/// Exclusive-write guard that keeps its latch alive.
pub struct OwnedLatchWriteGuard {
    latch: Arc<TreeLatch>,
}

impl Drop for OwnedLatchWriteGuard {
    fn drop(&mut self) {
        self.latch.release_write();
    }
}

/// Shared table of tree latches. One instance per database.
#[derive(Default)]
pub struct LatchTable {
    inner: Mutex<HashMap<PageId, Arc<TreeLatch>>>,
}

impl LatchTable {
    /// An empty latch table.
    pub fn new() -> Arc<Self> {
        Arc::new(LatchTable::default())
    }

    /// The latch for the tree rooted at `root`.
    pub fn latch(&self, root: PageId) -> Arc<TreeLatch> {
        self.inner.lock().entry(root).or_default().clone()
    }

    /// Drops the latch entry for a destroyed tree.
    pub fn forget(&self, root: PageId) {
        self.inner.lock().remove(&root);
    }

    /// Acquires every tree latch in a deterministic order and returns the
    /// guards. The commit-time page flush takes these so it never captures
    /// a half-done multi-page structural modification; tree operations
    /// take exactly one latch at a time, so the sorted order is
    /// deadlock-free.
    pub fn lock_all(&self) -> Vec<OwnedLatchWriteGuard> {
        let mut latches: Vec<(PageId, Arc<TreeLatch>)> = self
            .inner
            .lock()
            .iter()
            .map(|(k, v)| (*k, v.clone()))
            .collect();
        latches.sort_by_key(|(k, _)| *k);
        latches.into_iter().map(|(_, l)| l.write_owned()).collect()
    }

    /// Number of live latches (diagnostics).
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when no latches exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmx_types::FileId;

    #[test]
    fn same_root_same_latch() {
        let t = LatchTable::new();
        let a = t.latch(PageId::new(FileId(1), 0));
        let b = t.latch(PageId::new(FileId(1), 0));
        let c = t.latch(PageId::new(FileId(2), 0));
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(t.len(), 2);
        t.forget(PageId::new(FileId(1), 0));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn readers_share_writers_exclude() {
        let t = LatchTable::new();
        let l = t.latch(PageId::new(FileId(1), 0));
        let r1 = l.read();
        let r2 = l.read();
        drop((r1, r2));
        let w = l.write_owned();
        drop(w);
        let _w2 = l.write();
    }

    #[test]
    fn write_excludes_concurrent_writers() {
        let t = LatchTable::new();
        let l = t.latch(PageId::new(FileId(9), 0));
        let counter = Arc::new(Mutex::new(0u32));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let l = Arc::clone(&l);
                let counter = Arc::clone(&counter);
                s.spawn(move || {
                    for _ in 0..50 {
                        let _g = l.write();
                        // With exclusion, the read-modify-write below is
                        // atomic even though the counter lock is released
                        // between the read and the write.
                        let v = *counter.lock();
                        *counter.lock() = v + 1;
                    }
                });
            }
        });
        assert_eq!(*counter.lock(), 200);
    }

    #[test]
    fn lock_all_returns_every_latch() {
        let t = LatchTable::new();
        t.latch(PageId::new(FileId(1), 0));
        t.latch(PageId::new(FileId(2), 0));
        t.latch(PageId::new(FileId(3), 0));
        let guards = t.lock_all();
        assert_eq!(guards.len(), 3);
    }
}
