//! Per-tree physical latches.
//!
//! One reader/writer latch per tree (keyed by the tree's root page id)
//! serializes structural modification against readers. This is coarse —
//! a real system would crab-latch — but correct, and tree operations are
//! short.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use dmx_types::PageId;

/// Shared table of tree latches. One instance per database.
#[derive(Default)]
pub struct LatchTable {
    inner: Mutex<HashMap<PageId, Arc<RwLock<()>>>>,
}

impl LatchTable {
    /// An empty latch table.
    pub fn new() -> Arc<Self> {
        Arc::new(LatchTable::default())
    }

    /// The latch for the tree rooted at `root`.
    pub fn latch(&self, root: PageId) -> Arc<RwLock<()>> {
        self.inner.lock().entry(root).or_default().clone()
    }

    /// Drops the latch entry for a destroyed tree.
    pub fn forget(&self, root: PageId) {
        self.inner.lock().remove(&root);
    }

    /// Acquires every tree latch in a deterministic order and returns the
    /// guards. The commit-time page flush takes these so it never captures
    /// a half-done multi-page structural modification; tree operations
    /// take exactly one latch at a time, so the sorted order is
    /// deadlock-free.
    pub fn lock_all(&self) -> Vec<parking_lot::ArcRwLockWriteGuard<parking_lot::RawRwLock, ()>> {
        let mut latches: Vec<(PageId, Arc<RwLock<()>>)> = self
            .inner
            .lock()
            .iter()
            .map(|(k, v)| (*k, v.clone()))
            .collect();
        latches.sort_by_key(|(k, _)| *k);
        latches.into_iter().map(|(_, l)| l.write_arc()).collect()
    }

    /// Number of live latches (diagnostics).
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when no latches exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmx_types::FileId;

    #[test]
    fn same_root_same_latch() {
        let t = LatchTable::new();
        let a = t.latch(PageId::new(FileId(1), 0));
        let b = t.latch(PageId::new(FileId(1), 0));
        let c = t.latch(PageId::new(FileId(2), 0));
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(t.len(), 2);
        t.forget(PageId::new(FileId(1), 0));
        assert_eq!(t.len(), 1);
    }
}
