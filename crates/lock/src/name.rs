//! Lock object names.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use dmx_types::{FileId, PageId, RecordKey, RelationId};

/// A lockable object. Record locks name the record by a hash of its
/// storage-method key so the lock table stays bounded regardless of key
/// size (hash collisions merely over-lock, never under-lock, because a
/// collision makes two records share one lock).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockName {
    /// The whole catalog (DDL serialization point).
    Catalog,
    /// A relation instance (taken in intention mode for record work, or
    /// S/X for scans / DDL).
    Relation(RelationId),
    /// A record within a relation, by key hash.
    Record(RelationId, u64),
    /// The key gap `(pred(k), k]` below a tree entry, by hash of the
    /// entry's key bytes — next-key range locking for phantom
    /// protection. The hash matches [`LockName::record`]'s for the same
    /// bytes, pairing a key's gap with its record (see
    /// [`LockName::gap`]); the EOF gap (above the largest key) hashes
    /// the owning tree file plus a sentinel instead. Same level as
    /// [`LockName::Record`] in the lock hierarchy.
    Gap(RelationId, u64),
    /// A storage file (used by deferred drops).
    File(FileId),
    /// A page latch routed through the lock manager: the leaf of the
    /// declared catalog → relation → record → page-latch hierarchy.
    /// Tree latches are normally process-local read/write locks; this
    /// name exists so latch acquisitions that *do* go through the
    /// manager are held to the same order the static checker (rule 9)
    /// enforces at build time.
    PageLatch(PageId),
}

impl LockName {
    /// Builds a record lock name from a storage-method record key.
    pub fn record(rel: RelationId, key: &RecordKey) -> LockName {
        let mut h = DefaultHasher::new();
        key.as_bytes().hash(&mut h);
        LockName::Record(rel, h.finish())
    }

    /// Builds a gap lock name for the gap below the tree entry `key`.
    /// The hash covers *only* the key bytes — identical to
    /// [`LockName::record`] — so the gap below entry `k` and the record
    /// named `k` carry the same `u64` and the lock manager's order
    /// assertion can pair them (record before gap, per key). Byte-equal
    /// entries in different trees of one relation therefore share a gap
    /// name: a merged name only over-locks, never under-locks. `None`
    /// names the EOF gap above the largest key, distinguished per tree
    /// by hashing `file` plus a sentinel (no record pairs with it).
    pub fn gap(rel: RelationId, file: FileId, key: Option<&[u8]>) -> LockName {
        let mut h = DefaultHasher::new();
        match key {
            Some(k) => k.hash(&mut h),
            None => {
                0u8.hash(&mut h);
                file.hash(&mut h);
            }
        }
        LockName::Gap(rel, h.finish())
    }

    /// The enclosing relation, when the lock is relation-scoped.
    pub fn relation(&self) -> Option<RelationId> {
        match self {
            LockName::Relation(r) | LockName::Record(r, _) | LockName::Gap(r, _) => Some(*r),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_names_are_stable_and_distinguish_relations() {
        let k = RecordKey::new(vec![1, 2, 3]);
        let a = LockName::record(RelationId(1), &k);
        let b = LockName::record(RelationId(1), &k);
        let c = LockName::record(RelationId(2), &k);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gap_and_record_names_pair_by_key_hash() {
        let k = RecordKey::new(vec![1, 2, 3]);
        let LockName::Record(_, rh) = LockName::record(RelationId(1), &k) else {
            unreachable!()
        };
        let LockName::Gap(_, gh) = LockName::gap(RelationId(1), FileId(7), Some(&[1, 2, 3])) else {
            unreachable!()
        };
        // Same key bytes → same hash, so the lock manager can correlate
        // a held gap with a requested record (order assertion).
        assert_eq!(rh, gh);
        // EOF gaps carry no key and stay distinct per tree.
        assert_ne!(
            LockName::gap(RelationId(1), FileId(7), None),
            LockName::gap(RelationId(1), FileId(8), None)
        );
    }

    #[test]
    fn relation_extraction() {
        let k = RecordKey::new(vec![9]);
        assert_eq!(
            LockName::record(RelationId(4), &k).relation(),
            Some(RelationId(4))
        );
        assert_eq!(
            LockName::Relation(RelationId(4)).relation(),
            Some(RelationId(4))
        );
        assert_eq!(LockName::Catalog.relation(), None);
        assert_eq!(LockName::File(FileId(1)).relation(), None);
        assert_eq!(
            LockName::PageLatch(PageId::new(FileId(1), 7)).relation(),
            None
        );
    }
}
