//! The common lock-based concurrency controller.
//!
//! The paper requires that *all* storage method and attachment
//! implementations synchronize through locking (mixing locking with
//! timestamp-ordering would admit non-serializable executions), and that
//! every lock controller participate in transaction commit and in
//! **system-wide deadlock detection**. This crate provides the
//! system-supplied lock manager: hierarchical S/X/IS/IX/SIX modes
//! ([`mode`]), named lock objects ([`name`]), FIFO wait queues with lock
//! conversion, and a waits-for-graph deadlock detector that aborts the
//! youngest transaction in a cycle ([`manager`]).

pub mod manager;
pub mod mode;
pub mod name;

pub use manager::{LockManager, LockRow};
pub use mode::LockMode;
pub use name::LockName;
