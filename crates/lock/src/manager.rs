//! The lock manager.
//!
//! One global table maps [`LockName`]s to entries holding a granted set
//! (one converted mode per transaction) and a FIFO wait queue. Requests
//! block on a condition variable; a waits-for-graph deadlock detector runs
//! on every wait tick and aborts the youngest transaction in a cycle by
//! flagging it a victim, which surfaces as [`DmxError::Deadlock`] from its
//! pending request. Strict two-phase locking: transactions release
//! everything at once via [`LockManager::unlock_all`] at commit/abort.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dmx_types::sync::{Condvar, Mutex};

use dmx_types::obs::{name as metric, Counter, MetricsRegistry, ObsEvent};
use dmx_types::{DmxError, Result, TxnId};

use crate::mode::LockMode;
use crate::name::LockName;

#[derive(Debug, Clone, Copy)]
struct Waiter {
    txn: TxnId,
    mode: LockMode,
}

#[derive(Debug, Default)]
struct Entry {
    granted: HashMap<TxnId, LockMode>,
    waiting: VecDeque<Waiter>,
}

impl Entry {
    /// Target mode a waiter would end up holding (conversion-aware).
    fn target_mode(&self, w: &Waiter) -> LockMode {
        match self.granted.get(&w.txn) {
            Some(held) => held.sup(w.mode),
            None => w.mode,
        }
    }

    /// Can `w` be granted right now (compatible with every *other*
    /// granted holder)?
    fn grantable(&self, w: &Waiter) -> bool {
        let target = self.target_mode(w);
        self.granted
            .iter()
            .all(|(t, m)| *t == w.txn || target.compatible(*m))
    }

    /// Grants every currently grantable waiter: conversions first (they
    /// jump the queue, the standard anti-starvation rule for upgrades),
    /// then FIFO until the first blocked waiter.
    fn regrant(&mut self) {
        // conversions
        let mut i = 0;
        while i < self.waiting.len() {
            let w = self.waiting[i];
            if self.granted.contains_key(&w.txn) && self.grantable(&w) {
                let target = self.target_mode(&w);
                self.granted.insert(w.txn, target);
                self.waiting.remove(i);
            } else {
                i += 1;
            }
        }
        // FIFO
        while let Some(w) = self.waiting.front().copied() {
            if !self.grantable(&w) {
                break;
            }
            let target = self.target_mode(&w);
            self.granted.insert(w.txn, target);
            self.waiting.pop_front();
        }
    }
}

#[derive(Default)]
struct State {
    table: HashMap<LockName, Entry>,
    /// Names each transaction holds or waits on (for release).
    held: HashMap<TxnId, HashSet<LockName>>,
    /// Transactions chosen as deadlock victims; their pending request
    /// fails on next wake-up.
    victims: HashSet<TxnId>,
}

impl State {
    /// Builds waits-for edges and aborts the youngest member of the first
    /// cycle found. Returns true when a victim was chosen.
    fn detect_deadlock(&mut self) -> bool {
        // edges: waiter -> each incompatible granted holder
        let mut edges: HashMap<TxnId, HashSet<TxnId>> = HashMap::new();
        for entry in self.table.values() {
            for w in &entry.waiting {
                let target = entry.target_mode(w);
                for (holder, mode) in &entry.granted {
                    if *holder != w.txn && !target.compatible(*mode) {
                        edges.entry(w.txn).or_default().insert(*holder);
                    }
                }
            }
        }
        // DFS cycle search
        fn dfs(
            node: TxnId,
            edges: &HashMap<TxnId, HashSet<TxnId>>,
            visiting: &mut Vec<TxnId>,
            done: &mut HashSet<TxnId>,
        ) -> Option<Vec<TxnId>> {
            if done.contains(&node) {
                return None;
            }
            if let Some(pos) = visiting.iter().position(|&t| t == node) {
                // bounds: `pos` comes from position() over `visiting`.
                return Some(visiting[pos..].to_vec());
            }
            visiting.push(node);
            if let Some(next) = edges.get(&node) {
                for &n in next {
                    if let Some(cycle) = dfs(n, edges, visiting, done) {
                        return Some(cycle);
                    }
                }
            }
            visiting.pop();
            done.insert(node);
            None
        }
        let mut done = HashSet::new();
        let starts: Vec<TxnId> = edges.keys().copied().collect();
        for start in starts {
            let mut visiting = Vec::new();
            if let Some(cycle) = dfs(start, &edges, &mut visiting, &mut done) {
                // Youngest (largest id) transaction dies.
                let Some(victim) = cycle.iter().max().copied() else {
                    continue; // dfs never returns an empty cycle
                };
                // Only a *newly* flagged victim counts as a detection;
                // an already-flagged one just hasn't woken up yet.
                if self.victims.insert(victim) {
                    return true;
                }
            }
        }
        false
    }
}

/// The system-supplied lock manager.
pub struct LockManager {
    state: Mutex<State>,
    cv: Condvar,
    timeout: Duration,
    obs: Arc<MetricsRegistry>,
    acquires: Arc<Counter>,
    waits: Arc<Counter>,
    deadlocks: Arc<Counter>,
    timeouts: Arc<Counter>,
}

/// Debug-build lock-order assertion: acquisitions must follow the
/// catalog → relation → record → page-latch hierarchy, the discipline
/// that keeps the kernel's own lock requests deadlock-free (statically
/// enforced across the workspace by `xtask verify` rule 9). Checked per
/// transaction on every *new* name (conversions of a held name are
/// exempt):
///
/// - `Catalog` must be the transaction's first lock (DDL serializes at
///   the top before touching anything finer);
/// - `Relation(r)` must precede any `Record(r, _)` of the same relation
///   (records under a different relation are unordered w.r.t. it);
/// - `Record(r, _)` requires a lock on `Relation(r)` to be already held
///   or requested (the intention-mode parent of hierarchical locking);
/// - `Record(r, h)` may not be requested while the same key's
///   `Gap(r, h)` is held in S mode: scans and writers share one per-key
///   order — record first, then the gap below it — so the two sides
///   cannot deadlock across the pair. Gaps held in X mode are exempt
///   (a writer's next-key sequence holds a neighbour's gap X before an
///   adjacent write requests that record);
/// - `PageLatch(_)` is the leaf: it may be taken at any point, but no
///   coarser name may be requested while any page latch is held.
#[cfg(debug_assertions)]
fn assert_lock_order(st: &State, txn: TxnId, name: &LockName) {
    let empty = HashSet::new();
    let held = st.held.get(&txn).unwrap_or(&empty);
    if held.contains(name) {
        return; // conversion or repeat of a held/requested name
    }
    if !matches!(name, LockName::PageLatch(_) | LockName::File(_)) {
        let latch = held.iter().find(|h| matches!(h, LockName::PageLatch(_)));
        debug_assert!(
            latch.is_none(),
            "lock-order violation: txn {txn:?} requests {name:?} while holding page latch \
             {latch:?} (page latches are the hierarchy's leaf level)"
        );
    }
    match name {
        LockName::Catalog => {
            debug_assert!(
                held.is_empty(),
                "lock-order violation: txn {txn:?} requests Catalog while holding {held:?} \
                 (catalog must be locked before any finer object)"
            );
        }
        LockName::Relation(r) => {
            let finer = held
                .iter()
                .find(|h| matches!(h, LockName::Record(rr, _) | LockName::Gap(rr, _) if rr == r));
            debug_assert!(
                finer.is_none(),
                "lock-order violation: txn {txn:?} requests {name:?} while holding finer \
                 {finer:?} (relation must be locked before its records)"
            );
        }
        LockName::Record(r, h) => {
            debug_assert!(
                held.contains(&LockName::Relation(*r)),
                "lock-order violation: txn {txn:?} requests {name:?} without a lock on \
                 Relation({r:?}) (hierarchical locking requires the intention-mode parent)"
            );
            // Record before gap, per key: scans and writers both lock a
            // key's record ahead of the gap below it ([`LockName::gap`]
            // gives the pair one hash so they can be correlated here).
            // A same-key gap already held in S mode means a scan locked
            // the gap first — the inverted order that deadlocks against
            // a deleter. X-held gaps are exempt: a writer's next-key
            // sequence legitimately holds a neighbour's gap X when an
            // adjacent write then requests that record.
            let gap_held_s = st
                .table
                .get(&LockName::Gap(*r, *h))
                .and_then(|e| e.granted.get(&txn))
                == Some(&LockMode::S);
            debug_assert!(
                !gap_held_s,
                "lock-order violation: txn {txn:?} requests {name:?} while holding the same \
                 key's gap in S mode (the record must be locked before its gap)"
            );
        }
        LockName::Gap(r, _) => {
            debug_assert!(
                held.contains(&LockName::Relation(*r)),
                "lock-order violation: txn {txn:?} requests {name:?} without a lock on \
                 Relation({r:?}) (hierarchical locking requires the intention-mode parent)"
            );
        }
        LockName::File(_) => {}
        LockName::PageLatch(_) => {}
    }
}

impl Default for LockManager {
    fn default() -> Self {
        LockManager::new(Duration::from_secs(5))
    }
}

impl LockManager {
    /// Creates a lock manager with the given wait timeout and a private
    /// metrics registry.
    pub fn new(timeout: Duration) -> Self {
        Self::with_metrics(timeout, MetricsRegistry::new())
    }

    /// Creates a lock manager registering its metrics in `obs`.
    pub fn with_metrics(timeout: Duration, obs: Arc<MetricsRegistry>) -> Self {
        let acquires = obs.counter(metric::LOCK_ACQUIRES);
        let waits = obs.counter(metric::LOCK_WAITS);
        let deadlocks = obs.counter(metric::LOCK_DEADLOCKS);
        let timeouts = obs.counter(metric::LOCK_TIMEOUTS);
        LockManager {
            state: Mutex::new(State::default()),
            cv: Condvar::new(),
            timeout,
            obs,
            acquires,
            waits,
            deadlocks,
            timeouts,
        }
    }

    /// Acquires (or converts to) `mode` on `name` for `txn`, blocking as
    /// needed. Fails with [`DmxError::Deadlock`] when this transaction is
    /// chosen as a deadlock victim, or [`DmxError::LockTimeout`].
    pub fn lock(&self, txn: TxnId, name: LockName, mode: LockMode) -> Result<()> {
        self.lock_waited(txn, name, mode).map(drop)
    }

    /// Like [`LockManager::lock`], additionally reporting whether the
    /// request had to wait (callers that read optimistically before
    /// locking re-validate after a wait).
    pub fn lock_waited(&self, txn: TxnId, name: LockName, mode: LockMode) -> Result<bool> {
        let mut st = self.state.lock();
        if st.victims.contains(&txn) {
            return Err(DmxError::Deadlock { victim: txn });
        }
        #[cfg(debug_assertions)]
        assert_lock_order(&st, txn, &name);
        let entry = st.table.entry(name).or_default();
        // Fast path: already covered.
        if let Some(held) = entry.granted.get(&txn) {
            if held.covers(mode) {
                self.acquires.incr();
                return Ok(false);
            }
        }
        let w = Waiter { txn, mode };
        // Immediate grant: compatible AND (conversion, or no one queued
        // ahead — plain requests respect FIFO fairness).
        let is_conversion = entry.granted.contains_key(&txn);
        if entry.grantable(&w) && (is_conversion || entry.waiting.is_empty()) {
            let target = entry.target_mode(&w);
            entry.granted.insert(txn, target);
            st.held.entry(txn).or_default().insert(name);
            self.acquires.incr();
            return Ok(false);
        }
        // Enqueue and wait.
        entry.waiting.push_back(w);
        st.held.entry(txn).or_default().insert(name);
        self.waits.incr();
        self.obs.emit(ObsEvent {
            layer: "lock",
            op: "wait",
            target: txn.0,
            detail: mode as u64,
        });
        let deadline = Instant::now() + self.timeout;
        loop {
            if st.detect_deadlock() {
                self.deadlocks.incr();
                self.obs.emit(ObsEvent {
                    layer: "lock",
                    op: "deadlock",
                    target: txn.0,
                    detail: 0,
                });
                self.cv.notify_all();
            }
            if st.victims.contains(&txn) {
                Self::remove_waiter(&mut st, txn, name);
                return Err(DmxError::Deadlock { victim: txn });
            }
            if st
                .table
                .get(&name)
                .and_then(|e| e.granted.get(&txn))
                .is_some_and(|held| held.covers(mode))
            {
                self.acquires.incr();
                return Ok(true);
            }
            let now = Instant::now();
            if now >= deadline {
                Self::remove_waiter(&mut st, txn, name);
                self.timeouts.incr();
                return Err(DmxError::LockTimeout);
            }
            let tick = Duration::from_millis(10).min(deadline - now);
            st = self.cv.wait_for(st, tick);
        }
    }

    fn remove_waiter(st: &mut State, txn: TxnId, name: LockName) {
        if let Some(entry) = st.table.get_mut(&name) {
            entry.waiting.retain(|w| w.txn != txn);
            entry.regrant();
            let keep = !entry.granted.is_empty() || !entry.waiting.is_empty();
            let still_holds = entry.granted.contains_key(&txn);
            if !keep {
                st.table.remove(&name);
            }
            if !still_holds {
                if let Some(set) = st.held.get_mut(&txn) {
                    set.remove(&name);
                }
            }
        }
    }

    /// Releases everything `txn` holds or waits on, waking blocked
    /// requests; clears any victim flag. Called at commit and abort.
    pub fn unlock_all(&self, txn: TxnId) {
        let mut st = self.state.lock();
        st.victims.remove(&txn);
        let names = st.held.remove(&txn).unwrap_or_default();
        for name in names {
            if let Some(entry) = st.table.get_mut(&name) {
                entry.granted.remove(&txn);
                entry.waiting.retain(|w| w.txn != txn);
                entry.regrant();
                if entry.granted.is_empty() && entry.waiting.is_empty() {
                    st.table.remove(&name);
                }
            }
        }
        self.cv.notify_all();
    }

    /// Mode `txn` currently holds on `name`, if any (for tests and
    /// assertions).
    pub fn held_mode(&self, txn: TxnId, name: LockName) -> Option<LockMode> {
        self.state
            .lock()
            .table
            .get(&name)
            .and_then(|e| e.granted.get(&txn).copied())
    }

    /// Number of lock names currently in the table.
    pub fn table_len(&self) -> usize {
        self.state.lock().table.len()
    }

    /// A deterministic point-in-time dump of the lock table: one row per
    /// granted holder and per queued waiter, sorted by lock name, then
    /// transaction, then state (granted before waiting). Feeds the
    /// `sys.locks` system relation.
    pub fn dump(&self) -> Vec<LockRow> {
        fn name_key(n: &LockName) -> (u8, u64, u64) {
            match n {
                LockName::Catalog => (0, 0, 0),
                LockName::Relation(r) => (1, r.0 as u64, 0),
                LockName::Record(r, k) => (2, r.0 as u64, *k),
                LockName::Gap(r, k) => (3, r.0 as u64, *k),
                LockName::File(f) => (4, f.0 as u64, 0),
                LockName::PageLatch(p) => (5, p.file.0 as u64, p.page_no as u64),
            }
        }
        let st = self.state.lock();
        let mut rows = Vec::new();
        for (name, entry) in &st.table {
            for (txn, mode) in &entry.granted {
                rows.push(LockRow {
                    name: *name,
                    txn: *txn,
                    mode: *mode,
                    waiting: false,
                });
            }
            for w in &entry.waiting {
                rows.push(LockRow {
                    name: *name,
                    txn: w.txn,
                    mode: w.mode,
                    waiting: true,
                });
            }
        }
        rows.sort_by_key(|r| (name_key(&r.name), r.txn.0, r.waiting));
        rows
    }
}

/// One row of [`LockManager::dump`]: a granted holder or queued waiter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockRow {
    /// The locked object.
    pub name: LockName,
    /// The transaction holding or requesting it.
    pub txn: TxnId,
    /// Held mode (granted) or requested mode (waiting).
    pub mode: LockMode,
    /// True for a queued waiter, false for a granted holder.
    pub waiting: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmx_types::{FileId, PageId, RelationId};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn rel(n: u32) -> LockName {
        LockName::Relation(RelationId(n))
    }

    #[test]
    fn grant_compatible_and_reentrant() {
        let lm = LockManager::default();
        lm.lock(TxnId(1), rel(1), LockMode::S).unwrap();
        lm.lock(TxnId(2), rel(1), LockMode::S).unwrap();
        lm.lock(TxnId(1), rel(1), LockMode::S).unwrap(); // re-entrant
        lm.lock(TxnId(1), rel(1), LockMode::IS).unwrap(); // covered
        assert_eq!(lm.held_mode(TxnId(1), rel(1)), Some(LockMode::S));
        lm.unlock_all(TxnId(1));
        lm.unlock_all(TxnId(2));
        assert_eq!(lm.table_len(), 0);
    }

    #[test]
    fn conversion_computes_supremum() {
        let lm = LockManager::default();
        lm.lock(TxnId(1), rel(1), LockMode::S).unwrap();
        lm.lock(TxnId(1), rel(1), LockMode::IX).unwrap();
        assert_eq!(lm.held_mode(TxnId(1), rel(1)), Some(LockMode::SIX));
        lm.unlock_all(TxnId(1));
    }

    #[test]
    fn exclusive_blocks_until_release() {
        let lm = Arc::new(LockManager::default());
        lm.lock(TxnId(1), rel(1), LockMode::X).unwrap();
        let got = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            let lm2 = lm.clone();
            let got2 = got.clone();
            s.spawn(move || {
                lm2.lock(TxnId(2), rel(1), LockMode::S).unwrap();
                got2.store(1, Ordering::SeqCst);
                lm2.unlock_all(TxnId(2));
            });
            std::thread::sleep(Duration::from_millis(50));
            assert_eq!(got.load(Ordering::SeqCst), 0, "S blocked behind X");
            lm.unlock_all(TxnId(1));
        });
        assert_eq!(got.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn timeout_fires() {
        let lm = LockManager::new(Duration::from_millis(60));
        lm.lock(TxnId(1), rel(1), LockMode::X).unwrap();
        let err = lm.lock(TxnId(2), rel(1), LockMode::X).unwrap_err();
        assert_eq!(err, DmxError::LockTimeout);
        // the timed-out waiter left no residue
        lm.unlock_all(TxnId(1));
        assert_eq!(lm.table_len(), 0);
    }

    #[test]
    fn deadlock_detected_and_youngest_dies() {
        let lm = Arc::new(LockManager::new(Duration::from_secs(10)));
        lm.lock(TxnId(1), rel(1), LockMode::X).unwrap();
        lm.lock(TxnId(2), rel(2), LockMode::X).unwrap();
        std::thread::scope(|s| {
            let lm1 = lm.clone();
            let h1 = s.spawn(move || lm1.lock(TxnId(1), rel(2), LockMode::X));
            std::thread::sleep(Duration::from_millis(30));
            let lm2 = lm.clone();
            let h2 = s.spawn(move || lm2.lock(TxnId(2), rel(1), LockMode::X));
            // Youngest = TxnId(2) must be the victim; TxnId(1) proceeds
            // once the victim aborts (releases its locks).
            let r2 = h2.join().unwrap();
            assert_eq!(r2, Err(DmxError::Deadlock { victim: TxnId(2) }));
            lm.unlock_all(TxnId(2));
            let r1 = h1.join().unwrap();
            assert_eq!(r1, Ok(()));
        });
        lm.unlock_all(TxnId(1));
        assert_eq!(lm.table_len(), 0);
    }

    #[test]
    fn three_transaction_cycle_detected() {
        // T1 holds r1, T2 holds r2, T3 holds r3; then T1→r2, T2→r3,
        // T3→r1 closes a three-node cycle in the waits-for graph. The
        // youngest (largest id) transaction in the cycle must die, and
        // the two survivors complete once the victim's locks release.
        let lm = Arc::new(LockManager::new(Duration::from_secs(10)));
        lm.lock(TxnId(1), rel(1), LockMode::X).unwrap();
        lm.lock(TxnId(2), rel(2), LockMode::X).unwrap();
        lm.lock(TxnId(3), rel(3), LockMode::X).unwrap();
        std::thread::scope(|s| {
            let lm1 = lm.clone();
            let h1 = s.spawn(move || lm1.lock(TxnId(1), rel(2), LockMode::X));
            std::thread::sleep(Duration::from_millis(30));
            let lm2 = lm.clone();
            let h2 = s.spawn(move || lm2.lock(TxnId(2), rel(3), LockMode::X));
            std::thread::sleep(Duration::from_millis(30));
            let lm3 = lm.clone();
            let h3 = s.spawn(move || lm3.lock(TxnId(3), rel(1), LockMode::X));
            let r3 = h3.join().unwrap();
            assert_eq!(r3, Err(DmxError::Deadlock { victim: TxnId(3) }));
            lm.unlock_all(TxnId(3));
            // T2 acquires r3, unblocking nothing yet for T1 (T2 still
            // holds r2), so release T2's locks to let T1 through.
            let r2 = h2.join().unwrap();
            assert_eq!(r2, Ok(()));
            lm.unlock_all(TxnId(2));
            let r1 = h1.join().unwrap();
            assert_eq!(r1, Ok(()));
        });
        lm.unlock_all(TxnId(1));
        assert_eq!(lm.table_len(), 0);
    }

    #[test]
    fn upgrade_deadlock_between_two_readers() {
        let lm = Arc::new(LockManager::new(Duration::from_secs(10)));
        lm.lock(TxnId(1), rel(1), LockMode::S).unwrap();
        lm.lock(TxnId(2), rel(1), LockMode::S).unwrap();
        std::thread::scope(|s| {
            let lm1 = lm.clone();
            let h1 = s.spawn(move || lm1.lock(TxnId(1), rel(1), LockMode::X));
            std::thread::sleep(Duration::from_millis(30));
            let lm2 = lm.clone();
            let h2 = s.spawn(move || lm2.lock(TxnId(2), rel(1), LockMode::X));
            let r2 = h2.join().unwrap();
            assert_eq!(r2, Err(DmxError::Deadlock { victim: TxnId(2) }));
            lm.unlock_all(TxnId(2));
            let r1 = h1.join().unwrap();
            assert_eq!(r1, Ok(()));
            assert_eq!(lm.held_mode(TxnId(1), rel(1)), Some(LockMode::X));
        });
        lm.unlock_all(TxnId(1));
    }

    #[test]
    fn fifo_fairness_for_plain_requests() {
        // T2 waits for X; T3's S request arrives later and must not starve
        // T2 by sneaking past it.
        let lm = Arc::new(LockManager::new(Duration::from_secs(10)));
        lm.lock(TxnId(1), rel(1), LockMode::S).unwrap();
        let order = Arc::new(Mutex::new(Vec::new()));
        std::thread::scope(|s| {
            let (lm2, ord2) = (lm.clone(), order.clone());
            s.spawn(move || {
                lm2.lock(TxnId(2), rel(1), LockMode::X).unwrap();
                ord2.lock().push(2);
                lm2.unlock_all(TxnId(2));
            });
            std::thread::sleep(Duration::from_millis(40));
            let (lm3, ord3) = (lm.clone(), order.clone());
            s.spawn(move || {
                lm3.lock(TxnId(3), rel(1), LockMode::S).unwrap();
                ord3.lock().push(3);
                lm3.unlock_all(TxnId(3));
            });
            std::thread::sleep(Duration::from_millis(40));
            lm.unlock_all(TxnId(1));
        });
        assert_eq!(*order.lock(), vec![2, 3], "X granted before later S");
    }

    #[test]
    fn intent_modes_allow_concurrent_record_work() {
        let lm = LockManager::default();
        lm.lock(TxnId(1), rel(1), LockMode::IX).unwrap();
        lm.lock(TxnId(2), rel(1), LockMode::IX).unwrap();
        let ka = LockName::Record(RelationId(1), 11);
        let kb = LockName::Record(RelationId(1), 22);
        lm.lock(TxnId(1), ka, LockMode::X).unwrap();
        lm.lock(TxnId(2), kb, LockMode::X).unwrap();
        // but a table scanner's S blocks behind the IX holders
        let lm_s = LockManager::new(Duration::from_millis(50));
        lm_s.lock(TxnId(1), rel(1), LockMode::IX).unwrap();
        assert_eq!(
            lm_s.lock(TxnId(3), rel(1), LockMode::S).unwrap_err(),
            DmxError::LockTimeout
        );
        lm.unlock_all(TxnId(1));
        lm.unlock_all(TxnId(2));
    }

    #[test]
    fn stress_many_threads_no_lost_grants() {
        // 8 transactions hammer 4 names with mixed modes; strict 2PL is
        // not followed here (unlock_all between rounds), we only check the
        // manager never wedges and always ends empty.
        let lm = Arc::new(LockManager::new(Duration::from_secs(10)));
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let lm = lm.clone();
                s.spawn(move || {
                    let txn = TxnId(t + 1);
                    for round in 0..50u32 {
                        let name = rel(round % 4);
                        let mode = if (t + round as u64).is_multiple_of(3) {
                            LockMode::X
                        } else {
                            LockMode::S
                        };
                        match lm.lock(txn, name, mode) {
                            Ok(()) => {}
                            Err(DmxError::Deadlock { .. }) => {}
                            Err(e) => panic!("unexpected {e}"),
                        }
                        lm.unlock_all(txn);
                    }
                });
            }
        });
        assert_eq!(lm.table_len(), 0);
    }

    #[test]
    fn lock_order_allows_the_hierarchy_top_down() {
        let lm = LockManager::default();
        lm.lock(TxnId(1), LockName::Catalog, LockMode::X).unwrap();
        lm.lock(TxnId(1), rel(1), LockMode::IX).unwrap();
        lm.lock(TxnId(1), LockName::Record(RelationId(1), 7), LockMode::X)
            .unwrap();
        // Records of a *different* relation are unordered w.r.t. rel(1).
        lm.lock(TxnId(1), rel(2), LockMode::IS).unwrap();
        lm.unlock_all(TxnId(1));
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock-order violation")]
    fn lock_order_rejects_catalog_after_finer_locks() {
        let lm = LockManager::default();
        lm.lock(TxnId(1), rel(1), LockMode::IS).unwrap();
        let _ = lm.lock(TxnId(1), LockName::Catalog, LockMode::X);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock-order violation")]
    fn lock_order_rejects_record_without_relation_parent() {
        let lm = LockManager::default();
        let _ = lm.lock(TxnId(1), LockName::Record(RelationId(1), 7), LockMode::X);
    }

    #[test]
    fn lock_order_allows_a_page_latch_as_the_leaf() {
        let lm = LockManager::default();
        lm.lock(TxnId(1), rel(1), LockMode::IX).unwrap();
        lm.lock(TxnId(1), LockName::Record(RelationId(1), 7), LockMode::X)
            .unwrap();
        lm.lock(
            TxnId(1),
            LockName::PageLatch(PageId::new(FileId(3), 9)),
            LockMode::X,
        )
        .unwrap();
        lm.unlock_all(TxnId(1));
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock-order violation")]
    fn lock_order_rejects_locks_requested_under_a_page_latch() {
        let lm = LockManager::default();
        lm.lock(
            TxnId(1),
            LockName::PageLatch(PageId::new(FileId(3), 9)),
            LockMode::X,
        )
        .unwrap();
        let _ = lm.lock(TxnId(1), rel(1), LockMode::IX);
    }

    /// The paired record/gap names for one key (same `u64` hash by
    /// construction, see [`LockName::gap`]).
    fn record_gap_pair(key: &[u8]) -> (LockName, LockName) {
        let record = LockName::record(RelationId(1), &dmx_types::RecordKey::new(key.to_vec()));
        let gap = LockName::gap(RelationId(1), FileId(1), Some(key));
        (record, gap)
    }

    #[test]
    fn lock_order_allows_record_before_gap_and_writer_gap_x() {
        let lm = LockManager::default();
        let (record, gap) = record_gap_pair(b"k");
        // Scan order: record S, then the gap below it.
        lm.lock(TxnId(1), rel(1), LockMode::IS).unwrap();
        lm.lock(TxnId(1), record, LockMode::S).unwrap();
        lm.lock(TxnId(1), gap, LockMode::S).unwrap();
        lm.unlock_all(TxnId(1));
        // Writer next-key sequence: a neighbour's gap X may precede the
        // record request (gap X is exempt from the pairing rule).
        lm.lock(TxnId(2), rel(1), LockMode::IX).unwrap();
        lm.lock(TxnId(2), gap, LockMode::X).unwrap();
        lm.lock(TxnId(2), record, LockMode::X).unwrap();
        lm.unlock_all(TxnId(2));
        // Traversal across keys: gap of one key before the record of
        // another is unordered.
        let (other_record, _) = record_gap_pair(b"m");
        lm.lock(TxnId(3), rel(1), LockMode::IS).unwrap();
        lm.lock(TxnId(3), gap, LockMode::S).unwrap();
        lm.lock(TxnId(3), other_record, LockMode::S).unwrap();
        lm.unlock_all(TxnId(3));
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock-order violation")]
    fn lock_order_rejects_record_after_same_key_gap_s() {
        let lm = LockManager::default();
        let (record, gap) = record_gap_pair(b"k");
        lm.lock(TxnId(1), rel(1), LockMode::IS).unwrap();
        lm.lock(TxnId(1), gap, LockMode::S).unwrap();
        let _ = lm.lock(TxnId(1), record, LockMode::S);
    }

    #[test]
    fn same_key_scan_and_writer_serialize_without_deadlock() {
        // A range scan and a deleter meeting on one key both follow
        // record-before-gap, so one simply waits for the other instead
        // of closing a Record/Gap cycle the detector must break.
        let lm = Arc::new(LockManager::new(Duration::from_secs(10)));
        let (record, gap) = record_gap_pair(b"k");
        std::thread::scope(|s| {
            for txn in [TxnId(1), TxnId(2)] {
                let lm = lm.clone();
                s.spawn(move || {
                    let (parent, mode) = if txn == TxnId(1) {
                        (LockMode::IS, LockMode::S)
                    } else {
                        (LockMode::IX, LockMode::X)
                    };
                    lm.lock(txn, rel(1), parent).unwrap();
                    lm.lock(txn, record, mode).unwrap();
                    lm.lock(txn, gap, mode).unwrap();
                    lm.unlock_all(txn);
                });
            }
        });
        assert_eq!(lm.table_len(), 0);
    }
}
