//! Lock modes and the compatibility / conversion lattice.

/// Hierarchical lock modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockMode {
    /// Intention shared: will take S locks below.
    IS,
    /// Intention exclusive: will take X locks below.
    IX,
    /// Shared.
    S,
    /// Shared + intention exclusive.
    SIX,
    /// Exclusive.
    X,
}

impl LockMode {
    /// Standard compatibility matrix.
    pub fn compatible(self, other: LockMode) -> bool {
        use LockMode::*;
        matches!(
            (self, other),
            (IS, IS)
                | (IS, IX)
                | (IS, S)
                | (IS, SIX)
                | (IX, IS)
                | (IX, IX)
                | (S, IS)
                | (S, S)
                | (SIX, IS)
        )
    }

    /// Least upper bound in the conversion lattice
    /// (`IS < {S, IX} < SIX < X`; `S ∨ IX = SIX`).
    pub fn sup(self, other: LockMode) -> LockMode {
        use LockMode::*;
        if self == other {
            return self;
        }
        match (self, other) {
            (IS, m) | (m, IS) => m,
            (X, _) | (_, X) => X,
            (SIX, _) | (_, SIX) => SIX,
            (S, IX) | (IX, S) => SIX,
            _ => unreachable!("all pairs covered"),
        }
    }

    /// True when holding `self` already satisfies a request for `want`.
    pub fn covers(self, want: LockMode) -> bool {
        self.sup(want) == self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use LockMode::*;

    const ALL: [LockMode; 5] = [IS, IX, S, SIX, X];

    #[test]
    fn compatibility_matrix_matches_textbook() {
        let expect = [
            // IS    IX     S      SIX    X
            [true, true, true, true, false],     // IS
            [true, true, false, false, false],   // IX
            [true, false, true, false, false],   // S
            [true, false, false, false, false],  // SIX
            [false, false, false, false, false], // X
        ];
        for (i, a) in ALL.iter().enumerate() {
            for (j, b) in ALL.iter().enumerate() {
                assert_eq!(a.compatible(*b), expect[i][j], "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn compatibility_is_symmetric() {
        for a in ALL {
            for b in ALL {
                assert_eq!(a.compatible(b), b.compatible(a));
            }
        }
    }

    #[test]
    fn sup_lattice() {
        assert_eq!(S.sup(IX), SIX);
        assert_eq!(IX.sup(S), SIX);
        assert_eq!(IS.sup(S), S);
        assert_eq!(IS.sup(IX), IX);
        assert_eq!(SIX.sup(S), SIX);
        assert_eq!(X.sup(IS), X);
        for a in ALL {
            assert_eq!(a.sup(a), a);
            assert_eq!(a.sup(X), X);
        }
    }

    #[test]
    fn sup_is_commutative_associative_and_an_upper_bound() {
        for a in ALL {
            for b in ALL {
                assert_eq!(a.sup(b), b.sup(a));
                assert!(a.sup(b).covers(a));
                assert!(a.sup(b).covers(b));
                for c in ALL {
                    assert_eq!(a.sup(b).sup(c), a.sup(b.sup(c)));
                }
            }
        }
    }

    #[test]
    fn covers_examples() {
        assert!(X.covers(S));
        assert!(SIX.covers(IX));
        assert!(SIX.covers(S));
        assert!(!S.covers(IX));
        assert!(!IX.covers(S));
        assert!(S.covers(IS));
    }
}
