//! The read-only "database publishing" storage method.
//!
//! The paper motivates "special facilities to support (read-only)
//! optical disk database publishing applications": a write-once medium.
//! This storage method accepts *appends* (the publishing/load phase) and
//! direct/sequential reads, and rejects update and delete — demonstrating
//! that a storage method may support only a subset of the generic
//! operations by returning `Unsupported` (as ENCOMPASS did with its
//! restricted alternative storage). Records pack densely (no tombstone
//! reuse is ever needed) and scans are cheap.

use std::sync::Arc;

use dmx_core::{
    AccessPath, ExecCtx, KeyRange, PathChoice, RelationDescriptor, ScanItem, ScanOps, StorageMethod,
};
use dmx_expr::Expr;
use dmx_page::SlottedPage;
use dmx_types::PageId;
use dmx_types::{
    AttrList, DmxError, FieldId, Lsn, Record, RecordKey, RelationId, Result, Schema, Value,
};
use dmx_wal::ExtKind;

use crate::heap::{decode_file_desc, encode_file_desc, parse_rid, redo_page_op, rid, undo_page_op};
use crate::ops::{encode_key_record, OP_INSERT};
use crate::util::{decode_position, encode_position, filter_project};

/// Page type tag for publishing pages.
pub const PAGE_TYPE_WORM: u8 = 4;

/// The write-once storage method singleton.
pub struct ReadOnlyStorage;

impl ReadOnlyStorage {
    fn unsupported(&self, op: &str) -> DmxError {
        DmxError::Unsupported(format!(
            "storage method '{}' is write-once: {op} not supported",
            self.name()
        ))
    }
}

impl StorageMethod for ReadOnlyStorage {
    fn name(&self) -> &str {
        "readonly"
    }

    fn validate_params(&self, params: &AttrList, _schema: &Schema) -> Result<()> {
        params.check_allowed(&[], "readonly")
    }

    fn create_instance(
        &self,
        ctx: &ExecCtx<'_>,
        _rel: RelationId,
        _schema: &Schema,
        params: &AttrList,
    ) -> Result<Vec<u8>> {
        self.validate_params(params, _schema)?;
        let file = ctx.services().disk.create_file()?;
        let pin = ctx.services().pool.new_page(file)?;
        let mut page = pin.write();
        SlottedPage::init(&mut page);
        page.set_page_type(PAGE_TYPE_WORM);
        Ok(encode_file_desc(file))
    }

    fn destroy_instance(
        &self,
        services: &Arc<dmx_core::CommonServices>,
        sm_desc: &[u8],
    ) -> Result<()> {
        let file = decode_file_desc(sm_desc)?;
        services.pool.discard_file(file);
        services.disk.delete_file(file)
    }

    fn storage_files(&self, sm_desc: &[u8]) -> Vec<dmx_types::FileId> {
        decode_file_desc(sm_desc)
            .map(|f| vec![f])
            .unwrap_or_default()
    }

    fn insert(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        record: &Record,
    ) -> Result<RecordKey> {
        let file = decode_file_desc(&rd.sm_desc)?;
        let bytes = record.encode();
        let (page_no, slot, new_page) = crate::heap::append_record(
            &ctx.services().pool,
            file,
            &bytes,
            PAGE_TYPE_WORM,
            |p, s| {
                ctx.log_ext_op(
                    ExtKind::Storage(rd.sm),
                    rd.id,
                    OP_INSERT,
                    encode_key_record(rid(p, s).as_bytes(), &bytes),
                )
            },
        )?;
        if new_page {
            rd.stats.on_page_allocated();
        }
        Ok(rid(page_no, slot))
    }

    fn update(
        &self,
        _ctx: &ExecCtx<'_>,
        _rd: &RelationDescriptor,
        _key: &RecordKey,
        _new: &Record,
    ) -> Result<(Record, RecordKey)> {
        Err(self.unsupported("update"))
    }

    fn delete(
        &self,
        _ctx: &ExecCtx<'_>,
        _rd: &RelationDescriptor,
        _key: &RecordKey,
    ) -> Result<Record> {
        Err(self.unsupported("delete"))
    }

    fn fetch(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        key: &RecordKey,
        fields: Option<&[FieldId]>,
        pred: Option<&Expr>,
    ) -> Result<Option<Vec<Value>>> {
        let file = decode_file_desc(&rd.sm_desc)?;
        let (page_no, slot) = parse_rid(key.as_bytes())?;
        let pin = match ctx.services().pool.fetch(PageId::new(file, page_no)) {
            Ok(p) => p,
            Err(DmxError::NotFound(_)) => return Ok(None),
            Err(e) => return Err(e),
        };
        let page = pin.read();
        let Some(bytes) = SlottedPage::get(&page, slot) else {
            return Ok(None);
        };
        filter_project(ctx, bytes, fields, pred)
    }

    fn open_scan(
        &self,
        _ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        range: KeyRange,
        pred: Option<Expr>,
        fields: Option<Vec<FieldId>>,
    ) -> Result<Box<dyn ScanOps>> {
        Ok(Box::new(WormScan {
            file: decode_file_desc(&rd.sm_desc)?,
            range,
            pred,
            fields,
            after: None,
        }))
    }

    fn estimate(&self, rd: &RelationDescriptor, preds: &[Expr]) -> PathChoice {
        let pages = rd.stats.pages();
        let records = rd.stats.records();
        let ts = rd.stats.table_stats();
        let sel: f64 = preds
            .iter()
            .map(|p| dmx_expr::selectivity(p, ts.as_deref()))
            .product();
        let mut c = PathChoice::full_scan(AccessPath::StorageMethod, pages, records);
        // dense packing: slightly cheaper per-record processing
        c.cost.cpu *= 0.5;
        c.rows_out = records as f64 * sel;
        c.applied = preds.to_vec();
        c
    }

    fn undo(
        &self,
        services: &Arc<dmx_core::CommonServices>,
        rd: &RelationDescriptor,
        lsn: Lsn,
        op: u8,
        payload: &[u8],
    ) -> Result<()> {
        // Only inserts exist; rollback of an aborted load tombstones the
        // appended record (an internal operation — the *user-facing*
        // delete remains unsupported).
        undo_page_op(services, decode_file_desc(&rd.sm_desc)?, lsn, op, payload)
    }

    fn redo(
        &self,
        services: &Arc<dmx_core::CommonServices>,
        rd: &RelationDescriptor,
        lsn: Lsn,
        op: u8,
        payload: &[u8],
    ) -> Result<()> {
        // Write-once pages are never stolen, but no-force means a
        // committed load's pages may have missed disk entirely.
        redo_page_op(
            services,
            decode_file_desc(&rd.sm_desc)?,
            PAGE_TYPE_WORM,
            lsn,
            op,
            payload,
        )
    }
}

/// Sequential scan (identical position rules to the heap scan).
struct WormScan {
    file: dmx_types::FileId,
    range: KeyRange,
    pred: Option<Expr>,
    fields: Option<Vec<FieldId>>,
    after: Option<(u32, u16)>,
}

impl ScanOps for WormScan {
    fn next(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<ScanItem>> {
        let pool = &ctx.services().pool;
        let page_count = pool.disk().page_count(self.file)?;
        let (mut page_no, mut next_slot) = match self.after {
            None => (0, 0),
            Some((p, s)) => (p, s as u32 + 1),
        };
        while page_no < page_count {
            let pin = pool.fetch(PageId::new(self.file, page_no))?;
            let page = pin.read();
            let slots = SlottedPage::slot_count(&page) as u32;
            while next_slot < slots {
                let slot = next_slot as u16;
                next_slot += 1;
                let Some(bytes) = SlottedPage::get(&page, slot) else {
                    continue;
                };
                let key = rid(page_no, slot);
                if !self.range.contains(key.as_bytes()) {
                    continue;
                }
                if let Some(values) =
                    filter_project(ctx, bytes, self.fields.as_deref(), self.pred.as_ref())?
                {
                    self.after = Some((page_no, slot));
                    return Ok(Some(ScanItem {
                        key,
                        values: Some(values),
                    }));
                }
            }
            self.after = Some((page_no, (slots.max(1) - 1) as u16));
            page_no += 1;
            next_slot = 0;
        }
        Ok(None)
    }

    fn save_position(&self) -> Vec<u8> {
        let key = self.after.map(|(p, s)| rid(p, s));
        encode_position(key.as_ref().map(|k| k.as_bytes()))
    }

    fn restore_position(&mut self, pos: &[u8]) -> Result<()> {
        self.after = match decode_position(pos)? {
            None => None,
            Some(bytes) => Some(parse_rid(&bytes)?),
        };
        Ok(())
    }
}
