//! The temporary (main-memory) storage method.
//!
//! The paper's base system has "a storage method for implementing
//! temporary relations and that storage method is assigned the internal
//! identifier 1" — registration order in [`crate::register_builtin_storage`]
//! preserves that. Instances are *not recoverable*: they vanish at
//! restart (the catalog purges them). Operations are still logged so
//! in-flight rollback (vetoes, savepoints, aborts) works — the paper's
//! partial-rollback machinery applies to temporary relations too; only
//! crash durability is waived.

use std::collections::{BTreeMap, HashMap};
use std::ops::Bound;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dmx_types::sync::RwLock;

use dmx_core::{
    AccessPath, CommonServices, ExecCtx, KeyRange, PathChoice, RelationDescriptor, ScanItem,
    ScanOps, StorageMethod,
};
use dmx_expr::Expr;
use dmx_types::{
    AttrList, DmxError, FieldId, Lsn, Record, RecordKey, RelationId, Result, Schema, Value,
};
use dmx_wal::ExtKind;

use crate::ops::{decode_key, encode_key, encode_key_record, OP_DELETE, OP_INSERT, OP_UPDATE};
use crate::util::{decode_position, encode_position};

struct Table {
    rows: RwLock<BTreeMap<Vec<u8>, Record>>,
    next_key: AtomicU64,
}

/// The temporary storage method. Per-instance state lives in the
/// singleton, keyed by a token stored in the instance descriptor.
#[derive(Default)]
pub struct MemoryStorage {
    tables: RwLock<HashMap<u64, Arc<Table>>>,
    next_token: AtomicU64,
}

impl MemoryStorage {
    fn table(&self, rd: &RelationDescriptor) -> Result<Arc<Table>> {
        let token = decode_token(&rd.sm_desc)?;
        self.tables
            .read()
            .get(&token)
            .cloned()
            .ok_or_else(|| DmxError::NotFound(format!("temporary relation {}", rd.name)))
    }

    fn log(ctx: &ExecCtx<'_>, rd: &RelationDescriptor, op: u8, payload: Vec<u8>) -> Lsn {
        ctx.log_ext_op(ExtKind::Storage(rd.sm), rd.id, op, payload)
    }
}

fn decode_token(desc: &[u8]) -> Result<u64> {
    dmx_types::bytes::le_u64(desc, 0)
        .ok_or_else(|| DmxError::Corrupt("short memory descriptor".into()))
}

fn synth_key(n: u64) -> RecordKey {
    RecordKey::new(n.to_be_bytes().to_vec())
}

impl StorageMethod for MemoryStorage {
    fn name(&self) -> &str {
        "memory"
    }

    fn is_recoverable(&self) -> bool {
        false
    }

    fn validate_params(&self, params: &AttrList, _schema: &Schema) -> Result<()> {
        params.check_allowed(&[], "memory")
    }

    fn create_instance(
        &self,
        _ctx: &ExecCtx<'_>,
        _rel: RelationId,
        _schema: &Schema,
        _params: &AttrList,
    ) -> Result<Vec<u8>> {
        let token = self.next_token.fetch_add(1, Ordering::Relaxed) + 1;
        self.tables.write().insert(
            token,
            Arc::new(Table {
                rows: RwLock::new(BTreeMap::new()),
                next_key: AtomicU64::new(0),
            }),
        );
        Ok(token.to_le_bytes().to_vec())
    }

    fn destroy_instance(&self, _services: &Arc<CommonServices>, sm_desc: &[u8]) -> Result<()> {
        let token = decode_token(sm_desc)?;
        self.tables.write().remove(&token);
        Ok(())
    }

    fn insert(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        record: &Record,
    ) -> Result<RecordKey> {
        let table = self.table(rd)?;
        let key = synth_key(table.next_key.fetch_add(1, Ordering::Relaxed) + 1);
        Self::log(ctx, rd, OP_INSERT, encode_key(key.as_bytes()));
        table
            .rows
            .write()
            .insert(key.as_bytes().to_vec(), record.clone());
        Ok(key)
    }

    fn update(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        key: &RecordKey,
        new: &Record,
    ) -> Result<(Record, RecordKey)> {
        let table = self.table(rd)?;
        let mut rows = table.rows.write();
        let slot = rows
            .get_mut(key.as_bytes())
            .ok_or_else(|| DmxError::NotFound(format!("temporary record {key:?}")))?;
        let old = slot.clone();
        drop(rows);
        Self::log(
            ctx,
            rd,
            OP_UPDATE,
            encode_key_record(key.as_bytes(), &old.encode()),
        );
        table
            .rows
            .write()
            .insert(key.as_bytes().to_vec(), new.clone());
        Ok((old, key.clone()))
    }

    fn delete(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        key: &RecordKey,
    ) -> Result<Record> {
        let table = self.table(rd)?;
        let old = table
            .rows
            .read()
            .get(key.as_bytes())
            .cloned()
            .ok_or_else(|| DmxError::NotFound(format!("temporary record {key:?}")))?;
        Self::log(
            ctx,
            rd,
            OP_DELETE,
            encode_key_record(key.as_bytes(), &old.encode()),
        );
        table.rows.write().remove(key.as_bytes());
        Ok(old)
    }

    fn fetch(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        key: &RecordKey,
        fields: Option<&[FieldId]>,
        pred: Option<&Expr>,
    ) -> Result<Option<Vec<Value>>> {
        let table = self.table(rd)?;
        let rows = table.rows.read();
        let Some(rec) = rows.get(key.as_bytes()) else {
            return Ok(None);
        };
        if let Some(p) = pred {
            if !ctx.eval_predicate(p, &rec.values)? {
                return Ok(None);
            }
        }
        Ok(Some(project(rec, fields)?))
    }

    fn open_scan(
        &self,
        _ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        range: KeyRange,
        pred: Option<Expr>,
        fields: Option<Vec<FieldId>>,
    ) -> Result<Box<dyn ScanOps>> {
        Ok(Box::new(MemScan {
            table: self.table(rd)?,
            range,
            pred,
            fields,
            after: None,
        }))
    }

    fn estimate(&self, rd: &RelationDescriptor, preds: &[Expr]) -> PathChoice {
        let records = rd.stats.records();
        let ts = rd.stats.table_stats();
        let sel: f64 = preds
            .iter()
            .map(|p| dmx_expr::selectivity(p, ts.as_deref()))
            .product();
        let mut c = PathChoice::full_scan(AccessPath::StorageMethod, 0, records);
        c.cost.io = 0.0; // main memory: no page transfers
        c.rows_out = records as f64 * sel;
        c.applied = preds.to_vec();
        c
    }

    fn undo(
        &self,
        _services: &Arc<CommonServices>,
        rd: &RelationDescriptor,
        _lsn: Lsn,
        op: u8,
        payload: &[u8],
    ) -> Result<()> {
        // The table may already be gone (dropped); nothing to undo then.
        let Ok(table) = self.table(rd) else {
            return Ok(());
        };
        let (key, old_bytes) = decode_key(payload)?;
        let mut rows = table.rows.write();
        match op {
            OP_INSERT => {
                rows.remove(key);
            }
            OP_DELETE | OP_UPDATE => {
                rows.insert(key.to_vec(), Record::decode(old_bytes)?);
            }
            other => return Err(DmxError::Corrupt(format!("bad memory op {other}"))),
        }
        Ok(())
    }
}

fn project(rec: &Record, fields: Option<&[FieldId]>) -> Result<Vec<Value>> {
    match fields {
        None => Ok(rec.values.clone()),
        Some(ids) => ids
            .iter()
            .map(|&i| {
                rec.values
                    .get(i as usize)
                    .cloned()
                    .ok_or_else(|| DmxError::InvalidArg(format!("no field {i}")))
            })
            .collect(),
    }
}

struct MemScan {
    table: Arc<Table>,
    range: KeyRange,
    pred: Option<Expr>,
    fields: Option<Vec<FieldId>>,
    after: Option<Vec<u8>>,
}

impl ScanOps for MemScan {
    fn next(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<ScanItem>> {
        loop {
            let lo: Bound<Vec<u8>> = match &self.after {
                Some(k) => Bound::Excluded(k.clone()),
                None => match &self.range.lo {
                    Bound::Included(b) => Bound::Included(b.clone()),
                    Bound::Excluded(b) => Bound::Excluded(b.clone()),
                    Bound::Unbounded => Bound::Unbounded,
                },
            };
            let rows = self.table.rows.read();
            let Some((key, rec)) = rows.range((lo, Bound::Unbounded)).next() else {
                return Ok(None);
            };
            if !self.range.contains(key) {
                return Ok(None);
            }
            let (key, rec) = (key.clone(), rec.clone());
            drop(rows);
            self.after = Some(key.clone());
            if let Some(p) = &self.pred {
                if !ctx.eval_predicate(p, &rec.values)? {
                    continue;
                }
            }
            let values = project(&rec, self.fields.as_deref())?;
            return Ok(Some(ScanItem {
                key: RecordKey::new(key),
                values: Some(values),
            }));
        }
    }

    fn save_position(&self) -> Vec<u8> {
        encode_position(self.after.as_deref())
    }

    fn restore_position(&mut self, pos: &[u8]) -> Result<()> {
        self.after = decode_position(pos)?;
        Ok(())
    }
}
