//! Storage-method extensions.
//!
//! Each module implements the [`dmx_core::StorageMethod`] generic
//! interface for one alternative relation storage, per the paper's
//! examples:
//!
//! * [`heap`] — records stored in slotted pages of a disk file; record
//!   keys are record addresses (RIDs). The default recoverable storage.
//! * [`btree_sm`] — "the records of the relation … stored in the leaves
//!   of a B-tree index"; record keys are composed from declared key
//!   fields.
//! * [`memory`] — the base temporary storage method (registered first so
//!   it receives internal identifier **1**, as in the paper); not
//!   recoverable — instances vanish at restart.
//! * [`readonly`] — a write-once "database publishing" storage method for
//!   the paper's read-only optical disk scenario: bulk append, no updates
//!   or deletes, densely packed pages.
//! * [`foreign`] — "access to a foreign database by simulating relation
//!   accesses via (remote) accesses to relations in the foreign
//!   database": operations count simulated round trips; undo is by
//!   compensating remote operations.
//! * [`system`] — observability as an extension: publishes live engine
//!   state (metrics, catalog, locks, traces, incidents) as the read-only
//!   `sys.*` relations.
//!
//! [`register_builtin_storage`] installs all six in the paper's order.

pub mod btree_sm;
pub mod foreign;
pub mod heap;
pub mod memory;
pub mod ops;
pub mod readonly;
pub mod system;
pub mod util;

use std::sync::Arc;

use dmx_core::ExtensionRegistry;
use dmx_types::Result;

pub use btree_sm::BTreeStorage;
pub use foreign::{ForeignStorage, RemoteServer};
pub use heap::HeapStorage;
pub use memory::MemoryStorage;
pub use readonly::ReadOnlyStorage;
pub use system::SystemStorage;

/// Registers the built-in storage methods "at the factory". The
/// temporary (memory) storage method is registered first and therefore
/// gets type id 1, matching the paper's example.
pub fn register_builtin_storage(registry: &ExtensionRegistry) -> Result<()> {
    registry.register_storage_method(Arc::new(MemoryStorage::default()))?;
    registry.register_storage_method(Arc::new(HeapStorage))?;
    registry.register_storage_method(Arc::new(BTreeStorage))?;
    registry.register_storage_method(Arc::new(ReadOnlyStorage))?;
    registry.register_storage_method(Arc::new(ForeignStorage::default()))?;
    registry.register_storage_method(Arc::new(SystemStorage))?;
    Ok(())
}
