//! The foreign-database gateway storage method.
//!
//! "Another relation storage method might support access to a foreign
//! database by simulating relation accesses via (remote) accesses to
//! relations in the foreign database." [`RemoteServer`] simulates the
//! foreign system: an autonomous store reachable only through counted
//! round trips. Undo is by *compensating* remote operations (the remote
//! system does not share our log), which is exactly the latitude the
//! paper gives extension implementors in choosing recovery techniques.

use std::collections::{BTreeMap, HashMap};
use std::ops::Bound;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dmx_types::sync::RwLock;

use dmx_core::{
    AccessPath, CommonServices, Cost, ExecCtx, KeyRange, PathChoice, RelationDescriptor, ScanItem,
    ScanOps, StorageMethod,
};
use dmx_expr::Expr;
use dmx_types::{
    AttrList, DmxError, FieldId, Lsn, Record, RecordKey, RelationId, Result, Schema, Value,
};
use dmx_wal::ExtKind;

use crate::ops::{decode_key, encode_key, encode_key_record, OP_DELETE, OP_INSERT, OP_UPDATE};
use crate::util::{decode_position, encode_position};

/// Rows fetched per simulated round trip during scans.
pub const SCAN_BATCH: u64 = 100;

/// One simulated remote table: an ordered key -> record map behind its
/// own lock, shared between the server and open scans.
type RemoteTable = Arc<RwLock<BTreeMap<Vec<u8>, Record>>>;

/// A simulated foreign database server.
pub struct RemoteServer {
    name: String,
    tables: RwLock<HashMap<u64, RemoteTable>>,
    next_table: AtomicU64,
    next_key: AtomicU64,
    round_trips: AtomicU64,
}

impl RemoteServer {
    fn new(name: &str) -> Arc<Self> {
        Arc::new(RemoteServer {
            name: name.to_string(),
            tables: RwLock::new(HashMap::new()),
            next_table: AtomicU64::new(0),
            next_key: AtomicU64::new(0),
            round_trips: AtomicU64::new(0),
        })
    }

    /// The server's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total simulated round trips made against this server.
    pub fn round_trips(&self) -> u64 {
        self.round_trips.load(Ordering::Relaxed)
    }

    fn trip(&self) {
        self.round_trips.fetch_add(1, Ordering::Relaxed);
    }

    fn table(&self, id: u64) -> Result<RemoteTable> {
        self.tables
            .read()
            .get(&id)
            .cloned()
            .ok_or_else(|| DmxError::NotFound(format!("remote table {id} on {}", self.name)))
    }
}

/// The gateway storage method. Servers are registered "at the factory"
/// via [`ForeignStorage::register_server`].
#[derive(Default)]
pub struct ForeignStorage {
    servers: RwLock<HashMap<String, Arc<RemoteServer>>>,
}

/// Descriptor: table id (u64 LE) + server name bytes.
fn encode_desc(server: &str, table: u64) -> Vec<u8> {
    let mut v = table.to_le_bytes().to_vec();
    v.extend_from_slice(server.as_bytes());
    v
}

fn decode_desc(desc: &[u8]) -> Result<(String, u64)> {
    let corrupt = || DmxError::Corrupt("short foreign descriptor".into());
    let table = dmx_types::bytes::le_u64(desc, 0).ok_or_else(corrupt)?;
    let server = String::from_utf8(desc.get(8..).ok_or_else(corrupt)?.to_vec())
        .map_err(|_| DmxError::Corrupt("foreign server name not utf8".into()))?;
    Ok((server, table))
}

impl ForeignStorage {
    /// Registers (or returns) a simulated foreign server.
    pub fn register_server(&self, name: &str) -> Arc<RemoteServer> {
        self.servers
            .write()
            .entry(name.to_ascii_lowercase())
            .or_insert_with(|| RemoteServer::new(name))
            .clone()
    }

    /// Looks up a registered server.
    pub fn server(&self, name: &str) -> Result<Arc<RemoteServer>> {
        self.servers
            .read()
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| DmxError::NotFound(format!("foreign server '{name}'")))
    }

    fn resolve(&self, rd: &RelationDescriptor) -> Result<(Arc<RemoteServer>, u64)> {
        let (server, table) = decode_desc(&rd.sm_desc)?;
        Ok((self.server(&server)?, table))
    }
}

impl StorageMethod for ForeignStorage {
    fn name(&self) -> &str {
        "foreign"
    }

    fn validate_params(&self, params: &AttrList, _schema: &Schema) -> Result<()> {
        params.check_allowed(&["server"], "foreign")?;
        let server = params.require("server", "foreign")?;
        self.server(server).map(|_| ())
    }

    fn create_instance(
        &self,
        _ctx: &ExecCtx<'_>,
        _rel: RelationId,
        _schema: &Schema,
        params: &AttrList,
    ) -> Result<Vec<u8>> {
        let name = params.require("server", "foreign")?;
        let server = self.server(name)?;
        let table = server.next_table.fetch_add(1, Ordering::Relaxed) + 1;
        server
            .tables
            .write()
            .insert(table, Arc::new(RwLock::new(BTreeMap::new())));
        server.trip();
        Ok(encode_desc(name, table))
    }

    fn destroy_instance(&self, _services: &Arc<CommonServices>, sm_desc: &[u8]) -> Result<()> {
        let (name, table) = decode_desc(sm_desc)?;
        if let Ok(server) = self.server(&name) {
            server.tables.write().remove(&table);
            server.trip();
        }
        Ok(())
    }

    fn insert(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        record: &Record,
    ) -> Result<RecordKey> {
        let (server, table) = self.resolve(rd)?;
        let key = RecordKey::new(
            (server.next_key.fetch_add(1, Ordering::Relaxed) + 1)
                .to_be_bytes()
                .to_vec(),
        );
        ctx.log_ext_op(
            ExtKind::Storage(rd.sm),
            rd.id,
            OP_INSERT,
            encode_key(key.as_bytes()),
        );
        server.trip();
        server
            .table(table)?
            .write()
            .insert(key.as_bytes().to_vec(), record.clone());
        Ok(key)
    }

    fn update(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        key: &RecordKey,
        new: &Record,
    ) -> Result<(Record, RecordKey)> {
        let (server, table) = self.resolve(rd)?;
        let t = server.table(table)?;
        server.trip();
        let old = t
            .read()
            .get(key.as_bytes())
            .cloned()
            .ok_or_else(|| DmxError::NotFound(format!("remote record {key:?}")))?;
        ctx.log_ext_op(
            ExtKind::Storage(rd.sm),
            rd.id,
            OP_UPDATE,
            encode_key_record(key.as_bytes(), &old.encode()),
        );
        server.trip();
        t.write().insert(key.as_bytes().to_vec(), new.clone());
        Ok((old, key.clone()))
    }

    fn delete(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        key: &RecordKey,
    ) -> Result<Record> {
        let (server, table) = self.resolve(rd)?;
        let t = server.table(table)?;
        server.trip();
        let old = t
            .read()
            .get(key.as_bytes())
            .cloned()
            .ok_or_else(|| DmxError::NotFound(format!("remote record {key:?}")))?;
        ctx.log_ext_op(
            ExtKind::Storage(rd.sm),
            rd.id,
            OP_DELETE,
            encode_key_record(key.as_bytes(), &old.encode()),
        );
        server.trip();
        t.write().remove(key.as_bytes());
        Ok(old)
    }

    fn fetch(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        key: &RecordKey,
        fields: Option<&[FieldId]>,
        pred: Option<&Expr>,
    ) -> Result<Option<Vec<Value>>> {
        let (server, table) = self.resolve(rd)?;
        server.trip();
        let t = server.table(table)?;
        let rows = t.read();
        let Some(rec) = rows.get(key.as_bytes()) else {
            return Ok(None);
        };
        if let Some(p) = pred {
            if !ctx.eval_predicate(p, &rec.values)? {
                return Ok(None);
            }
        }
        match fields {
            None => Ok(Some(rec.values.clone())),
            Some(ids) => ids
                .iter()
                .map(|&i| {
                    rec.values
                        .get(i as usize)
                        .cloned()
                        .ok_or_else(|| DmxError::InvalidArg(format!("no field {i}")))
                })
                .collect::<Result<Vec<_>>>()
                .map(Some),
        }
    }

    fn open_scan(
        &self,
        _ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        range: KeyRange,
        pred: Option<Expr>,
        fields: Option<Vec<FieldId>>,
    ) -> Result<Box<dyn ScanOps>> {
        let (server, table) = self.resolve(rd)?;
        Ok(Box::new(ForeignScan {
            server: server.clone(),
            table: server.table(table)?,
            range,
            pred,
            fields,
            after: None,
            fetched_since_trip: 0,
        }))
    }

    fn estimate(&self, rd: &RelationDescriptor, preds: &[Expr]) -> PathChoice {
        let records = rd.stats.records();
        let ts = rd.stats.table_stats();
        let sel: f64 = preds
            .iter()
            .map(|p| dmx_expr::selectivity(p, ts.as_deref()))
            .product();
        let trips = (records / SCAN_BATCH + 1) as f64;
        PathChoice {
            path: AccessPath::StorageMethod,
            query: dmx_core::AccessQuery::All,
            // model a round trip as ~4 page transfers of latency
            cost: Cost::new(trips * 4.0, records as f64),
            rows_out: records as f64 * sel,
            covered: None,
            applied: preds.to_vec(),
            ordering: None,
        }
    }

    fn undo(
        &self,
        _services: &Arc<CommonServices>,
        rd: &RelationDescriptor,
        _lsn: Lsn,
        op: u8,
        payload: &[u8],
    ) -> Result<()> {
        // Compensating remote operations.
        let Ok((server, table)) = self.resolve(rd) else {
            return Ok(());
        };
        let Ok(t) = server.table(table) else {
            return Ok(());
        };
        let (key, old_bytes) = decode_key(payload)?;
        server.trip();
        let mut rows = t.write();
        match op {
            OP_INSERT => {
                rows.remove(key);
            }
            OP_DELETE | OP_UPDATE => {
                rows.insert(key.to_vec(), Record::decode(old_bytes)?);
            }
            other => return Err(DmxError::Corrupt(format!("bad foreign op {other}"))),
        }
        Ok(())
    }
}

struct ForeignScan {
    server: Arc<RemoteServer>,
    table: Arc<RwLock<BTreeMap<Vec<u8>, Record>>>,
    range: KeyRange,
    pred: Option<Expr>,
    fields: Option<Vec<FieldId>>,
    after: Option<Vec<u8>>,
    fetched_since_trip: u64,
}

impl ScanOps for ForeignScan {
    fn next(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<ScanItem>> {
        loop {
            if self.fetched_since_trip.is_multiple_of(SCAN_BATCH) {
                self.server.trip(); // fetch the next remote batch
            }
            self.fetched_since_trip += 1;
            let lo: Bound<Vec<u8>> = match &self.after {
                Some(k) => Bound::Excluded(k.clone()),
                None => match &self.range.lo {
                    Bound::Included(b) => Bound::Included(b.clone()),
                    Bound::Excluded(b) => Bound::Excluded(b.clone()),
                    Bound::Unbounded => Bound::Unbounded,
                },
            };
            let rows = self.table.read();
            let Some((key, rec)) = rows.range((lo, Bound::Unbounded)).next() else {
                return Ok(None);
            };
            if !self.range.contains(key) {
                return Ok(None);
            }
            let (key, rec) = (key.clone(), rec.clone());
            drop(rows);
            self.after = Some(key.clone());
            if let Some(p) = &self.pred {
                if !ctx.eval_predicate(p, &rec.values)? {
                    continue;
                }
            }
            let values = match &self.fields {
                None => rec.values.clone(),
                Some(ids) => ids
                    .iter()
                    .map(|&i| {
                        rec.values
                            .get(i as usize)
                            .cloned()
                            .ok_or_else(|| DmxError::InvalidArg(format!("no field {i}")))
                    })
                    .collect::<Result<Vec<_>>>()?,
            };
            return Ok(Some(ScanItem {
                key: RecordKey::new(key),
                values: Some(values),
            }));
        }
    }

    fn save_position(&self) -> Vec<u8> {
        encode_position(self.after.as_deref())
    }

    fn restore_position(&mut self, pos: &[u8]) -> Result<()> {
        self.after = decode_position(pos)?;
        Ok(())
    }
}
