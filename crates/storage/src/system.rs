//! The system-relation storage method: observability as an extension.
//!
//! The paper's "database publishing" pattern (read-only storage methods
//! surfacing externally-managed data as relations) applies to the
//! engine's own runtime state: metrics, histograms, the catalog, the
//! lock table, the plan cache, the flight-recorder trace and incident
//! reports are all published as ordinary read-only `sys.*` relations.
//! Nothing in the query path special-cases them — `SELECT * FROM
//! sys.metrics` flows through the same planner, locking and scan
//! machinery as any user table; only this storage method knows the rows
//! come from `MetricsRegistry::snapshot()` instead of pages.
//!
//! Each `sys.*` relation's `sm_desc` is a single tag byte (defined with
//! the schemas in `dmx_core::sysrel`). Scans materialize a
//! deterministically-ordered row snapshot at open, so a scan observes
//! one consistent point in time and same-seed runs render byte-identical
//! output. Items are *not* storage-method record keys (the dispatcher
//! skips record locking and re-fetch), mirroring derived-item access
//! paths.

use std::collections::HashMap;
use std::sync::Arc;

use dmx_core::sysrel;
use dmx_core::{
    AccessPath, AccessQuery, Cost, Database, ExecCtx, KeyRange, PathChoice, RelationDescriptor,
    ScanItem, ScanOps, StorageMethod,
};
use dmx_expr::Expr;
use dmx_lock::LockName;
use dmx_types::{
    AttrList, DmxError, FieldId, Lsn, Record, RecordKey, RelationId, Result, Schema, Value,
};

/// The system-relation storage method singleton.
#[derive(Default)]
pub struct SystemStorage;

impl SystemStorage {
    fn unsupported(&self, op: &str) -> DmxError {
        DmxError::Unsupported(format!(
            "storage method '{}' publishes engine state: {op} not supported",
            self.name()
        ))
    }
}

fn decode_tag(sm_desc: &[u8]) -> Result<u8> {
    sm_desc
        .first()
        .copied()
        .ok_or_else(|| DmxError::Corrupt("empty system-relation descriptor".into()))
}

fn encode_row_key(index: usize) -> RecordKey {
    RecordKey::new((index as u64).to_be_bytes().to_vec())
}

fn decode_row_key(key: &RecordKey) -> Result<usize> {
    let bytes = key.as_bytes();
    let mut buf = [0u8; 8];
    if bytes.len() != buf.len() {
        return Err(DmxError::Corrupt("bad system-relation row key".into()));
    }
    buf.copy_from_slice(bytes);
    Ok(u64::from_be_bytes(buf) as usize)
}

fn project(row: &[Value], fields: Option<&[FieldId]>) -> Result<Vec<Value>> {
    match fields {
        None => Ok(row.to_vec()),
        Some(ids) => ids
            .iter()
            .map(|&i| {
                row.get(i as usize)
                    .cloned()
                    .ok_or_else(|| DmxError::Internal(format!("system row field {i} out of range")))
            })
            .collect(),
    }
}

fn s(v: impl Into<String>) -> Value {
    Value::Str(v.into())
}

fn lock_name_str(n: &LockName) -> String {
    match n {
        LockName::Catalog => "catalog".to_string(),
        LockName::Relation(r) => format!("relation({})", r.0),
        LockName::Record(r, k) => format!("record({},{k})", r.0),
        LockName::Gap(r, k) => format!("gap({},{k})", r.0),
        LockName::File(f) => format!("file({})", f.0),
        LockName::PageLatch(p) => format!("page_latch({},{})", p.file.0, p.page_no),
    }
}

/// Renders a statistics bound for `sys.statistics` (integers without a
/// decimal point, so same-seed snapshots are byte-stable).
fn stat_value_str(v: Option<&Value>) -> Value {
    match v {
        None => Value::Null,
        Some(Value::Int(i)) => s(i.to_string()),
        Some(Value::Float(f)) => s(format!("{f}")),
        Some(other) => s(format!("{other:?}")),
    }
}

/// Renders a maintained histogram as `lo..hi: c0,c1,…`.
fn render_histogram(h: &dmx_expr::Histogram) -> String {
    let counts: Vec<String> = h.buckets.iter().map(|b| b.to_string()).collect();
    format!("{}..{}: {}", h.lo, h.hi, counts.join(","))
}

/// Sorts rows lexicographically by `Value::total_cmp` over all columns,
/// giving published relations a deterministic presentation order.
fn sort_rows(rows: &mut [Vec<Value>]) {
    rows.sort_by(|a, b| {
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| x.total_cmp(y))
            .find(|o| *o != std::cmp::Ordering::Equal)
            .unwrap_or_else(|| a.len().cmp(&b.len()))
    });
}

/// Builds the full row set of one `sys.*` relation, in a deterministic
/// order (the natural sort order of its leading columns).
fn materialize(db: &Arc<Database>, tag: u8) -> Result<Vec<Vec<Value>>> {
    let mut rows: Vec<Vec<Value>> = Vec::new();
    match tag {
        sysrel::TAG_METRICS => {
            let snap = db.metrics_snapshot();
            for (n, v) in &snap.counters {
                rows.push(vec![s(n.clone()), s("counter"), Value::Int(*v as i64)]);
            }
            for (n, v) in &snap.gauges {
                rows.push(vec![s(n.clone()), s("gauge"), Value::Int(*v)]);
            }
            for (n, h) in &snap.histograms {
                rows.push(vec![
                    s(n.clone()),
                    s("histogram_count"),
                    Value::Int(h.count as i64),
                ]);
                rows.push(vec![
                    s(n.clone()),
                    s("histogram_sum"),
                    Value::Int(h.sum as i64),
                ]);
            }
            // Trace-ring health: dropped telemetry must never be
            // invisible, so the eviction count rides along here even
            // though it is sink-local (not a registry metric).
            let trace = db.trace();
            rows.push(vec![
                s("trace.evicted"),
                s("counter"),
                Value::Int(trace.evicted() as i64),
            ]);
            rows.push(vec![
                s("trace.recorded"),
                s("counter"),
                Value::Int(trace.total_recorded() as i64),
            ]);
            sort_rows(&mut rows);
        }
        sysrel::TAG_HISTOGRAMS => {
            let snap = db.metrics_snapshot();
            for (n, h) in &snap.histograms {
                for (i, count) in h.buckets.iter().enumerate() {
                    // The overflow bucket (one past the last bound) has a
                    // NULL upper bound.
                    let bound = match h.bounds.get(i) {
                        Some(b) => Value::Int(*b as i64),
                        None => Value::Null,
                    };
                    rows.push(vec![
                        s(n.clone()),
                        Value::Int(i as i64),
                        bound,
                        Value::Int(*count as i64),
                    ]);
                }
            }
        }
        sysrel::TAG_RELATIONS => {
            let quarantined: HashMap<RelationId, String> = db.quarantined().into_iter().collect();
            for rd in db.catalog().list() {
                let sm_name = match db.registry().storage(rd.sm) {
                    Ok(sm) => sm.name().to_string(),
                    Err(_) => format!("unknown({})", rd.sm.0),
                };
                let (records, pages, bytes) = rd.stats.snapshot();
                rows.push(vec![
                    Value::Int(rd.id.0 as i64),
                    s(rd.name.clone()),
                    s(sm_name),
                    Value::Int(records as i64),
                    Value::Int(pages as i64),
                    Value::Int(bytes as i64),
                    Value::Int(rd.attachment_count() as i64),
                    match quarantined.get(&rd.id) {
                        Some(reason) => s(reason.clone()),
                        None => Value::Null,
                    },
                ]);
            }
        }
        sysrel::TAG_ATTACHMENTS => {
            for rd in db.catalog().list() {
                for (att_id, insts) in rd.attached_types() {
                    let type_name = match db.registry().attachment(att_id) {
                        Ok(att) => att.name().to_string(),
                        Err(_) => format!("unknown({})", att_id.0),
                    };
                    for inst in insts {
                        rows.push(vec![
                            s(rd.name.clone()),
                            s(type_name.clone()),
                            Value::Int(inst.instance.0 as i64),
                            s(inst.name.clone()),
                        ]);
                    }
                }
            }
            sort_rows(&mut rows);
        }
        sysrel::TAG_LOCKS => {
            for lr in db.services().locks.dump() {
                rows.push(vec![
                    s(lock_name_str(&lr.name)),
                    Value::Int(lr.txn.0 as i64),
                    s(format!("{:?}", lr.mode)),
                    s(if lr.waiting { "waiting" } else { "held" }),
                ]);
            }
        }
        sysrel::TAG_PLAN_CACHE => {
            if let Some(provider) = db.sys_provider("sys.plan_cache") {
                rows = provider(db);
            }
        }
        sysrel::TAG_TRACE => {
            for (seq, e) in db.trace().drain_numbered() {
                rows.push(vec![
                    Value::Int(seq as i64),
                    s(e.layer),
                    s(e.op),
                    Value::Int(e.target as i64),
                    Value::Int(e.detail as i64),
                ]);
            }
        }
        sysrel::TAG_INCIDENTS => {
            // Bounded ring of the most recent reports; the incident
            // number is monotone across evictions, so consumers can see
            // gaps where `incidents.evicted` truncated history.
            for (number, report) in db.incidents() {
                let n = Value::Int(number as i64);
                rows.push(vec![
                    n.clone(),
                    s("relation"),
                    s(format!("{}", report.relation.0)),
                ]);
                rows.push(vec![n.clone(), s("reason"), s(report.reason.clone())]);
                for (i, e) in report.events.iter().enumerate() {
                    rows.push(vec![
                        n.clone(),
                        s(format!("event.{i:04}")),
                        s(format!(
                            "{} {} target={} detail={}",
                            e.layer, e.op, e.target, e.detail
                        )),
                    ]);
                }
                rows.push(vec![n, s("metrics"), s(report.metrics.to_json())]);
            }
        }
        sysrel::TAG_REPAIRS => {
            for (i, r) in db.repairs().iter().enumerate() {
                rows.push(vec![
                    Value::Int(i as i64),
                    s(r.name.clone()),
                    s(r.action.as_str()),
                    s(if r.healthy { "healthy" } else { "terminal" }),
                    Value::Int(r.attempts as i64),
                    Value::Int(r.records_recovered as i64),
                    Value::Int(r.records_lost as i64),
                    s(r.detail.clone()),
                ]);
            }
        }
        sysrel::TAG_STATISTICS => {
            // The statistics attachment's live planner snapshots, one
            // row per relation ("*" summary) plus one per tracked field.
            for rd in db.catalog().list() {
                let Some(ts) = rd.stats.table_stats() else {
                    continue;
                };
                let rows_val = Value::Int(ts.rows as i64);
                rows.push(vec![
                    s(rd.name.clone()),
                    s("*"),
                    rows_val.clone(),
                    Value::Null,
                    Value::Null,
                    Value::Null,
                    Value::Null,
                    Value::Null,
                ]);
                for (i, cs) in ts.columns.iter().enumerate() {
                    let Some(cs) = cs else { continue };
                    let field = match rd.schema.column(i as FieldId) {
                        Ok(c) => c.name.clone(),
                        Err(_) => format!("field{i}"),
                    };
                    rows.push(vec![
                        s(rd.name.clone()),
                        s(field),
                        rows_val.clone(),
                        Value::Int(cs.nulls as i64),
                        Value::Int(cs.distinct as i64),
                        stat_value_str(cs.min.as_ref()),
                        stat_value_str(cs.max.as_ref()),
                        match &cs.histogram {
                            None => Value::Null,
                            Some(h) => s(render_histogram(h)),
                        },
                    ]);
                }
            }
            sort_rows(&mut rows);
        }
        other => {
            return Err(DmxError::Corrupt(format!(
                "unknown system-relation tag {other}"
            )))
        }
    }
    Ok(rows)
}

impl StorageMethod for SystemStorage {
    fn name(&self) -> &str {
        sysrel::SM_NAME
    }

    fn validate_params(&self, _params: &AttrList, _schema: &Schema) -> Result<()> {
        // `sys.*` relations are published by the engine at open; user DDL
        // cannot create instances of this storage method.
        Err(self.unsupported("create"))
    }

    fn create_instance(
        &self,
        _ctx: &ExecCtx<'_>,
        _rel: RelationId,
        _schema: &Schema,
        _params: &AttrList,
    ) -> Result<Vec<u8>> {
        Err(self.unsupported("create"))
    }

    fn destroy_instance(
        &self,
        _services: &Arc<dmx_core::CommonServices>,
        _sm_desc: &[u8],
    ) -> Result<()> {
        // No physical storage to release.
        Ok(())
    }

    fn insert(
        &self,
        _ctx: &ExecCtx<'_>,
        _rd: &RelationDescriptor,
        _record: &Record,
    ) -> Result<RecordKey> {
        Err(self.unsupported("insert"))
    }

    fn update(
        &self,
        _ctx: &ExecCtx<'_>,
        _rd: &RelationDescriptor,
        _key: &RecordKey,
        _new: &Record,
    ) -> Result<(Record, RecordKey)> {
        Err(self.unsupported("update"))
    }

    fn delete(
        &self,
        _ctx: &ExecCtx<'_>,
        _rd: &RelationDescriptor,
        _key: &RecordKey,
    ) -> Result<Record> {
        Err(self.unsupported("delete"))
    }

    fn fetch(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        key: &RecordKey,
        fields: Option<&[FieldId]>,
        pred: Option<&Expr>,
    ) -> Result<Option<Vec<Value>>> {
        let rows = materialize(ctx.db, decode_tag(&rd.sm_desc)?)?;
        let Some(row) = rows.get(decode_row_key(key)?) else {
            return Ok(None);
        };
        if let Some(p) = pred {
            if !ctx.eval_predicate(p, row)? {
                return Ok(None);
            }
        }
        project(row, fields).map(Some)
    }

    fn open_scan(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        range: KeyRange,
        pred: Option<Expr>,
        fields: Option<Vec<FieldId>>,
    ) -> Result<Box<dyn ScanOps>> {
        Ok(Box::new(SysScan {
            rows: materialize(ctx.db, decode_tag(&rd.sm_desc)?)?,
            range,
            pred,
            fields,
            next: 0,
        }))
    }

    fn estimate(&self, rd: &RelationDescriptor, preds: &[Expr]) -> PathChoice {
        // Stats are never maintained for published state; assume a small
        // in-memory relation (one "page", a nominal row count).
        let records = rd.stats.records().max(32);
        let ts = rd.stats.table_stats();
        let sel: f64 = preds
            .iter()
            .map(|p| dmx_expr::selectivity(p, ts.as_deref()))
            .product();
        PathChoice {
            path: AccessPath::StorageMethod,
            query: AccessQuery::All,
            cost: Cost::new(1.0, records as f64),
            rows_out: records as f64 * sel,
            covered: None,
            applied: preds.to_vec(),
            ordering: None,
        }
    }

    fn undo(
        &self,
        _services: &Arc<dmx_core::CommonServices>,
        _rd: &RelationDescriptor,
        _lsn: Lsn,
        _op: u8,
        _payload: &[u8],
    ) -> Result<()> {
        // Read-only: nothing is ever logged.
        Ok(())
    }

    fn is_recoverable(&self) -> bool {
        // Published relations are re-created at every open; stale
        // persisted descriptors are swept at restart like temporaries.
        false
    }
}

/// Scan over a materialized row snapshot; the position is the index of
/// the next row.
struct SysScan {
    rows: Vec<Vec<Value>>,
    range: KeyRange,
    pred: Option<Expr>,
    fields: Option<Vec<FieldId>>,
    next: usize,
}

impl ScanOps for SysScan {
    fn next(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<ScanItem>> {
        while self.next < self.rows.len() {
            let index = self.next;
            self.next += 1;
            let key = encode_row_key(index);
            if !self.range.contains(key.as_bytes()) {
                continue;
            }
            let Some(row) = self.rows.get(index) else {
                break;
            };
            if let Some(p) = self.pred.as_ref() {
                if !ctx.eval_predicate(p, row)? {
                    continue;
                }
            }
            let values = project(row, self.fields.as_deref())?;
            return Ok(Some(ScanItem {
                key,
                values: Some(values),
            }));
        }
        Ok(None)
    }

    fn save_position(&self) -> Vec<u8> {
        (self.next as u64).to_be_bytes().to_vec()
    }

    fn restore_position(&mut self, pos: &[u8]) -> Result<()> {
        let mut buf = [0u8; 8];
        if pos.len() != buf.len() {
            return Err(DmxError::Corrupt("bad scan position".into()));
        }
        buf.copy_from_slice(pos);
        self.next = u64::from_be_bytes(buf) as usize;
        Ok(())
    }

    fn items_are_record_keys(&self) -> bool {
        // Rows are derived from engine state, not stored records: the
        // dispatcher must not record-lock or re-fetch them.
        false
    }
}
