//! The heap storage method: slotted pages, RID record keys.
//!
//! Record keys are record addresses — `(page_no, slot)` packed big-endian
//! so RID order equals physical order. Undo and redo are physiological
//! with page-LSN idempotency checks; payloads carry both images (old for
//! undo, new for redo) because under steal/no-force a crash can leave a
//! page either ahead of the log's committed state (stolen loser pages)
//! or behind it (never-flushed winner pages). Slots are never reused
//! across deletes (tombstones persist; their payload bytes are reclaimed
//! by page compaction), which keeps RIDs stable and makes undo of a
//! delete safe under concurrency. Heap pages are the pool's stealable
//! type: redo reconstructs any heap page from the log, so the pool may
//! evict them dirty after forcing the log through the page LSN.

use std::sync::Arc;

use dmx_core::{
    AccessPath, CommonServices, ExecCtx, KeyRange, PathChoice, RelationDescriptor, SalvagedRecords,
    ScanItem, ScanOps, StorageMethod,
};
use dmx_expr::Expr;
use dmx_page::{BufferPool, SlottedPage};
use dmx_types::PageId;
use dmx_types::{
    AttrList, DmxError, FieldId, FileId, Lsn, Record, RecordKey, RelationId, Result, Schema, Value,
};
use dmx_wal::ExtKind;

use crate::ops::{
    decode_key, decode_old_new, encode_key_old_new, encode_key_record, OP_DELETE, OP_INSERT,
    OP_UPDATE,
};
use crate::util::{decode_position, encode_position, filter_project};

/// Page type tag for heap data pages.
pub const PAGE_TYPE_HEAP: u8 = 3;

/// The heap storage method (stateless singleton; per-instance state is
/// the file named by the descriptor).
pub struct HeapStorage;

/// Descriptor layout: file id, 4 bytes little-endian.
pub(crate) fn encode_file_desc(file: FileId) -> Vec<u8> {
    file.0.to_le_bytes().to_vec()
}

pub(crate) fn decode_file_desc(desc: &[u8]) -> Result<FileId> {
    dmx_types::bytes::le_u32(desc, 0)
        .map(FileId)
        .ok_or_else(|| DmxError::Corrupt("short heap descriptor".into()))
}

/// RID encoding: page_no (u32 BE) + slot (u16 BE).
pub fn rid(page_no: u32, slot: u16) -> RecordKey {
    let mut v = Vec::with_capacity(6);
    v.extend_from_slice(&page_no.to_be_bytes());
    v.extend_from_slice(&slot.to_be_bytes());
    RecordKey::new(v)
}

/// Parses a RID key.
pub fn parse_rid(key: &[u8]) -> Result<(u32, u16)> {
    match (
        dmx_types::bytes::array::<4>(key, 0),
        dmx_types::bytes::array::<2>(key, 4),
    ) {
        (Some(p), Some(s)) if key.len() == 6 => Ok((u32::from_be_bytes(p), u16::from_be_bytes(s))),
        _ => Err(DmxError::Corrupt(format!("bad RID length {}", key.len()))),
    }
}

/// Appends `bytes` as a fresh-slot record into the file's last page, or a
/// newly allocated page. Returns `(page_no, slot, appended_new_page)`.
/// Shared with the read-only storage method.
pub(crate) fn append_record(
    pool: &Arc<BufferPool>,
    file: FileId,
    bytes: &[u8],
    page_type: u8,
    log: impl FnOnce(u32, u16) -> Lsn,
) -> Result<(u32, u16, bool)> {
    if bytes.len() > SlottedPage::MAX_RECORD {
        return Err(DmxError::InvalidArg(format!(
            "record of {} bytes exceeds page capacity",
            bytes.len()
        )));
    }
    let pages = pool.disk().page_count(file)?;
    // Try the last page first.
    if pages > 0 {
        let pin = pool.fetch(PageId::new(file, pages - 1))?;
        let mut page = pin.write();
        let slot = SlottedPage::slot_count(&page);
        if SlottedPage::free_space(&page) + SlottedPage::reclaimable(&page) >= bytes.len() + 4 {
            let lsn = log(pages - 1, slot);
            SlottedPage::insert_at(&mut page, slot, bytes)?;
            page.set_lsn(lsn);
            return Ok((pages - 1, slot, false));
        }
    }
    // Allocate a fresh page.
    let pin = pool.new_page(file)?;
    let mut page = pin.write();
    SlottedPage::init(&mut page);
    page.set_page_type(page_type);
    let page_no = pin.id().page_no;
    let lsn = log(page_no, 0);
    SlottedPage::insert_at(&mut page, 0, bytes)?;
    page.set_lsn(lsn);
    Ok((page_no, 0, true))
}

/// Physiological undo shared with the read-only storage method.
pub(crate) fn undo_page_op(
    services: &Arc<CommonServices>,
    file: FileId,
    lsn: Lsn,
    op: u8,
    payload: &[u8],
) -> Result<()> {
    let (key, old_bytes) = decode_key(payload)?;
    let (page_no, slot) = parse_rid(key)?;
    // The page may legitimately be missing at restart (never flushed
    // beyond allocation is impossible — allocation is durable on MemDisk —
    // but the whole file may already be destroyed by a deferred drop).
    let pin = match services.pool.fetch(PageId::new(file, page_no)) {
        Ok(p) => p,
        Err(DmxError::NotFound(_)) => return Ok(()),
        Err(e) => return Err(e),
    };
    let mut page = pin.write();
    if page.lsn() < lsn {
        // The operation never reached this page image; nothing to undo.
        return Ok(());
    }
    // Presence checks make double undo a no-op: under steal an undone
    // page can reach disk before its CLR is durable, in which case
    // restart drives this same undo again.
    match op {
        OP_INSERT => {
            SlottedPage::delete(&mut page, slot);
        }
        OP_DELETE => {
            if SlottedPage::get(&page, slot).is_none() {
                SlottedPage::insert_at(&mut page, slot, old_bytes)?;
            }
        }
        OP_UPDATE => {
            let (old, _) = decode_old_new(old_bytes)?;
            SlottedPage::update(&mut page, slot, old)?;
        }
        other => return Err(DmxError::Corrupt(format!("bad heap op {other}"))),
    }
    Ok(())
}

/// Physiological redo shared with the read-only storage method: replays
/// a logged operation into the page image on disk, which under
/// steal/no-force may be anywhere from all-zero (allocated, never
/// written) to already containing the operation (stolen after it).
pub(crate) fn redo_page_op(
    services: &Arc<CommonServices>,
    file: FileId,
    page_type: u8,
    lsn: Lsn,
    op: u8,
    payload: &[u8],
) -> Result<()> {
    let (key, rest) = decode_key(payload)?;
    let (page_no, slot) = parse_rid(key)?;
    let pin = match services.pool.fetch(PageId::new(file, page_no)) {
        Ok(p) => p,
        // A later committed transaction dropped the relation; its
        // deferred drop already released the file.
        Err(DmxError::NotFound(_)) => return Ok(()),
        Err(e) => return Err(e),
    };
    let mut page = pin.write();
    // An allocated-but-never-flushed page reads back all-zero: format it
    // before replaying into it.
    if page.page_type() != page_type {
        SlottedPage::init(&mut page);
        page.set_page_type(page_type);
    }
    if page.lsn() >= lsn {
        // Page-LSN invariant: this image already reflects every
        // operation at or below its LSN.
        return Ok(());
    }
    match op {
        OP_INSERT => {
            // Compensated (never-replayed) inserts leave slot-number
            // gaps; fill them with the tombstones the original rollback
            // left behind.
            SlottedPage::pad_to_slot(&mut page, slot)?;
            SlottedPage::insert_at(&mut page, slot, rest)?;
        }
        OP_DELETE => {
            SlottedPage::delete(&mut page, slot);
        }
        OP_UPDATE => {
            let (_, new) = decode_old_new(rest)?;
            SlottedPage::update(&mut page, slot, new)?;
        }
        other => return Err(DmxError::Corrupt(format!("bad heap op {other}"))),
    }
    page.set_lsn(lsn);
    Ok(())
}

impl HeapStorage {
    fn file(rd: &RelationDescriptor) -> Result<FileId> {
        decode_file_desc(&rd.sm_desc)
    }

    fn log(ctx: &ExecCtx<'_>, rd: &RelationDescriptor, op: u8, payload: Vec<u8>) -> Lsn {
        ctx.log_ext_op(ExtKind::Storage(rd.sm), rd.id, op, payload)
    }
}

impl StorageMethod for HeapStorage {
    fn name(&self) -> &str {
        "heap"
    }

    fn validate_params(&self, params: &AttrList, _schema: &Schema) -> Result<()> {
        params.check_allowed(&[], "heap")
    }

    fn create_instance(
        &self,
        ctx: &ExecCtx<'_>,
        _rel: RelationId,
        _schema: &Schema,
        params: &AttrList,
    ) -> Result<Vec<u8>> {
        self.validate_params(params, _schema)?;
        let file = ctx.services().disk.create_file()?;
        let pin = ctx.services().pool.new_page(file)?;
        let mut page = pin.write();
        SlottedPage::init(&mut page);
        page.set_page_type(PAGE_TYPE_HEAP);
        Ok(encode_file_desc(file))
    }

    fn destroy_instance(&self, services: &Arc<CommonServices>, sm_desc: &[u8]) -> Result<()> {
        let file = decode_file_desc(sm_desc)?;
        services.pool.discard_file(file);
        services.disk.delete_file(file)
    }

    fn insert(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        record: &Record,
    ) -> Result<RecordKey> {
        let file = Self::file(rd)?;
        let bytes = record.encode();
        let (page_no, slot, new_page) = append_record(
            &ctx.services().pool,
            file,
            &bytes,
            PAGE_TYPE_HEAP,
            |p, s| {
                Self::log(
                    ctx,
                    rd,
                    OP_INSERT,
                    encode_key_record(rid(p, s).as_bytes(), &bytes),
                )
            },
        )?;
        if new_page {
            rd.stats.on_page_allocated();
        }
        Ok(rid(page_no, slot))
    }

    fn update(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        key: &RecordKey,
        new: &Record,
    ) -> Result<(Record, RecordKey)> {
        let file = Self::file(rd)?;
        let (page_no, slot) = parse_rid(key.as_bytes())?;
        let new_bytes = new.encode();
        let pin = ctx.services().pool.fetch(PageId::new(file, page_no))?;
        let mut page = pin.write();
        let old_bytes = SlottedPage::get(&page, slot)
            .ok_or_else(|| DmxError::NotFound(format!("heap record {key:?}")))?
            .to_vec();
        let old = Record::decode(&old_bytes)?;
        // Will an in-place update fit (the old payload is reclaimed)?
        let fits = new_bytes.len() <= old_bytes.len()
            || SlottedPage::free_space(&page) + SlottedPage::reclaimable(&page) + old_bytes.len()
                >= new_bytes.len();
        if fits {
            let lsn = Self::log(
                ctx,
                rd,
                OP_UPDATE,
                encode_key_old_new(key.as_bytes(), &old_bytes, &new_bytes),
            );
            SlottedPage::update(&mut page, slot, &new_bytes)?;
            page.set_lsn(lsn);
            return Ok((old, key.clone()));
        }
        // Relocate: delete here, insert elsewhere (each logged).
        let lsn = Self::log(
            ctx,
            rd,
            OP_DELETE,
            encode_key_record(key.as_bytes(), &old_bytes),
        );
        SlottedPage::delete(&mut page, slot);
        page.set_lsn(lsn);
        drop(page);
        drop(pin);
        let new_key = self.insert(ctx, rd, new)?;
        Ok((old, new_key))
    }

    fn delete(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        key: &RecordKey,
    ) -> Result<Record> {
        let file = Self::file(rd)?;
        let (page_no, slot) = parse_rid(key.as_bytes())?;
        let pin = ctx.services().pool.fetch(PageId::new(file, page_no))?;
        let mut page = pin.write();
        let old_bytes = SlottedPage::get(&page, slot)
            .ok_or_else(|| DmxError::NotFound(format!("heap record {key:?}")))?
            .to_vec();
        let lsn = Self::log(
            ctx,
            rd,
            OP_DELETE,
            encode_key_record(key.as_bytes(), &old_bytes),
        );
        SlottedPage::delete(&mut page, slot);
        page.set_lsn(lsn);
        Record::decode(&old_bytes)
    }

    fn fetch(
        &self,
        ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        key: &RecordKey,
        fields: Option<&[FieldId]>,
        pred: Option<&Expr>,
    ) -> Result<Option<Vec<Value>>> {
        let file = Self::file(rd)?;
        let (page_no, slot) = parse_rid(key.as_bytes())?;
        let pin = match ctx.services().pool.fetch(PageId::new(file, page_no)) {
            Ok(p) => p,
            Err(DmxError::NotFound(_)) => return Ok(None),
            Err(e) => return Err(e),
        };
        let page = pin.read();
        let Some(bytes) = SlottedPage::get(&page, slot) else {
            return Ok(None);
        };
        // Filter while the record is still in the buffer pool.
        filter_project(ctx, bytes, fields, pred)
    }

    fn open_scan(
        &self,
        _ctx: &ExecCtx<'_>,
        rd: &RelationDescriptor,
        range: KeyRange,
        pred: Option<Expr>,
        fields: Option<Vec<FieldId>>,
    ) -> Result<Box<dyn ScanOps>> {
        Ok(Box::new(HeapScan {
            file: Self::file(rd)?,
            range,
            pred,
            fields,
            after: None,
        }))
    }

    fn estimate(&self, rd: &RelationDescriptor, preds: &[Expr]) -> PathChoice {
        let pages = rd.stats.pages();
        let records = rd.stats.records();
        let ts = rd.stats.table_stats();
        let sel: f64 = preds
            .iter()
            .map(|p| dmx_expr::selectivity(p, ts.as_deref()))
            .product();
        let mut c = PathChoice::full_scan(AccessPath::StorageMethod, pages, records);
        c.rows_out = (records as f64 * sel).max(0.0);
        // The heap applies the whole pushed-down predicate in the pool.
        c.applied = preds.to_vec();
        c
    }

    fn undo(
        &self,
        services: &Arc<CommonServices>,
        rd: &RelationDescriptor,
        lsn: Lsn,
        op: u8,
        payload: &[u8],
    ) -> Result<()> {
        undo_page_op(services, Self::file(rd)?, lsn, op, payload)
    }

    fn redo(
        &self,
        services: &Arc<CommonServices>,
        rd: &RelationDescriptor,
        lsn: Lsn,
        op: u8,
        payload: &[u8],
    ) -> Result<()> {
        redo_page_op(services, Self::file(rd)?, PAGE_TYPE_HEAP, lsn, op, payload)
    }

    fn stealable_page_types(&self) -> &[u8] {
        &[PAGE_TYPE_HEAP]
    }

    fn storage_files(&self, sm_desc: &[u8]) -> Vec<FileId> {
        decode_file_desc(sm_desc)
            .map(|f| vec![f])
            .unwrap_or_default()
    }

    fn salvage(&self, ctx: &ExecCtx<'_>, rd: &RelationDescriptor) -> Result<SalvagedRecords> {
        let file = Self::file(rd)?;
        let pool = &ctx.services().pool;
        let page_count = pool.disk().page_count(file)?;
        let mut out = SalvagedRecords {
            records: Vec::new(),
            pages_lost: 0,
            pages_read: 0,
        };
        for page_no in 0..page_count {
            let pin = match pool.fetch(PageId::new(file, page_no)) {
                Ok(p) => p,
                Err(DmxError::Corrupt(_)) => {
                    // This page is the damage; its records are the losses.
                    out.pages_lost += 1;
                    continue;
                }
                Err(e) => return Err(e),
            };
            out.pages_read += 1;
            let page = pin.read();
            for slot in 0..SlottedPage::slot_count(&page) {
                let Some(bytes) = SlottedPage::get(&page, slot) else {
                    continue; // tombstone
                };
                // A record that fails to decode on an intact page is
                // damage below the checksum; skip it, keep going.
                match Record::decode(bytes) {
                    Ok(rec) => out.records.push((rid(page_no, slot), rec.values)),
                    Err(_) => continue,
                }
            }
        }
        Ok(out)
    }
}

/// RID-order key-sequential access with buffer-resident filtering.
struct HeapScan {
    file: FileId,
    range: KeyRange,
    pred: Option<Expr>,
    fields: Option<Vec<FieldId>>,
    /// Position: the RID the scan is on/after.
    after: Option<(u32, u16)>,
}

impl ScanOps for HeapScan {
    fn next(&mut self, ctx: &ExecCtx<'_>) -> Result<Option<ScanItem>> {
        let pool = &ctx.services().pool;
        let page_count = pool.disk().page_count(self.file)?;
        let (mut page_no, mut next_slot) = match self.after {
            None => (0, 0),
            Some((p, s)) => (p, s as u32 + 1),
        };
        while page_no < page_count {
            let pin = pool.fetch(PageId::new(self.file, page_no))?;
            let page = pin.read();
            let slots = SlottedPage::slot_count(&page) as u32;
            while next_slot < slots {
                let slot = next_slot as u16;
                next_slot += 1;
                let Some(bytes) = SlottedPage::get(&page, slot) else {
                    continue; // tombstone
                };
                let key = rid(page_no, slot);
                if !self.range.contains(key.as_bytes()) {
                    continue;
                }
                if let Some(values) =
                    filter_project(ctx, bytes, self.fields.as_deref(), self.pred.as_ref())?
                {
                    self.after = Some((page_no, slot));
                    return Ok(Some(ScanItem {
                        key,
                        values: Some(values),
                    }));
                }
            }
            // Remember progress so a huge empty tail doesn't rescan.
            self.after = Some((page_no, (slots.max(1) - 1) as u16));
            page_no += 1;
            next_slot = 0;
        }
        Ok(None)
    }

    fn supports_versioned_read(&self) -> bool {
        true
    }

    fn item_from_version(
        &self,
        ctx: &ExecCtx<'_>,
        key: &RecordKey,
        values: &[Value],
    ) -> Result<Option<ScanItem>> {
        if !self.range.contains(key.as_bytes()) {
            return Ok(None);
        }
        if let Some(p) = &self.pred {
            if !ctx.eval_predicate(p, &values)? {
                return Ok(None);
            }
        }
        Ok(Some(ScanItem {
            key: key.clone(),
            values: Some(dmx_core::project_values(values, self.fields.as_deref())?),
        }))
    }

    // No set_range_locking: heap RIDs are allocation order, not key
    // order, so next-key gap locks don't define a meaningful range;
    // phantom fencing for heaps stays at the relation lock.

    fn save_position(&self) -> Vec<u8> {
        let key = self.after.map(|(p, s)| rid(p, s));
        encode_position(key.as_ref().map(|k| k.as_bytes()))
    }

    fn restore_position(&mut self, pos: &[u8]) -> Result<()> {
        self.after = match decode_position(pos)? {
            None => None,
            Some(bytes) => Some(parse_rid(&bytes)?),
        };
        Ok(())
    }
}
