//! Shared log-payload encodings for storage-method operations.

use dmx_types::{DmxError, Result};

/// Op code: record inserted; payload = key + new record bytes (the new
/// bytes feed restart redo under no-force).
pub const OP_INSERT: u8 = 1;
/// Op code: record deleted; payload = key + old record bytes.
pub const OP_DELETE: u8 = 2;
/// Op code: record updated in place; payload = key + old/new record
/// bytes ([`encode_key_old_new`]): old drives undo, new drives redo.
pub const OP_UPDATE: u8 = 3;

/// Encodes `key` alone.
pub fn encode_key(key: &[u8]) -> Vec<u8> {
    let mut v = Vec::with_capacity(2 + key.len());
    v.extend_from_slice(&(key.len() as u16).to_le_bytes());
    v.extend_from_slice(key);
    v
}

/// Encodes `key` followed by `record` bytes.
pub fn encode_key_record(key: &[u8], record: &[u8]) -> Vec<u8> {
    let mut v = encode_key(key);
    v.extend_from_slice(record);
    v
}

/// Encodes `key`, the `old` record (length-prefixed) and the `new`
/// record — the undo/redo payload of an in-place update.
pub fn encode_key_old_new(key: &[u8], old: &[u8], new: &[u8]) -> Vec<u8> {
    let mut v = encode_key(key);
    v.extend_from_slice(&(old.len() as u32).to_le_bytes());
    v.extend_from_slice(old);
    v.extend_from_slice(new);
    v
}

/// Splits the post-key `rest` of an [`encode_key_old_new`] payload into
/// `(old, new)`.
pub fn decode_old_new(rest: &[u8]) -> Result<(&[u8], &[u8])> {
    let len = dmx_types::bytes::le_u32(rest, 0)
        .ok_or_else(|| DmxError::Corrupt("short update payload".into()))? as usize;
    let old = rest
        .get(4..4 + len)
        .ok_or_else(|| DmxError::Corrupt("short update payload old".into()))?;
    let new = rest
        .get(4 + len..)
        .ok_or_else(|| DmxError::Corrupt("short update payload".into()))?;
    Ok((old, new))
}

/// Decodes a payload written by [`encode_key`] / [`encode_key_record`]
/// into `(key, rest)`.
pub fn decode_key(payload: &[u8]) -> Result<(&[u8], &[u8])> {
    let len = dmx_types::bytes::le_u16(payload, 0)
        .ok_or_else(|| DmxError::Corrupt("short op payload".into()))? as usize;
    let key = payload
        .get(2..2 + len)
        .ok_or_else(|| DmxError::Corrupt("short op payload key".into()))?;
    let rest = payload
        .get(2 + len..)
        .ok_or_else(|| DmxError::Corrupt("short op payload".into()))?;
    Ok((key, rest))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_record_roundtrip() {
        let p = encode_key_record(b"key", b"record-bytes");
        let (k, r) = decode_key(&p).unwrap();
        assert_eq!(k, b"key");
        assert_eq!(r, b"record-bytes");
        let p2 = encode_key(b"");
        let (k2, r2) = decode_key(&p2).unwrap();
        assert!(k2.is_empty() && r2.is_empty());
        assert!(decode_key(&[5]).is_err());
        assert!(decode_key(&[9, 0, 1]).is_err());
    }

    #[test]
    fn key_old_new_roundtrip() {
        let p = encode_key_old_new(b"key", b"before", b"after-image");
        let (k, rest) = decode_key(&p).unwrap();
        assert_eq!(k, b"key");
        let (old, new) = decode_old_new(rest).unwrap();
        assert_eq!(old, b"before");
        assert_eq!(new, b"after-image");
        assert!(decode_old_new(&[1, 0]).is_err());
        assert!(decode_old_new(&[9, 0, 0, 0, 1]).is_err());
    }
}
